//! Shared experiment driver for the benchmark binaries.
//!
//! Each binary regenerates one artefact of the paper (see `DESIGN.md`'s
//! experiment index): `table1`, `fig5`, `fig6`, `fig7`, `area` and the
//! `ablation` extras, plus `experiments` which runs the whole evaluation
//! in one pass. All binaries accept:
//!
//! * `--quick` — fixed channel width and light annealing (fast smoke run);
//! * `--set regexp|fir|mcnc` — restrict to one benchmark set;
//! * `--pairs N` — only the first N pairs per set.

#![forbid(unsafe_code)]

pub mod perf;

use mm_engine::{Engine, EngineOptions, FlowKind, Job, JobOutcome};
use mm_flow::{run_pair, FlowOptions, MultiModeInput, PairMetrics, Stats};
use mm_netlist::LutCircuit;
use std::path::PathBuf;

/// The three benchmark sets of the paper (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchmarkSet {
    /// Regular-expression matching engines.
    RegExp,
    /// Adaptive filtering (low-pass + high-pass FIR pairs).
    Fir,
    /// General MCNC-class circuits.
    Mcnc,
}

impl BenchmarkSet {
    /// All three sets in paper order.
    pub const ALL: [BenchmarkSet; 3] =
        [BenchmarkSet::RegExp, BenchmarkSet::Fir, BenchmarkSet::Mcnc];

    /// Display name as used in the figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BenchmarkSet::RegExp => "RegExp",
            BenchmarkSet::Fir => "FIR",
            BenchmarkSet::Mcnc => "MCNC",
        }
    }

    /// The suite circuits (mapped to 4-LUTs).
    #[must_use]
    pub fn circuits(self) -> Vec<LutCircuit> {
        match self {
            BenchmarkSet::RegExp => mm_gen::regexp_suite(4),
            BenchmarkSet::Fir => mm_gen::fir_suite(4),
            BenchmarkSet::Mcnc => mm_gen::mcnc_suite(4),
        }
    }

    /// The multi-mode pairings of the suite (the paper's N = 2 case of
    /// [`BenchmarkSet::tuples`]).
    #[must_use]
    pub fn pairs(self) -> Vec<(usize, usize)> {
        self.tuples(2).into_iter().map(|t| (t[0], t[1])).collect()
    }

    /// The `modes`-ary combinations of the suite: every ascending tuple
    /// for RegExp/MCNC, interleaved filter families for FIR.
    ///
    /// # Panics
    ///
    /// Panics on mode counts the suite cannot supply (mirroring the
    /// engine's `suite_jobs_n` validation) — a bench binary silently
    /// iterating zero or differently-sized problems would report
    /// nothing wrong while measuring the wrong workload.
    #[must_use]
    pub fn tuples(self, modes: usize) -> Vec<Vec<usize>> {
        let tuples = match self {
            BenchmarkSet::RegExp | BenchmarkSet::Mcnc => {
                mm_gen::all_tuples(mm_gen::SUITE_SIZE, modes)
            }
            BenchmarkSet::Fir => mm_gen::fir_mode_tuples(modes),
        };
        assert!(
            modes >= 2 && tuples.first().is_some_and(|t| t.len() == modes),
            "suite {} cannot form {modes}-mode problems",
            self.name()
        );
        tuples
    }
}

/// Command-line configuration shared by the binaries.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Restrict to one set (`None` = all three).
    pub set: Option<BenchmarkSet>,
    /// Cap on pairs per set.
    pub max_pairs: usize,
    /// Flow options (quick vs paper-mode).
    pub options: FlowOptions,
    /// Whether `--quick` was given.
    pub quick: bool,
    /// Engine worker threads (`0` = one per CPU, `1` = serial).
    pub threads: usize,
    /// Stage-cache directory for the engine (`--cache DIR`).
    pub cache: Option<PathBuf>,
    /// Also run the suite strictly serially and print the measured
    /// wall-clock comparison (`--compare-serial`).
    pub compare_serial: bool,
}

impl RunConfig {
    /// Parses `std::env::args`-style arguments (without the binary name).
    ///
    /// # Panics
    ///
    /// Panics (with usage help) on unknown arguments.
    #[must_use]
    pub fn from_args(args: impl Iterator<Item = String>) -> Self {
        let mut config = Self {
            set: None,
            max_pairs: usize::MAX,
            options: paper_options(),
            quick: false,
            threads: 0,
            cache: None,
            compare_serial: false,
        };
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => {
                    config.quick = true;
                    config.options = quick_options();
                }
                "--threads" => {
                    config.threads = args
                        .next()
                        .expect("--threads needs a value")
                        .parse()
                        .expect("--threads needs a number");
                }
                "--cache" => {
                    config.cache = Some(args.next().expect("--cache needs a directory").into());
                }
                "--compare-serial" => config.compare_serial = true,
                "--set" => {
                    let v = args.next().expect("--set needs a value");
                    config.set = Some(match v.as_str() {
                        "regexp" => BenchmarkSet::RegExp,
                        "fir" => BenchmarkSet::Fir,
                        "mcnc" => BenchmarkSet::Mcnc,
                        other => panic!("unknown set '{other}' (regexp|fir|mcnc)"),
                    });
                }
                "--pairs" => {
                    config.max_pairs = args
                        .next()
                        .expect("--pairs needs a value")
                        .parse()
                        .expect("--pairs needs a number");
                }
                "--seed" => {
                    config.options.placer.seed = args
                        .next()
                        .expect("--seed needs a value")
                        .parse()
                        .expect("--seed needs a number");
                }
                other => {
                    panic!(
                        "unknown argument '{other}' (try --quick, --set, --pairs, --seed, \
                         --threads, --cache, --compare-serial)"
                    )
                }
            }
        }
        config
    }

    /// The sets this run covers.
    #[must_use]
    pub fn sets(&self) -> Vec<BenchmarkSet> {
        match self.set {
            Some(s) => vec![s],
            None => BenchmarkSet::ALL.to_vec(),
        }
    }

    /// Builds the batch engine this configuration asks for.
    ///
    /// # Panics
    ///
    /// Panics if the cache directory cannot be created.
    #[must_use]
    pub fn engine(&self) -> Engine {
        Engine::new(EngineOptions {
            threads: self.threads,
            cache_dir: self.cache.clone(),
            ..Default::default()
        })
        .expect("engine cache directory")
    }
}

/// Paper-mode options: relaxed (min+20%) widths, VPR-ish annealing effort.
#[must_use]
pub fn paper_options() -> FlowOptions {
    let mut options = FlowOptions::default();
    options.placer.inner_num = 5.0;
    options
}

/// Quick options: light annealing and a capped router effort — for smoke
/// runs and CI. Widths stay auto-sized (min + 20%), which is what keeps
/// every pair routable.
#[must_use]
pub fn quick_options() -> FlowOptions {
    let mut options = FlowOptions::default();
    options.placer.inner_num = 1.0;
    options.router.max_iterations = 30;
    options
}

/// Runs every pair of a set and returns the metrics.
///
/// # Panics
///
/// Panics if a pair fails to place or route (the calibrated suites never
/// do).
#[must_use]
pub fn run_set(set: BenchmarkSet, config: &RunConfig) -> Vec<PairMetrics> {
    let circuits = set.circuits();
    let mut out = Vec::new();
    for (count, (i, j)) in set.pairs().into_iter().enumerate() {
        if count >= config.max_pairs {
            break;
        }
        let name = format!("{}+{}", circuits[i].name(), circuits[j].name());
        let input = MultiModeInput::new(vec![circuits[i].clone(), circuits[j].clone()])
            .expect("suite circuits are valid");
        let metrics = match run_pair(&input, &config.options, name.clone()) {
            Ok(m) => m,
            Err(e) => {
                // A pair can defeat one of the flows (edge matching can
                // produce unroutable congestion on dissimilar circuits);
                // record the skip and keep the set going.
                eprintln!("  [{}] {name}: SKIPPED ({e})", set.name());
                continue;
            }
        };
        eprintln!(
            "  [{}] {name}: speedup wl {:.2} edge {:.2}, wires wl {:.0}% edge {:.0}%",
            set.name(),
            metrics.speedup_wirelength(),
            metrics.speedup_edge(),
            100.0 * metrics.wire_ratio_wirelength(),
            100.0 * metrics.wire_ratio_edge(),
        );
        out.push(metrics);
    }
    out
}

/// The multi-mode pairings of a set as engine jobs (full `run_pair`
/// comparisons, named `<a>+<b>`).
#[must_use]
pub fn pair_jobs(set: BenchmarkSet, config: &RunConfig) -> Vec<Job> {
    let circuits = set.circuits();
    set.pairs()
        .into_iter()
        .take(config.max_pairs)
        .map(|(i, j)| Job {
            name: format!("{}+{}", circuits[i].name(), circuits[j].name()),
            circuits: vec![circuits[i].clone(), circuits[j].clone()],
            flow: FlowKind::Pair,
            options: config.options,
        })
        .collect()
}

/// Runs every pair of a set through the batch engine (parallel, cached)
/// and returns the metrics plus the engine's execution report (for
/// wall-clock and cache accounting), logging progress like [`run_set`].
///
/// Failed pairs are reported and skipped, matching [`run_set`]'s
/// behaviour on circuits that defeat one of the flows.
#[must_use]
pub fn run_set_engine(
    set: BenchmarkSet,
    config: &RunConfig,
    engine: &Engine,
) -> (Vec<PairMetrics>, mm_engine::BatchReport) {
    let jobs = pair_jobs(set, config);
    let report = engine.run_streamed(jobs, |r| match &r.outcome {
        Ok(JobOutcome::Pair(m)) => {
            eprintln!(
                "  [{}] {}: speedup wl {:.2} edge {:.2}, wires wl {:.0}% edge {:.0}%",
                set.name(),
                r.name,
                m.speedup_wirelength(),
                m.speedup_edge(),
                100.0 * m.wire_ratio_wirelength(),
                100.0 * m.wire_ratio_edge(),
            );
        }
        Ok(_) => {}
        Err(e) => eprintln!("  [{}] {}: SKIPPED ({e})", set.name(), r.name),
    });
    let metrics = report
        .results
        .iter()
        .filter_map(|r| match &r.outcome {
            Ok(JobOutcome::Pair(m)) => Some(m.clone()),
            _ => None,
        })
        .collect();
    (metrics, report)
}

/// Fig. 5 row: speed-up statistics per set.
#[must_use]
pub fn fig5_row(set: BenchmarkSet, metrics: &[PairMetrics]) -> Vec<String> {
    let edge = Stats::of(
        &metrics
            .iter()
            .map(PairMetrics::speedup_edge)
            .collect::<Vec<_>>(),
    );
    let wl = Stats::of(
        &metrics
            .iter()
            .map(PairMetrics::speedup_wirelength)
            .collect::<Vec<_>>(),
    );
    vec![
        set.name().to_string(),
        "1.00x".to_string(),
        format!("{:.2}x [{:.2}..{:.2}]", edge.mean, edge.min, edge.max),
        format!("{:.2}x [{:.2}..{:.2}]", wl.mean, wl.min, wl.max),
    ]
}

/// Fig. 6 rows: LUT/routing contribution for MDR, Diff and DCS(-wl).
#[must_use]
pub fn fig6_rows(set: BenchmarkSet, metrics: &[PairMetrics]) -> Vec<Vec<String>> {
    let mean = |f: &dyn Fn(&PairMetrics) -> (usize, usize)| -> (f64, f64) {
        let n = metrics.len().max(1) as f64;
        let (l, r) = metrics
            .iter()
            .map(f)
            .fold((0usize, 0usize), |(al, ar), (l, r)| (al + l, ar + r));
        (l as f64 / n, r as f64 / n)
    };
    type BitsExtractor = Box<dyn Fn(&PairMetrics) -> (usize, usize)>;
    let scenarios: [(&str, BitsExtractor); 3] = [
        (
            "MDR",
            Box::new(|m: &PairMetrics| (m.mdr.lut_bits, m.mdr.routing_bits)),
        ),
        (
            "Diff",
            Box::new(|m: &PairMetrics| (m.diff.lut_bits, m.diff.routing_bits)),
        ),
        (
            "DCS",
            Box::new(|m: &PairMetrics| (m.dcs_wirelength.lut_bits, m.dcs_wirelength.routing_bits)),
        ),
    ];
    scenarios
        .iter()
        .map(|(label, f)| {
            let (l, r) = mean(&**f);
            let total = l + r;
            vec![
                format!("{}-{}", set.name(), label),
                format!("{l:.0}"),
                format!("{r:.0}"),
                format!("{:.1}%", 100.0 * l / total),
                format!("{:.1}%", 100.0 * r / total),
            ]
        })
        .collect()
}

/// Fig. 7 row: per-mode wire usage relative to MDR.
#[must_use]
pub fn fig7_row(set: BenchmarkSet, metrics: &[PairMetrics]) -> Vec<String> {
    let edge = Stats::of(
        &metrics
            .iter()
            .map(|m| 100.0 * m.wire_ratio_edge())
            .collect::<Vec<_>>(),
    );
    let wl = Stats::of(
        &metrics
            .iter()
            .map(|m| 100.0 * m.wire_ratio_wirelength())
            .collect::<Vec<_>>(),
    );
    vec![
        set.name().to_string(),
        "100%".to_string(),
        format!("{:.0}% [{:.0}..{:.0}]", edge.mean, edge.min, edge.max),
        format!("{:.0}% [{:.0}..{:.0}]", wl.mean, wl.min, wl.max),
    ]
}

/// Table I row: min/avg/max LUT counts of a suite.
#[must_use]
pub fn table1_row(set: BenchmarkSet) -> Vec<String> {
    let sizes: Vec<usize> = set.circuits().iter().map(LutCircuit::lut_count).collect();
    let stats = Stats::of_usize(&sizes);
    vec![
        set.name().to_string(),
        format!("{:.0}", stats.min),
        format!("{:.0}", stats.mean),
        format!("{:.0}", stats.max),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let c = RunConfig::from_args(
            [
                "--quick",
                "--set",
                "fir",
                "--pairs",
                "2",
                "--seed",
                "7",
                "--threads",
                "3",
                "--cache",
                "/tmp/c",
                "--compare-serial",
            ]
            .iter()
            .map(ToString::to_string),
        );
        assert!(c.quick);
        assert_eq!(c.set, Some(BenchmarkSet::Fir));
        assert_eq!(c.max_pairs, 2);
        assert_eq!(c.options.placer.seed, 7);
        assert_eq!(c.sets(), vec![BenchmarkSet::Fir]);
        assert_eq!(c.threads, 3);
        assert_eq!(c.cache, Some(std::path::PathBuf::from("/tmp/c")));
        assert!(c.compare_serial);
    }

    #[test]
    fn pair_jobs_cover_the_pairings() {
        let mut config = RunConfig::from_args(["--quick".to_string()].into_iter());
        config.max_pairs = 2;
        let jobs = pair_jobs(BenchmarkSet::RegExp, &config);
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "regexp0+regexp1");
        assert_eq!(jobs[0].circuits.len(), 2);
        assert!(matches!(jobs[0].flow, FlowKind::Pair));
    }

    #[test]
    fn default_covers_all_sets() {
        let c = RunConfig::from_args(std::iter::empty());
        assert_eq!(c.sets().len(), 3);
        assert!(!c.quick);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown_arguments() {
        let _ = RunConfig::from_args(["--bogus".to_string()].into_iter());
    }

    #[test]
    fn pairings_match_paper() {
        assert_eq!(BenchmarkSet::RegExp.pairs().len(), 10);
        assert_eq!(BenchmarkSet::Fir.pairs().len(), 10);
        assert_eq!(BenchmarkSet::Mcnc.pairs().len(), 10);
    }
}
