//! The paper's future-work items, implemented and measured (§IV-C):
//!
//! * frame-granular reconfiguration ("we expect the speed up of routing
//!   reconfiguration time to be roughly between 4x and 20x");
//! * refined LUT accounting ("our results would even improve if we would
//!   count only the LUT bits that have a different value");
//! * routed timing per mode (wire length as a stand-in for performance).

use mm_bench::{BenchmarkSet, RunConfig};
use mm_bitstream::FrameModel;
use mm_flow::report::render_table;
use mm_flow::{dcs_timing, mdr_timing, DcsFlow, MdrFlow, MultiModeInput};

fn main() {
    let mut config = RunConfig::from_args(std::env::args().skip(1));
    if config.set.is_none() {
        config.set = Some(BenchmarkSet::RegExp);
    }
    if config.max_pairs == usize::MAX {
        config.max_pairs = 4;
    }
    let set = config.sets()[0];
    let circuits = set.circuits();
    let pairs: Vec<(usize, usize)> = set.pairs().into_iter().take(config.max_pairs).collect();

    let mut frame_rows = Vec::new();
    let mut lut_rows = Vec::new();
    let mut timing_rows = Vec::new();
    for &(i, j) in &pairs {
        let name = format!("{}+{}", circuits[i].name(), circuits[j].name());
        let input = MultiModeInput::new(vec![circuits[i].clone(), circuits[j].clone()]).unwrap();
        let dcs = DcsFlow::new(config.options).run(&input).expect("dcs runs");
        let mdr = MdrFlow::new(config.options).run(&input).expect("mdr runs");

        // ---- frames (paper predicts 4x..20x for routing) -----------------
        for frame_bits in [16usize, 64] {
            let frames = FrameModel::new(dcs.model.routing_bits, frame_bits);
            frame_rows.push(vec![
                name.clone(),
                format!("{frame_bits}"),
                format!("{}", frames.total_frames()),
                format!("{}", frames.frames_touched(&dcs.param)),
                format!("{:.1}x", frames.frame_speedup(&dcs.param)),
            ]);
        }

        // ---- refined LUT accounting ----------------------------------------
        let all_lut = dcs.model.lut_bits;
        let param_lut = dcs.tunable.parameterized_lut_bits(input.circuits());
        let standard = dcs.dcs_cost();
        let refined = param_lut + standard.routing_bits;
        let mdr_total = mdr.mdr_cost().total();
        lut_rows.push(vec![
            name.clone(),
            format!("{all_lut}"),
            format!("{param_lut}"),
            format!("{:.2}x", mdr_total as f64 / standard.total() as f64),
            format!("{:.2}x", mdr_total as f64 / refined.max(1) as f64),
        ]);

        // ---- routed timing per mode ------------------------------------------
        let mdr_reports = mdr_timing(&input, &mdr).expect("routed MDR result must analyze");
        let dcs_reports = dcs_timing(&input, &dcs).expect("routed DCS result must analyze");
        for mode in 0..2 {
            let tm = mdr_reports[mode];
            let td = dcs_reports[mode];
            timing_rows.push(vec![
                format!("{name}/m{mode}"),
                format!("{:.0}", tm.critical_path),
                format!("{:.0}", td.critical_path),
                format!("{:.0}%", 100.0 * td.critical_path / tm.critical_path),
            ]);
        }
    }

    println!("\nExtension 1: frame-granular routing reconfiguration (paper: expect 4x-20x)\n");
    print!(
        "{}",
        render_table(
            &["pair", "frame bits", "total frames", "touched", "speed-up"],
            &frame_rows
        )
    );
    println!("\nExtension 2: refined LUT accounting (only differing LUT bits rewritten)\n");
    print!(
        "{}",
        render_table(
            &[
                "pair",
                "all LUT bits",
                "param LUT bits",
                "speed-up std",
                "speed-up refined"
            ],
            &lut_rows
        )
    );
    println!("\nExtension 3: routed critical path per mode (unit wire delay, LUT = 2)\n");
    print!(
        "{}",
        render_table(
            &["mode", "MDR delay", "DCS delay", "DCS vs MDR"],
            &timing_rows
        )
    );
}
