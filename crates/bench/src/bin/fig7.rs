//! Regenerates Fig. 7: number of wires of an individual mode relative to
//! MDR.

use mm_bench::{fig7_row, run_set, RunConfig};
use mm_flow::report::render_table;

fn main() {
    let config = RunConfig::from_args(std::env::args().skip(1));
    let mut rows = Vec::new();
    for set in config.sets() {
        let metrics = run_set(set, &config);
        rows.push(fig7_row(set, &metrics));
    }
    println!("\nFig. 7: Wire usage of an individual mode relative to MDR.");
    println!("(paper: wire-length opt +24% avg, 11-35% RegExp/FIR, up to +45% MCNC;");
    println!(" edge matching sometimes >200%; mean [min..max])\n");
    print!(
        "{}",
        render_table(
            &["set", "MDR (base)", "DCS-Edge matching", "DCS-Wire length"],
            &rows
        )
    );
}
