//! Regenerates Fig. 6: relative contribution of LUTs and routing in the
//! reconfiguration time (RegExp set by default, as in the paper).

use mm_bench::{fig6_rows, run_set, BenchmarkSet, RunConfig};
use mm_flow::report::render_table;

fn main() {
    let mut config = RunConfig::from_args(std::env::args().skip(1));
    if config.set.is_none() {
        config.set = Some(BenchmarkSet::RegExp);
    }
    let mut rows = Vec::new();
    for set in config.sets() {
        let metrics = run_set(set, &config);
        rows.extend(fig6_rows(set, &metrics));
    }
    println!("\nFig. 6: Relative contribution of LUTs and routing in reconf. time.");
    println!("(paper: MDR routing-dominated; Diff cuts routing ~5x; DCS a further ~4x)\n");
    print!(
        "{}",
        render_table(
            &["scenario", "LUT bits", "routing bits", "LUT %", "routing %"],
            &rows
        )
    );
}
