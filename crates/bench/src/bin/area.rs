//! Regenerates the §IV-C area statement: the multi-mode region relative to
//! static side-by-side implementation, and the FIR area relative to the
//! generic filter.

use mm_bench::{run_set, BenchmarkSet, RunConfig};
use mm_flow::report::render_table;
use mm_flow::{PairMetrics, Stats};
use mm_netlist::LutCircuit;

fn main() {
    let config = RunConfig::from_args(std::env::args().skip(1));
    let mut rows = Vec::new();
    for set in config.sets() {
        let metrics = run_set(set, &config);
        let ratios: Vec<f64> = metrics
            .iter()
            .map(|m: &PairMetrics| 100.0 * m.area_vs_static())
            .collect();
        let s = Stats::of(&ratios);
        rows.push(vec![
            set.name().to_string(),
            format!("{:.0}% [{:.0}..{:.0}]", s.mean, s.min, s.max),
        ]);
    }
    println!("\nArea of the multi-mode region relative to static implementation");
    println!("(paper: ~50% for RegExp and MCNC)\n");
    print!("{}", render_table(&["set", "area vs static"], &rows));

    if config.sets().contains(&BenchmarkSet::Fir) {
        let generic = mm_gen::fir_generic_reference(4).lut_count();
        let suite = mm_gen::fir_suite(4);
        let sizes: Vec<usize> = suite.iter().map(LutCircuit::lut_count).collect();
        let max = *sizes.iter().max().expect("nonempty suite");
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        println!("\nAdaptive filtering vs the generic FIR (paper: region = 33% of generic,");
        println!("specialised filter 3x smaller than generic):");
        println!("  generic FIR:              {generic} LUTs");
        println!("  specialised filters:      avg {avg:.0} LUTs (max {max})");
        println!(
            "  region vs generic:        {:.0}%",
            100.0 * (max as f64 * 1.2) / generic as f64
        );
        println!(
            "  specialised vs generic:   {:.1}x smaller",
            generic as f64 / avg
        );
    }
}
