//! Runs the complete evaluation (Table I + Figures 5, 6, 7 + area) in one
//! pass, computing each pair's flows once.

use mm_bench::{fig5_row, fig6_rows, fig7_row, run_set, table1_row, BenchmarkSet, RunConfig};
use mm_flow::report::render_table;
use mm_flow::{PairMetrics, Stats};
use mm_netlist::LutCircuit;
use std::time::Instant;

fn main() {
    let config = RunConfig::from_args(std::env::args().skip(1));
    let t0 = Instant::now();

    println!("== Table I: Size of the LUT circuits used in the experiments ==");
    println!("(paper: RegExp 224/243/261, FIR 235/302/371, MCNC 264/310/404)\n");
    let rows: Vec<Vec<String>> = config.sets().into_iter().map(table1_row).collect();
    print!("{}", render_table(&["set", "min", "avg", "max"], &rows));

    let mut all: Vec<(BenchmarkSet, Vec<PairMetrics>)> = Vec::new();
    for set in config.sets() {
        eprintln!("running {} pairs...", set.name());
        let metrics = run_set(set, &config);
        all.push((set, metrics));
    }

    println!("\n== Fig. 5: Reconfiguration speed up of DCS compared to MDR ==");
    println!("(paper: 4.6x-5.1x; mean [min..max])\n");
    let rows: Vec<Vec<String>> = all.iter().map(|(s, m)| fig5_row(*s, m)).collect();
    print!(
        "{}",
        render_table(&["set", "MDR (base)", "DCS-Edge matching", "DCS-Wire length"], &rows)
    );

    println!("\n== Fig. 6: Relative contribution of LUTs and routing in reconf. time ==");
    println!("(paper, RegExp: MDR routing-heavy; Diff ~5x less routing; DCS ~4x less again)\n");
    let rows: Vec<Vec<String>> = all
        .iter()
        .flat_map(|(s, m)| fig6_rows(*s, m))
        .collect();
    print!(
        "{}",
        render_table(
            &["scenario", "LUT bits", "routing bits", "LUT %", "routing %"],
            &rows
        )
    );

    println!("\n== Fig. 7: Wire usage of an individual mode relative to MDR ==");
    println!("(paper: WL-opt +24% avg [11..35] RegExp/FIR, up to +45% MCNC; edge >2x possible)\n");
    let rows: Vec<Vec<String>> = all.iter().map(|(s, m)| fig7_row(*s, m)).collect();
    print!(
        "{}",
        render_table(&["set", "MDR (base)", "DCS-Edge matching", "DCS-Wire length"], &rows)
    );

    println!("\n== Area (paper §IV-C: ~50% of static for RegExp/MCNC; FIR 33% of generic) ==\n");
    let mut rows = Vec::new();
    for (set, metrics) in &all {
        let ratios: Vec<f64> = metrics.iter().map(|m| 100.0 * m.area_vs_static()).collect();
        let s = Stats::of(&ratios);
        rows.push(vec![
            set.name().to_string(),
            format!("{:.0}% [{:.0}..{:.0}]", s.mean, s.min, s.max),
        ]);
    }
    print!("{}", render_table(&["set", "area vs static"], &rows));
    if all.iter().any(|(s, _)| *s == BenchmarkSet::Fir) {
        let generic = mm_gen::fir_generic_reference(4).lut_count();
        let suite = mm_gen::fir_suite(4);
        let sizes: Vec<usize> = suite.iter().map(LutCircuit::lut_count).collect();
        let max = *sizes.iter().max().expect("nonempty");
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        println!("\nFIR vs generic: region {:.0}% of generic; specialised {:.1}x smaller",
            100.0 * (max as f64 * 1.2) / generic as f64,
            generic as f64 / avg
        );
    }

    eprintln!("\ntotal runtime {:?}", t0.elapsed());
}
