//! Runs the complete evaluation (Table I + Figures 5, 6, 7 + area) in one
//! pass, computing each pair's flows once.
//!
//! Pairs fan out across the `mm-engine` thread pool (`--threads N`,
//! default one per CPU) with optional stage caching (`--cache DIR`); the
//! tail of the run prints the measured parallel wall clock against the
//! summed serial cost of the jobs (and against a measured serial re-run
//! with `--compare-serial`).

use mm_bench::{
    fig5_row, fig6_rows, fig7_row, run_set_engine, table1_row, BenchmarkSet, RunConfig,
};
use mm_flow::report::render_table;
use mm_flow::{PairMetrics, Stats};
use mm_netlist::LutCircuit;
use std::time::{Duration, Instant};

fn main() {
    let config = RunConfig::from_args(std::env::args().skip(1));
    let t0 = Instant::now();

    println!("== Table I: Size of the LUT circuits used in the experiments ==");
    println!("(paper: RegExp 224/243/261, FIR 235/302/371, MCNC 264/310/404)\n");
    let rows: Vec<Vec<String>> = config.sets().into_iter().map(table1_row).collect();
    print!("{}", render_table(&["set", "min", "avg", "max"], &rows));

    let engine = config.engine();
    let mut all: Vec<(BenchmarkSet, Vec<PairMetrics>)> = Vec::new();
    let mut serial_cost = Duration::ZERO;
    let mut cached_results = 0usize;
    let parallel_t0 = Instant::now();
    for set in config.sets() {
        eprintln!(
            "running {} pairs on {} threads...",
            set.name(),
            engine.threads()
        );
        let set_t0 = Instant::now();
        let (metrics, report) = run_set_engine(set, &config, &engine);
        serial_cost += report.serial_estimate();
        cached_results += report.stats.results_from_cache;
        eprintln!(
            "  [{}] {} pairs in {:?} ({} results, {} placements from cache)",
            set.name(),
            metrics.len(),
            set_t0.elapsed(),
            report.stats.results_from_cache,
            report.stats.placements_from_cache,
        );
        all.push((set, metrics));
    }
    let parallel_wall = parallel_t0.elapsed();

    println!("\n== Fig. 5: Reconfiguration speed up of DCS compared to MDR ==");
    println!("(paper: 4.6x-5.1x; mean [min..max])\n");
    let rows: Vec<Vec<String>> = all.iter().map(|(s, m)| fig5_row(*s, m)).collect();
    print!(
        "{}",
        render_table(
            &["set", "MDR (base)", "DCS-Edge matching", "DCS-Wire length"],
            &rows
        )
    );

    println!("\n== Fig. 6: Relative contribution of LUTs and routing in reconf. time ==");
    println!("(paper, RegExp: MDR routing-heavy; Diff ~5x less routing; DCS ~4x less again)\n");
    let rows: Vec<Vec<String>> = all.iter().flat_map(|(s, m)| fig6_rows(*s, m)).collect();
    print!(
        "{}",
        render_table(
            &["scenario", "LUT bits", "routing bits", "LUT %", "routing %"],
            &rows
        )
    );

    println!("\n== Fig. 7: Wire usage of an individual mode relative to MDR ==");
    println!("(paper: WL-opt +24% avg [11..35] RegExp/FIR, up to +45% MCNC; edge >2x possible)\n");
    let rows: Vec<Vec<String>> = all.iter().map(|(s, m)| fig7_row(*s, m)).collect();
    print!(
        "{}",
        render_table(
            &["set", "MDR (base)", "DCS-Edge matching", "DCS-Wire length"],
            &rows
        )
    );

    println!("\n== Area (paper §IV-C: ~50% of static for RegExp/MCNC; FIR 33% of generic) ==\n");
    let mut rows = Vec::new();
    for (set, metrics) in &all {
        let ratios: Vec<f64> = metrics.iter().map(|m| 100.0 * m.area_vs_static()).collect();
        let s = Stats::of(&ratios);
        rows.push(vec![
            set.name().to_string(),
            format!("{:.0}% [{:.0}..{:.0}]", s.mean, s.min, s.max),
        ]);
    }
    print!("{}", render_table(&["set", "area vs static"], &rows));
    if all.iter().any(|(s, _)| *s == BenchmarkSet::Fir) {
        let generic = mm_gen::fir_generic_reference(4).lut_count();
        let suite = mm_gen::fir_suite(4);
        let sizes: Vec<usize> = suite.iter().map(LutCircuit::lut_count).collect();
        let max = *sizes.iter().max().expect("nonempty");
        let avg = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        println!(
            "\nFIR vs generic: region {:.0}% of generic; specialised {:.1}x smaller",
            100.0 * (max as f64 * 1.2) / generic as f64,
            generic as f64 / avg
        );
    }

    // ---- serial vs parallel wall clock --------------------------------------
    eprintln!();
    eprintln!(
        "suite execution: parallel wall {:?} on {} threads vs serial cost {:?} ({:.2}x)",
        parallel_wall,
        engine.threads(),
        serial_cost,
        serial_cost.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9),
    );
    if config.compare_serial {
        eprintln!("re-running the whole suite serially for a measured comparison...");
        let serial_engine = mm_engine::Engine::new(mm_engine::EngineOptions {
            threads: 1,
            cache_dir: None,
            ..Default::default()
        })
        .expect("serial engine");
        let st0 = Instant::now();
        for set in config.sets() {
            let jobs = mm_bench::pair_jobs(set, &config);
            let _ = serial_engine.run(jobs);
        }
        let measured = st0.elapsed();
        // The serial reference is uncached; if the parallel pass was
        // cache-warmed, the ratio measures cache warmth, not threads —
        // say so rather than reporting a bogus thread speed-up.
        eprintln!(
            "measured serial wall {measured:?} vs parallel wall {parallel_wall:?} ({:.2}x{})",
            measured.as_secs_f64() / parallel_wall.as_secs_f64().max(1e-9),
            if cached_results > 0 {
                format!("; NOTE: parallel pass served {cached_results} results from cache")
            } else {
                String::new()
            },
        );
    }

    eprintln!("\ntotal runtime {:?}", t0.elapsed());
}
