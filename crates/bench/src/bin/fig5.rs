//! Regenerates Fig. 5: reconfiguration speed-up of DCS compared to MDR.

use mm_bench::{fig5_row, run_set, RunConfig};
use mm_flow::report::render_table;

fn main() {
    let config = RunConfig::from_args(std::env::args().skip(1));
    let mut rows = Vec::new();
    for set in config.sets() {
        let metrics = run_set(set, &config);
        rows.push(fig5_row(set, &metrics));
    }
    println!("\nFig. 5: Reconfiguration speed up of DCS compared to MDR.");
    println!("(paper: 4.6x-5.1x for both DCS variants; mean [min..max])\n");
    print!(
        "{}",
        render_table(
            &["set", "MDR (base)", "DCS-Edge matching", "DCS-Wire length"],
            &rows
        )
    );
}
