//! Regenerates Table I: size of the LUT circuits used in the experiments.

use mm_bench::{table1_row, RunConfig};
use mm_flow::report::render_table;

fn main() {
    let config = RunConfig::from_args(std::env::args().skip(1));
    let rows: Vec<Vec<String>> = config.sets().into_iter().map(table1_row).collect();
    println!("Table I: Size of the LUT circuits used in the experiments.");
    println!("(paper: RegExp 224/243/261, FIR 235/302/371, MCNC 264/310/404)\n");
    print!("{}", render_table(&["set", "min", "avg", "max"], &rows));
}
