//! Ablation studies beyond the paper:
//!
//! * X1 — hybrid combined-placement cost (WL + lambda*connections);
//! * X2 — sharing-aware routing on/off (TRoute-style switch reuse).
//!
//! Run on the first RegExp pairs by default (`--set`/`--pairs` as usual).
//! Every variant × pair cell is one `mm-engine` job, so the whole sweep
//! fans out across the thread pool. With `--cache DIR`, X2's router
//! variants can reuse X1's wire-length placements via the stage cache —
//! opportunistic on a cold cache (concurrent cells may race past each
//! other's writes), guaranteed on a warm re-run.

use mm_bench::{BenchmarkSet, RunConfig};
use mm_engine::{FlowKind, Job, JobOutcome};
use mm_flow::report::render_table;
use mm_place::CostKind;
use std::time::Instant;

fn main() {
    let mut config = RunConfig::from_args(std::env::args().skip(1));
    if config.set.is_none() {
        config.set = Some(BenchmarkSet::RegExp);
    }
    if config.max_pairs == usize::MAX {
        config.max_pairs = 3;
    }
    let set = config.sets()[0];
    let circuits = set.circuits();
    let pairs: Vec<(usize, usize)> = set.pairs().into_iter().take(config.max_pairs).collect();
    let engine = config.engine();

    // ---- X1: placement cost sweep -----------------------------------------
    let variants: Vec<(String, CostKind)> = vec![
        ("wirelength".into(), CostKind::WireLength),
        ("edge-matching".into(), CostKind::EdgeMatching),
        (
            "hybrid l=0.5".into(),
            CostKind::Hybrid {
                wl_weight: 1.0,
                edge_weight: 0.5,
            },
        ),
        (
            "hybrid l=2".into(),
            CostKind::Hybrid {
                wl_weight: 1.0,
                edge_weight: 2.0,
            },
        ),
    ];
    let mut x1_jobs = Vec::new();
    for (label, cost) in &variants {
        for &(i, j) in &pairs {
            x1_jobs.push(Job {
                name: format!("{label}/{}+{}", circuits[i].name(), circuits[j].name()),
                circuits: vec![circuits[i].clone(), circuits[j].clone()],
                flow: FlowKind::Dcs(*cost),
                options: config.options,
            });
        }
    }

    // ---- X2: sharing-aware routing on/off -----------------------------------
    let router_variants = [("sharing on", 0.35, 0.2), ("sharing off", 0.0, 0.0)];
    let mut x2_jobs = Vec::new();
    for (label, discount, penalty) in router_variants {
        let mut options = config.options;
        options.router.share_discount = discount;
        options.router.param_penalty = penalty;
        for &(i, j) in &pairs {
            x2_jobs.push(Job {
                name: format!("{label}/{}+{}", circuits[i].name(), circuits[j].name()),
                circuits: vec![circuits[i].clone(), circuits[j].clone()],
                flow: FlowKind::Dcs(CostKind::WireLength),
                options,
            });
        }
    }

    // One batch: the engine interleaves every cell of both sweeps.
    let x1_count = x1_jobs.len();
    let mut jobs = x1_jobs;
    jobs.append(&mut x2_jobs);
    eprintln!(
        "ablation: {} jobs ({} X1 + {} X2) on {} threads",
        jobs.len(),
        x1_count,
        jobs.len() - x1_count,
        engine.threads()
    );
    let t0 = Instant::now();
    let report = engine.run_streamed(jobs, |r| {
        if let Err(e) = &r.outcome {
            eprintln!("  {}: FAILED ({e})", r.name);
        }
    });
    let wall = t0.elapsed();

    let dcs = |index: usize| -> &mm_engine::DcsSummary {
        match &report.results[index].outcome {
            Ok(JobOutcome::Dcs(s)) => s,
            Ok(_) => unreachable!("ablation only submits DCS jobs"),
            Err(e) => panic!("{} failed: {e}", report.results[index].name),
        }
    };

    println!("\nAblation X1: combined-placement cost function (DCS variants)\n");
    let mut rows = Vec::new();
    for (v, (label, _)) in variants.iter().enumerate() {
        let cells: Vec<&mm_engine::DcsSummary> =
            (0..pairs.len()).map(|p| dcs(v * pairs.len() + p)).collect();
        let param: usize = cells.iter().map(|s| s.param_bits).sum();
        let merged: usize = cells.iter().map(|s| s.tunable.merged_connections).sum();
        let conns: usize = cells.iter().map(|s| s.tunable.connections).sum();
        let wires: usize = cells.iter().map(|s| s.wires.iter().sum::<usize>()).sum();
        rows.push(vec![
            label.clone(),
            format!("{}", param / pairs.len()),
            format!("{}/{}", merged / pairs.len(), conns / pairs.len()),
            format!("{}", wires / (2 * pairs.len())),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["placement cost", "param bits", "merged/conns", "wires/mode"],
            &rows
        )
    );

    println!("\nAblation X2: TRoute sharing-aware routing cost (wire-length placement)\n");
    let mut rows = Vec::new();
    for (v, (label, _, _)) in router_variants.iter().enumerate() {
        let cells: Vec<&mm_engine::DcsSummary> = (0..pairs.len())
            .map(|p| dcs(x1_count + v * pairs.len() + p))
            .collect();
        let param: usize = cells.iter().map(|s| s.param_bits).sum();
        let static_on: usize = cells.iter().map(|s| s.static_on_bits).sum();
        rows.push(vec![
            label.to_string(),
            format!("{}", param / pairs.len()),
            format!("{}", static_on / pairs.len()),
        ]);
    }
    print!(
        "{}",
        render_table(&["router", "param bits", "static-on bits"], &rows)
    );

    eprintln!(
        "\nsweep: parallel wall {:?} on {} threads vs serial cost {:?} ({:.2}x); \
         {} placements from cache",
        wall,
        engine.threads(),
        report.serial_estimate(),
        report.serial_estimate().as_secs_f64() / wall.as_secs_f64().max(1e-9),
        report.stats.placements_from_cache,
    );
}
