//! Ablation studies beyond the paper:
//!
//! * X1 — hybrid combined-placement cost (WL + lambda*connections);
//! * X2 — sharing-aware routing on/off (TRoute-style switch reuse).
//!
//! Run on the first RegExp pair by default (`--set`/`--pairs` as usual).

use mm_bench::{BenchmarkSet, RunConfig};
use mm_flow::report::render_table;
use mm_flow::{DcsFlow, MultiModeInput};
use mm_place::CostKind;

fn main() {
    let mut config = RunConfig::from_args(std::env::args().skip(1));
    if config.set.is_none() {
        config.set = Some(BenchmarkSet::RegExp);
    }
    if config.max_pairs == usize::MAX {
        config.max_pairs = 3;
    }
    let set = config.sets()[0];
    let circuits = set.circuits();
    let pairs: Vec<(usize, usize)> = set
        .pairs()
        .into_iter()
        .take(config.max_pairs)
        .collect();

    // ---- X1: placement cost sweep -----------------------------------------
    println!("\nAblation X1: combined-placement cost function (DCS variants)\n");
    let variants: Vec<(String, CostKind)> = vec![
        ("wirelength".into(), CostKind::WireLength),
        ("edge-matching".into(), CostKind::EdgeMatching),
        (
            "hybrid l=0.5".into(),
            CostKind::Hybrid {
                wl_weight: 1.0,
                edge_weight: 0.5,
            },
        ),
        (
            "hybrid l=2".into(),
            CostKind::Hybrid {
                wl_weight: 1.0,
                edge_weight: 2.0,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, cost) in &variants {
        let mut param = 0usize;
        let mut merged = 0usize;
        let mut conns = 0usize;
        let mut wires = 0usize;
        for &(i, j) in &pairs {
            let input =
                MultiModeInput::new(vec![circuits[i].clone(), circuits[j].clone()]).unwrap();
            let r = DcsFlow::new(config.options)
                .with_cost(*cost)
                .run(&input)
                .expect("flow runs");
            param += r.parameterized_routing_bits();
            let stats = r.tunable.stats();
            merged += stats.merged_connections;
            conns += stats.connections;
            wires += (0..2).map(|m| r.wires_in_mode(m)).sum::<usize>();
        }
        rows.push(vec![
            label.clone(),
            format!("{}", param / pairs.len()),
            format!("{}/{}", merged / pairs.len(), conns / pairs.len()),
            format!("{}", wires / (2 * pairs.len())),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["placement cost", "param bits", "merged/conns", "wires/mode"],
            &rows
        )
    );

    // ---- X2: sharing-aware routing on/off -----------------------------------
    println!("\nAblation X2: TRoute sharing-aware routing cost (wire-length placement)\n");
    let mut rows = Vec::new();
    for (label, discount, penalty) in
        [("sharing on", 0.35, 0.2), ("sharing off", 0.0, 0.0)]
    {
        let mut options = config.options;
        options.router.share_discount = discount;
        options.router.param_penalty = penalty;
        let mut param = 0usize;
        let mut static_on = 0usize;
        for &(i, j) in &pairs {
            let input =
                MultiModeInput::new(vec![circuits[i].clone(), circuits[j].clone()]).unwrap();
            let r = DcsFlow::new(options).run(&input).expect("flow runs");
            param += r.parameterized_routing_bits();
            static_on += r.param.static_on_bits();
        }
        rows.push(vec![
            label.to_string(),
            format!("{}", param / pairs.len()),
            format!("{}", static_on / pairs.len()),
        ]);
    }
    print!(
        "{}",
        render_table(&["router", "param bits", "static-on bits"], &rows)
    );
}
