//! Measured performance harness behind `mmflow bench`.
//!
//! Two reproducible, seeded benchmarks with a JSON report each, so every
//! PR's speedup lands in `BENCH_router.json` / `BENCH_flow.json` at the
//! repo root instead of anecdotes:
//!
//! * [`router_perf`] — the PathFinder hot path. *Baseline* is the naive
//!   reference formulation with bounding boxes disabled
//!   (`mm_route::reference`, exactly the pre-optimization router);
//!   *optimized* is [`Router`] with its scratch arena and default
//!   bounding boxes, reused across repetitions the way the flows reuse
//!   it. The report carries both wall-clocks, routes/second and the
//!   speedup, plus a parity check (optimized == reference under
//!   identical options).
//! * [`placer_perf`] — the simulated-annealing inner loop. *Baseline* is
//!   the annealer on the naive hash-map cost model
//!   (`mm_place::reference`); *optimized* is the flat, allocation-free
//!   [`mm_place::CostModel`]. The two anneal byte-identical placements
//!   (checked and reported), so the moves/second ratio is a pure
//!   data-structure speedup. The headline run uses the `Hybrid` cost
//!   (both the wire-length and the pair-count halves of the model are
//!   live); a secondary wire-length-only measurement rides along in the
//!   same report.
//! * [`flow_perf`] — the batch engine. A cold run against an empty stage
//!   cache, a warm re-run (everything from cache), a `pair` job that
//!   shares the placement stages plain `dcs`/`mdr` jobs cached — the
//!   cross-job stage-sharing number — an `nmodes` sub-benchmark:
//!   3-mode combined-comparison jobs cold/warm, parity-gated on
//!   `run_combined_n` over two modes reproducing `run_pair` exactly —
//!   and a `stagegraph` cache-replay sweep: re-running a batch with
//!   only router options changed must leave every placement node warm
//!   (structural fingerprints exclude downstream options), and the
//!   replayed records must match a cacheless run byte for byte.
//! * [`serve_perf`] — the long-running service. A real `mm-serve` server
//!   on a Unix socket, a cold batch submitted over the wire and a warm
//!   re-submission against the shared stage cache: end-to-end jobs/sec
//!   including protocol framing, plus a byte-parity check of the socket
//!   stream against a direct engine run.
//! * [`sta_perf`] — the timing subsystem. *Baseline* is the from-scratch
//!   reference STA (`mm_sta::reference`) re-analyzing the whole circuit
//!   per delay change; *optimized* is the incremental [`mm_sta::Sta`]
//!   propagating only the affected cones, parity-gated bit-for-bit on
//!   the final state. Plus the headline flow comparison: the
//!   `timing:<alpha>` DCS cost vs the wirelength-only baseline on a
//!   deep-logic multi-mode problem, reporting the critical-path win and
//!   the wirelength price paid for it.
//!
//! All have a `--smoke` sized variant for CI.

use mm_arch::{Architecture, RoutingGraph};
use mm_boolexpr::ModeSet;
use mm_engine::json::ObjBuilder;
use mm_engine::{Engine, EngineOptions, FlowKind, Job};
use mm_flow::stage::CacheOutcome;
use mm_flow::FlowOptions;
use mm_netlist::LutCircuit;
use mm_place::{place_combined, place_combined_reference, CostKind, PlacerOptions};
use mm_route::reference::route_reference;
use mm_route::{RouteNet, RouteSink, Router, RouterOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Benchmark sizing.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// Tiny workload for CI smoke runs.
    pub smoke: bool,
    /// Timed repetitions per measurement.
    pub reps: usize,
    /// Worker threads for the flow/serve workloads (`0` = one per CPU).
    /// Whatever the engine actually resolves is recorded in the reports.
    pub threads: usize,
}

impl PerfConfig {
    /// The default configuration (`smoke` scales the workload down).
    #[must_use]
    pub fn new(smoke: bool) -> Self {
        Self {
            smoke,
            reps: if smoke { 3 } else { 10 },
            threads: 0,
        }
    }
}

/// A seeded multi-mode routing workload: fabric plus nets.
///
/// Deterministic for a given `config.smoke`, so baseline and optimized
/// runs route exactly the same problem.
#[must_use]
pub fn router_workload(config: &PerfConfig) -> (RoutingGraph, Vec<RouteNet>, RouterOptions) {
    let (grid, width, net_count) = if config.smoke {
        (8usize, 8usize, 24usize)
    } else {
        (22, 8, 160)
    };
    let modes = 2usize;
    let rrg = RoutingGraph::build(&Architecture::new(4, grid, width));
    let mut rng = StdRng::seed_from_u64(0xbe7c);
    // Each net needs its own driver site (a SOURCE has capacity 1):
    // deal the logic sites out in shuffled order.
    let mut sources: Vec<mm_arch::Site> = (1..=grid)
        .flat_map(|x| (1..=grid).map(move |y| mm_arch::Site::new(x as u16, y as u16, 0)))
        .collect();
    for i in (1..sources.len()).rev() {
        sources.swap(i, rng.gen_range(0..=i));
    }
    assert!(net_count <= sources.len(), "one driver site per net");
    let mut nets = Vec::with_capacity(net_count);
    for (i, &driver) in sources.iter().take(net_count).enumerate() {
        let site = |rng: &mut StdRng| {
            mm_arch::Site::new(
                rng.gen_range(1..=grid) as u16,
                rng.gen_range(1..=grid) as u16,
                0,
            )
        };
        let source = rrg.logic_source(driver);
        let sink_count = rng.gen_range(1..=3usize);
        let sinks = (0..sink_count)
            .map(|_| {
                let mut act = ModeSet::single(rng.gen_range(0..modes));
                if rng.gen_bool(0.25) {
                    act.insert(rng.gen_range(0..modes));
                }
                RouteSink {
                    node: rrg.logic_sink(site(&mut rng)),
                    activation: act,
                }
            })
            .collect();
        nets.push(RouteNet {
            name: format!("n{i}"),
            source,
            sinks,
        });
    }
    (rrg, nets, RouterOptions::for_modes(modes))
}

/// A seeded high-fanout (broadcast-shaped) routing workload: one hub
/// net with `fanout` sinks dealt out across the whole fabric, plus
/// `fanout / 4` single-sink background nets for congestion pressure.
///
/// Deterministic per `(grid, width, fanout)`, so the steiner-off and
/// steiner-on measurements route exactly the same problem.
#[must_use]
pub fn high_fanout_workload(
    grid: usize,
    width: usize,
    fanout: usize,
) -> (RoutingGraph, Vec<RouteNet>) {
    let rrg = RoutingGraph::build(&Architecture::new(4, grid, width));
    let mut rng = StdRng::seed_from_u64(0xfa40 ^ fanout as u64);
    let mut sites: Vec<mm_arch::Site> = (1..=grid)
        .flat_map(|x| (1..=grid).map(move |y| mm_arch::Site::new(x as u16, y as u16, 0)))
        .collect();
    for i in (1..sites.len()).rev() {
        sites.swap(i, rng.gen_range(0..=i));
    }
    let background = fanout / 4;
    assert!(
        sites.len() > fanout + background,
        "fabric too small for fanout {fanout}"
    );
    let all = ModeSet::of(&[0]);
    let sinks = sites[1..=fanout]
        .iter()
        .map(|&s| RouteSink {
            node: rrg.logic_sink(s),
            activation: all,
        })
        .collect();
    let mut nets = vec![RouteNet {
        name: "hub".into(),
        source: rrg.logic_source(sites[0]),
        sinks,
    }];
    let rest = &sites[fanout + 1..];
    for (i, &driver) in rest.iter().take(background).enumerate() {
        let target = rest[(i * 7 + 3) % rest.len()];
        nets.push(RouteNet {
            name: format!("bg{i}"),
            source: rrg.logic_source(driver),
            sinks: vec![RouteSink {
                node: rrg.logic_sink(target),
                activation: all,
            }],
        });
    }
    (rrg, nets)
}

/// One measured high-fanout comparison: the broadcast workload routed
/// with the Steiner decomposition off vs on, both parity-gated against
/// the naive reference under identical options.
#[derive(Debug, Clone)]
pub struct HighFanoutRun {
    /// Sinks on the hub net.
    pub fanout: usize,
    /// Nets in the workload (hub + background).
    pub nets: usize,
    /// The `steiner_fanout` threshold used for the "on" measurement.
    pub steiner_fanout: usize,
    /// Best-of-reps wall-clock with the decomposition off, milliseconds.
    pub off_ms: f64,
    /// Best-of-reps wall-clock with the decomposition on, milliseconds.
    pub on_ms: f64,
    /// off / on wall-clock.
    pub speedup: f64,
    /// Total routed tree nodes with the decomposition off.
    pub off_wirelength: usize,
    /// Total routed tree nodes with the decomposition on.
    pub on_wirelength: usize,
    /// on / off wirelength.
    pub wirelength_ratio: f64,
    /// Both gates held: optimized == reference with Steiner off AND
    /// with Steiner on.
    pub parity_ok: bool,
    /// Both configurations routed successfully.
    pub routed: bool,
}

impl HighFanoutRun {
    fn to_value(&self) -> mm_engine::json::Value {
        ObjBuilder::new()
            .field("fanout", self.fanout)
            .field("nets", self.nets)
            .field("steiner_fanout", self.steiner_fanout)
            .field("off_ms", round2(self.off_ms))
            .field("on_ms", round2(self.on_ms))
            .field("speedup", round2(self.speedup))
            .field("off_wirelength", self.off_wirelength)
            .field("on_wirelength", self.on_wirelength)
            .field("wirelength_ratio", round2(self.wirelength_ratio))
            .field("parity_ok", self.parity_ok)
            .field("routed", self.routed)
            .build()
    }
}

/// The router benchmark report.
#[derive(Debug, Clone)]
pub struct RouterPerf {
    /// Fabric side length.
    pub grid: usize,
    /// Channel width.
    pub width: usize,
    /// Nets in the workload.
    pub nets: usize,
    /// Timed repetitions.
    pub reps: usize,
    /// Wall-clock of one full `route()` with the pre-optimization
    /// router (naive reference, no bounding boxes), milliseconds.
    pub baseline_ms: f64,
    /// Wall-clock with the optimized router (scratch arena + bounding
    /// boxes, reused across calls), milliseconds.
    pub optimized_ms: f64,
    /// Optimized router with bounding boxes disabled — isolates the
    /// arena/data-structure contribution, milliseconds.
    pub optimized_no_bbox_ms: f64,
    /// Full routes per second, baseline.
    pub baseline_ops_per_sec: f64,
    /// Full routes per second, optimized.
    pub optimized_ops_per_sec: f64,
    /// baseline / optimized wall-clock.
    pub speedup: f64,
    /// Optimized and reference produced byte-identical routings under
    /// identical options (trees, iteration count).
    pub parity_ok: bool,
    /// The workload routed successfully.
    pub routed: bool,
    /// The high-fanout sweep: Steiner decomposition off vs on per
    /// fanout, each parity-gated against the reference.
    pub high_fanout: Vec<HighFanoutRun>,
}

impl RouterPerf {
    /// The `BENCH_router.json` payload.
    #[must_use]
    pub fn to_json(&self) -> String {
        ObjBuilder::new()
            .field("bench", "router")
            .field(
                "workload",
                ObjBuilder::new()
                    .field("grid", self.grid)
                    .field("channel_width", self.width)
                    .field("nets", self.nets)
                    .field("reps", self.reps)
                    .build(),
            )
            .field("baseline_ms", round2(self.baseline_ms))
            .field("optimized_ms", round2(self.optimized_ms))
            .field("optimized_no_bbox_ms", round2(self.optimized_no_bbox_ms))
            .field("baseline_ops_per_sec", round2(self.baseline_ops_per_sec))
            .field("optimized_ops_per_sec", round2(self.optimized_ops_per_sec))
            .field("speedup", round2(self.speedup))
            .field("parity_ok", self.parity_ok)
            .field("routed", self.routed)
            .field(
                "high_fanout",
                self.high_fanout
                    .iter()
                    .map(HighFanoutRun::to_value)
                    .collect::<Vec<_>>(),
            )
            .build()
            .to_json()
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

fn routings_identical(a: &mm_route::Routing, b: &mm_route::Routing) -> bool {
    a.iterations == b.iterations
        && a.success == b.success
        && a.nets.len() == b.nets.len()
        && a.nets.iter().zip(&b.nets).all(|(x, y)| {
            x.sink_pos == y.sink_pos
                && x.tree.len() == y.tree.len()
                && x.tree.iter().zip(&y.tree).all(|(s, t)| {
                    s.node == t.node
                        && s.parent == t.parent
                        && s.switch == t.switch
                        && s.activation == t.activation
                })
        })
}

/// Runs the router benchmark: pre-optimization baseline vs the scratch-
/// arena + bounding-box hot path on the same seeded workload.
#[must_use]
pub fn router_perf(config: &PerfConfig) -> RouterPerf {
    let (rrg, nets, options) = router_workload(config);
    let reps = config.reps.max(1);

    // Parity sanity: optimized == reference under identical options.
    let optimized_result = Router::new(&rrg, options).route(&nets);
    let reference_result = route_reference(&rrg, options, &nets);
    let parity_ok = routings_identical(&optimized_result, &reference_result);

    // Baseline: the pre-optimization router — naive data structures,
    // full-fabric exploration, wholesale tear-down of congested nets,
    // fresh allocations per net and per run.
    let baseline_options = options.without_bbox().with_full_reroute();
    let t0 = Instant::now();
    for _ in 0..reps {
        let r = route_reference(&rrg, baseline_options, &nets);
        std::hint::black_box(r.success);
    }
    let baseline_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

    // Optimized: one router reused across runs, the way the flows and
    // the width search reuse it — zero per-net allocations in steady
    // state.
    let mut router = Router::new(&rrg, options);
    let _ = router.route(&nets); // warm the arena
    let t0 = Instant::now();
    for _ in 0..reps {
        let r = router.route(&nets);
        std::hint::black_box(r.success);
    }
    let optimized_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

    // Decomposition: the arena without bounding boxes.
    let mut router_nb = Router::new(&rrg, baseline_options);
    let _ = router_nb.route(&nets);
    let t0 = Instant::now();
    for _ in 0..reps {
        let r = router_nb.route(&nets);
        std::hint::black_box(r.success);
    }
    let optimized_no_bbox_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

    let (grid, width) = {
        // Recover the workload shape for the report.
        if config.smoke {
            (8, 8)
        } else {
            (22, 8)
        }
    };
    let fanouts: &[usize] = if config.smoke {
        &[32, 64]
    } else {
        &[32, 64, 128]
    };
    // The high-fanout comparison keeps the full-size grid even in smoke
    // mode (milliseconds per run): on a toy fabric the hub's sinks tile
    // the whole grid, the "local" Steiner boxes degenerate into the net
    // box, and the measured ratio says nothing about the decomposition.
    let hf_grid = 22;
    let high_fanout = fanouts
        .iter()
        .map(|&f| high_fanout_run(hf_grid, width, f, reps))
        .collect();
    RouterPerf {
        grid,
        width,
        nets: nets.len(),
        reps,
        baseline_ms,
        optimized_ms,
        optimized_no_bbox_ms,
        baseline_ops_per_sec: 1000.0 / baseline_ms.max(1e-9),
        optimized_ops_per_sec: 1000.0 / optimized_ms.max(1e-9),
        speedup: baseline_ms / optimized_ms.max(1e-9),
        parity_ok,
        routed: optimized_result.success,
        high_fanout,
    }
}

/// Measures one high-fanout comparison: the same broadcast workload
/// routed with the Steiner decomposition off and on. Wall-clocks are
/// best-of-reps (the minimum is the least noisy location estimate for
/// a CI-gated ratio); both configurations are parity-checked against
/// the naive reference before timing.
fn high_fanout_run(grid: usize, width: usize, fanout: usize, reps: usize) -> HighFanoutRun {
    /// Any net at or above this sink count routes along the Steiner
    /// topology in the "on" configuration — between the background
    /// fanout (1) and the smallest hub fanout benched (32).
    const STEINER_THRESHOLD: usize = 16;
    let (rrg, nets) = high_fanout_workload(grid, width, fanout);
    let options_off = RouterOptions::default();
    let options_on = options_off.with_steiner(STEINER_THRESHOLD);

    let off_result = Router::new(&rrg, options_off).route(&nets);
    let on_result = Router::new(&rrg, options_on).route(&nets);
    let parity_ok = routings_identical(&off_result, &route_reference(&rrg, options_off, &nets))
        && routings_identical(&on_result, &route_reference(&rrg, options_on, &nets));

    let wirelength = |r: &mm_route::Routing| r.nets.iter().map(|n| n.tree.len()).sum::<usize>();
    let best_of = |options: RouterOptions| {
        let mut router = Router::new(&rrg, options);
        let _ = router.route(&nets); // warm the arena
        (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                let r = router.route(&nets);
                std::hint::black_box(r.success);
                t0.elapsed().as_secs_f64() * 1000.0
            })
            .fold(f64::INFINITY, f64::min)
    };
    let off_ms = best_of(options_off);
    let on_ms = best_of(options_on);
    let (off_wl, on_wl) = (wirelength(&off_result), wirelength(&on_result));
    HighFanoutRun {
        fanout,
        nets: nets.len(),
        steiner_fanout: STEINER_THRESHOLD,
        off_ms,
        on_ms,
        speedup: off_ms / on_ms.max(1e-9),
        off_wirelength: off_wl,
        on_wirelength: on_wl,
        wirelength_ratio: on_wl as f64 / off_wl.max(1) as f64,
        parity_ok,
        routed: off_result.success && on_result.success,
    }
}

/// A seeded multi-mode combined-placement workload: mode circuits, the
/// fabric, and the annealer options (the `Hybrid` cost, so both the
/// wire-length and the pair-count halves of the model are exercised).
///
/// Deterministic for a given `config.smoke`, so the optimized and naive
/// models anneal exactly the same problem (and, being bit-identical,
/// exactly the same move sequence).
#[must_use]
pub fn placer_workload(config: &PerfConfig) -> (Vec<LutCircuit>, Architecture, PlacerOptions) {
    let (luts, grid) = if config.smoke { (26, 7) } else { (150, 15) };
    let circuits = vec![
        random_circuit("m0", 6, luts, 0x91ace ^ 1),
        random_circuit("m1", 6, luts + 4, 0x91ace ^ 2),
    ];
    let options = PlacerOptions {
        cost: CostKind::Hybrid {
            wl_weight: 1.0,
            edge_weight: 2.0,
        },
        inner_num: 1.0,
        seed: 0xbe7c,
        max_temperatures: if config.smoke { 24 } else { 80 },
    };
    (circuits, Architecture::new(4, grid, 8), options)
}

/// One measured annealer comparison (a cost kind on the shared workload).
#[derive(Debug, Clone)]
pub struct PlaceRun {
    /// Fingerprint of the cost kind annealed.
    pub cost: String,
    /// Annealer swaps attempted per run (identical on both models).
    pub moves: usize,
    /// Wall-clock of one combined placement on the naive hash-map model,
    /// milliseconds.
    pub baseline_ms: f64,
    /// Wall-clock on the flat allocation-free model, milliseconds.
    pub optimized_ms: f64,
    /// Annealer moves per second, baseline.
    pub baseline_moves_per_sec: f64,
    /// Annealer moves per second, optimized.
    pub optimized_moves_per_sec: f64,
    /// baseline / optimized wall-clock.
    pub speedup: f64,
    /// The two models produced byte-identical placements and statistics.
    pub parity_ok: bool,
}

impl PlaceRun {
    fn json(&self) -> mm_engine::json::Value {
        ObjBuilder::new()
            .field("cost", self.cost.clone())
            .field("moves_per_run", self.moves)
            .field("baseline_ms", round2(self.baseline_ms))
            .field("optimized_ms", round2(self.optimized_ms))
            .field(
                "baseline_moves_per_sec",
                round2(self.baseline_moves_per_sec),
            )
            .field(
                "optimized_moves_per_sec",
                round2(self.optimized_moves_per_sec),
            )
            .field("speedup", round2(self.speedup))
            .field("parity_ok", self.parity_ok)
            .build()
    }
}

/// The placer benchmark report: the headline `Hybrid`-cost run (both
/// model halves live) plus a wire-length-only run on the same workload.
#[derive(Debug, Clone)]
pub struct PlacePerf {
    /// Fabric side length.
    pub grid: usize,
    /// Modes placed simultaneously.
    pub modes: usize,
    /// LUTs of the largest mode.
    pub luts: usize,
    /// Timed repetitions.
    pub reps: usize,
    /// The headline hybrid-cost comparison.
    pub hybrid: PlaceRun,
    /// The wire-length-only comparison (the paper's default cost).
    pub wirelength: PlaceRun,
}

impl PlacePerf {
    /// Both parity checks passed.
    #[must_use]
    pub fn parity_ok(&self) -> bool {
        self.hybrid.parity_ok && self.wirelength.parity_ok
    }

    /// The `BENCH_place.json` payload: the headline speedup/parity plus
    /// one nested object per measured cost kind (both emitted by
    /// `PlaceRun::json`, so the two stay structurally identical).
    #[must_use]
    pub fn to_json(&self) -> String {
        ObjBuilder::new()
            .field("bench", "place")
            .field(
                "workload",
                ObjBuilder::new()
                    .field("grid", self.grid)
                    .field("modes", self.modes)
                    .field("luts", self.luts)
                    .field("reps", self.reps)
                    .build(),
            )
            .field("speedup", round2(self.hybrid.speedup))
            .field("parity_ok", self.parity_ok())
            .field("hybrid", self.hybrid.json())
            .field("wirelength", self.wirelength.json())
            .build()
            .to_json()
    }
}

/// Anneals the workload under one cost kind on both models and compares.
fn place_run(
    circuits: &[LutCircuit],
    arch: &Architecture,
    options: &PlacerOptions,
    reps: usize,
) -> PlaceRun {
    // Parity sanity: the two models anneal byte-identical placements.
    let (fast, fast_stats) = place_combined(circuits, arch, options).expect("workload places");
    let (naive, naive_stats) =
        place_combined_reference(circuits, arch, options).expect("workload places");
    let mut parity_ok = fast_stats.final_cost.to_bits() == naive_stats.final_cost.to_bits()
        && fast_stats.moves == naive_stats.moves
        && fast_stats.temperatures == naive_stats.temperatures;
    for (m, c) in circuits.iter().enumerate() {
        for id in c.block_ids() {
            parity_ok &= fast.modes[m].site_of(id) == naive.modes[m].site_of(id);
        }
    }

    let t0 = Instant::now();
    for _ in 0..reps {
        let (_, s) = place_combined_reference(circuits, arch, options).expect("places");
        std::hint::black_box(s.moves);
    }
    let baseline_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

    let t0 = Instant::now();
    for _ in 0..reps {
        let (_, s) = place_combined(circuits, arch, options).expect("places");
        std::hint::black_box(s.moves);
    }
    let optimized_ms = t0.elapsed().as_secs_f64() * 1000.0 / reps as f64;

    PlaceRun {
        cost: options.cost.fingerprint(),
        moves: fast_stats.moves,
        baseline_ms,
        optimized_ms,
        baseline_moves_per_sec: fast_stats.moves as f64 / (baseline_ms / 1000.0).max(1e-9),
        optimized_moves_per_sec: fast_stats.moves as f64 / (optimized_ms / 1000.0).max(1e-9),
        speedup: baseline_ms / optimized_ms.max(1e-9),
        parity_ok,
    }
}

/// Runs the placer benchmark: the annealer on the naive hash-map cost
/// model vs the flat allocation-free model, on the same seeded workload
/// under the hybrid and wire-length costs.
#[must_use]
pub fn placer_perf(config: &PerfConfig) -> PlacePerf {
    let (circuits, arch, options) = placer_workload(config);
    let reps = config.reps.max(1);
    let hybrid = place_run(&circuits, &arch, &options, reps);
    let wl_options = PlacerOptions {
        cost: CostKind::WireLength,
        ..options
    };
    let wirelength = place_run(&circuits, &arch, &wl_options, reps);
    PlacePerf {
        grid: arch.grid,
        modes: circuits.len(),
        luts: circuits
            .iter()
            .map(LutCircuit::lut_count)
            .max()
            .unwrap_or(0),
        reps,
        hybrid,
        wirelength,
    }
}

/// The flow/engine benchmark report.
#[derive(Debug, Clone)]
pub struct FlowPerf {
    /// Jobs in the batch.
    pub jobs: usize,
    /// Worker threads the engine resolved.
    pub threads: usize,
    /// Cold batch wall-clock (empty cache), milliseconds.
    pub cold_wall_ms: f64,
    /// Warm batch wall-clock (everything cached), milliseconds.
    pub warm_wall_ms: f64,
    /// cold / warm wall-clock.
    pub warm_speedup: f64,
    /// Flow stages computed by the cold run.
    pub cold_stages_recomputed: usize,
    /// Flow stages computed by the warm run (0 = full transparency).
    pub warm_stages_recomputed: usize,
    /// Results served from cache on the warm run.
    pub warm_results_from_cache: usize,
    /// Jobs per second on the cold run.
    pub cold_jobs_per_sec: f64,
    /// Placement legs a `pair` job shared from plain `dcs`/`mdr` jobs'
    /// cached stages (0–3; 2 means MDR + DCS-wl came from plain jobs).
    pub pair_placement_hits_from_plain_jobs: usize,
    /// Stages the shared-placement pair job still had to compute.
    pub pair_stages_recomputed: usize,
    /// Warm-run cache hit rate (hits / lookups).
    pub warm_hit_rate: f64,
    /// The multi-mode (>2 modes per problem) sub-benchmark.
    pub nmodes: NModesPerf,
    /// The stage-graph cache-replay sweep.
    pub stagegraph: StageGraphPerf,
}

/// The stage-graph sub-benchmark: a cold batch against a fresh cache,
/// then the same batch with only the router's iteration budget changed.
/// Structural fingerprints exclude downstream options from upstream
/// nodes, so the replay must serve every placement node from cache and
/// recompute only the summaries — and the replayed records must be
/// byte-identical to a cacheless run with the changed options.
#[derive(Debug, Clone)]
pub struct StageGraphPerf {
    /// Jobs in the batch.
    pub jobs: usize,
    /// Cold batch wall-clock (fresh cache), milliseconds.
    pub cold_wall_ms: f64,
    /// Replay wall-clock (router options changed), milliseconds.
    pub replay_wall_ms: f64,
    /// cold / replay wall-clock.
    pub replay_speedup: f64,
    /// Plan nodes the cold run computed (telemetry entries, all jobs).
    pub cold_stage_nodes: usize,
    /// Placement nodes the replay served from cache.
    pub replay_placement_hits: usize,
    /// Placement nodes the replay recomputed — must be 0: a router-only
    /// change can never invalidate an upstream fingerprint.
    pub replay_upstream_recomputed: usize,
    /// Summary nodes the replay recomputed (these *should* miss — their
    /// params carry the changed router options).
    pub replay_summaries_recomputed: usize,
    /// Replayed record bytes == a cacheless run with the same changed
    /// options.
    pub parity_ok: bool,
}

impl StageGraphPerf {
    fn json(&self) -> mm_engine::json::Value {
        ObjBuilder::new()
            .field("jobs", self.jobs)
            .field("cold_wall_ms", round2(self.cold_wall_ms))
            .field("replay_wall_ms", round2(self.replay_wall_ms))
            .field("replay_speedup", round2(self.replay_speedup))
            .field("cold_stage_nodes", self.cold_stage_nodes)
            .field("replay_placement_hits", self.replay_placement_hits)
            .field(
                "replay_upstream_recomputed",
                self.replay_upstream_recomputed,
            )
            .field(
                "replay_summaries_recomputed",
                self.replay_summaries_recomputed,
            )
            .field("parity_ok", self.parity_ok)
            .build()
    }
}

/// The multi-mode sub-benchmark: a batch of 3-mode combined-comparison
/// jobs through the engine, cold and warm, parity-gated on the N = 2
/// case (`run_combined_n` over two modes must equal `run_pair` — record
/// bytes included).
#[derive(Debug, Clone)]
pub struct NModesPerf {
    /// Modes per problem in the workload.
    pub modes: usize,
    /// Jobs in the batch.
    pub jobs: usize,
    /// Cold batch wall-clock (stages not yet cached), milliseconds.
    pub cold_wall_ms: f64,
    /// Warm batch wall-clock (everything cached), milliseconds.
    pub warm_wall_ms: f64,
    /// cold / warm wall-clock.
    pub warm_speedup: f64,
    /// Flow stages computed by the cold run.
    pub cold_stages_recomputed: usize,
    /// Flow stages computed by the warm run (0 = full transparency).
    pub warm_stages_recomputed: usize,
    /// Jobs per second on the cold run.
    pub cold_jobs_per_sec: f64,
    /// `run_combined_n` over two modes produced metrics and a JSONL
    /// record byte-identical to `run_pair` on the same input.
    pub parity_ok: bool,
}

impl NModesPerf {
    fn json(&self) -> mm_engine::json::Value {
        ObjBuilder::new()
            .field("modes", self.modes)
            .field("jobs", self.jobs)
            .field("cold_wall_ms", round2(self.cold_wall_ms))
            .field("warm_wall_ms", round2(self.warm_wall_ms))
            .field("warm_speedup", round2(self.warm_speedup))
            .field("cold_stages_recomputed", self.cold_stages_recomputed)
            .field("warm_stages_recomputed", self.warm_stages_recomputed)
            .field("cold_jobs_per_sec", round2(self.cold_jobs_per_sec))
            .field("parity_ok", self.parity_ok)
            .build()
    }
}

impl FlowPerf {
    /// The `BENCH_flow.json` payload.
    #[must_use]
    pub fn to_json(&self) -> String {
        ObjBuilder::new()
            .field("bench", "flow")
            .field("jobs", self.jobs)
            .field("threads", self.threads)
            .field("cold_wall_ms", round2(self.cold_wall_ms))
            .field("warm_wall_ms", round2(self.warm_wall_ms))
            .field("warm_speedup", round2(self.warm_speedup))
            .field("cold_stages_recomputed", self.cold_stages_recomputed)
            .field("warm_stages_recomputed", self.warm_stages_recomputed)
            .field("warm_results_from_cache", self.warm_results_from_cache)
            .field("cold_jobs_per_sec", round2(self.cold_jobs_per_sec))
            .field(
                "pair_placement_hits_from_plain_jobs",
                self.pair_placement_hits_from_plain_jobs,
            )
            .field("pair_stages_recomputed", self.pair_stages_recomputed)
            .field("warm_hit_rate", round2(self.warm_hit_rate))
            .field("nmodes", self.nmodes.json())
            .field("stagegraph", self.stagegraph.json())
            .build()
            .to_json()
    }
}

/// A deterministic random LUT circuit (the shape used across the repo's
/// tests and benches) — the shared `mm_gen` generator, so the committed
/// BENCH workloads and the test fixtures stay byte-identical per seed.
fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
    mm_gen::seeded_test_circuit(name, n_inputs, n_luts, seed)
}

/// A small seeded two-mode problem plus quick options — the workload the
/// criterion flow/placer benches iterate on.
///
/// # Panics
///
/// Never for the fixed seeds used.
#[must_use]
pub fn small_pair_input() -> (mm_flow::MultiModeInput, FlowOptions) {
    let a = random_circuit("m0", 5, 14, 77);
    let b = random_circuit("m1", 5, 15, 78);
    let input = mm_flow::MultiModeInput::new(vec![a, b]).expect("seeded circuits are valid");
    let mut options = FlowOptions::default().with_fixed_width(12).with_seed(0xbe);
    options.placer.inner_num = 1.0;
    options.router.max_iterations = 30;
    (input, options)
}

/// Runs the flow/engine benchmark: cold vs warm batch plus the
/// pair-shares-plain-placements scenario, against a throwaway cache.
#[must_use]
pub fn flow_perf(config: &PerfConfig) -> FlowPerf {
    let dir = std::env::temp_dir().join(format!(
        "mmflow_bench_cache_{}_{}",
        std::process::id(),
        if config.smoke { "smoke" } else { "full" }
    ));
    let _ = std::fs::remove_dir_all(&dir);

    let job_count = if config.smoke { 4 } else { 8 };
    let luts = if config.smoke { 10 } else { 14 };
    let mut options = FlowOptions::default().with_fixed_width(12).with_seed(0xbe);
    options.placer.inner_num = 1.0;
    options.router.max_iterations = 30;

    // Consecutive dcs/mdr jobs share a mode group, so the pair job below
    // finds both of its non-edge placement legs already cached.
    let jobs: Vec<Job> = (0..job_count)
        .map(|i| {
            let group = (i / 2) as u64;
            let a = random_circuit("m0", 5, luts + (i / 2) % 3, 9_000 + group);
            let b = random_circuit("m1", 5, luts + (i / 2) % 3, 19_000 + group);
            Job {
                name: format!("j{i}"),
                circuits: vec![a, b],
                flow: if i % 2 == 0 {
                    FlowKind::Dcs(CostKind::WireLength)
                } else {
                    FlowKind::Mdr
                },
                options,
            }
        })
        .collect();

    let engine = Engine::new(EngineOptions {
        threads: config.threads,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    })
    .expect("bench cache directory");

    let cold = engine.run(jobs.clone());
    let warm = engine.run(jobs.clone());

    // The stage-sharing scenario: a `pair` job on the mode group the
    // first dcs/mdr jobs already annealed, with a router variant so the
    // result stage misses but the placement stages hit.
    let mut variant = options;
    variant.router.max_iterations = 29;
    let pair_jobs = vec![Job {
        name: "pair-shared".into(),
        circuits: jobs[0].circuits.clone(),
        flow: FlowKind::Pair,
        options: variant,
    }];
    let pair = engine.run(pair_jobs);
    let pair_info = pair.results[0].cache;

    // The multi-mode scenario: 3-mode combined-comparison jobs through
    // the same engine, cold then warm, plus the N = 2 parity gate
    // (run_combined_n must reproduce run_pair byte-for-byte).
    let nmode_count = 3usize;
    let nmode_jobs: Vec<Job> = (0..if config.smoke { 2 } else { 3 })
        .map(|g| {
            let circuits = (0..nmode_count)
                .map(|m| {
                    // The seed base is calibrated: every 3-mode merge of
                    // this family routes at the fixed quick width (edge
                    // matching can be structurally unroutable on overly
                    // dissimilar random circuits).
                    random_circuit(
                        &format!("m{m}"),
                        5,
                        luts + g % 2,
                        29_100 + (m * 1000 + g) as u64,
                    )
                })
                .collect();
            Job {
                name: format!("n3-{g}"),
                circuits,
                flow: FlowKind::Pair,
                options,
            }
        })
        .collect();
    let nmode_cold = engine.run(nmode_jobs.clone());
    let nmode_warm = engine.run(nmode_jobs.clone());
    // The gate is a regression tripwire, not a tautology check: today
    // `run_pair` delegates to the same staged code as `run_combined_n`,
    // and this keeps the committed BENCH artifact asserting that the
    // two entry points never diverge again.
    let parity_ok = {
        let two = jobs[0].circuits.clone();
        let input = mm_flow::MultiModeInput::new(two.clone()).expect("bench circuits are valid");
        let via_pair = mm_flow::run_pair(&input, &options, "parity").expect("pair runs");
        let via_n = mm_flow::run_combined_n(&two, &options, "parity").expect("combined runs");
        via_pair == via_n
            && mm_engine::JobOutcome::Pair(via_pair).to_value().to_json()
                == mm_engine::JobOutcome::Pair(via_n).to_value().to_json()
    };
    let nmode_cold_ms = nmode_cold.wall.as_secs_f64() * 1000.0;
    let nmode_warm_ms = nmode_warm.wall.as_secs_f64() * 1000.0;
    let nmodes = NModesPerf {
        modes: nmode_count,
        jobs: nmode_jobs.len(),
        cold_wall_ms: nmode_cold_ms,
        warm_wall_ms: nmode_warm_ms,
        warm_speedup: nmode_cold_ms / nmode_warm_ms.max(1e-9),
        cold_stages_recomputed: nmode_cold.stats.stages_recomputed,
        warm_stages_recomputed: nmode_warm.stats.stages_recomputed,
        cold_jobs_per_sec: nmode_jobs.len() as f64 / nmode_cold.wall.as_secs_f64().max(1e-9),
        parity_ok,
    };

    let _ = std::fs::remove_dir_all(&dir);

    // The stage-graph replay sweep: a fresh cache, a cold mixed batch,
    // then the identical batch with only the router's iteration budget
    // changed. Per-record stage telemetry shows exactly which plan
    // nodes recomputed; the structural-fingerprint contract is that no
    // placement node does.
    let sg_dir = std::env::temp_dir().join(format!(
        "mmflow_bench_stagegraph_{}_{}",
        std::process::id(),
        if config.smoke { "smoke" } else { "full" }
    ));
    let _ = std::fs::remove_dir_all(&sg_dir);
    let sg_engine = Engine::new(EngineOptions {
        threads: config.threads,
        cache_dir: Some(sg_dir.clone()),
        ..Default::default()
    })
    .expect("stage-graph bench cache directory");
    let sg_jobs: Vec<Job> = vec![
        Job {
            name: "sg-dcs".into(),
            circuits: jobs[0].circuits.clone(),
            flow: FlowKind::Dcs(CostKind::WireLength),
            options,
        },
        Job {
            name: "sg-pair".into(),
            circuits: jobs[2].circuits.clone(),
            flow: FlowKind::Pair,
            options,
        },
    ];
    let sg_cold = sg_engine.run(sg_jobs.clone());
    let mut sg_replay_options = options;
    sg_replay_options.router.max_iterations = options.router.max_iterations - 1;
    let sg_replay_jobs: Vec<Job> = sg_jobs
        .iter()
        .map(|j| Job {
            options: sg_replay_options,
            ..j.clone()
        })
        .collect();
    let sg_replay = sg_engine.run(sg_replay_jobs.clone());
    let _ = std::fs::remove_dir_all(&sg_dir);
    let replay_stages = || sg_replay.results.iter().flat_map(|r| &r.stages);
    let replay_placement_hits = replay_stages()
        .filter(|s| s.kind.is_placement() && s.cache == CacheOutcome::Hit)
        .count();
    let replay_upstream_recomputed = replay_stages()
        .filter(|s| s.kind.is_placement() && s.cache != CacheOutcome::Hit)
        .count();
    let replay_summaries_recomputed = replay_stages()
        .filter(|s| !s.kind.is_placement() && s.cache != CacheOutcome::Hit)
        .count();
    // Byte parity: the cache-assisted replay must emit the same records
    // as a cacheless engine running the changed-options batch outright.
    let sg_reference = Engine::new(EngineOptions {
        threads: config.threads,
        cache_dir: None,
        ..Default::default()
    })
    .expect("cacheless engine")
    .run(sg_replay_jobs);
    let sg_parity_ok = sg_replay.results.len() == sg_reference.results.len()
        && sg_replay
            .results
            .iter()
            .zip(&sg_reference.results)
            .all(|(a, b)| a.to_json_line() == b.to_json_line());
    let sg_cold_ms = sg_cold.wall.as_secs_f64() * 1000.0;
    let sg_replay_ms = sg_replay.wall.as_secs_f64() * 1000.0;
    let stagegraph = StageGraphPerf {
        jobs: sg_jobs.len(),
        cold_wall_ms: sg_cold_ms,
        replay_wall_ms: sg_replay_ms,
        replay_speedup: sg_cold_ms / sg_replay_ms.max(1e-9),
        cold_stage_nodes: sg_cold.results.iter().map(|r| r.stages.len()).sum(),
        replay_placement_hits,
        replay_upstream_recomputed,
        replay_summaries_recomputed,
        parity_ok: sg_parity_ok,
    };

    let cold_ms = cold.wall.as_secs_f64() * 1000.0;
    let warm_ms = warm.wall.as_secs_f64() * 1000.0;
    let warm_lookups = warm.cache.hits + warm.cache.misses;
    FlowPerf {
        jobs: job_count,
        threads: engine.threads(),
        cold_wall_ms: cold_ms,
        warm_wall_ms: warm_ms,
        warm_speedup: cold_ms / warm_ms.max(1e-9),
        cold_stages_recomputed: cold.stats.stages_recomputed,
        warm_stages_recomputed: warm.stats.stages_recomputed,
        warm_results_from_cache: warm.stats.results_from_cache,
        cold_jobs_per_sec: job_count as f64 / cold.wall.as_secs_f64().max(1e-9),
        pair_placement_hits_from_plain_jobs: pair_info.placement_hits,
        pair_stages_recomputed: pair_info.stages_recomputed,
        warm_hit_rate: if warm_lookups > 0 {
            warm.cache.hits as f64 / warm_lookups as f64
        } else {
            0.0
        },
        nmodes,
        stagegraph,
    }
}

/// The contention section of the serve benchmark: many persistent
/// clients hammering one server over a real socket, steady-state.
#[derive(Debug, Clone)]
pub struct ContentionPerf {
    /// Concurrent client connections.
    pub clients: usize,
    /// Batches each client submitted (busy retries excluded).
    pub batches_per_client: usize,
    /// Jobs per batch.
    pub jobs_per_batch: usize,
    /// Wall-clock of the whole storm (barrier release to last summary),
    /// milliseconds.
    pub duration_ms: f64,
    /// Aggregate jobs per second at saturation.
    pub saturation_jobs_per_sec: f64,
    /// Median per-batch latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile per-batch latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile per-batch latency, milliseconds.
    pub p99_ms: f64,
    /// Fairness spread: slowest client's throughput over the fastest
    /// client's (1.0 = perfectly even service).
    pub fairness: f64,
    /// Submissions bounced with a `busy` frame and retried.
    pub busy_retries: u64,
    /// Every batch on every connection matched the reference bytes,
    /// in order.
    pub parity_ok: bool,
}

impl ContentionPerf {
    fn json(&self) -> mm_engine::json::Value {
        ObjBuilder::new()
            .field("clients", self.clients)
            .field("batches_per_client", self.batches_per_client)
            .field("jobs_per_batch", self.jobs_per_batch)
            .field("duration_ms", round2(self.duration_ms))
            .field(
                "saturation_jobs_per_sec",
                round2(self.saturation_jobs_per_sec),
            )
            .field("p50_ms", round2(self.p50_ms))
            .field("p95_ms", round2(self.p95_ms))
            .field("p99_ms", round2(self.p99_ms))
            .field("fairness", round2(self.fairness))
            .field("busy_retries", self.busy_retries)
            .field("parity_ok", self.parity_ok)
            .build()
    }
}

/// The chaos section of the serve benchmark: the same workload under
/// armed fault points (torn cache writes, failing reads, worker panics,
/// stalls, dropped connections), with retrying clients. Proves the
/// robustness contract end to end: no record is lost or duplicated,
/// surviving records are byte-identical to a fault-free run, the SLO
/// admission controller sheds priority 0 before priority 9, and the
/// store recovers once faults are disarmed.
#[derive(Debug, Clone)]
pub struct ChaosPerf {
    /// The deterministic fault spec the storm server armed.
    pub fault_spec: String,
    /// Concurrent retrying clients in the storm.
    pub storm_clients: usize,
    /// Completed batches across all storm clients.
    pub storm_batches: usize,
    /// Records each batch must deliver.
    pub records_expected: usize,
    /// Reference records that never arrived in some batch.
    pub records_lost: usize,
    /// Records that arrived more than once in some batch.
    pub records_duplicated: usize,
    /// Every completed batch matched the fault-free reference bytes, in
    /// order.
    pub parity_ok: bool,
    /// Submissions the clients retried (dropped connections, busy
    /// frames) before their batches completed.
    pub client_retries: u64,
    /// Fault-point firings during the storm — proof the faults were
    /// armed and actually hit.
    pub faults_fired: u64,
    /// Panicking job executions the server retried to success.
    pub panic_retries: u64,
    /// Queued jobs purged after injected connection drops.
    pub purged_jobs: u64,
    /// Jobs the watchdog declared stuck.
    pub timed_out_jobs: u64,
    /// Corrupted cache entries quarantined (and recomputed) during the
    /// storm, summed from the batch summaries.
    pub quarantined: u64,
    /// Priority-0 probes shed by the SLO controller (must be > 0).
    pub shed_low_priority: u64,
    /// Priority-9 probes shed by the SLO controller (must be 0).
    pub shed_high_priority: u64,
    /// The p95 the shedding `busy` frame reported, milliseconds.
    pub slo_observed_p95_ms: f64,
    /// After disarming, a fresh server over the stormed cache produced
    /// the reference bytes again.
    pub recovered_after_disarm: bool,
}

impl ChaosPerf {
    /// The CI gate: faults fired, nothing was lost or duplicated, bytes
    /// matched, priority 0 was shed while priority 9 rode through, and
    /// the store recovered.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.faults_fired > 0
            && self.records_lost == 0
            && self.records_duplicated == 0
            && self.parity_ok
            && self.shed_low_priority > 0
            && self.shed_high_priority == 0
            && self.recovered_after_disarm
    }

    fn json(&self) -> mm_engine::json::Value {
        ObjBuilder::new()
            .field("fault_spec", self.fault_spec.as_str())
            .field("storm_clients", self.storm_clients)
            .field("storm_batches", self.storm_batches)
            .field("records_expected", self.records_expected)
            .field("records_lost", self.records_lost)
            .field("records_duplicated", self.records_duplicated)
            .field("parity_ok", self.parity_ok)
            .field("client_retries", self.client_retries)
            .field("faults_fired", self.faults_fired)
            .field("panic_retries", self.panic_retries)
            .field("purged_jobs", self.purged_jobs)
            .field("timed_out_jobs", self.timed_out_jobs)
            .field("quarantined", self.quarantined)
            .field("shed_low_priority", self.shed_low_priority)
            .field("shed_high_priority", self.shed_high_priority)
            .field("slo_observed_p95_ms", round2(self.slo_observed_p95_ms))
            .field("recovered_after_disarm", self.recovered_after_disarm)
            .field("ok", self.ok())
            .build()
    }
}

/// The serve benchmark report.
#[derive(Debug, Clone)]
pub struct ServePerf {
    /// Jobs per submitted batch.
    pub jobs: usize,
    /// Worker threads of the server's scheduler (as resolved, never a
    /// hardcoded count).
    pub threads: usize,
    /// Cold submission wall-clock (empty cache), milliseconds,
    /// end-to-end over the socket.
    pub cold_wall_ms: f64,
    /// Warm re-submission wall-clock (shared cache answers),
    /// milliseconds.
    pub warm_wall_ms: f64,
    /// Jobs per second, cold.
    pub cold_jobs_per_sec: f64,
    /// Jobs per second, warm.
    pub warm_jobs_per_sec: f64,
    /// cold / warm wall-clock.
    pub warm_speedup: f64,
    /// The socket stream matched a direct engine run byte-for-byte, on
    /// both the cold and the warm submission.
    pub parity_ok: bool,
    /// The multi-client contention storm.
    pub contention: ContentionPerf,
    /// The fault-injection storm and SLO-shedding section.
    pub chaos: ChaosPerf,
}

impl ServePerf {
    /// The `BENCH_serve.json` payload.
    #[must_use]
    pub fn to_json(&self) -> String {
        ObjBuilder::new()
            .field("bench", "serve")
            .field("transport", "unix-socket")
            .field("jobs", self.jobs)
            .field("threads", self.threads)
            .field("cold_wall_ms", round2(self.cold_wall_ms))
            .field("warm_wall_ms", round2(self.warm_wall_ms))
            .field("cold_jobs_per_sec", round2(self.cold_jobs_per_sec))
            .field("warm_jobs_per_sec", round2(self.warm_jobs_per_sec))
            .field("warm_speedup", round2(self.warm_speedup))
            .field("parity_ok", self.parity_ok)
            .field("contention", self.contention.json())
            .field("chaos", self.chaos.json())
            .build()
            .to_json()
    }
}

/// Runs the serve benchmark: a real server on a Unix socket, a seeded
/// BLIF-directory workload submitted cold and warm over the wire.
///
/// # Panics
///
/// Panics if the throwaway server cannot be started or the protocol
/// exchange breaks — a benchmark that cannot run must fail loudly.
#[must_use]
pub fn serve_perf(config: &PerfConfig) -> ServePerf {
    use mm_engine::protocol::BatchRequest;

    let root = std::env::temp_dir().join(format!(
        "mmflow_bench_serve_{}_{}",
        std::process::id(),
        if config.smoke { "smoke" } else { "full" }
    ));
    let _ = std::fs::remove_dir_all(&root);

    // The same workload shape as `flow_perf`, written out as a BLIF
    // mode-group directory so it travels as a spec reference.
    let (job_count, luts) = if config.smoke { (4, 10) } else { (8, 14) };
    let spec_dir = root.join("jobs");
    for g in 0..job_count {
        let group = spec_dir.join(format!("g{g}"));
        std::fs::create_dir_all(&group).expect("bench spec directory");
        for (m, seed_base) in [(0usize, 9_000u64), (1, 19_000)] {
            let c = random_circuit(&format!("m{m}"), 5, luts + g % 3, seed_base + g as u64);
            std::fs::write(
                group.join(format!("m{m}.blif")),
                mm_netlist::blif::to_blif(&c),
            )
            .expect("bench blif");
        }
    }
    let spec_str = spec_dir.to_str().expect("utf-8 tmp path").to_string();
    let mut request = BatchRequest::new(spec_str.clone());
    request.width = Some(12);
    request.effort = Some(1.0);
    request.max_iterations = Some(30);

    // Reference bytes: a direct sequential engine run on the same spec,
    // under exactly the options the request resolves to server-side.
    let options = request.flow_options(&FlowOptions::default());
    let reference: Vec<String> = Engine::new(EngineOptions {
        threads: 1,
        cache_dir: None,
        ..Default::default()
    })
    .expect("reference engine")
    .run(
        mm_engine::load_spec(&spec_str, &options, 4)
            .expect("bench spec loads")
            .jobs,
    )
    .results
    .iter()
    .map(mm_engine::JobResult::to_json_line)
    .collect();

    let listen = mm_serve::Listen::Unix(root.join("bench.sock"));
    let server = mm_serve::Server::bind(
        &listen,
        &mm_serve::ServeOptions {
            threads: config.threads,
            cache_dir: Some(root.join("cache")),
            max_connections: 16,
            ..mm_serve::ServeOptions::default()
        },
    )
    .expect("bench server binds");
    let threads = server.engine().threads();
    let handle = server.handle();
    let server_thread = std::thread::spawn(move || server.run());

    let submit = |request: &BatchRequest| -> (Vec<String>, f64) {
        let mut client = mm_serve::Client::connect(&listen).expect("connect");
        let t0 = Instant::now();
        let mut records = Vec::new();
        client
            .submit(request, |record| {
                records.push(record.to_string());
                Ok(())
            })
            .expect("protocol exchange")
            .expect("batch accepted");
        (records, t0.elapsed().as_secs_f64() * 1000.0)
    };

    let (cold_records, cold_wall_ms) = submit(&request);
    let (warm_records, warm_wall_ms) = submit(&request);
    let parity_ok = cold_records == reference && warm_records == reference;

    let contention = contention_storm(config, &listen, &request, &reference, job_count);

    handle.shutdown();
    server_thread
        .join()
        .expect("server thread")
        .expect("server drains");

    // The chaos section runs last so its armed fault points can never
    // leak into the timed cold/warm/contention measurements above.
    let chaos = chaos_storm(config, &root, &request, &reference);
    let _ = std::fs::remove_dir_all(&root);

    ServePerf {
        jobs: job_count,
        threads,
        cold_wall_ms,
        warm_wall_ms,
        cold_jobs_per_sec: job_count as f64 / (cold_wall_ms / 1000.0).max(1e-9),
        warm_jobs_per_sec: job_count as f64 / (warm_wall_ms / 1000.0).max(1e-9),
        warm_speedup: cold_wall_ms / warm_wall_ms.max(1e-9),
        parity_ok,
        contention,
        chaos,
    }
}

/// The spec the chaos storm arms: every fault point live at once, rates
/// low enough that retries (8 per job, 40 per submission) recover every
/// batch, stalls far below the 30 s default deadline.
const CHAOS_FAULT_SPEC: &str = "seed=3405,cache_read_io=0.05,cache_write_partial=0.05,\
worker_panic=0.2,job_stall=0.1,conn_drop=0.25,stall_ms=5";

/// The fault-injection storm behind the `chaos` section: retrying
/// clients against a fault-armed server, then an SLO-shedding probe,
/// then a disarmed recovery pass over the stormed cache.
fn chaos_storm(
    config: &PerfConfig,
    root: &std::path::Path,
    request: &mm_engine::protocol::BatchRequest,
    reference: &[String],
) -> ChaosPerf {
    use mm_engine::faultpoint;

    let storm_clients = 2usize;
    let rounds = config.reps.max(2);
    let cache_dir = root.join("chaos-cache");

    let start_server = |listen: &mm_serve::Listen, options: &mm_serve::ServeOptions| {
        let server = mm_serve::Server::bind(listen, options).expect("chaos server binds");
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        (handle, thread)
    };
    let stop_server = |handle: mm_serve::ServerHandle,
                       thread: std::thread::JoinHandle<std::io::Result<mm_serve::ServeReport>>|
     -> mm_serve::ServeReport {
        handle.shutdown();
        thread
            .join()
            .expect("chaos server thread")
            .expect("chaos server drains")
    };

    // Phase 1: the storm. Every fault point armed, two retrying clients.
    let listen = mm_serve::Listen::Unix(root.join("chaos.sock"));
    let (handle, thread) = start_server(
        &listen,
        &mm_serve::ServeOptions {
            threads: config.threads,
            cache_dir: Some(cache_dir.clone()),
            max_connections: 16,
            fault_spec: Some(CHAOS_FAULT_SPEC.to_string()),
            ..mm_serve::ServeOptions::default()
        },
    );

    struct StormRun {
        batches: usize,
        lost: usize,
        duplicated: usize,
        parity_ok: bool,
        retries: u64,
        quarantined: u64,
    }
    let mut runs: Vec<StormRun> = Vec::with_capacity(storm_clients);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..storm_clients)
            .map(|_| {
                let listen = &listen;
                scope.spawn(move || {
                    let mut client = mm_serve::Client::connect(listen).expect("chaos connect");
                    let mut run = StormRun {
                        batches: 0,
                        lost: 0,
                        duplicated: 0,
                        parity_ok: true,
                        retries: 0,
                        quarantined: 0,
                    };
                    for _ in 0..rounds {
                        let mut records = Vec::with_capacity(reference.len());
                        let outcome = client
                            .submit_with_retries(request, 40, |record| {
                                records.push(record.to_string());
                                Ok(())
                            })
                            .expect("chaos exchange")
                            .expect("chaos batch accepted");
                        run.batches += 1;
                        run.retries += u64::from(outcome.retries);
                        run.quarantined += outcome
                            .summary
                            .get("cache")
                            .and_then(|c| c.get("quarantined"))
                            .and_then(mm_engine::json::Value::as_u64)
                            .unwrap_or(0);
                        run.parity_ok &= records == reference;
                        // Lost/duplicated accounting by record identity,
                        // independent of ordering.
                        for expected in reference {
                            let n = records.iter().filter(|r| *r == expected).count();
                            run.lost += usize::from(n == 0);
                            run.duplicated += n.saturating_sub(1);
                        }
                    }
                    run
                })
            })
            .collect();
        for h in handles {
            runs.push(h.join().expect("chaos client"));
        }
    });
    let faults_fired = faultpoint::ALL_POINTS
        .iter()
        .map(|p| faultpoint::fired_count(p))
        .sum();
    let report = stop_server(handle, thread);
    faultpoint::disarm();

    // Phase 2: SLO shedding on a fresh server with an impossible SLO.
    // The priming batch is admitted (empty latency window), then a
    // priority-0 probe must bounce with the observed p95 while a
    // priority-9 probe rides through.
    let slo_listen = mm_serve::Listen::Unix(root.join("chaos-slo.sock"));
    let (slo_handle, slo_thread) = start_server(
        &slo_listen,
        &mm_serve::ServeOptions {
            threads: config.threads,
            cache_dir: Some(cache_dir.clone()),
            max_connections: 16,
            slo_ms: Some(0.001),
            ..mm_serve::ServeOptions::default()
        },
    );
    let mut shed_low = 0u64;
    let mut shed_high = 0u64;
    let mut observed_p95 = 0.0f64;
    {
        let mut client = mm_serve::Client::connect(&slo_listen).expect("slo connect");
        let mut prime = request.clone();
        prime.priority = mm_engine::protocol::MAX_PRIORITY;
        for _ in 0..2 {
            client
                .submit(&prime, |_| Ok(()))
                .expect("slo priming exchange")
                .expect("slo priming admitted");
        }
        // The last latency sample lands right after the summary; give
        // the worker its instant to note it.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut low = request.clone();
        low.priority = 0;
        match client.submit(&low, |_| Ok(())).expect("slo p0 exchange") {
            Err(mm_serve::Rejection::Busy {
                scope,
                p95_ms: Some(p95),
                ..
            }) if scope == "slo" => {
                shed_low += 1;
                observed_p95 = p95;
            }
            _ => {}
        }
        let mut high = request.clone();
        high.priority = mm_engine::protocol::MAX_PRIORITY;
        match client.submit(&high, |_| Ok(())).expect("slo p9 exchange") {
            Ok(_) => {}
            Err(_) => shed_high += 1,
        }
    }
    stop_server(slo_handle, slo_thread);

    // Phase 3: recovery. Faults disarmed, a fresh server over the
    // stormed cache must stream the reference bytes again.
    let recover_listen = mm_serve::Listen::Unix(root.join("chaos-recover.sock"));
    let (recover_handle, recover_thread) = start_server(
        &recover_listen,
        &mm_serve::ServeOptions {
            threads: config.threads,
            cache_dir: Some(cache_dir),
            max_connections: 16,
            ..mm_serve::ServeOptions::default()
        },
    );
    let recovered = {
        let mut client = mm_serve::Client::connect(&recover_listen).expect("recovery connect");
        let mut records = Vec::with_capacity(reference.len());
        client
            .submit(request, |record| {
                records.push(record.to_string());
                Ok(())
            })
            .expect("recovery exchange")
            .expect("recovery batch accepted");
        records == reference
    };
    stop_server(recover_handle, recover_thread);

    ChaosPerf {
        fault_spec: CHAOS_FAULT_SPEC.to_string(),
        storm_clients,
        storm_batches: runs.iter().map(|r| r.batches).sum(),
        records_expected: reference.len(),
        records_lost: runs.iter().map(|r| r.lost).sum(),
        records_duplicated: runs.iter().map(|r| r.duplicated).sum(),
        parity_ok: runs.iter().all(|r| r.parity_ok),
        client_retries: runs.iter().map(|r| r.retries).sum(),
        faults_fired,
        panic_retries: report.panic_retries,
        purged_jobs: report.purged_jobs,
        timed_out_jobs: report.timed_out_jobs,
        quarantined: runs.iter().map(|r| r.quarantined).sum(),
        shed_low_priority: shed_low,
        shed_high_priority: shed_high,
        slo_observed_p95_ms: observed_p95,
        recovered_after_disarm: recovered,
    }
}

/// The contention storm: `clients` persistent connections released by a
/// barrier, each submitting the same warm batch `rounds` times. A
/// `busy` bounce is retried (and counted), never measured as a round.
fn contention_storm(
    config: &PerfConfig,
    listen: &mm_serve::Listen,
    request: &mm_engine::protocol::BatchRequest,
    reference: &[String],
    jobs_per_batch: usize,
) -> ContentionPerf {
    let clients = if config.smoke { 4 } else { 6 };
    let rounds = config.reps.max(2);

    struct ClientRun {
        latencies_ms: Vec<f64>,
        elapsed_s: f64,
        busy_retries: u64,
        parity_ok: bool,
    }

    let barrier = std::sync::Barrier::new(clients + 1);
    let mut runs: Vec<ClientRun> = Vec::with_capacity(clients);
    let t_all = std::sync::Mutex::new(None::<f64>);
    let storm_t0 = Instant::now();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let barrier = &barrier;
                let t_all = &t_all;
                scope.spawn(move || {
                    let mut client = mm_serve::Client::connect(listen).expect("storm connect");
                    barrier.wait();
                    let t0 = Instant::now();
                    let mut run = ClientRun {
                        latencies_ms: Vec::with_capacity(rounds),
                        elapsed_s: 0.0,
                        busy_retries: 0,
                        parity_ok: true,
                    };
                    let mut done = 0usize;
                    while done < rounds {
                        let t_batch = Instant::now();
                        let mut records = Vec::with_capacity(reference.len());
                        let outcome = client
                            .submit(request, |record| {
                                records.push(record.to_string());
                                Ok(())
                            })
                            .expect("storm exchange");
                        match outcome {
                            Ok(_) => {
                                run.latencies_ms
                                    .push(t_batch.elapsed().as_secs_f64() * 1000.0);
                                run.parity_ok &= records == reference;
                                done += 1;
                            }
                            Err(mm_serve::Rejection::Busy { .. }) => {
                                run.busy_retries += 1;
                                std::thread::sleep(std::time::Duration::from_millis(1));
                            }
                            Err(rejection) => panic!("storm batch rejected: {rejection}"),
                        }
                    }
                    run.elapsed_s = t0.elapsed().as_secs_f64();
                    let mut last = t_all.lock().expect("storm clock");
                    *last = Some(storm_t0.elapsed().as_secs_f64());
                    run
                })
            })
            .collect();
        barrier.wait();
        for handle in handles {
            runs.push(handle.join().expect("storm client"));
        }
    });
    let duration_s = t_all
        .into_inner()
        .expect("storm clock")
        .expect("at least one client finished");

    let mut latencies: Vec<f64> = runs.iter().flat_map(|r| r.latencies_ms.clone()).collect();
    latencies.sort_by(f64::total_cmp);
    let percentile = |p: f64| -> f64 {
        let index = ((p / 100.0) * (latencies.len() - 1) as f64).round() as usize;
        latencies[index]
    };
    let throughputs: Vec<f64> = runs
        .iter()
        .map(|r| rounds as f64 / r.elapsed_s.max(1e-9))
        .collect();
    let fastest = throughputs.iter().copied().fold(f64::MIN, f64::max);
    let slowest = throughputs.iter().copied().fold(f64::MAX, f64::min);
    let total_jobs = clients * rounds * jobs_per_batch;

    ContentionPerf {
        clients,
        batches_per_client: rounds,
        jobs_per_batch,
        duration_ms: duration_s * 1000.0,
        saturation_jobs_per_sec: total_jobs as f64 / duration_s.max(1e-9),
        p50_ms: percentile(50.0),
        p95_ms: percentile(95.0),
        p99_ms: percentile(99.0),
        fairness: slowest / fastest.max(1e-9),
        busy_retries: runs.iter().map(|r| r.busy_retries).sum(),
        parity_ok: runs.iter().all(|r| r.parity_ok),
    }
}

/// The timing-driven vs wirelength-only flow comparison inside
/// [`StaPerf`]: both costs run the full DCS flow on the same deep-logic
/// multi-mode problem (`mm_gen::deeplogic`, whose wirelength and delay
/// optima diverge), same seed, same fixed channel width.
#[derive(Debug, Clone)]
pub struct TimingFlowPerf {
    /// Modes merged.
    pub modes: usize,
    /// LUTs of the largest mode.
    pub luts: usize,
    /// The timing-cost blend measured (`timing:<alpha>`).
    pub alpha: f64,
    /// The fixed channel width both runs route at.
    pub channel_width: usize,
    /// Worst per-mode routed critical path, wirelength-only cost.
    pub baseline_critical_path: f64,
    /// Worst per-mode routed critical path, `timing:<alpha>` cost.
    pub timing_critical_path: f64,
    /// timing / baseline critical path (< 1 is an improvement).
    pub critical_path_ratio: f64,
    /// Total routed wires across modes, wirelength-only cost.
    pub baseline_wires: usize,
    /// Total routed wires across modes, `timing:<alpha>` cost.
    pub timing_wires: usize,
    /// timing / baseline wires (the wirelength price of the delay win).
    pub wires_ratio: f64,
    /// The timing-driven run beat the baseline's critical path.
    pub improved: bool,
}

impl TimingFlowPerf {
    fn json(&self) -> mm_engine::json::Value {
        ObjBuilder::new()
            .field("modes", self.modes)
            .field("luts", self.luts)
            .field("alpha", self.alpha)
            .field("channel_width", self.channel_width)
            .field("baseline_critical_path", self.baseline_critical_path)
            .field("timing_critical_path", self.timing_critical_path)
            .field("critical_path_ratio", round2(self.critical_path_ratio))
            .field("baseline_wires", self.baseline_wires)
            .field("timing_wires", self.timing_wires)
            .field("wires_ratio", round2(self.wires_ratio))
            .field("improved", self.improved)
            .build()
    }
}

/// The timing subsystem benchmark report.
#[derive(Debug, Clone)]
pub struct StaPerf {
    /// LUTs of the STA workload circuit.
    pub luts: usize,
    /// Connections (delay vector length).
    pub connections: usize,
    /// Random single-connection delay updates timed.
    pub updates: usize,
    /// Microseconds per update with the incremental analyzer
    /// (`set_delay` + `refresh`, affected cones only).
    pub incremental_us_per_update: f64,
    /// Microseconds per update re-running the from-scratch reference.
    pub reference_us_per_update: f64,
    /// reference / incremental wall-clock.
    pub incremental_speedup: f64,
    /// After the whole update storm the incremental analysis is
    /// bit-identical to a from-scratch run on the final delays.
    pub parity_ok: bool,
    /// The timing-driven vs wirelength-only flow comparison.
    pub flow: TimingFlowPerf,
}

impl StaPerf {
    /// The `BENCH_sta.json` payload.
    #[must_use]
    pub fn to_json(&self) -> String {
        ObjBuilder::new()
            .field("bench", "sta")
            .field(
                "workload",
                ObjBuilder::new()
                    .field("luts", self.luts)
                    .field("connections", self.connections)
                    .field("updates", self.updates)
                    .build(),
            )
            .field(
                "incremental_us_per_update",
                round2(self.incremental_us_per_update),
            )
            .field(
                "reference_us_per_update",
                round2(self.reference_us_per_update),
            )
            .field("incremental_speedup", round2(self.incremental_speedup))
            .field("parity_ok", self.parity_ok)
            .field("flow", self.flow.json())
            .build()
            .to_json()
    }
}

/// Runs the timing benchmark: incremental vs from-scratch STA under a
/// random delay-update storm, then the timing-driven DCS flow vs the
/// wirelength-only baseline on a deep-logic multi-mode problem.
///
/// # Panics
///
/// Panics if the seeded workloads fail to analyze or route — a
/// benchmark that cannot run must fail loudly.
#[must_use]
pub fn sta_perf(config: &PerfConfig) -> StaPerf {
    // --- Incremental vs from-scratch STA on one deep circuit. ---
    let (w, chains, depth, noise, updates) = if config.smoke {
        (4usize, 3usize, 16usize, 20usize, 60usize)
    } else {
        (8, 6, 40, 120, 600)
    };
    let c = mm_gen::deeplogic::deep_chain_circuit("sta", 5, w, chains, depth, noise, 0x57a);
    let connections = c.connections().len();
    let base = vec![1.0f64; connections];
    let mut rng = StdRng::seed_from_u64(0x57a7);
    let total = updates * config.reps.max(1);
    let storm: Vec<(usize, f64)> = (0..total)
        .map(|_| (rng.gen_range(0..connections), rng.gen_range(0.0..4.0)))
        .collect();

    let mut sta = mm_sta::Sta::new(&c, &base).expect("workload analyzes");
    let t0 = Instant::now();
    for &(i, d) in &storm {
        sta.set_delay(i, d).expect("storm delays are valid");
        sta.refresh();
        std::hint::black_box(sta.critical_path());
    }
    let incremental_us_per_update = t0.elapsed().as_secs_f64() * 1e6 / total as f64;

    let mut delays = base;
    let t0 = Instant::now();
    for &(i, d) in &storm {
        delays[i] = d;
        let a = mm_sta::reference::analyze(&c, &delays).expect("workload analyzes");
        std::hint::black_box(a.critical_path);
    }
    let reference_us_per_update = t0.elapsed().as_secs_f64() * 1e6 / total as f64;

    let from_scratch = mm_sta::reference::analyze(&c, &delays).expect("workload analyzes");
    let incremental = sta.analysis();
    let parity_ok = incremental.critical_path.to_bits() == from_scratch.critical_path.to_bits()
        && incremental
            .criticalities()
            .iter()
            .zip(&from_scratch.criticalities())
            .all(|(a, b)| a.to_bits() == b.to_bits())
        && incremental.connections.len() == from_scratch.connections.len();

    // --- Timing-driven vs wirelength-only DCS on deep-logic modes. ---
    let suite = mm_gen::deeplogic_suite(4);
    let mode_count = if config.smoke { 2 } else { 3 };
    let circuits: Vec<LutCircuit> = suite.into_iter().take(mode_count).collect();
    let luts = circuits
        .iter()
        .map(LutCircuit::lut_count)
        .max()
        .unwrap_or(0);
    let width = 14usize;
    let alpha = 0.6f64;
    let mut options = FlowOptions::default()
        .with_fixed_width(width)
        .with_seed(0x57ee);
    options.placer.inner_num = if config.smoke { 0.5 } else { 1.0 };

    let input = mm_flow::MultiModeInput::new(circuits).expect("suite circuits are valid");
    let baseline = mm_flow::DcsFlow::new(options)
        .run(&input)
        .expect("baseline flow routes");
    let timing = mm_flow::DcsFlow::new(options)
        .with_cost(CostKind::Timing { alpha })
        .run(&input)
        .expect("timing flow routes");
    let worst = |r: &mm_flow::DcsResult| -> f64 {
        r.critical_paths(input.circuits())
            .expect("routed circuits analyze")
            .into_iter()
            .fold(0.0f64, f64::max)
    };
    let total_wires = |r: &mm_flow::DcsResult| -> usize {
        (0..input.mode_count()).map(|m| r.wires_in_mode(m)).sum()
    };
    let baseline_critical_path = worst(&baseline);
    let timing_critical_path = worst(&timing);
    let baseline_wires = total_wires(&baseline);
    let timing_wires = total_wires(&timing);

    StaPerf {
        luts: c.lut_count(),
        connections,
        updates: total,
        incremental_us_per_update,
        reference_us_per_update,
        incremental_speedup: reference_us_per_update / incremental_us_per_update.max(1e-9),
        parity_ok,
        flow: TimingFlowPerf {
            modes: input.mode_count(),
            luts,
            alpha,
            channel_width: width,
            baseline_critical_path,
            timing_critical_path,
            critical_path_ratio: timing_critical_path / baseline_critical_path.max(1e-9),
            baseline_wires,
            timing_wires,
            wires_ratio: timing_wires as f64 / (baseline_wires as f64).max(1e-9),
            improved: timing_critical_path < baseline_critical_path,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The serve smoke arms the process-global fault registry for its
    /// chaos phase; every test that touches a stage cache serializes on
    /// this lock so injected cache faults cannot leak across tests.
    static FAULT_SENSITIVE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn router_perf_smoke_reports_plausible_numbers() {
        let perf = router_perf(&PerfConfig {
            smoke: true,
            reps: 1,
            threads: 0,
        });
        assert!(perf.routed, "workload must route");
        assert!(perf.parity_ok, "optimized must match the reference");
        assert!(perf.baseline_ms > 0.0 && perf.optimized_ms > 0.0);
        let json = perf.to_json();
        assert!(json.contains("\"speedup\""), "{json}");
        assert!(
            mm_engine::json::parse(&json).is_ok(),
            "report must be valid JSON"
        );
    }

    #[test]
    fn placer_perf_smoke_reports_plausible_numbers() {
        let perf = placer_perf(&PerfConfig {
            smoke: true,
            reps: 1,
            threads: 0,
        });
        assert!(perf.parity_ok(), "optimized must match the naive model");
        assert!(perf.hybrid.moves > 0, "the annealer must attempt moves");
        assert!(perf.hybrid.baseline_ms > 0.0 && perf.hybrid.optimized_ms > 0.0);
        assert!(perf.wirelength.moves > 0);
        let json = perf.to_json();
        assert!(json.contains("\"optimized_moves_per_sec\""), "{json}");
        assert!(json.contains("\"wirelength\""), "{json}");
        assert!(
            mm_engine::json::parse(&json).is_ok(),
            "report must be valid JSON"
        );
    }

    #[test]
    fn serve_perf_smoke_roundtrips_over_a_real_socket() {
        let _lock = FAULT_SENSITIVE.lock().unwrap_or_else(|e| e.into_inner());
        let perf = serve_perf(&PerfConfig {
            smoke: true,
            reps: 1,
            threads: 0,
        });
        assert!(perf.parity_ok, "socket stream == direct engine bytes");
        assert_eq!(perf.jobs, 4);
        assert!(perf.cold_wall_ms > 0.0 && perf.warm_wall_ms > 0.0);
        assert!(perf.warm_jobs_per_sec > 0.0);
        assert!(
            perf.chaos.ok(),
            "chaos storm must survive with zero lost/duplicated records, \
             SLO shedding p0 before p9 and a clean recovery: {:?}",
            perf.chaos
        );
        assert!(perf.chaos.faults_fired > 0, "the storm must actually fault");
        assert!(
            mm_engine::json::parse(&perf.to_json()).is_ok(),
            "report must be valid JSON"
        );
    }

    #[test]
    fn sta_perf_smoke_wins_on_delay_and_keeps_parity() {
        let perf = sta_perf(&PerfConfig {
            smoke: true,
            reps: 1,
            threads: 0,
        });
        assert!(perf.parity_ok, "incremental STA == from-scratch bits");
        assert!(perf.incremental_us_per_update > 0.0);
        assert!(perf.reference_us_per_update > 0.0);
        assert!(
            perf.flow.improved,
            "timing-driven cp {} must beat baseline cp {}",
            perf.flow.timing_critical_path, perf.flow.baseline_critical_path
        );
        assert!(perf.flow.baseline_wires > 0 && perf.flow.timing_wires > 0);
        let json = perf.to_json();
        assert!(json.contains("\"incremental_speedup\""), "{json}");
        assert!(json.contains("\"critical_path_ratio\""), "{json}");
        assert!(
            mm_engine::json::parse(&json).is_ok(),
            "report must be valid JSON"
        );
    }

    #[test]
    fn flow_perf_smoke_exercises_cache_and_pair_sharing() {
        let _lock = FAULT_SENSITIVE.lock().unwrap_or_else(|e| e.into_inner());
        let perf = flow_perf(&PerfConfig {
            smoke: true,
            reps: 1,
            threads: 0,
        });
        assert_eq!(perf.warm_stages_recomputed, 0, "warm run fully cached");
        assert_eq!(perf.warm_results_from_cache, perf.jobs);
        assert_eq!(
            perf.pair_placement_hits_from_plain_jobs, 2,
            "pair shares mdr + dcs-wl legs with plain jobs"
        );
        // The multi-mode sub-benchmark: warm transparency and the N = 2
        // parity gate.
        assert_eq!(perf.nmodes.modes, 3);
        assert!(perf.nmodes.cold_stages_recomputed > 0);
        assert_eq!(
            perf.nmodes.warm_stages_recomputed, 0,
            "3-mode warm run fully cached"
        );
        assert!(perf.nmodes.parity_ok, "run_combined_n(N=2) == run_pair");
        // The stage-graph replay sweep: a router-only change must leave
        // every placement node warm and reproduce cacheless bytes.
        let sg = &perf.stagegraph;
        assert!(sg.cold_stage_nodes > 0, "cold run reported no stage nodes");
        assert_eq!(
            sg.replay_upstream_recomputed, 0,
            "router-only replay recomputed a placement node"
        );
        assert!(
            sg.replay_placement_hits > 0,
            "replay never hit a cached placement"
        );
        assert!(
            sg.replay_summaries_recomputed > 0,
            "changed router options must miss the summary nodes"
        );
        assert!(sg.parity_ok, "replay bytes != cacheless run");
        let json = perf.to_json();
        assert!(json.contains("\"nmodes\""), "{json}");
        assert!(json.contains("\"stagegraph\""), "{json}");
        assert!(mm_engine::json::parse(&json).is_ok());
    }
}
