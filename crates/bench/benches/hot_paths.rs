//! Criterion micro-benchmarks of the optimized hot paths against their
//! naive baselines — the counterpart of `mmflow bench --json`, for quick
//! local iteration on the router/placer/flow performance work.
//!
//! * `router/optimized` — scratch-arena + bounding-box PathFinder,
//!   router reused across iterations (steady state, zero per-net
//!   allocations).
//! * `router/reference_baseline` — the naive pre-optimization
//!   formulation (fresh heap + hash maps per search, full-fabric
//!   exploration, whole-graph overuse scans).
//! * `router/optimized_no_bbox` — isolates the arena from the pruning.
//! * `placer/mdr_parallel_place` and `flow/pair_staged` — the intra-job
//!   parallel stages introduced with the batch engine's stage sharing.

use criterion::{criterion_group, criterion_main, Criterion};
use mm_bench::perf::{router_workload, small_pair_input, PerfConfig};
use mm_flow::{place_pair, run_pair_with_placements, FlowOptions, MdrFlow, MultiModeInput};
use mm_route::reference::route_reference;
use mm_route::Router;

fn smoke_config() -> PerfConfig {
    PerfConfig {
        smoke: true,
        reps: 1,
    }
}

fn bench_router(c: &mut Criterion) {
    let (rrg, nets, options) = router_workload(&smoke_config());

    let mut router = Router::new(&rrg, options);
    let _ = router.route(&nets); // warm the arena
    c.bench_function("router/optimized", |b| {
        b.iter(|| router.route(std::hint::black_box(&nets)).success)
    });

    c.bench_function("router/reference_baseline", |b| {
        b.iter(|| {
            route_reference(&rrg, options.without_bbox(), std::hint::black_box(&nets)).success
        })
    });

    let mut router_nb = Router::new(&rrg, options.without_bbox());
    let _ = router_nb.route(&nets);
    c.bench_function("router/optimized_no_bbox", |b| {
        b.iter(|| router_nb.route(std::hint::black_box(&nets)).success)
    });
}

fn pair_input() -> (MultiModeInput, FlowOptions) {
    small_pair_input()
}

fn bench_placer(c: &mut Criterion) {
    let (input, options) = pair_input();
    let mut serial = options;
    serial.intra_parallelism = 1;
    c.bench_function("placer/mdr_place_serial", |b| {
        b.iter(|| MdrFlow::new(serial).place(&input).unwrap().len())
    });
    c.bench_function("placer/mdr_place_parallel", |b| {
        b.iter(|| MdrFlow::new(options).place(&input).unwrap().len())
    });
}

fn bench_flow(c: &mut Criterion) {
    let (input, options) = pair_input();
    let placements = place_pair(&input, &options).expect("pair places");
    c.bench_function("flow/pair_route_stage", |b| {
        b.iter(|| {
            run_pair_with_placements(&input, &options, "bench", &placements)
                .unwrap()
                .grid
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_router, bench_placer, bench_flow
}
criterion_main!(benches);
