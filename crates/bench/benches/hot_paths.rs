//! Criterion micro-benchmarks of the optimized hot paths against their
//! naive baselines — the counterpart of `mmflow bench --json`, for quick
//! local iteration on the router/placer/flow performance work.
//!
//! * `router/optimized` — scratch-arena + bounding-box PathFinder,
//!   router reused across iterations (steady state, zero per-net
//!   allocations).
//! * `router/reference_baseline` — the naive pre-optimization
//!   formulation (fresh heap + hash maps per search, full-fabric
//!   exploration, whole-graph overuse scans).
//! * `router/optimized_no_bbox` — isolates the arena from the pruning.
//! * `annealer/optimized` — a full combined-placement annealing sweep on
//!   the flat, allocation-free cost model.
//! * `annealer/naive_baseline` — the same sweep on the hash-map
//!   reference model (byte-identical placements, so the ratio is a pure
//!   data-structure speedup).
//! * `placer/mdr_parallel_place` and `flow/pair_staged` — the intra-job
//!   parallel stages introduced with the batch engine's stage sharing.

use criterion::{criterion_group, criterion_main, Criterion};
use mm_bench::perf::{placer_workload, router_workload, small_pair_input, PerfConfig};
use mm_flow::{place_pair, run_pair_with_placements, FlowOptions, MdrFlow, MultiModeInput};
use mm_place::{place_combined, place_combined_reference};
use mm_route::reference::route_reference;
use mm_route::Router;

fn smoke_config() -> PerfConfig {
    PerfConfig {
        smoke: true,
        reps: 1,
        threads: 0,
    }
}

fn bench_router(c: &mut Criterion) {
    let (rrg, nets, options) = router_workload(&smoke_config());

    let mut router = Router::new(&rrg, options);
    let _ = router.route(&nets); // warm the arena
    c.bench_function("router/optimized", |b| {
        b.iter(|| router.route(std::hint::black_box(&nets)).success)
    });

    c.bench_function("router/reference_baseline", |b| {
        b.iter(|| {
            route_reference(
                &rrg,
                options.without_bbox().with_full_reroute(),
                std::hint::black_box(&nets),
            )
            .success
        })
    });

    let mut router_nb = Router::new(&rrg, options.without_bbox());
    let _ = router_nb.route(&nets);
    c.bench_function("router/optimized_no_bbox", |b| {
        b.iter(|| router_nb.route(std::hint::black_box(&nets)).success)
    });
}

fn pair_input() -> (MultiModeInput, FlowOptions) {
    small_pair_input()
}

fn bench_annealer(c: &mut Criterion) {
    let (circuits, arch, options) = placer_workload(&smoke_config());
    c.bench_function("annealer/optimized", |b| {
        b.iter(|| {
            place_combined(std::hint::black_box(&circuits), &arch, &options)
                .unwrap()
                .1
                .moves
        })
    });
    c.bench_function("annealer/naive_baseline", |b| {
        b.iter(|| {
            place_combined_reference(std::hint::black_box(&circuits), &arch, &options)
                .unwrap()
                .1
                .moves
        })
    });
}

fn bench_placer(c: &mut Criterion) {
    let (input, options) = pair_input();
    let mut serial = options;
    serial.intra_parallelism = 1;
    c.bench_function("placer/mdr_place_serial", |b| {
        b.iter(|| MdrFlow::new(serial).place(&input).unwrap().len())
    });
    c.bench_function("placer/mdr_place_parallel", |b| {
        b.iter(|| MdrFlow::new(options).place(&input).unwrap().len())
    });
}

fn bench_flow(c: &mut Criterion) {
    let (input, options) = pair_input();
    let placements = place_pair(&input, &options).expect("pair places");
    c.bench_function("flow/pair_route_stage", |b| {
        b.iter(|| {
            run_pair_with_placements(&input, &options, "bench", &placements)
                .unwrap()
                .grid
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_router, bench_annealer, bench_placer, bench_flow
}
criterion_main!(benches);
