//! Criterion micro-benchmarks of the tool-flow stages.
//!
//! These measure the building blocks on small, fixed inputs so that
//! `cargo bench` finishes quickly; the paper-scale measurements live in
//! the `experiments`/`fig*` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use mm_arch::{Architecture, RoutingGraph, SwitchPattern};
use mm_bitstream::{Config, ParamConfig};
use mm_boolexpr::{qm, ModeSet, ModeSpace};
use mm_flow::TunableCircuit;
use mm_netlist::{BlockId, LutCircuit, TruthTable};
use mm_place::{place_combined, place_single, CostKind, PlacerOptions};
use mm_route::{nets_for_circuit, Router, RouterOptions};
use mm_synth::{synthesize, MapOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random LUT circuit used by the place/route benches.
fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = LutCircuit::new(name, 4);
    let mut drivers: Vec<BlockId> = (0..n_inputs)
        .map(|i| c.add_input(format!("i{i}")).unwrap())
        .collect();
    for j in 0..n_luts {
        let fanin = rng.gen_range(2..=4.min(drivers.len()));
        let mut ins = Vec::new();
        while ins.len() < fanin {
            let d = drivers[rng.gen_range(0..drivers.len())];
            if !ins.contains(&d) {
                ins.push(d);
            }
        }
        let tt = TruthTable::from_bits(ins.len(), rng.gen());
        let id = c
            .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.2))
            .unwrap();
        drivers.push(id);
    }
    for t in 0..3 {
        let d = drivers[drivers.len() - 1 - t];
        c.add_output(format!("o{t}"), d).unwrap();
    }
    c
}

fn bench_synthesis(c: &mut Criterion) {
    let net = mm_gen::mcnc::multiplier("m6", 6);
    c.bench_function("synth/map_mult6", |b| {
        b.iter(|| synthesize(std::hint::black_box(&net), MapOptions::default()).unwrap())
    });
}

fn bench_regex_compile(c: &mut Criterion) {
    c.bench_function("gen/regex_compile", |b| {
        b.iter(|| {
            mm_gen::regex::RegexEngine::compile(
                std::hint::black_box(r"GET /(a|b)+/cmd\.exe\?[0-9]{8}"),
                4,
            )
            .unwrap()
        })
    });
}

fn bench_placer(c: &mut Criterion) {
    let circuit = random_circuit("p", 6, 40, 3);
    let arch = Architecture::new(4, 8, 8);
    let options = PlacerOptions::default();
    c.bench_function("place/single_40luts", |b| {
        b.iter(|| place_single(std::hint::black_box(&circuit), &arch, &options).unwrap())
    });

    let pair = vec![
        random_circuit("p0", 6, 35, 5),
        random_circuit("p1", 6, 38, 6),
    ];
    c.bench_function("place/combined_wl", |b| {
        b.iter(|| place_combined(std::hint::black_box(&pair), &arch, &options).unwrap())
    });
    let edge = PlacerOptions::default().with_cost(CostKind::EdgeMatching);
    c.bench_function("place/combined_edge", |b| {
        b.iter(|| place_combined(std::hint::black_box(&pair), &arch, &edge).unwrap())
    });
}

fn bench_router(c: &mut Criterion) {
    let circuit = random_circuit("r", 6, 40, 7);
    let arch = Architecture::new(4, 8, 10).with_switch_pattern(SwitchPattern::Wilton);
    let (placement, _) = place_single(&circuit, &arch, &PlacerOptions::default()).unwrap();
    let rrg = RoutingGraph::build(&arch);
    let nets = nets_for_circuit(&circuit, &rrg, ModeSet::single(0), |b| placement.site_of(b));
    c.bench_function("route/pathfinder_40luts", |b| {
        b.iter(|| {
            let mut router = Router::new(&rrg, RouterOptions::default());
            router.route(std::hint::black_box(&nets))
        })
    });
}

fn bench_merge_and_bits(c: &mut Criterion) {
    let pair = vec![
        random_circuit("m0", 6, 35, 9),
        random_circuit("m1", 6, 38, 10),
    ];
    let arch = Architecture::new(4, 8, 10).with_switch_pattern(SwitchPattern::Wilton);
    let (placement, _) = place_combined(&pair, &arch, &PlacerOptions::default()).unwrap();
    c.bench_function("flow/tunable_extraction", |b| {
        b.iter(|| {
            TunableCircuit::from_placement(std::hint::black_box(&pair), &placement, &arch).unwrap()
        })
    });

    let tunable = TunableCircuit::from_placement(&pair, &placement, &arch).unwrap();
    let rrg = RoutingGraph::build(&arch);
    let nets = tunable.route_nets(&rrg);
    let mut router = Router::new(&rrg, RouterOptions::for_modes(2));
    let routing = router.route(&nets);
    assert!(routing.success);
    c.bench_function("bitstream/param_config", |b| {
        b.iter(|| ParamConfig::from_routing(std::hint::black_box(&routing), ModeSpace::new(2)))
    });
    let config = Config::from_routing(&routing);
    c.bench_function("bitstream/config_diff", |b| {
        b.iter(|| config.differing_switches(std::hint::black_box(&config)))
    });
}

fn bench_boolexpr(c: &mut Criterion) {
    let space = ModeSpace::new(8);
    c.bench_function("boolexpr/qm_minimize", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for mask in 0..256u64 {
                total += qm::minimize(ModeSet::from_mask(mask), space).len();
            }
            total
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_synthesis, bench_regex_compile, bench_placer, bench_router,
              bench_merge_and_bits, bench_boolexpr
}
criterion_main!(benches);
