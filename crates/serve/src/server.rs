//! The batch service: accept loop, per-connection protocol handling,
//! ordered result streaming and graceful drain.

use crate::pool::StaticPool;
use mm_engine::protocol::{BatchRequest, Frame, Request};
use mm_engine::{
    load_spec_with_modes, BatchReport, Engine, EngineOptions, EngineStats, JobCacheInfo, JobError,
    JobResult,
};
use mm_flow::FlowOptions;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A Unix-domain socket at this path (removed and re-created on
    /// bind; the server owns the path).
    Unix(PathBuf),
    /// A TCP address (`host:port`; port `0` lets the OS pick).
    Tcp(String),
}

impl Listen {
    /// Parses a `--listen` value: `unix:<path>` / `tcp:<host:port>`
    /// explicitly, else anything with a `/` is a socket path and
    /// anything with a `:` is a TCP address.
    ///
    /// # Errors
    ///
    /// Fails on values that match neither form.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            return Ok(Listen::Unix(path.into()));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            return Ok(Listen::Tcp(addr.to_string()));
        }
        if s.contains('/') {
            return Ok(Listen::Unix(s.into()));
        }
        if s.contains(':') {
            return Ok(Listen::Tcp(s.to_string()));
        }
        Err(format!(
            "cannot interpret listen address '{s}' (use unix:<path> or tcp:<host:port>)"
        ))
    }
}

impl std::fmt::Display for Listen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Listen::Unix(path) => write!(f, "unix:{}", path.display()),
            Listen::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads of the shared pool (`0` = one per CPU).
    pub threads: usize,
    /// Stage-cache root shared by every connection; `None` disables
    /// caching.
    pub cache_dir: Option<PathBuf>,
    /// Connections handled concurrently; further clients queue in the
    /// accept backlog until a slot frees up.
    pub max_connections: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_dir: None,
            max_connections: 8,
        }
    }
}

/// What a finished server did, for the operator's exit line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections served.
    pub connections: u64,
    /// Batches executed.
    pub batches: u64,
    /// Jobs executed across all batches.
    pub jobs: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    batches: AtomicU64,
    jobs: AtomicU64,
}

#[derive(Debug)]
struct ServerState {
    shutdown: AtomicBool,
    active: Mutex<usize>,
    idle: Condvar,
    counters: Counters,
}

/// A clonable remote control for a running [`Server`] — the programmatic
/// equivalent of the protocol's `shutdown` frame.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Asks the server to stop accepting and drain in-flight work.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::Relaxed)
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum StreamInner {
    Unix(UnixStream),
    Tcp(TcpStream),
}

/// One connected byte stream over either transport — used by the server
/// for accepted connections and by clients (`mmflow submit`) for
/// outbound ones, so the transport dispatch lives in exactly one place.
pub struct SocketStream(StreamInner);

impl SocketStream {
    /// Connects to a serving address.
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be reached.
    pub fn connect(listen: &Listen) -> std::io::Result<Self> {
        Ok(SocketStream(match listen {
            Listen::Unix(path) => StreamInner::Unix(UnixStream::connect(path)?),
            Listen::Tcp(addr) => StreamInner::Tcp(TcpStream::connect(addr.as_str())?),
        }))
    }

    /// A second handle to the same socket (e.g. a buffered read half
    /// next to the write half).
    ///
    /// # Errors
    ///
    /// Fails if the descriptor cannot be duplicated.
    pub fn try_clone(&self) -> std::io::Result<SocketStream> {
        Ok(SocketStream(match &self.0 {
            StreamInner::Unix(s) => StreamInner::Unix(s.try_clone()?),
            StreamInner::Tcp(s) => StreamInner::Tcp(s.try_clone()?),
        }))
    }

    /// Bounds blocking reads (shared by all clones of the socket).
    ///
    /// # Errors
    ///
    /// Fails if the option cannot be set.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match &self.0 {
            StreamInner::Unix(s) => s.set_read_timeout(timeout),
            StreamInner::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Bounds blocking writes (shared by all clones of the socket).
    ///
    /// # Errors
    ///
    /// Fails if the option cannot be set.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match &self.0 {
            StreamInner::Unix(s) => s.set_write_timeout(timeout),
            StreamInner::Tcp(s) => s.set_write_timeout(timeout),
        }
    }
}

impl std::fmt::Debug for SocketStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            StreamInner::Unix(_) => write!(f, "SocketStream(unix)"),
            StreamInner::Tcp(_) => write!(f, "SocketStream(tcp)"),
        }
    }
}

impl std::io::Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match &mut self.0 {
            StreamInner::Unix(s) => s.read(buf),
            StreamInner::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match &mut self.0 {
            StreamInner::Unix(s) => s.write(buf),
            StreamInner::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match &mut self.0 {
            StreamInner::Unix(s) => s.flush(),
            StreamInner::Tcp(s) => s.flush(),
        }
    }
}

/// The long-running batch service.
///
/// One [`Engine`] (and therefore one stage cache) and one persistent
/// [`StaticPool`] are shared by every connection: concurrent clients
/// submit batches that interleave on the same workers and warm the same
/// cache, while each connection's result stream stays in its own batch's
/// job order — byte-identical to `mmflow batch` on the same spec.
pub struct Server {
    engine: Arc<Engine>,
    pool: Arc<StaticPool>,
    listener: Listener,
    listen: Listen,
    state: Arc<ServerState>,
    max_connections: usize,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("listen", &self.listen)
            .field("threads", &self.pool.threads())
            .field("max_connections", &self.max_connections)
            .finish()
    }
}

impl Server {
    /// Binds the listener and starts the shared pool (but accepts
    /// nothing until [`Server::run`]). A stale Unix socket path is
    /// removed first — the server owns it.
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be bound or the cache directory cannot
    /// be created.
    pub fn bind(listen: &Listen, options: &ServeOptions) -> std::io::Result<Self> {
        let pool = Arc::new(StaticPool::new(options.threads));
        let engine = Arc::new(Engine::new(EngineOptions {
            threads: pool.threads(),
            cache_dir: options.cache_dir.clone(),
        })?);
        let (listener, listen) = match listen {
            Listen::Unix(path) => {
                if path.exists() {
                    // Only a *stale socket* may be removed: a path that
                    // is not a socket at all (a typo'd --listen hitting
                    // a real file) must never be unlinked, and one that
                    // still answers belongs to a live server.
                    use std::os::unix::fs::FileTypeExt;
                    if !std::fs::symlink_metadata(path)?.file_type().is_socket() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            format!("{} exists and is not a socket", path.display()),
                        ));
                    }
                    if UnixStream::connect(path).is_ok() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::AddrInUse,
                            format!("{} is already being served", path.display()),
                        ));
                    }
                    std::fs::remove_file(path)?;
                }
                (
                    Listener::Unix(UnixListener::bind(path)?),
                    Listen::Unix(path.clone()),
                )
            }
            Listen::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                // Report the *bound* address (resolves port 0).
                let bound = listener
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| addr.clone());
                (Listener::Tcp(listener), Listen::Tcp(bound))
            }
        };
        Ok(Self {
            engine,
            pool,
            listener,
            listen,
            state: Arc::new(ServerState {
                shutdown: AtomicBool::new(false),
                active: Mutex::new(0),
                idle: Condvar::new(),
                counters: Counters::default(),
            }),
            max_connections: options.max_connections.max(1),
        })
    }

    /// Where the server actually listens (TCP port 0 resolved).
    #[must_use]
    pub fn listen_addr(&self) -> &Listen {
        &self.listen
    }

    /// The shared engine (for tests and embedding).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// A remote control that can request shutdown from another thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until shutdown is requested (protocol `shutdown` frame or
    /// [`ServerHandle::shutdown`]), then drains: the listener closes, and
    /// every in-flight connection — including batches still executing on
    /// the pool — runs to completion before this returns.
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot be polled.
    pub fn run(self) -> std::io::Result<ServeReport> {
        match &self.listener {
            Listener::Unix(l) => l.set_nonblocking(true)?,
            Listener::Tcp(l) => l.set_nonblocking(true)?,
        }
        std::thread::scope(|scope| -> std::io::Result<()> {
            loop {
                if self.state.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let accepted = match &self.listener {
                    Listener::Unix(l) => {
                        l.accept().map(|(s, _)| SocketStream(StreamInner::Unix(s)))
                    }
                    Listener::Tcp(l) => l.accept().map(|(s, _)| SocketStream(StreamInner::Tcp(s))),
                };
                let stream = match accepted {
                    Ok(stream) => stream,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                        continue;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                };
                // Concurrency limit: hold the connection until a slot
                // frees up (the socket backlog is the waiting room).
                let mut active = self.state.active.lock().expect("state lock");
                while *active >= self.max_connections {
                    active = self.state.idle.wait(active).expect("state lock");
                }
                *active += 1;
                drop(active);
                self.state
                    .counters
                    .connections
                    .fetch_add(1, Ordering::Relaxed);

                let engine = Arc::clone(&self.engine);
                let pool = Arc::clone(&self.pool);
                let state = Arc::clone(&self.state);
                scope.spawn(move || {
                    let result = handle_connection(&engine, &pool, &state, stream);
                    if let Err(e) = result {
                        eprintln!("serve: connection error: {e}");
                    }
                    let mut active = state.active.lock().expect("state lock");
                    *active -= 1;
                    state.idle.notify_all();
                });
            }
            // Drain: wait for every connection (and thereby every
            // in-flight batch) to finish.
            let mut active = self.state.active.lock().expect("state lock");
            while *active > 0 {
                active = self.state.idle.wait(active).expect("state lock");
            }
            Ok(())
        })?;
        if let Listen::Unix(path) = &self.listen {
            let _ = std::fs::remove_file(path);
        }
        Ok(ServeReport {
            connections: self.state.counters.connections.load(Ordering::Relaxed),
            batches: self.state.counters.batches.load(Ordering::Relaxed),
            jobs: self.state.counters.jobs.load(Ordering::Relaxed),
        })
    }
}

/// One connection: read request lines, answer frames, stream batches.
fn handle_connection(
    engine: &Arc<Engine>,
    pool: &StaticPool,
    state: &Arc<ServerState>,
    stream: SocketStream,
) -> std::io::Result<()> {
    // A finite read timeout keeps idle connections from stalling the
    // drain: between lines the loop re-checks the shutdown flag. The
    // write timeout bounds a client that stops *reading* mid-stream —
    // without it a full send buffer would block the connection thread
    // (and therefore drain) forever.
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        // The cap is enforced *inside* the read via `take`, so even a
        // client streaming newline-free bytes without ever pausing
        // (read_line would otherwise never return) cannot grow the
        // buffer past MAX_REQUEST_LINE + 1.
        let budget = (MAX_REQUEST_LINE + 1).saturating_sub(line.len()) as u64;
        if budget == 0 {
            let _ = write_frame(
                &mut writer,
                &Frame::Error {
                    message: format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                },
            );
            break;
        }
        match std::io::Read::take(&mut reader, budget).read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {
                // A read that stopped at the budget rather than a
                // newline is an over-long line, not a request: answer
                // the cap error and hang up instead of parsing the
                // truncation.
                if !line.ends_with('\n') && line.len() > MAX_REQUEST_LINE {
                    continue; // the budget==0 arm reports and closes
                }
                // A draining server accepts nothing new, but stays
                // polite: shutdown/ping still get their ack (so a
                // concurrent `submit --shutdown` sees success), anything
                // else gets an error frame. Without the check a client
                // that keeps sending requests faster than the idle
                // timeout would hold its connection (and the drain wait)
                // open forever.
                if state.shutdown.load(Ordering::Relaxed) {
                    let frame = match Request::parse(line.trim()) {
                        Ok(Request::Shutdown) => Frame::ShuttingDown,
                        Ok(Request::Ping) => Frame::Pong,
                        _ => Frame::Error {
                            message: "server is shutting down".to_string(),
                        },
                    };
                    let _ = write_frame(&mut writer, &frame);
                    break;
                }
                let keep_going = handle_request(engine, pool, state, &mut writer, line.trim())?;
                line.clear();
                if !keep_going || state.shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle (a partial line, if any, stays buffered in `line`).
                if state.shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Upper bound on one request line — far above any real batch request,
/// far below harm.
const MAX_REQUEST_LINE: usize = 1 << 20;

/// Handles one request line; `Ok(false)` closes the connection.
fn handle_request(
    engine: &Arc<Engine>,
    pool: &StaticPool,
    state: &Arc<ServerState>,
    writer: &mut SocketStream,
    line: &str,
) -> std::io::Result<bool> {
    if line.is_empty() {
        return Ok(true);
    }
    let request = match Request::parse(line) {
        Ok(request) => request,
        Err(message) => {
            write_frame(writer, &Frame::Error { message })?;
            return Ok(true);
        }
    };
    match request {
        Request::Ping => {
            write_frame(writer, &Frame::Pong)?;
            Ok(true)
        }
        Request::Shutdown => {
            write_frame(writer, &Frame::ShuttingDown)?;
            state.shutdown.store(true, Ordering::Relaxed);
            Ok(false)
        }
        Request::Batch(batch) => {
            run_batch(engine, pool, state, writer, &batch)?;
            Ok(true)
        }
    }
}

fn write_frame(writer: &mut SocketStream, frame: &Frame) -> std::io::Result<()> {
    writer.write_all(frame.to_json_line().as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Per-batch reorder buffer: pool workers finish jobs in any order, the
/// connection thread consumes them strictly in job order.
struct Collector {
    slots: Mutex<Vec<Option<JobResult>>>,
    ready: Condvar,
}

impl Collector {
    fn deliver(&self, index: usize, result: JobResult) {
        let mut slots = self.slots.lock().expect("collector lock");
        slots[index] = Some(result);
        drop(slots);
        self.ready.notify_all();
    }

    fn take(&self, index: usize) -> JobResult {
        let mut slots = self.slots.lock().expect("collector lock");
        loop {
            if let Some(result) = slots[index].take() {
                return result;
            }
            slots = self.ready.wait(slots).expect("collector lock");
        }
    }
}

/// Resolves, executes and streams one batch request.
fn run_batch(
    engine: &Arc<Engine>,
    pool: &StaticPool,
    state: &Arc<ServerState>,
    writer: &mut SocketStream,
    request: &BatchRequest,
) -> std::io::Result<()> {
    let options = request.flow_options(&FlowOptions::default());
    let mut batch = match load_spec_with_modes(&request.spec, &options, request.k, request.modes) {
        Ok(batch) => batch,
        Err(message) => return write_frame(writer, &Frame::Error { message }),
    };
    if let Some(n) = request.max_jobs {
        batch.jobs.truncate(n);
    }
    let mut jobs = batch.jobs;
    // The pool is shared by every connection — one worker per job, no
    // intra-job fan-out on top (results are byte-identical either way).
    for job in &mut jobs {
        if job.options.intra_parallelism == 0 {
            job.options.intra_parallelism = 1;
        }
    }
    let n = jobs.len();
    state.counters.batches.fetch_add(1, Ordering::Relaxed);
    write_frame(writer, &Frame::Accepted { jobs: n })?;

    let t0 = Instant::now();
    let cache_before = engine.cache().map(|c| c.stats()).unwrap_or_default();
    let collector = Arc::new(Collector {
        slots: Mutex::new((0..n).map(|_| None).collect()),
        ready: Condvar::new(),
    });
    // A client that vanishes mid-stream cancels the jobs that have not
    // started yet; jobs already running finish (their cache writes are
    // still useful).
    let cancel = Arc::new(AtomicBool::new(false));
    for (index, job) in jobs.into_iter().enumerate() {
        let engine = Arc::clone(engine);
        let collector = Arc::clone(&collector);
        let cancel = Arc::clone(&cancel);
        let state = Arc::clone(state);
        pool.submit(move || {
            let result = if cancel.load(Ordering::Relaxed) {
                JobResult {
                    name: job.name.clone(),
                    flow: job.flow,
                    outcome: Err(JobError::engine("cancelled: client disconnected")),
                    cache: JobCacheInfo::default(),
                    duration: Duration::ZERO,
                }
            } else {
                // Counted here — not at accept time — so the operator's
                // exit report only claims jobs that actually ran.
                state.counters.jobs.fetch_add(1, Ordering::Relaxed);
                // A panic inside a flow is an engine bug, but in a
                // daemon it must degrade to one failed job: without the
                // catch the collector slot would never be delivered and
                // the connection (and the final drain) would hang on it
                // forever.
                let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    engine.execute_job(&job)
                }));
                match run {
                    Ok(result) => result,
                    Err(panic) => JobResult {
                        name: job.name.clone(),
                        flow: job.flow,
                        outcome: Err(JobError::engine(format!(
                            "job panicked: {}",
                            crate::pool::panic_message(panic.as_ref())
                        ))),
                        cache: JobCacheInfo::default(),
                        duration: Duration::ZERO,
                    },
                }
            };
            collector.deliver(index, result);
        });
    }

    let mut results = Vec::with_capacity(n);
    let mut write_error: Option<std::io::Error> = None;
    for index in 0..n {
        let result = collector.take(index);
        if write_error.is_none() {
            let mut record = result.to_json_line();
            record.push('\n');
            if let Err(e) = writer
                .write_all(record.as_bytes())
                .and_then(|()| writer.flush())
            {
                cancel.store(true, Ordering::Relaxed);
                write_error = Some(e);
            }
        }
        results.push(result);
    }
    if let Some(e) = write_error {
        return Err(e);
    }

    let stats = EngineStats::from_results(&results);
    let report = BatchReport {
        results,
        stats,
        // Cache activity attributed to this batch; with concurrent
        // connections the attribution is approximate (the counters are
        // engine-wide), never the records.
        cache: engine
            .cache()
            .map(|c| c.stats().since(cache_before))
            .unwrap_or_default(),
        wall: t0.elapsed(),
        threads: engine.threads(),
    };
    write_frame(
        writer,
        &Frame::Summary {
            summary: report.summary_value(),
        },
    )
}
