//! The batch service: accept loop, multiplexed connection reactors,
//! scheduler admission, ordered result streaming and graceful drain.
//!
//! # Connection model
//!
//! Connections are *multiplexed*, not thread-per-connection: a small
//! fixed set of reactor threads each owns many non-blocking sockets and
//! drives them through a per-connection state machine (read request
//! lines → admit batches to the [`Scheduler`] → pump in-order results
//! into the outbound buffer → flush). Job execution never happens on a
//! reactor thread — the scheduler's sharded worker groups do that — so
//! a reactor's only work per connection is parsing, admission and byte
//! shuffling, and hundreds of idle connections cost no threads.
//!
//! # Backpressure
//!
//! Capacity is never a silent stall:
//!
//! * a connection over `max_connections` receives one structured
//!   `busy` frame (`scope: "connections"`) and is closed;
//! * a batch that would overflow a shard queue is rejected whole with a
//!   `busy` frame (`scope: "jobs"`) — the connection stays usable and
//!   the client retries;
//! * an admitted batch that has to wait is told so with a `queued`
//!   frame carrying the number of jobs ahead of it.

use crate::scheduler::{panic_message, ClientId, JobTask, Scheduler, Task};
use mm_engine::faultpoint;
use mm_engine::json::{ObjBuilder, Value};
use mm_engine::protocol::{BatchRequest, Frame, Request};
use mm_engine::{
    load_spec_with_modes, BatchReport, CacheStats, Engine, EngineOptions, EngineStats, Job,
    JobCacheInfo, JobError, JobResult,
};
use mm_flow::FlowOptions;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Where the server listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Listen {
    /// A Unix-domain socket at this path (removed and re-created on
    /// bind; the server owns the path).
    Unix(PathBuf),
    /// A TCP address (`host:port`; port `0` lets the OS pick).
    Tcp(String),
}

impl Listen {
    /// Parses a `--listen` value: `unix:<path>` / `tcp:<host:port>`
    /// explicitly, else anything with a `/` is a socket path and
    /// anything with a `:` is a TCP address.
    ///
    /// # Errors
    ///
    /// Fails on values that match neither form.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(path) = s.strip_prefix("unix:") {
            return Ok(Listen::Unix(path.into()));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            return Ok(Listen::Tcp(addr.to_string()));
        }
        if s.contains('/') {
            return Ok(Listen::Unix(s.into()));
        }
        if s.contains(':') {
            return Ok(Listen::Tcp(s.to_string()));
        }
        Err(format!(
            "cannot interpret listen address '{s}' (use unix:<path> or tcp:<host:port>)"
        ))
    }
}

impl std::fmt::Display for Listen {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Listen::Unix(path) => write!(f, "unix:{}", path.display()),
            Listen::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads across all shards (`0` = one per CPU).
    pub threads: usize,
    /// Stage-cache root shared by every connection; `None` disables
    /// caching.
    pub cache_dir: Option<PathBuf>,
    /// Connections handled concurrently; an excess client receives a
    /// structured `busy` frame (`scope: "connections"`) and is closed
    /// instead of stalling in the accept backlog.
    pub max_connections: usize,
    /// Worker groups (shards) the threads are split into; jobs are
    /// routed by content fingerprint so identical legs share a shard.
    /// `0` = one group per two workers (capped at 8).
    pub workers: usize,
    /// Queued (not yet running) jobs each shard admits before batches
    /// bounce with a `busy` frame (`scope: "jobs"`).
    pub queue_depth: usize,
    /// Reactor threads multiplexing the connections (`0` = 2).
    pub io_threads: usize,
    /// p95 sojourn-latency SLO in milliseconds. When set, batches are
    /// shed lowest-priority-first once a target shard's observed p95
    /// exceeds it (`busy` frame, `scope: "slo"`, carrying the p95);
    /// priority 9 is never shed. `None` keeps plain queue-depth
    /// admission only.
    pub slo_ms: Option<f64>,
    /// Per-job execution deadline in milliseconds; a job still running
    /// past it is declared stuck by the watchdog and answered with a
    /// structured `timeout` error record while the shard keeps serving.
    /// `0` disables the watchdog.
    pub deadline_ms: u64,
    /// Deterministic fault-injection spec
    /// (e.g. `"seed=7,worker_panic=0.1,stall_ms=20"`) armed at bind —
    /// see [`mm_engine::faultpoint`]. `None` leaves every fault point a
    /// compiled-in no-op.
    pub fault_spec: Option<String>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            threads: 0,
            cache_dir: None,
            max_connections: 8,
            workers: 0,
            queue_depth: 256,
            io_threads: 0,
            slo_ms: None,
            deadline_ms: 30_000,
            fault_spec: None,
        }
    }
}

/// What a finished server did, for the operator's exit line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections served.
    pub connections: u64,
    /// Batches admitted and executed.
    pub batches: u64,
    /// Jobs executed across all batches.
    pub jobs: u64,
    /// Connections turned away with a `busy` frame at `max_connections`.
    pub rejected_connections: u64,
    /// Batches bounced with a `busy` frame by shard-queue admission.
    pub rejected_batches: u64,
    /// Queued jobs purged because their client disconnected.
    pub purged_jobs: u64,
    /// Jobs the watchdog declared stuck and answered with a `timeout`
    /// record.
    pub timed_out_jobs: u64,
    /// Batches shed by the SLO admission controller.
    pub shed_batches: u64,
    /// Panicking job executions that were retried (transient faults
    /// recovered to the same deterministic result).
    pub panic_retries: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    batches: AtomicU64,
    jobs: AtomicU64,
    rejected_connections: AtomicU64,
    rejected_batches: AtomicU64,
    purged_jobs: AtomicU64,
    panic_retries: AtomicU64,
}

#[derive(Debug)]
struct ServerState {
    shutdown: AtomicBool,
    active: AtomicUsize,
    next_client: AtomicU64,
    counters: Counters,
}

/// A clonable remote control for a running [`Server`] — the programmatic
/// equivalent of the protocol's `shutdown` frame.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Asks the server to stop accepting and drain in-flight work.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::Relaxed);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::Relaxed)
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

enum StreamInner {
    Unix(UnixStream),
    Tcp(TcpStream),
}

/// One connected byte stream over either transport — used by the server
/// for accepted connections and by clients (`mmflow submit`) for
/// outbound ones, so the transport dispatch lives in exactly one place.
pub struct SocketStream(StreamInner);

impl SocketStream {
    /// Connects to a serving address.
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be reached.
    pub fn connect(listen: &Listen) -> std::io::Result<Self> {
        Ok(SocketStream(match listen {
            Listen::Unix(path) => StreamInner::Unix(UnixStream::connect(path)?),
            Listen::Tcp(addr) => StreamInner::Tcp(TcpStream::connect(addr.as_str())?),
        }))
    }

    /// Connects with a bound on the TCP connection attempt — a routed
    /// but unresponsive address fails in `timeout` instead of the
    /// kernel's (minutes-long) default. Unix sockets connect or fail
    /// immediately; the timeout does not apply.
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be reached within the timeout.
    pub fn connect_timeout(listen: &Listen, timeout: Duration) -> std::io::Result<Self> {
        Ok(SocketStream(match listen {
            Listen::Unix(path) => StreamInner::Unix(UnixStream::connect(path)?),
            Listen::Tcp(addr) => {
                use std::net::ToSocketAddrs;
                let mut last_error = None;
                let mut stream = None;
                for resolved in addr.as_str().to_socket_addrs()? {
                    match TcpStream::connect_timeout(&resolved, timeout) {
                        Ok(s) => {
                            stream = Some(s);
                            break;
                        }
                        Err(e) => last_error = Some(e),
                    }
                }
                match stream {
                    Some(s) => StreamInner::Tcp(s),
                    None => {
                        return Err(last_error.unwrap_or_else(|| {
                            std::io::Error::new(
                                std::io::ErrorKind::InvalidInput,
                                format!("{addr} resolved to no addresses"),
                            )
                        }))
                    }
                }
            }
        }))
    }

    /// A second handle to the same socket (e.g. a buffered read half
    /// next to the write half).
    ///
    /// # Errors
    ///
    /// Fails if the descriptor cannot be duplicated.
    pub fn try_clone(&self) -> std::io::Result<SocketStream> {
        Ok(SocketStream(match &self.0 {
            StreamInner::Unix(s) => StreamInner::Unix(s.try_clone()?),
            StreamInner::Tcp(s) => StreamInner::Tcp(s.try_clone()?),
        }))
    }

    /// Bounds blocking reads (shared by all clones of the socket).
    ///
    /// # Errors
    ///
    /// Fails if the option cannot be set.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match &self.0 {
            StreamInner::Unix(s) => s.set_read_timeout(timeout),
            StreamInner::Tcp(s) => s.set_read_timeout(timeout),
        }
    }

    /// Bounds blocking writes (shared by all clones of the socket).
    ///
    /// # Errors
    ///
    /// Fails if the option cannot be set.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        match &self.0 {
            StreamInner::Unix(s) => s.set_write_timeout(timeout),
            StreamInner::Tcp(s) => s.set_write_timeout(timeout),
        }
    }

    /// Switches the socket between blocking and non-blocking mode (the
    /// reactors multiplex connections in non-blocking mode).
    ///
    /// # Errors
    ///
    /// Fails if the option cannot be set.
    pub fn set_nonblocking(&self, nonblocking: bool) -> std::io::Result<()> {
        match &self.0 {
            StreamInner::Unix(s) => s.set_nonblocking(nonblocking),
            StreamInner::Tcp(s) => s.set_nonblocking(nonblocking),
        }
    }
}

impl std::fmt::Debug for SocketStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            StreamInner::Unix(_) => write!(f, "SocketStream(unix)"),
            StreamInner::Tcp(_) => write!(f, "SocketStream(tcp)"),
        }
    }
}

impl Read for SocketStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match &mut self.0 {
            StreamInner::Unix(s) => s.read(buf),
            StreamInner::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for SocketStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match &mut self.0 {
            StreamInner::Unix(s) => s.write(buf),
            StreamInner::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match &mut self.0 {
            StreamInner::Unix(s) => s.flush(),
            StreamInner::Tcp(s) => s.flush(),
        }
    }
}

/// Upper bound on one request line — far above any real batch request,
/// far below harm. Also the inbound buffering bound per connection:
/// a client pipelining past it is simply not read until the buffer
/// drains (socket-level backpressure).
const MAX_REQUEST_LINE: usize = 1 << 20;

/// Outbound buffering high-water mark: result pumping pauses (results
/// wait in their collector slots) until the client reads us back below
/// it.
const OUT_HIGH_WATER: usize = 256 * 1024;

/// A client that accepts no bytes for this long mid-stream is declared
/// gone.
const WRITE_STALL: Duration = Duration::from_secs(30);

/// How long an idle reactor parks before re-polling its sockets.
const REACTOR_PARK: Duration = Duration::from_millis(1);

/// Wakes a parked reactor (new connection, delivered result).
#[derive(Debug, Default)]
struct Waker {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Waker {
    fn wake(&self) {
        *self.flag.lock().expect("waker lock") = true;
        self.cv.notify_all();
    }

    fn park(&self, timeout: Duration) {
        let mut flag = self.flag.lock().expect("waker lock");
        if !*flag {
            let (guard, _) = self.cv.wait_timeout(flag, timeout).expect("waker lock");
            flag = guard;
        }
        *flag = false;
    }
}

/// The long-running batch service.
///
/// One [`Engine`] (and therefore one stage cache) and one sharded
/// [`Scheduler`] are shared by every connection: concurrent clients
/// submit batches whose jobs interleave fairly on the worker groups and
/// warm the same cache, while each connection's result stream stays in
/// its own batch's job order — byte-identical to `mmflow batch` on the
/// same spec.
pub struct Server {
    engine: Arc<Engine>,
    scheduler: Arc<Scheduler>,
    listener: Listener,
    listen: Listen,
    state: Arc<ServerState>,
    max_connections: usize,
    io_threads: usize,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("listen", &self.listen)
            .field("threads", &self.scheduler.threads())
            .field("shards", &self.scheduler.shards())
            .field("max_connections", &self.max_connections)
            .finish()
    }
}

impl Server {
    /// Binds the listener and starts the scheduler's worker groups (but
    /// accepts nothing until [`Server::run`]). A stale Unix socket path
    /// is removed first — the server owns it.
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be bound or the cache directory cannot
    /// be created.
    pub fn bind(listen: &Listen, options: &ServeOptions) -> std::io::Result<Self> {
        if let Some(spec) = &options.fault_spec {
            faultpoint::arm(spec).map_err(|message| {
                std::io::Error::new(std::io::ErrorKind::InvalidInput, message)
            })?;
        }
        let scheduler = Arc::new(Scheduler::with_options(
            options.workers,
            options.threads,
            options.queue_depth,
            (options.deadline_ms > 0).then(|| Duration::from_millis(options.deadline_ms)),
            options.slo_ms,
        ));
        let engine = Arc::new(Engine::new(EngineOptions {
            threads: scheduler.threads(),
            cache_dir: options.cache_dir.clone(),
            // The service is long-running and re-serves identical legs;
            // the in-memory memo is what keeps warm hits off the disk.
            result_memo: 4096,
        })?);
        let (listener, listen) = match listen {
            Listen::Unix(path) => {
                if path.exists() {
                    // Only a *stale socket* may be removed: a path that
                    // is not a socket at all (a typo'd --listen hitting
                    // a real file) must never be unlinked, and one that
                    // still answers belongs to a live server.
                    use std::os::unix::fs::FileTypeExt;
                    if !std::fs::symlink_metadata(path)?.file_type().is_socket() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            format!("{} exists and is not a socket", path.display()),
                        ));
                    }
                    if UnixStream::connect(path).is_ok() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::AddrInUse,
                            format!("{} is already being served", path.display()),
                        ));
                    }
                    std::fs::remove_file(path)?;
                }
                (
                    Listener::Unix(UnixListener::bind(path)?),
                    Listen::Unix(path.clone()),
                )
            }
            Listen::Tcp(addr) => {
                let listener = TcpListener::bind(addr.as_str())?;
                // Report the *bound* address (resolves port 0).
                let bound = listener
                    .local_addr()
                    .map(|a| a.to_string())
                    .unwrap_or_else(|_| addr.clone());
                (Listener::Tcp(listener), Listen::Tcp(bound))
            }
        };
        Ok(Self {
            engine,
            scheduler,
            listener,
            listen,
            state: Arc::new(ServerState {
                shutdown: AtomicBool::new(false),
                active: AtomicUsize::new(0),
                next_client: AtomicU64::new(1),
                counters: Counters::default(),
            }),
            max_connections: options.max_connections.max(1),
            io_threads: if options.io_threads == 0 {
                2
            } else {
                options.io_threads
            },
        })
    }

    /// Where the server actually listens (TCP port 0 resolved).
    #[must_use]
    pub fn listen_addr(&self) -> &Listen {
        &self.listen
    }

    /// The shared engine (for tests and embedding).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The job scheduler (for tests and embedding).
    #[must_use]
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }

    /// A remote control that can request shutdown from another thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Serves until shutdown is requested (protocol `shutdown` frame or
    /// [`ServerHandle::shutdown`]), then drains: the listener closes,
    /// every connection — including batches still executing on the
    /// worker groups — runs to completion, and the workers are joined
    /// before this returns.
    ///
    /// # Errors
    ///
    /// Fails if the listener cannot be polled.
    pub fn run(self) -> std::io::Result<ServeReport> {
        let Server {
            engine,
            scheduler,
            listener,
            listen,
            state,
            max_connections,
            io_threads,
        } = self;
        match &listener {
            Listener::Unix(l) => l.set_nonblocking(true)?,
            Listener::Tcp(l) => l.set_nonblocking(true)?,
        }
        let reactors: Vec<ReactorHandle> = (0..io_threads.max(1))
            .map(|_| ReactorHandle {
                inbox: Mutex::new(Vec::new()),
                waker: Arc::new(Waker::default()),
                load: AtomicUsize::new(0),
            })
            .collect();
        std::thread::scope(|scope| -> std::io::Result<()> {
            for reactor in &reactors {
                let ctx = Ctx {
                    engine: &engine,
                    scheduler: &scheduler,
                    state: &state,
                };
                scope.spawn(move || run_reactor(&ctx, reactor));
            }
            loop {
                if state.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                let accepted = match &listener {
                    Listener::Unix(l) => {
                        l.accept().map(|(s, _)| SocketStream(StreamInner::Unix(s)))
                    }
                    Listener::Tcp(l) => l.accept().map(|(s, _)| SocketStream(StreamInner::Tcp(s))),
                };
                let stream = match accepted {
                    Ok(stream) => stream,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                        continue;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        // Wake the reactors out of their parks so the
                        // drain below cannot deadlock on an I/O error.
                        state.shutdown.store(true, Ordering::Relaxed);
                        for reactor in &reactors {
                            reactor.waker.wake();
                        }
                        return Err(e);
                    }
                };
                if state.active.load(Ordering::Relaxed) >= max_connections {
                    // Over capacity: answer, don't stall. The frame is
                    // best-effort — a client that never reads forfeits
                    // it, bounded by the write timeout.
                    state
                        .counters
                        .rejected_connections
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let mut stream = stream;
                    let frame = Frame::Busy {
                        scope: "connections".to_string(),
                        queued: state.active.load(Ordering::Relaxed),
                        capacity: max_connections,
                        p95_ms: None,
                    };
                    let _ = stream
                        .write_all((frame.to_json_line() + "\n").as_bytes())
                        .and_then(|()| stream.flush());
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                if let StreamInner::Tcp(s) = &stream.0 {
                    let _ = s.set_nodelay(true);
                }
                state.active.fetch_add(1, Ordering::Relaxed);
                state.counters.connections.fetch_add(1, Ordering::Relaxed);
                let conn = Conn::new(stream, state.next_client.fetch_add(1, Ordering::Relaxed));
                // Least-loaded reactor takes the new connection.
                let reactor = reactors
                    .iter()
                    .min_by_key(|r| r.load.load(Ordering::Relaxed))
                    .expect("at least one reactor");
                reactor.load.fetch_add(1, Ordering::Relaxed);
                reactor.inbox.lock().expect("inbox lock").push(conn);
                reactor.waker.wake();
            }
            for reactor in &reactors {
                reactor.waker.wake();
            }
            Ok(())
        })?;
        // Reactors have exited: every connection is closed and every
        // admitted batch has streamed its summary. Join the workers
        // (drains any purge-raced stragglers) before reporting.
        let shed_batches = scheduler.shed_batches();
        let timed_out_jobs: u64 = scheduler.stats().iter().map(|s| s.timed_out).sum();
        drop(scheduler);
        if let Listen::Unix(path) = &listen {
            let _ = std::fs::remove_file(path);
        }
        drop(engine);
        Ok(ServeReport {
            connections: state.counters.connections.load(Ordering::Relaxed),
            batches: state.counters.batches.load(Ordering::Relaxed),
            jobs: state.counters.jobs.load(Ordering::Relaxed),
            rejected_connections: state.counters.rejected_connections.load(Ordering::Relaxed),
            rejected_batches: state.counters.rejected_batches.load(Ordering::Relaxed),
            purged_jobs: state.counters.purged_jobs.load(Ordering::Relaxed),
            timed_out_jobs,
            shed_batches,
            panic_retries: state.counters.panic_retries.load(Ordering::Relaxed),
        })
    }
}

/// Everything a reactor needs to drive its connections.
#[derive(Clone, Copy)]
struct Ctx<'a> {
    engine: &'a Arc<Engine>,
    scheduler: &'a Arc<Scheduler>,
    state: &'a Arc<ServerState>,
}

struct ReactorHandle {
    inbox: Mutex<Vec<Conn>>,
    waker: Arc<Waker>,
    load: AtomicUsize,
}

/// One reactor: adopt assigned connections, tick them all, park briefly
/// when nothing progressed. Exits when shutdown is requested and its
/// last connection is gone.
fn run_reactor(ctx: &Ctx<'_>, reactor: &ReactorHandle) {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        {
            let mut inbox = reactor.inbox.lock().expect("inbox lock");
            conns.append(&mut inbox);
        }
        let mut progressed = false;
        let mut index = 0;
        while index < conns.len() {
            let tick = conns[index].tick(ctx, &reactor.waker);
            progressed |= tick.progressed;
            if tick.close {
                let mut conn = conns.swap_remove(index);
                conn.abandon_stream(ctx);
                ctx.state.active.fetch_sub(1, Ordering::Relaxed);
                reactor.load.fetch_sub(1, Ordering::Relaxed);
            } else {
                index += 1;
            }
        }
        if conns.is_empty()
            && ctx.state.shutdown.load(Ordering::Relaxed)
            && reactor.inbox.lock().expect("inbox lock").is_empty()
        {
            return;
        }
        if !progressed {
            reactor.waker.park(REACTOR_PARK);
        }
    }
}

/// Per-batch reorder buffer: shard workers finish jobs in any order,
/// the owning reactor consumes them strictly in job order. Delivery
/// wakes the reactor so results stream without waiting out a park.
struct Collector {
    slots: Mutex<Vec<Option<JobResult>>>,
    waker: Arc<Waker>,
}

impl Collector {
    fn deliver(&self, index: usize, result: JobResult) {
        {
            let mut slots = self.slots.lock().expect("collector lock");
            slots[index] = Some(result);
        }
        self.waker.wake();
    }

    fn try_take(&self, index: usize) -> Option<JobResult> {
        self.slots.lock().expect("collector lock")[index].take()
    }
}

/// An admitted batch mid-stream on one connection.
struct Streaming {
    collector: Arc<Collector>,
    cancel: Arc<AtomicBool>,
    next: usize,
    total: usize,
    results: Vec<JobResult>,
    t0: Instant,
    cache_before: CacheStats,
    /// Append per-stage telemetry to every streamed record (the
    /// request's `emit_stage_times` member). Default records stay the
    /// exact `mmflow batch` bytes.
    emit_stage_times: bool,
    /// Fault injection (`conn_drop`): abruptly close the connection once
    /// this many records have streamed — simulates a client killed
    /// mid-batch.
    drop_at: Option<usize>,
}

struct TickResult {
    progressed: bool,
    close: bool,
}

/// One multiplexed connection's state machine.
struct Conn {
    stream: SocketStream,
    client: ClientId,
    inbuf: Vec<u8>,
    /// Consumed prefix of `inbuf` (compacted between ticks).
    inpos: usize,
    /// Total request-stream bytes consumed so far — the byte offset of
    /// the next unread line, echoed in malformed-request error frames.
    consumed: u64,
    out: Vec<u8>,
    /// Flushed prefix of `out` (compacted when fully flushed).
    outpos: usize,
    last_write_progress: Instant,
    eof: bool,
    close_after_flush: bool,
    streaming: Option<Streaming>,
}

impl Conn {
    fn new(stream: SocketStream, client: ClientId) -> Self {
        Self {
            stream,
            client,
            inbuf: Vec::new(),
            inpos: 0,
            consumed: 0,
            out: Vec::new(),
            outpos: 0,
            last_write_progress: Instant::now(),
            eof: false,
            close_after_flush: false,
            streaming: None,
        }
    }

    fn queue_frame(&mut self, frame: &Frame) {
        self.out.extend_from_slice(frame.to_json_line().as_bytes());
        self.out.push(b'\n');
    }

    fn out_pending(&self) -> usize {
        self.out.len() - self.outpos
    }

    /// Cancels and purges a batch this connection will never stream
    /// (client vanished): queued jobs are dropped, in-flight jobs see
    /// the cancel flag, fairness lanes are freed.
    fn abandon_stream(&mut self, ctx: &Ctx<'_>) {
        if let Some(streaming) = self.streaming.take() {
            streaming.cancel.store(true, Ordering::Relaxed);
            let purged = ctx.scheduler.cancel_client(self.client) as u64;
            ctx.state
                .counters
                .purged_jobs
                .fetch_add(purged, Ordering::Relaxed);
        }
    }

    /// One multiplexing step: read what's there, process requests,
    /// pump stream results, flush what fits.
    fn tick(&mut self, ctx: &Ctx<'_>, waker: &Arc<Waker>) -> TickResult {
        let mut progressed = false;

        // Read phase — runs even mid-stream so a vanished client is
        // noticed by its EOF, not only by a write failure.
        if !self.eof && !self.close_after_flush {
            let mut buf = [0u8; 4096];
            while self.inbuf.len() - self.inpos <= MAX_REQUEST_LINE {
                match self.stream.read(&mut buf) {
                    Ok(0) => {
                        self.eof = true;
                        break;
                    }
                    Ok(n) => {
                        self.inbuf.extend_from_slice(&buf[..n]);
                        progressed = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.eof = true;
                        break;
                    }
                }
            }
            // A single line may not exceed the cap; a pipelining client
            // is merely left unread (backpressure), never disconnected.
            if self.streaming.is_none()
                && self.inbuf.len() - self.inpos > MAX_REQUEST_LINE
                && !self.inbuf[self.inpos..].contains(&b'\n')
            {
                self.queue_frame(&Frame::Error {
                    message: format!("request line exceeds {MAX_REQUEST_LINE} bytes"),
                    offset: Some(self.consumed),
                    line: None,
                });
                self.close_after_flush = true;
            }
        }

        // Process phase — one request at a time; a batch in flight
        // parks pipelined lines in the buffer until its summary is out.
        while self.streaming.is_none() && !self.close_after_flush {
            let Some((offset, line)) = self.take_line() else {
                break;
            };
            progressed = true;
            let line = line.trim().to_string();
            if line.is_empty() {
                continue;
            }
            if ctx.state.shutdown.load(Ordering::Relaxed) {
                // A draining server accepts nothing new, but stays
                // polite: shutdown/ping still get their ack (so a
                // concurrent `submit --shutdown` sees success),
                // anything else gets an error frame.
                let frame = match Request::parse(&line) {
                    Ok(Request::Shutdown) => Frame::ShuttingDown,
                    Ok(Request::Ping) => Frame::Pong,
                    _ => Frame::Error {
                        message: "server is shutting down".to_string(),
                        offset: None,
                        line: None,
                    },
                };
                self.queue_frame(&frame);
                self.close_after_flush = true;
                break;
            }
            match Request::parse(&line) {
                Err(message) => {
                    // A malformed request names the crime scene: where
                    // in the byte stream it sits and (truncated) what it
                    // said, so a client batching thousands of lines can
                    // find the bad one.
                    let echo: String = line.chars().take(120).collect();
                    self.queue_frame(&Frame::Error {
                        message,
                        offset: Some(offset),
                        line: Some(echo),
                    });
                }
                Ok(Request::Ping) => self.queue_frame(&Frame::Pong),
                Ok(Request::Shutdown) => {
                    self.queue_frame(&Frame::ShuttingDown);
                    ctx.state.shutdown.store(true, Ordering::Relaxed);
                    self.close_after_flush = true;
                }
                Ok(Request::Batch(batch)) => {
                    self.admit_batch(ctx, waker, &batch);
                    progressed = true;
                }
            }
        }

        // Stream phase — move ready in-order results into the outbound
        // buffer, then the summary trailer.
        if let Some(streaming) = &mut self.streaming {
            if streaming.drop_at.is_some_and(|at| streaming.next >= at) {
                // Fault injection: the connection dies mid-batch. The
                // close path purges queued jobs and frees lanes exactly
                // like a real vanished client.
                return TickResult {
                    progressed: true,
                    close: true,
                };
            }
            while streaming.next < streaming.total && self.out.len() - self.outpos < OUT_HIGH_WATER
            {
                let Some(result) = streaming.collector.try_take(streaming.next) else {
                    break;
                };
                let mut record = if streaming.emit_stage_times {
                    result.to_json_line_with_stages()
                } else {
                    result.to_json_line()
                };
                record.push('\n');
                self.out.extend_from_slice(record.as_bytes());
                streaming.results.push(result);
                streaming.next += 1;
                progressed = true;
            }
            if streaming.next == streaming.total {
                let streaming = self.streaming.take().expect("streaming state");
                self.finish_batch(ctx, streaming);
                progressed = true;
            }
        }

        // Flush phase.
        while self.outpos < self.out.len() {
            match self.stream.write(&self.out[self.outpos..]) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.outpos += n;
                    self.last_write_progress = Instant::now();
                    progressed = true;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.eof = true;
                    break;
                }
            }
        }
        if self.outpos == self.out.len() && self.outpos > 0 {
            self.out.clear();
            self.outpos = 0;
        }

        // Close decisions.
        let flushed = self.out_pending() == 0;
        let close = (self.eof && (self.streaming.is_some() || flushed || !self.has_line()))
            || (self.close_after_flush && flushed && self.streaming.is_none())
            || (!flushed && self.last_write_progress.elapsed() > WRITE_STALL)
            || (ctx.state.shutdown.load(Ordering::Relaxed)
                && self.streaming.is_none()
                && flushed
                && !self.has_line());
        TickResult { progressed, close }
    }

    /// Extracts the next complete request line from the inbound buffer,
    /// with the byte offset of its start in this connection's request
    /// stream (for error-frame diagnostics).
    fn take_line(&mut self) -> Option<(u64, String)> {
        let rest = &self.inbuf[self.inpos..];
        let nl = rest.iter().position(|b| *b == b'\n')?;
        let offset = self.consumed;
        let line = String::from_utf8_lossy(&rest[..nl]).into_owned();
        self.inpos += nl + 1;
        self.consumed += nl as u64 + 1;
        if self.inpos == self.inbuf.len() {
            self.inbuf.clear();
            self.inpos = 0;
        }
        Some((offset, line))
    }

    fn has_line(&self) -> bool {
        self.inbuf[self.inpos..].contains(&b'\n')
    }

    /// Resolves a batch request and submits its jobs to the scheduler;
    /// on admission the connection enters streaming state, on rejection
    /// it receives a `busy` frame and stays usable.
    fn admit_batch(&mut self, ctx: &Ctx<'_>, waker: &Arc<Waker>, request: &BatchRequest) {
        let options = request.flow_options(&FlowOptions::default());
        let mut batch =
            match load_spec_with_modes(&request.spec, &options, request.k, request.modes) {
                Ok(batch) => batch,
                Err(message) => {
                    return self.queue_frame(&Frame::Error {
                        message,
                        offset: None,
                        line: None,
                    })
                }
            };
        if let Some(n) = request.max_jobs {
            batch.jobs.truncate(n);
        }
        let mut jobs = batch.jobs;
        // The worker groups are shared by every connection — one worker
        // per job, no intra-job fan-out on top (results are
        // byte-identical either way).
        for job in &mut jobs {
            if job.options.intra_parallelism == 0 {
                job.options.intra_parallelism = 1;
            }
        }
        let n = jobs.len();
        let t0 = Instant::now();
        let cache_before = ctx.engine.cache().map(|c| c.stats()).unwrap_or_default();
        let collector = Arc::new(Collector {
            slots: Mutex::new((0..n).map(|_| None).collect()),
            waker: Arc::clone(waker),
        });
        let cancel = Arc::new(AtomicBool::new(false));
        let deadline = ctx.scheduler.deadline();
        let tasks: Vec<JobTask> = jobs
            .into_iter()
            .enumerate()
            .map(|(index, job)| {
                let fingerprint = job.fingerprint();
                let name = job.name.clone();
                let flow = job.flow;
                let engine = Arc::clone(ctx.engine);
                let collector = Arc::clone(&collector);
                let timeout_collector = Arc::clone(&collector);
                let cancel = Arc::clone(&cancel);
                let state = Arc::clone(ctx.state);
                // Exactly one of {completion, watchdog timeout} delivers
                // the collector slot: both race for this flag, the loser
                // drops its record.
                let delivered = Arc::new(AtomicBool::new(false));
                let timeout_delivered = Arc::clone(&delivered);
                let run: Task = Box::new(move || {
                    let result = if cancel.load(Ordering::Relaxed) {
                        JobResult {
                            name: job.name.clone(),
                            flow: job.flow,
                            outcome: Err(JobError::engine("cancelled: client disconnected")),
                            cache: JobCacheInfo::default(),
                            duration: Duration::ZERO,
                            stages: Vec::new(),
                        }
                    } else {
                        // Counted here — not at admission — so the
                        // operator's exit report only claims jobs that
                        // actually ran.
                        state.counters.jobs.fetch_add(1, Ordering::Relaxed);
                        execute_with_retries(&engine, &job, &state.counters)
                    };
                    if delivered
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        collector.deliver(index, result);
                    }
                });
                let on_timeout: Task = Box::new(move || {
                    if timeout_delivered
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        let deadline = deadline.unwrap_or_default();
                        timeout_collector.deliver(
                            index,
                            JobResult {
                                name,
                                flow,
                                outcome: Err(JobError::timeout(format!(
                                    "job exceeded the {} ms deadline and was declared stuck",
                                    deadline.as_millis()
                                ))),
                                cache: JobCacheInfo::default(),
                                duration: deadline,
                                stages: Vec::new(),
                            },
                        );
                    }
                });
                JobTask {
                    fingerprint,
                    run,
                    on_timeout: Some(on_timeout),
                }
            })
            .collect();
        match ctx
            .scheduler
            .submit_jobs(self.client, request.priority, 1, tasks)
        {
            Ok(admitted) => {
                ctx.state.counters.batches.fetch_add(1, Ordering::Relaxed);
                self.queue_frame(&Frame::Accepted { jobs: n });
                if admitted.ahead > 0 {
                    self.queue_frame(&Frame::Queued {
                        ahead: admitted.ahead,
                    });
                }
                // Fault injection: decide *now* whether this connection
                // will be killed mid-batch (once at least half the
                // records have streamed).
                let drop_at = faultpoint::fire(faultpoint::CONN_DROP).then_some(n / 2);
                self.streaming = Some(Streaming {
                    collector,
                    cancel,
                    next: 0,
                    total: n,
                    results: Vec::with_capacity(n),
                    t0,
                    cache_before,
                    emit_stage_times: request.emit_stage_times,
                    drop_at,
                });
            }
            Err(rejected) => {
                ctx.state
                    .counters
                    .rejected_batches
                    .fetch_add(1, Ordering::Relaxed);
                let scope = if rejected.p95_ms.is_some() {
                    "slo"
                } else {
                    "jobs"
                };
                self.queue_frame(&Frame::Busy {
                    scope: scope.to_string(),
                    queued: rejected.queued,
                    capacity: rejected.capacity,
                    p95_ms: rejected.p95_ms,
                });
            }
        }
    }

    /// Builds and queues the summary trailer of a fully streamed batch.
    fn finish_batch(&mut self, ctx: &Ctx<'_>, streaming: Streaming) {
        let mut stats = EngineStats::from_results(&streaming.results);
        // Cache activity attributed to this batch; with concurrent
        // connections the attribution is approximate (the counters
        // are engine-wide), never the records.
        let cache = ctx
            .engine
            .cache()
            .map(|c| c.stats().since(streaming.cache_before))
            .unwrap_or_default();
        stats.quarantined = cache.corrupt as usize;
        let report = BatchReport {
            results: streaming.results,
            stats,
            cache,
            wall: streaming.t0.elapsed(),
            threads: ctx.engine.threads(),
        };
        let mut summary = report.summary_value();
        if let Value::Obj(members) = &mut summary {
            members.push(("shards".to_string(), shard_stats_value(ctx.scheduler)));
        }
        self.queue_frame(&Frame::Summary { summary });
    }
}

/// Job executions that may retry after a (real or injected) panic
/// before the job is declared failed. Transient faults recover to the
/// byte-identical deterministic result; a persistent panic burns all
/// attempts and degrades to one structured error record.
const MAX_JOB_ATTEMPTS: u32 = 8;

/// Runs one job, converting panics into bounded retries. The `job_stall`
/// and `worker_panic` fault points live here — compiled to no-ops when
/// the registry is disarmed.
fn execute_with_retries(engine: &Engine, job: &Job, counters: &Counters) -> JobResult {
    if faultpoint::fire(faultpoint::JOB_STALL) {
        std::thread::sleep(faultpoint::stall_duration());
    }
    let mut attempts = 0;
    loop {
        attempts += 1;
        // A panic inside a flow is an engine bug (or an injected fault),
        // but in a daemon it must degrade to a retry and at worst one
        // failed job: without the catch the collector slot would never
        // be delivered and the batch would hang.
        let run = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if faultpoint::fire(faultpoint::WORKER_PANIC) {
                panic!("injected fault: worker panic");
            }
            engine.execute_job(job)
        }));
        match run {
            Ok(result) => return result,
            Err(panic) if attempts >= MAX_JOB_ATTEMPTS => {
                return JobResult {
                    name: job.name.clone(),
                    flow: job.flow,
                    outcome: Err(JobError::engine(format!(
                        "job panicked ({attempts} attempts): {}",
                        panic_message(panic.as_ref())
                    ))),
                    cache: JobCacheInfo::default(),
                    duration: Duration::ZERO,
                    stages: Vec::new(),
                }
            }
            Err(_) => {
                counters.panic_retries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Per-shard scheduler counters as a JSON array for the summary frame.
fn shard_stats_value(scheduler: &Scheduler) -> Value {
    Value::Arr(
        scheduler
            .stats()
            .into_iter()
            .map(|s| {
                ObjBuilder::new()
                    .field("executed", s.executed)
                    .field("purged", s.purged)
                    .field("timed_out", s.timed_out)
                    .field("queued", s.queued)
                    .field("peak_queued", s.peak_queued)
                    .field("p95_ms", (s.p95_ms * 100.0).round() / 100.0)
                    .build()
            })
            .collect(),
    )
}
