//! # mm-serve — the long-running batch service
//!
//! `mmflow batch` is one process per batch; the ROADMAP's north star is
//! a service that keeps the engine hot. This crate runs the batch engine
//! behind a Unix/TCP socket:
//!
//! * **One shared [`mm_engine::Engine`]** — a single stage cache and a
//!   single persistent worker pool ([`StaticPool`]) serve every
//!   connection, so clients warm each other's caches and the process
//!   never runs more than its worker count of jobs at once.
//! * **The JSONL contract is the wire format** — per-job result records
//!   stream back byte-identical to `mmflow batch` output, framed by
//!   typed `accepted`/`summary`/`error` lines
//!   ([`mm_engine::protocol`]).
//! * **Failure isolation** — one infeasible job yields one structured
//!   error record; a malformed request yields one error frame; neither
//!   takes down the batch, the connection, or the server.
//! * **Graceful drain** — a `shutdown` frame (or [`ServerHandle`]) stops
//!   the accept loop and lets every in-flight batch finish before
//!   [`Server::run`] returns.
//!
//! # Example
//!
//! ```no_run
//! use mm_serve::{Listen, ServeOptions, Server};
//!
//! # fn main() -> std::io::Result<()> {
//! let listen = Listen::parse("unix:/tmp/mmflow.sock").unwrap();
//! let server = Server::bind(&listen, &ServeOptions::default())?;
//! eprintln!("listening on {}", server.listen_addr());
//! let report = server.run()?; // until a shutdown frame arrives
//! eprintln!("served {} batches", report.batches);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod pool;
mod server;

pub use client::{BatchOutcome, Client};
pub use pool::StaticPool;
pub use server::{Listen, ServeOptions, ServeReport, Server, ServerHandle, SocketStream};
