//! # mm-serve — the long-running batch service
//!
//! `mmflow batch` is one process per batch; the ROADMAP's north star is
//! a service that keeps the engine hot. This crate runs the batch engine
//! behind a Unix/TCP socket:
//!
//! * **One shared [`mm_engine::Engine`]** — a single stage cache and
//!   in-memory result memo serve every connection, so clients warm each
//!   other's caches.
//! * **Sharded, fair scheduling** — jobs from all connections meet in a
//!   central [`Scheduler`]: worker threads are split into shards, jobs
//!   are routed by content fingerprint (identical legs land on the same
//!   shard and hit the same warm state), strict priorities order the
//!   queues and a deficit round-robin interleaves clients fairly within
//!   each priority.
//! * **Multiplexed connections** — a few reactor threads drive every
//!   socket; execution capacity is the worker count, not the connection
//!   count.
//! * **Backpressure is structured, never silent** — over-capacity
//!   connections and over-quota batches get `busy` frames; admitted
//!   batches that wait get a `queued` frame.
//! * **The JSONL contract is the wire format** — per-job result records
//!   stream back byte-identical to `mmflow batch` output, framed by
//!   typed `accepted`/`queued`/`summary`/`busy`/`error` lines
//!   ([`mm_engine::protocol`]).
//! * **Failure isolation** — one infeasible job yields one structured
//!   error record; a malformed request yields one error frame; neither
//!   takes down the batch, the connection, or the server. A client that
//!   disconnects mid-batch has its queued jobs purged.
//! * **Graceful drain** — a `shutdown` frame (or [`ServerHandle`]) stops
//!   the accept loop and lets every in-flight batch finish before
//!   [`Server::run`] returns.
//!
//! # Example
//!
//! ```no_run
//! use mm_serve::{Listen, ServeOptions, Server};
//!
//! # fn main() -> std::io::Result<()> {
//! let listen = Listen::parse("unix:/tmp/mmflow.sock").unwrap();
//! let server = Server::bind(&listen, &ServeOptions::default())?;
//! eprintln!("listening on {}", server.listen_addr());
//! let report = server.run()?; // until a shutdown frame arrives
//! eprintln!("served {} batches", report.batches);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod scheduler;
mod server;

pub use client::{BatchOutcome, Client, Rejection, DEFAULT_CONNECT_TIMEOUT};
pub use scheduler::{Admitted, ClientId, Rejected, Scheduler, ShardStats};
pub use server::{Listen, ServeOptions, ServeReport, Server, ServerHandle, SocketStream};
