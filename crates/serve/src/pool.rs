//! The service's persistent worker pool.
//!
//! `mm_flow::pool::run_ordered` spins its workers up per batch with
//! scoped threads — exactly right for a CLI run, wrong for a daemon
//! where every connection would pay thread start-up and the pools would
//! multiply. [`StaticPool`] keeps one fixed set of workers alive for the
//! server's lifetime; every connection submits its jobs here, so the
//! whole process runs at most `threads` jobs at once no matter how many
//! clients are connected.
//!
//! Tasks are coarse (one multi-mode flow job is milliseconds to minutes)
//! so the queues share a single lock: workers prefer the front of their
//! own deque and steal from the back of a sibling's, which preserves the
//! submission-affinity/stealing split of the batch pool without
//! fine-grained synchronization the workload cannot feel.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

type Task = Box<dyn FnOnce() + Send + 'static>;

struct PoolState {
    /// One deque per worker; tasks are dealt round-robin.
    queues: Vec<VecDeque<Task>>,
    /// Next deque to deal a submission to.
    next: usize,
    /// Set once; workers exit when their queues are empty.
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work: Condvar,
}

/// A fixed-size worker pool living as long as the server.
pub struct StaticPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for StaticPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StaticPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl StaticPool {
    /// Starts `threads` workers (`0` means one per available CPU).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queues: (0..threads).map(|_| VecDeque::new()).collect(),
                next: 0,
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|me| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker(&shared, me))
            })
            .collect();
        Self { shared, workers }
    }

    /// The worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one task. Tasks are dealt to the workers round-robin and
    /// stolen when a worker runs dry, so submission order is *start*
    /// order but not completion order — callers that need ordered
    /// results reorder on collection (see the server's batch streaming).
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        let mut state = self.shared.state.lock().expect("pool lock");
        let slot = state.next % state.queues.len();
        state.next = state.next.wrapping_add(1);
        state.queues[slot].push_back(Box::new(task));
        drop(state);
        self.shared.work.notify_one();
    }
}

impl Drop for StaticPool {
    /// Drains: queued tasks still run; workers exit once everything is
    /// done.
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker(shared: &PoolShared, me: usize) {
    loop {
        let task = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(task) = pop_or_steal(&mut state.queues, me) {
                    break Some(task);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.work.wait(state).expect("pool lock");
            }
        };
        match task {
            // A panicking task must not kill the worker: the pool is the
            // server's lifetime capacity, and a dead worker would shrink
            // it forever. Submitters that need the panic surfaced catch
            // it themselves (the server converts it into a per-job error
            // record); here it only costs the task.
            Some(task) => {
                if let Err(panic) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(task)) {
                    eprintln!(
                        "serve: worker task panicked: {}",
                        panic_message(panic.as_ref())
                    );
                }
            }
            None => return,
        }
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn pop_or_steal(queues: &mut [VecDeque<Task>], me: usize) -> Option<Task> {
    if let Some(task) = queues[me].pop_front() {
        return Some(task);
    }
    let n = queues.len();
    for off in 1..n {
        if let Some(task) = queues[(me + off) % n].pop_back() {
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_submitted_task() {
        let pool = StaticPool::new(4);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..64 {
            let count = Arc::clone(&count);
            pool.submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drains
        assert_eq!(count.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn work_is_distributed_across_workers() {
        let n = 4;
        let pool = StaticPool::new(n);
        assert_eq!(pool.threads(), n);
        // All tasks block on one barrier: only true concurrency releases
        // it.
        let barrier = Arc::new(std::sync::Barrier::new(n));
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..n {
            let barrier = Arc::clone(&barrier);
            let done = Arc::clone(&done);
            pool.submit(move || {
                barrier.wait();
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), n);
    }

    #[test]
    fn zero_threads_resolves_to_cpu_count() {
        let pool = StaticPool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn a_panicking_task_does_not_kill_its_worker() {
        // One worker: if the panic unwound the thread, the follow-up
        // tasks would never run and drop() would hang on the join.
        let pool = StaticPool::new(1);
        let done = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("boom"));
        for _ in 0..4 {
            let done = Arc::clone(&done);
            pool.submit(move || {
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 4, "worker survived the panic");
    }

    #[test]
    fn panic_messages_are_extracted() {
        let caught = std::panic::catch_unwind(|| panic!("static str")).expect_err("panics");
        assert_eq!(panic_message(caught.as_ref()), "static str");
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 7)).expect_err("panics");
        assert_eq!(panic_message(caught.as_ref()), "formatted 7");
    }
}
