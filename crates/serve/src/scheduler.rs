//! The central job scheduler: sharded worker groups, bounded queues,
//! priorities, per-client fairness, a per-job deadline watchdog and a
//! latency-SLO admission controller.
//!
//! Every connection submits its batch jobs here instead of owning
//! threads. The scheduler splits its workers into **shards** (worker
//! groups); a job is routed by its content fingerprint
//! ([`mm_engine::Job::fingerprint`]), so identical legs — no matter
//! which client submits them or what the jobs are named — land on the
//! same shard and keep hitting the same warm cache entries while
//! genuinely different work spreads across groups.
//!
//! Each shard queues admitted jobs in a [`FairQueue`]:
//!
//! * **priorities** — levels `0..=9` are strict: a queued job at a
//!   higher level always runs before any lower-level job (the usual
//!   starvation caveat applies and is the operator's knob, not a bug);
//! * **per-client fairness** — within a level, clients are served by
//!   deficit round-robin: each client's lane is granted `weight` pops
//!   per rotation, so a tenant with a 10k-job batch and a tenant with a
//!   2-job batch interleave instead of the small batch waiting out the
//!   large one. A lane that empties forfeits its remaining deficit (no
//!   banking credit across bursts).
//!
//! Admission control is batch-atomic: [`Scheduler::try_submit`] either
//! enqueues *all* jobs of a batch or — when any target shard would
//! exceed its `queue_depth` — enqueues none and reports the occupancy,
//! which the server turns into a structured `busy` frame instead of a
//! silent stall. On top of the depth bound sits the **SLO controller**:
//! each shard tracks a p95 EWMA of job sojourn latency
//! (enqueue → completion, over the last 16 completions); when a target
//! shard's p95 exceeds the configured SLO, low-priority batches are
//! shed first — the further over the SLO, the higher the shed cutoff —
//! and the rejection carries the observed p95 so clients can back off
//! intelligently. Priority 9 is never shed.
//!
//! The **watchdog** guards executing jobs: a job that overruns the
//! configured deadline gets its `on_timeout` callback fired (at most
//! once) so the submitter can synthesize a structured timeout record
//! while the shard keeps serving. The stuck closure itself cannot be
//! killed — it still occupies its worker until it returns — but it no
//! longer wedges the batch waiting on it. Cancellation
//! ([`Scheduler::cancel_client`]) purges a client's queued jobs and
//! frees its fairness lanes; jobs already executing finish (their cache
//! writes are still useful).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Stable identity of one submitting client (the server allocates one
/// per connection).
pub type ClientId = u64;

/// A unit of scheduled work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Sojourn-latency samples each shard keeps for its p95 window.
const LATENCY_WINDOW: usize = 16;

/// One job handed to the scheduler: its routing fingerprint, the work
/// closure, and an optional timeout callback.
pub struct JobTask {
    /// Content fingerprint used for shard routing.
    pub fingerprint: u64,
    /// The work closure.
    pub run: Task,
    /// Fired by the watchdog (at most once) if the job is still
    /// executing when the scheduler's deadline elapses. The job itself
    /// keeps running — the submitter arbitrates which of the two
    /// deliveries (completion vs. timeout) wins.
    pub on_timeout: Option<Task>,
}

impl JobTask {
    /// A plain task without a timeout callback.
    #[must_use]
    pub fn new(fingerprint: u64, run: Task) -> Self {
        Self {
            fingerprint,
            run,
            on_timeout: None,
        }
    }
}

/// One queued job, stamped with its admission time so completion can
/// report the sojourn latency.
struct Entry {
    run: Task,
    on_timeout: Option<Task>,
    deadline: Option<Duration>,
    enqueued: Instant,
}

/// One client's queue within a priority level.
struct Lane<T> {
    jobs: VecDeque<T>,
    /// Pops this client may still take before the rotation moves on.
    deficit: u64,
    /// Pops granted per rotation (≥ 1).
    weight: u64,
}

/// One strict-priority level: a round-robin ring of clients plus their
/// lanes.
struct Level<T> {
    ring: VecDeque<ClientId>,
    lanes: HashMap<ClientId, Lane<T>>,
}

impl<T> Level<T> {
    fn new() -> Self {
        Self {
            ring: VecDeque::new(),
            lanes: HashMap::new(),
        }
    }

    /// Deficit round-robin pop. The front client spends one unit of
    /// deficit per job; at zero it is re-credited with its weight and
    /// rotated to the back, so interleaving across clients is
    /// proportional to their weights.
    fn pop(&mut self) -> Option<T> {
        loop {
            let client = *self.ring.front()?;
            let lane = self.lanes.get_mut(&client).expect("lane for ring entry");
            if lane.jobs.is_empty() {
                self.lanes.remove(&client);
                self.ring.pop_front();
                continue;
            }
            if lane.deficit == 0 {
                lane.deficit = lane.weight.max(1);
                self.ring.rotate_left(1);
                continue;
            }
            lane.deficit -= 1;
            let job = lane.jobs.pop_front().expect("non-empty lane");
            if lane.jobs.is_empty() {
                // Forfeit the rest of the credit with the burst.
                self.lanes.remove(&client);
                self.ring.pop_front();
            }
            return Some(job);
        }
    }
}

/// The per-shard queue: strict priority levels over fair client lanes.
/// Kept free of locks and threads so the scheduling policy is unit
/// testable in isolation.
pub(crate) struct FairQueue<T> {
    levels: BTreeMap<u8, Level<T>>,
    len: usize,
}

impl<T> FairQueue<T> {
    pub(crate) fn new() -> Self {
        Self {
            levels: BTreeMap::new(),
            len: 0,
        }
    }

    /// Queued jobs.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Live fairness lanes (distinct `(priority, client)` pairs holding
    /// queued jobs) — drained and cancelled clients must not leak any.
    pub(crate) fn lanes(&self) -> usize {
        self.levels.values().map(|l| l.lanes.len()).sum()
    }

    /// Enqueues one job for `client` at `priority` with the client's
    /// fairness `weight`.
    pub(crate) fn push(&mut self, client: ClientId, priority: u8, weight: u64, job: T) {
        let level = self.levels.entry(priority).or_insert_with(Level::new);
        let lane = level.lanes.entry(client).or_insert_with(|| {
            level.ring.push_back(client);
            Lane {
                jobs: VecDeque::new(),
                deficit: 0,
                weight: weight.max(1),
            }
        });
        lane.weight = weight.max(1);
        lane.jobs.push_back(job);
        self.len += 1;
    }

    /// Dequeues the next job: highest priority level first, fair within
    /// the level.
    pub(crate) fn pop(&mut self) -> Option<T> {
        loop {
            let priority = *self.levels.keys().next_back()?;
            let level = self.levels.get_mut(&priority).expect("level for key");
            let job = level.pop();
            if level.ring.is_empty() {
                self.levels.remove(&priority);
            }
            if let Some(job) = job {
                self.len -= 1;
                return Some(job);
            }
        }
    }

    /// Drops every queued job of `client` (all levels) and frees its
    /// lanes; returns how many jobs were purged.
    pub(crate) fn cancel_client(&mut self, client: ClientId) -> usize {
        let mut purged = 0;
        self.levels.retain(|_, level| {
            if let Some(lane) = level.lanes.remove(&client) {
                purged += lane.jobs.len();
                level.ring.retain(|c| *c != client);
            }
            !level.ring.is_empty()
        });
        self.len -= purged;
        purged
    }
}

/// A point-in-time snapshot of one shard, for the per-shard stats the
/// serve summary reports.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Jobs handed to a worker so far.
    pub executed: u64,
    /// Jobs purged from the queue by client cancellation.
    pub purged: u64,
    /// Jobs the watchdog declared stuck (deadline overrun).
    pub timed_out: u64,
    /// Jobs currently queued.
    pub queued: usize,
    /// High-water mark of the queue.
    pub peak_queued: usize,
    /// p95 EWMA of job sojourn latency (ms); `0` until jobs complete.
    pub p95_ms: f64,
}

struct ShardState {
    queue: FairQueue<Entry>,
    executed: u64,
    purged: u64,
    timed_out: u64,
    peak_queued: usize,
    /// Sojourn latencies (ms) of the last [`LATENCY_WINDOW`] completions.
    latencies: VecDeque<f64>,
    /// EWMA-blended p95 of the latency window; the SLO signal.
    p95_ewma: f64,
    shutdown: bool,
}

impl ShardState {
    /// Folds one completed job's sojourn latency into the window and
    /// re-blends the p95 EWMA (70 % history, 30 % current window), so
    /// one slow straggler raises the signal gradually and a run of fast
    /// warm jobs decays it back down.
    fn note_latency(&mut self, ms: f64) {
        if self.latencies.len() == LATENCY_WINDOW {
            self.latencies.pop_front();
        }
        self.latencies.push_back(ms);
        let mut window: Vec<f64> = self.latencies.iter().copied().collect();
        window.sort_by(f64::total_cmp);
        let idx = ((window.len() - 1) as f64 * 0.95).round() as usize;
        let window_p95 = window[idx];
        self.p95_ewma = if self.p95_ewma == 0.0 {
            window_p95
        } else {
            0.7 * self.p95_ewma + 0.3 * window_p95
        };
    }
}

struct Shard {
    state: Mutex<ShardState>,
    work: Condvar,
}

/// A pending deadline the watchdog is tracking for one executing job.
struct WatchdogEntry {
    due: Instant,
    seq: u64,
    shard: usize,
    on_timeout: Option<Task>,
}

struct WatchdogState {
    entries: Vec<WatchdogEntry>,
    seq: u64,
    shutdown: bool,
}

/// The deadline watchdog: workers register an executing job's deadline,
/// the watchdog thread fires `on_timeout` for overruns, completion
/// cancels the entry. Registration and cancellation are O(pending
/// entries) — bounded by the worker count, not the queue depth.
struct Watchdog {
    state: Mutex<WatchdogState>,
    tick: Condvar,
}

impl Watchdog {
    fn new() -> Self {
        Self {
            state: Mutex::new(WatchdogState {
                entries: Vec::new(),
                seq: 0,
                shutdown: false,
            }),
            tick: Condvar::new(),
        }
    }

    fn register(&self, shard: usize, due: Instant, on_timeout: Task) -> u64 {
        let mut state = self.state.lock().expect("watchdog lock");
        state.seq += 1;
        let seq = state.seq;
        state.entries.push(WatchdogEntry {
            due,
            seq,
            shard,
            on_timeout: Some(on_timeout),
        });
        self.tick.notify_all();
        seq
    }

    /// Forgets a pending entry (the job completed in time). A no-op if
    /// the watchdog already fired it.
    fn cancel(&self, seq: u64) {
        let mut state = self.state.lock().expect("watchdog lock");
        if let Some(pos) = state.entries.iter().position(|e| e.seq == seq) {
            state.entries.swap_remove(pos);
        }
    }
}

/// The watchdog thread body: sleep until the earliest pending deadline,
/// fire every overrun entry's `on_timeout` (outside the lock), repeat.
fn watchdog_loop(watchdog: &Watchdog, shards: &[Arc<Shard>]) {
    let mut state = watchdog.state.lock().expect("watchdog lock");
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        let mut fired = Vec::new();
        let mut i = 0;
        while i < state.entries.len() {
            if state.entries[i].due <= now {
                fired.push(state.entries.swap_remove(i));
            } else {
                i += 1;
            }
        }
        if !fired.is_empty() {
            drop(state);
            for mut entry in fired {
                shards[entry.shard]
                    .state
                    .lock()
                    .expect("shard lock")
                    .timed_out += 1;
                if let Some(on_timeout) = entry.on_timeout.take() {
                    // A panicking timeout callback must not kill the
                    // watchdog — every other deadline still needs it.
                    if let Err(panic) =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(on_timeout))
                    {
                        eprintln!(
                            "serve: watchdog timeout callback panicked: {}",
                            panic_message(panic.as_ref())
                        );
                    }
                }
            }
            state = watchdog.state.lock().expect("watchdog lock");
            continue;
        }
        let next_due = state.entries.iter().map(|e| e.due).min();
        state = match next_due {
            Some(due) => {
                let wait = due
                    .saturating_duration_since(now)
                    .max(Duration::from_millis(1));
                watchdog
                    .tick
                    .wait_timeout(state, wait)
                    .expect("watchdog lock")
                    .0
            }
            None => watchdog.tick.wait(state).expect("watchdog lock"),
        };
    }
}

/// The sharded worker-group scheduler. Dropping it drains: queued jobs
/// still run, workers exit once every queue is empty.
pub struct Scheduler {
    shards: Vec<Arc<Shard>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    watchdog: Arc<Watchdog>,
    watchdog_thread: Option<std::thread::JoinHandle<()>>,
    queue_depth: usize,
    threads: usize,
    /// Execution deadline applied to every job; `None` disables the
    /// watchdog.
    deadline: Option<Duration>,
    /// p95 sojourn-latency SLO in ms; `None` disables shedding.
    slo_ms: Option<f64>,
    /// Batches shed by the SLO controller.
    shed: AtomicU64,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("shards", &self.shards.len())
            .field("threads", &self.threads)
            .field("queue_depth", &self.queue_depth)
            .field("deadline", &self.deadline)
            .field("slo_ms", &self.slo_ms)
            .finish()
    }
}

/// Why a batch was not admitted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rejected {
    /// Jobs queued across all shards at rejection time (for SLO sheds:
    /// jobs queued on the most loaded target shard).
    pub queued: usize,
    /// Total queue capacity (`shards × queue_depth`); for SLO sheds the
    /// SLO itself in ms.
    pub capacity: usize,
    /// The observed p95 sojourn latency (ms) when the SLO controller
    /// shed the batch; `None` for a plain queue-depth rejection.
    pub p95_ms: Option<f64>,
}

/// A successfully admitted batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Admitted {
    /// Jobs that were queued ahead of this batch across all shards.
    pub ahead: usize,
}

impl Scheduler {
    /// Starts `threads` workers (`0` = one per CPU) split across
    /// `shards` worker groups (`0` = one group per two workers, capped
    /// at 8). Shards never outnumber workers; every shard owns at least
    /// one worker. `queue_depth` bounds each shard's queued (not yet
    /// running) jobs. No deadline, no SLO — see
    /// [`Scheduler::with_options`].
    #[must_use]
    pub fn new(shards: usize, threads: usize, queue_depth: usize) -> Self {
        Self::with_options(shards, threads, queue_depth, None, None)
    }

    /// [`Scheduler::new`] plus robustness knobs: `deadline` arms the
    /// per-job execution watchdog, `slo_ms` arms the p95-latency
    /// admission controller.
    #[must_use]
    pub fn with_options(
        shards: usize,
        threads: usize,
        queue_depth: usize,
        deadline: Option<Duration>,
        slo_ms: Option<f64>,
    ) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            threads
        };
        let shards = if shards == 0 {
            (threads / 2).clamp(1, 8)
        } else {
            shards.min(threads)
        };
        let queue_depth = queue_depth.max(1);
        let shard_handles: Vec<Arc<Shard>> = (0..shards)
            .map(|_| {
                Arc::new(Shard {
                    state: Mutex::new(ShardState {
                        queue: FairQueue::new(),
                        executed: 0,
                        purged: 0,
                        timed_out: 0,
                        peak_queued: 0,
                        latencies: VecDeque::with_capacity(LATENCY_WINDOW),
                        p95_ewma: 0.0,
                        shutdown: false,
                    }),
                    work: Condvar::new(),
                })
            })
            .collect();
        let watchdog = Arc::new(Watchdog::new());
        let watchdog_thread = {
            let watchdog = Arc::clone(&watchdog);
            let shards = shard_handles.clone();
            Some(std::thread::spawn(move || {
                watchdog_loop(&watchdog, &shards);
            }))
        };
        // Deal the workers round-robin so every group gets its fair
        // share (first `threads % shards` groups get one extra).
        let workers = (0..threads)
            .map(|i| {
                let shard = Arc::clone(&shard_handles[i % shards]);
                let watchdog = Arc::clone(&watchdog);
                std::thread::spawn(move || worker(&shard, i % shards, &watchdog))
            })
            .collect();
        Self {
            shards: shard_handles,
            workers,
            watchdog,
            watchdog_thread,
            queue_depth,
            threads,
            deadline,
            slo_ms,
            shed: AtomicU64::new(0),
        }
    }

    /// Total worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker groups.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a job fingerprint routes to.
    #[must_use]
    pub fn shard_of(&self, fingerprint: u64) -> usize {
        (fingerprint % self.shards.len() as u64) as usize
    }

    /// Batches the SLO controller refused to admit.
    #[must_use]
    pub fn shed_batches(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The per-job execution deadline, if the watchdog is armed.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// Admits a whole batch or nothing — compatibility wrapper over
    /// [`Scheduler::submit_jobs`] for tasks without timeout callbacks.
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when a target shard's queue is full or the
    /// SLO controller sheds the batch.
    pub fn try_submit(
        &self,
        client: ClientId,
        priority: u8,
        weight: u64,
        tasks: Vec<(u64, Task)>,
    ) -> Result<Admitted, Rejected> {
        self.submit_jobs(
            client,
            priority,
            weight,
            tasks
                .into_iter()
                .map(|(fingerprint, run)| JobTask::new(fingerprint, run))
                .collect(),
        )
    }

    /// Admits a whole batch or nothing: every job is routed to its
    /// shard by fingerprint; if any target shard would exceed
    /// `queue_depth`, no job is enqueued and the occupancy comes back
    /// as [`Rejected`] for the server's `busy` frame.
    ///
    /// When an SLO is configured and a target shard's p95 sojourn
    /// latency exceeds it, low-priority batches are shed first: the
    /// cutoff rises with the overshoot
    /// (`((p95/slo − 1) × 4)` levels, capped at 8), so mild pressure
    /// sheds only priority 0 while a 3× overshoot sheds everything
    /// below 9. Priority 9 is never shed — the operator's escape hatch
    /// always gets through (subject to queue depth).
    ///
    /// # Errors
    ///
    /// Returns [`Rejected`] when a target shard's queue is full, or —
    /// with `p95_ms` populated — when the SLO controller sheds the
    /// batch.
    pub fn submit_jobs(
        &self,
        client: ClientId,
        priority: u8,
        weight: u64,
        tasks: Vec<JobTask>,
    ) -> Result<Admitted, Rejected> {
        let enqueued = Instant::now();
        let mut per_shard: Vec<Vec<Entry>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        for task in tasks {
            let shard = self.shard_of(task.fingerprint);
            per_shard[shard].push(Entry {
                run: task.run,
                on_timeout: task.on_timeout,
                deadline: self.deadline,
                enqueued,
            });
        }
        // Lock every shard in index order (no deadlock: this is the only
        // multi-shard lock site) so admission is atomic across shards.
        let mut guards: Vec<MutexGuard<'_, ShardState>> = self
            .shards
            .iter()
            .map(|s| s.state.lock().expect("shard lock"))
            .collect();
        let queued_now: usize = guards.iter().map(|g| g.queue.len()).sum();
        if let Some(slo) = self.slo_ms {
            if priority < 9 {
                let worst = per_shard
                    .iter()
                    .zip(guards.iter())
                    .filter(|(add, _)| !add.is_empty())
                    .map(|(_, g)| g.p95_ewma)
                    .fold(0.0f64, f64::max);
                if worst > slo {
                    let cutoff = ((worst / slo - 1.0) * 4.0).clamp(0.0, 8.0) as u8;
                    if priority <= cutoff {
                        let loaded = per_shard
                            .iter()
                            .zip(guards.iter())
                            .filter(|(add, _)| !add.is_empty())
                            .map(|(_, g)| g.queue.len())
                            .max()
                            .unwrap_or(0);
                        self.shed.fetch_add(1, Ordering::Relaxed);
                        return Err(Rejected {
                            queued: loaded,
                            capacity: slo as usize,
                            p95_ms: Some(worst),
                        });
                    }
                }
            }
        }
        if per_shard
            .iter()
            .zip(guards.iter())
            .any(|(add, g)| g.queue.len() + add.len() > self.queue_depth)
        {
            return Err(Rejected {
                queued: queued_now,
                capacity: self.shards.len() * self.queue_depth,
                p95_ms: None,
            });
        }
        for ((add, guard), shard) in per_shard
            .into_iter()
            .zip(guards.iter_mut())
            .zip(self.shards.iter())
        {
            if add.is_empty() {
                continue;
            }
            for entry in add {
                guard.queue.push(client, priority, weight, entry);
            }
            guard.peak_queued = guard.peak_queued.max(guard.queue.len());
            shard.work.notify_all();
        }
        Ok(Admitted { ahead: queued_now })
    }

    /// Purges every queued job of `client` across all shards (their
    /// task closures are dropped unexecuted) and frees the client's
    /// fairness lanes. Jobs already running finish normally.
    pub fn cancel_client(&self, client: ClientId) -> usize {
        let mut purged = 0;
        for shard in &self.shards {
            let mut state = shard.state.lock().expect("shard lock");
            let n = state.queue.cancel_client(client);
            state.purged += n as u64;
            purged += n;
        }
        purged
    }

    /// Point-in-time per-shard counters.
    #[must_use]
    pub fn stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|shard| {
                let state = shard.state.lock().expect("shard lock");
                ShardStats {
                    executed: state.executed,
                    purged: state.purged,
                    timed_out: state.timed_out,
                    queued: state.queue.len(),
                    peak_queued: state.peak_queued,
                    p95_ms: state.p95_ewma,
                }
            })
            .collect()
    }

    /// Live fairness lanes across all shards — `0` when nothing is
    /// queued (leak check for disconnect tests).
    #[must_use]
    pub fn client_lanes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.state.lock().expect("shard lock").queue.lanes())
            .sum()
    }
}

impl Drop for Scheduler {
    /// Drains: queued jobs still run; workers exit once their shard is
    /// empty. The watchdog outlives the workers so deadlines armed
    /// during the drain still fire.
    fn drop(&mut self) {
        for shard in &self.shards {
            shard.state.lock().expect("shard lock").shutdown = true;
            shard.work.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.watchdog.state.lock().expect("watchdog lock").shutdown = true;
        self.watchdog.tick.notify_all();
        if let Some(handle) = self.watchdog_thread.take() {
            let _ = handle.join();
        }
    }
}

fn worker(shard: &Shard, shard_index: usize, watchdog: &Watchdog) {
    loop {
        let entry = {
            let mut state = shard.state.lock().expect("shard lock");
            loop {
                if let Some(entry) = state.queue.pop() {
                    state.executed += 1;
                    break Some(entry);
                }
                if state.shutdown {
                    break None;
                }
                state = shard.work.wait(state).expect("shard lock");
            }
        };
        match entry {
            // A panicking task must not kill the worker: the shard is
            // part of the server's lifetime capacity. Submitters that
            // need the panic surfaced catch it themselves (the server
            // converts it into a per-job error record).
            Some(mut entry) => {
                let ticket = match (entry.deadline, entry.on_timeout.take()) {
                    (Some(deadline), Some(on_timeout)) => {
                        Some(watchdog.register(shard_index, Instant::now() + deadline, on_timeout))
                    }
                    _ => None,
                };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(entry.run));
                if let Some(seq) = ticket {
                    watchdog.cancel(seq);
                }
                let sojourn_ms = entry.enqueued.elapsed().as_secs_f64() * 1000.0;
                shard
                    .state
                    .lock()
                    .expect("shard lock")
                    .note_latency(sojourn_ms);
                if let Err(panic) = outcome {
                    eprintln!(
                        "serve: worker task panicked: {}",
                        panic_message(panic.as_ref())
                    );
                }
            }
            None => return,
        }
    }
}

/// Best-effort extraction of a panic payload's message.
pub(crate) fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fair_queue_interleaves_clients_round_robin() {
        let mut q = FairQueue::new();
        for i in 0..6 {
            q.push(1, 1, 1, format!("a{i}"));
        }
        q.push(2, 1, 1, "b0".to_string());
        q.push(2, 1, 1, "b1".to_string());
        let order: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        // The 2-job client is done after at most 4 pops despite arriving
        // behind a 6-job burst.
        let b1 = order.iter().position(|j| j == "b1").unwrap();
        assert!(b1 <= 3, "small client starved: {order:?}");
        assert_eq!(order.len(), 8);
        assert_eq!(q.lanes(), 0, "drained queue leaks no lanes");
    }

    #[test]
    fn fair_queue_weights_scale_the_interleave() {
        let mut q = FairQueue::new();
        for i in 0..8 {
            q.push(1, 1, 3, format!("h{i}")); // weight 3
            q.push(2, 1, 1, format!("l{i}")); // weight 1
        }
        let first8: Vec<String> = (0..8).map(|_| q.pop().unwrap()).collect();
        let heavy = first8.iter().filter(|j| j.starts_with('h')).count();
        // Deficit round-robin serves roughly 3 heavy jobs per light one.
        assert!(heavy >= 5, "weight 3 should dominate: {first8:?}");
        assert!(heavy < 8, "weight 1 must still progress: {first8:?}");
    }

    #[test]
    fn fair_queue_priorities_are_strict() {
        let mut q = FairQueue::new();
        q.push(1, 0, 1, "low");
        q.push(1, 9, 1, "high");
        q.push(2, 4, 1, "mid");
        assert_eq!(q.pop(), Some("high"));
        assert_eq!(q.pop(), Some("mid"));
        assert_eq!(q.pop(), Some("low"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fair_queue_cancel_purges_only_that_client() {
        let mut q = FairQueue::new();
        for i in 0..4 {
            q.push(1, 1, 1, format!("a{i}"));
            q.push(2, 5, 1, format!("b{i}"));
        }
        assert_eq!(q.cancel_client(2), 4);
        assert_eq!(q.len(), 4);
        assert_eq!(q.lanes(), 1);
        let rest: Vec<String> = std::iter::from_fn(|| q.pop()).collect();
        assert!(rest.iter().all(|j| j.starts_with('a')), "{rest:?}");
        assert_eq!(q.len(), 0);
        assert_eq!(q.cancel_client(7), 0, "unknown clients purge nothing");
    }

    #[test]
    fn scheduler_runs_every_admitted_task_and_drains_on_drop() {
        let s = Scheduler::new(2, 4, 64);
        assert_eq!(s.shards(), 2);
        assert_eq!(s.threads(), 4);
        let count = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<(u64, Task)> = (0..32u64)
            .map(|i| {
                let count = Arc::clone(&count);
                let task: Task = Box::new(move || {
                    count.fetch_add(1, Ordering::SeqCst);
                });
                (i, task)
            })
            .collect();
        s.try_submit(1, 1, 1, tasks).expect("fits");
        drop(s); // drains
        assert_eq!(count.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn admission_is_batch_atomic_and_reports_occupancy() {
        // One paused worker so queued jobs stay queued.
        let s = Scheduler::new(1, 1, 4);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        s.try_submit(
            1,
            1,
            1,
            vec![(
                0,
                Box::new(move || {
                    g.wait();
                }) as Task,
            )],
        )
        .expect("admitted");
        // Wait until the worker picked the blocker up.
        while s.stats()[0].executed == 0 {
            std::thread::yield_now();
        }
        // 4 queued jobs fill the depth exactly.
        let fill: Vec<(u64, Task)> = (0..4).map(|i| (i, Box::new(|| {}) as Task)).collect();
        let admitted = s.try_submit(1, 1, 1, fill).expect("fills the queue");
        assert_eq!(admitted.ahead, 0);
        // A 2-job batch must be rejected whole, not half-enqueued.
        let over: Vec<(u64, Task)> = (0..2).map(|i| (i, Box::new(|| {}) as Task)).collect();
        let rejected = s.try_submit(2, 1, 1, over).expect_err("over depth");
        assert_eq!(rejected.queued, 4);
        assert_eq!(rejected.capacity, 4);
        assert_eq!(rejected.p95_ms, None, "depth rejection, not an SLO shed");
        assert_eq!(s.stats()[0].queued, 4, "rejected batch left nothing behind");
        gate.wait(); // release the blocker, let the drop drain
    }

    #[test]
    fn cancel_client_purges_queued_jobs_and_frees_lanes() {
        let s = Scheduler::new(1, 1, 64);
        let gate = Arc::new(std::sync::Barrier::new(2));
        let g = Arc::clone(&gate);
        let ran = Arc::new(AtomicUsize::new(0));
        s.try_submit(
            9,
            1,
            1,
            vec![(
                0,
                Box::new(move || {
                    g.wait();
                }) as Task,
            )],
        )
        .expect("admitted");
        while s.stats()[0].executed == 0 {
            std::thread::yield_now();
        }
        for client in [1u64, 2] {
            let tasks: Vec<(u64, Task)> = (0..5)
                .map(|i| {
                    let ran = Arc::clone(&ran);
                    (
                        i,
                        Box::new(move || {
                            ran.fetch_add(1, Ordering::SeqCst);
                        }) as Task,
                    )
                })
                .collect();
            s.try_submit(client, 1, 1, tasks).expect("admitted");
        }
        assert_eq!(s.cancel_client(1), 5);
        assert_eq!(s.client_lanes(), 1, "client 2's lane survives");
        gate.wait();
        drop(s);
        assert_eq!(ran.load(Ordering::SeqCst), 5, "only client 2's jobs ran");
    }

    #[test]
    fn a_panicking_task_does_not_kill_its_worker() {
        let s = Scheduler::new(1, 1, 64);
        let done = Arc::new(AtomicUsize::new(0));
        let mut tasks: Vec<(u64, Task)> = vec![(0, Box::new(|| panic!("boom")) as Task)];
        for i in 0..4 {
            let done = Arc::clone(&done);
            tasks.push((
                i,
                Box::new(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                }) as Task,
            ));
        }
        s.try_submit(1, 1, 1, tasks).expect("admitted");
        drop(s);
        assert_eq!(done.load(Ordering::SeqCst), 4, "worker survived the panic");
    }

    #[test]
    fn panic_messages_are_extracted() {
        let caught = std::panic::catch_unwind(|| panic!("static str")).expect_err("panics");
        assert_eq!(panic_message(caught.as_ref()), "static str");
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 7)).expect_err("panics");
        assert_eq!(panic_message(caught.as_ref()), "formatted 7");
    }

    #[test]
    fn shard_resolution_bounds() {
        let s = Scheduler::new(0, 4, 8);
        assert_eq!(s.shards(), 2, "auto: one group per two workers");
        let s = Scheduler::new(8, 2, 8);
        assert_eq!(s.shards(), 2, "groups never outnumber workers");
        let s = Scheduler::new(0, 1, 8);
        assert_eq!(s.shards(), 1);
        assert_eq!(s.shard_of(7), s.shard_of(7));
    }

    #[test]
    fn watchdog_times_out_a_stuck_job_and_the_shard_survives() {
        let s = Scheduler::with_options(1, 1, 64, Some(Duration::from_millis(30)), None);
        let timed_out = Arc::new(AtomicUsize::new(0));
        let t = Arc::clone(&timed_out);
        let stuck = JobTask {
            fingerprint: 0,
            run: Box::new(|| std::thread::sleep(Duration::from_millis(200))),
            on_timeout: Some(Box::new(move || {
                t.fetch_add(1, Ordering::SeqCst);
            })),
        };
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        let follower = JobTask {
            fingerprint: 1,
            run: Box::new(move || {
                d.fetch_add(1, Ordering::SeqCst);
            }),
            on_timeout: Some(Box::new(|| panic!("follower must not time out"))),
        };
        s.submit_jobs(1, 1, 1, vec![stuck, follower])
            .expect("admitted");
        // The watchdog fires while the stuck job is still sleeping.
        let start = Instant::now();
        while timed_out.load(Ordering::SeqCst) == 0 {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "watchdog never fired"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = s.stats();
        assert_eq!(stats[0].timed_out, 1, "overrun counted on the shard");
        drop(s); // drains: the follower still runs after the overrun
        assert_eq!(
            done.load(Ordering::SeqCst),
            1,
            "shard survived the stuck job"
        );
        assert_eq!(
            timed_out.load(Ordering::SeqCst),
            1,
            "timeout fired exactly once"
        );
    }

    #[test]
    fn fast_jobs_never_trip_the_watchdog() {
        let s = Scheduler::with_options(1, 1, 64, Some(Duration::from_secs(10)), None);
        let tasks: Vec<JobTask> = (0..8)
            .map(|i| JobTask {
                fingerprint: i,
                run: Box::new(|| {}),
                on_timeout: Some(Box::new(|| panic!("must not fire"))),
            })
            .collect();
        s.submit_jobs(1, 1, 1, tasks).expect("admitted");
        drop(s);
        // The panicking callbacks never ran (they would have printed and
        // been swallowed, but the timed_out counter gives it away).
    }

    #[test]
    fn slo_controller_sheds_low_priority_first_and_reports_p95() {
        // Absurdly tight SLO: any completed work trips it.
        let s = Scheduler::with_options(1, 1, 64, None, Some(0.000_001));
        assert_eq!(s.shed_batches(), 0);
        // Before any completion the latency window is empty — everything
        // is admitted.
        s.try_submit(1, 0, 1, vec![(0, Box::new(|| {}) as Task)])
            .expect("no latency signal yet");
        // Wait for the completion to populate the window.
        let start = Instant::now();
        while s.stats()[0].p95_ms == 0.0 {
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "latency never noted"
            );
            std::thread::yield_now();
        }
        let rejected = s
            .try_submit(1, 0, 1, vec![(0, Box::new(|| {}) as Task)])
            .expect_err("p95 over SLO sheds priority 0");
        assert!(rejected.p95_ms.is_some(), "shed carries the observed p95");
        assert!(rejected.p95_ms.unwrap() > 0.0);
        assert_eq!(s.shed_batches(), 1);
        // Priority 9 is never shed.
        s.try_submit(1, 9, 1, vec![(0, Box::new(|| {}) as Task)])
            .expect("priority 9 always admitted");
        drop(s);
    }

    #[test]
    fn slo_shed_cutoff_spares_priorities_above_it() {
        // A huge overshoot (tiny SLO) drives the cutoff to its cap of 8:
        // priorities 0..=8 shed, 9 admitted — checked above. Here check
        // the arithmetic of the cutoff itself.
        let cutoff = |p95: f64, slo: f64| ((p95 / slo - 1.0) * 4.0).clamp(0.0, 8.0) as u8;
        assert_eq!(cutoff(10.0, 10.0), 0, "at the SLO nothing extra sheds");
        assert_eq!(cutoff(12.5, 10.0), 1, "25% over sheds 0..=1");
        assert_eq!(cutoff(20.0, 10.0), 4, "2x over sheds 0..=4");
        assert_eq!(cutoff(1000.0, 10.0), 8, "cap: priority 9 survives any p95");
    }
}
