//! A line-protocol client for the batch service.
//!
//! `mmflow submit`, the serve benchmark and embedders all need the same
//! exchange — send one request, split the response stream into raw
//! records and typed frames, stop at the trailer — so the loop lives
//! here once instead of being hand-rolled per caller. (The protocol
//! *tests* deliberately keep their own raw loops: asserting on the exact
//! frame sequence is their job.)
//!
//! # Retrying
//!
//! [`Client::submit_with_retries`] survives two failure classes the
//! plain [`Client::submit`] surfaces raw:
//!
//! * **`busy` frames** (queue depth, connection cap, SLO shedding) —
//!   exponential backoff with jitter, then resubmit on the same
//!   connection;
//! * **transport failures mid-batch** (server restarted, connection
//!   dropped) — reconnect and resubmit.
//!
//! Resubmission is safe because batches are idempotent: jobs are
//! deterministic and content-cached, so a re-run streams byte-identical
//! records. To keep the caller's view exactly-once, records are
//! buffered per attempt and only released to the callback after the
//! summary trailer arrives — a half-streamed failed attempt is
//! discarded wholesale, never double-delivered.

use crate::server::{Listen, SocketStream};
use mm_engine::json::Value;
use mm_engine::protocol::{classify, BatchRequest, Frame, Request, ServerLine};
use std::io::{BufRead, BufReader, Write};
use std::time::Duration;

/// Default bound on a connection attempt (see
/// [`Client::connect_with_timeout`]).
pub const DEFAULT_CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

/// What a successful batch submission returned.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Jobs the server accepted (after `max_jobs` truncation).
    pub accepted: usize,
    /// Jobs queued ahead of this batch at admission (from the server's
    /// `queued` frame; `0` when the batch started immediately).
    pub queued_ahead: usize,
    /// The summary trailer (job counts, timings, cache counters).
    pub summary: Value,
    /// Submission attempts that failed (busy backoff or reconnect)
    /// before this outcome; `0` on first-try success.
    pub retries: u32,
}

impl BatchOutcome {
    /// Jobs the summary reports as failed.
    #[must_use]
    pub fn failed_jobs(&self) -> usize {
        self.summary
            .get("failed")
            .and_then(Value::as_usize)
            .unwrap_or(0)
    }
}

/// Why the server declined a batch without running it. The connection
/// stays usable in both cases.
#[derive(Debug, Clone)]
pub enum Rejection {
    /// A structured `busy` frame: capacity backpressure, retry later.
    Busy {
        /// What was full: `"connections"`, `"jobs"` or `"slo"`.
        scope: String,
        /// Occupancy the server reported.
        queued: usize,
        /// The configured capacity that was hit (for `"slo"` the SLO
        /// itself, in ms).
        capacity: usize,
        /// The observed p95 batch latency (ms) when the SLO controller
        /// shed the batch; absent for plain capacity rejections.
        p95_ms: Option<f64>,
    },
    /// An `error` frame: the request itself was refused (bad spec,
    /// draining server, …).
    Error(String),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Busy {
                scope,
                queued,
                capacity,
                p95_ms,
            } => {
                write!(f, "server busy ({scope}: {queued}/{capacity}")?;
                if let Some(p95) = p95_ms {
                    write!(f, ", observed p95 {p95:.2} ms")?;
                }
                write!(f, ")")
            }
            Rejection::Error(message) => write!(f, "{message}"),
        }
    }
}

/// One connected protocol session.
#[derive(Debug)]
pub struct Client {
    listen: Listen,
    connect_timeout: Duration,
    writer: SocketStream,
    reader: BufReader<SocketStream>,
}

impl Client {
    /// Connects to a serving address, bounding the attempt by
    /// [`DEFAULT_CONNECT_TIMEOUT`].
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be reached in time; the error names
    /// the address so `mmflow submit` surfaces a useful diagnosis.
    pub fn connect(listen: &Listen) -> std::io::Result<Self> {
        Self::connect_with_timeout(listen, DEFAULT_CONNECT_TIMEOUT)
    }

    /// [`Client::connect`] with an explicit connection-attempt bound.
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be reached within `timeout`.
    pub fn connect_with_timeout(listen: &Listen, timeout: Duration) -> std::io::Result<Self> {
        let writer = SocketStream::connect_timeout(listen, timeout).map_err(|e| {
            std::io::Error::new(
                e.kind(),
                format!(
                    "cannot connect to {listen} (timeout {}s): {e}",
                    timeout.as_secs()
                ),
            )
        })?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self {
            listen: listen.clone(),
            connect_timeout: timeout,
            writer,
            reader,
        })
    }

    /// Replaces a dead connection with a fresh one to the same address.
    fn reconnect(&mut self) -> std::io::Result<()> {
        let fresh = Self::connect_with_timeout(&self.listen, self.connect_timeout)?;
        self.writer = fresh.writer;
        self.reader = fresh.reader;
        Ok(())
    }

    fn send(&mut self, request: &Request) -> std::io::Result<()> {
        let mut line = request.to_json_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-exchange",
            ));
        }
        Ok(line)
    }

    fn read_frame(&mut self) -> std::io::Result<Frame> {
        let line = self.read_line()?;
        match classify(line.trim_end()).map_err(invalid_data)? {
            ServerLine::Frame(frame) => Ok(frame),
            ServerLine::Record(record) => Err(invalid_data(format!(
                "expected a frame, got a record: {record}"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a non-`pong` answer.
    pub fn ping(&mut self) -> std::io::Result<()> {
        self.send(&Request::Ping)?;
        match self.read_frame()? {
            Frame::Pong => Ok(()),
            other => Err(invalid_data(format!("expected pong, got {other:?}"))),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a missing acknowledgement.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        self.send(&Request::Shutdown)?;
        match self.read_frame()? {
            Frame::ShuttingDown => Ok(()),
            other => Err(invalid_data(format!(
                "expected shutting_down, got {other:?}"
            ))),
        }
    }

    /// Submits one batch and streams it: `on_record` receives every raw
    /// record line (without the trailing newline) in job order —
    /// byte-identical to `mmflow batch` stdout.
    ///
    /// Returns `Ok(Err(rejection))` when the server declines the batch
    /// — an `error` frame (bad request) or a `busy` frame (capacity
    /// backpressure, worth retrying). The connection stays usable.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a mid-stream disconnect, or a frame
    /// that violates the protocol.
    pub fn submit(
        &mut self,
        request: &BatchRequest,
        mut on_record: impl FnMut(&str) -> std::io::Result<()>,
    ) -> std::io::Result<Result<BatchOutcome, Rejection>> {
        self.send(&Request::Batch(request.clone()))?;
        let mut accepted = 0usize;
        let mut queued_ahead = 0usize;
        loop {
            let line = self.read_line()?;
            match classify(line.trim_end()).map_err(invalid_data)? {
                ServerLine::Record(record) => on_record(record)?,
                ServerLine::Frame(Frame::Accepted { jobs }) => accepted = jobs,
                ServerLine::Frame(Frame::Queued { ahead }) => queued_ahead = ahead,
                ServerLine::Frame(Frame::Summary { summary }) => {
                    return Ok(Ok(BatchOutcome {
                        accepted,
                        queued_ahead,
                        summary,
                        retries: 0,
                    }));
                }
                ServerLine::Frame(Frame::Error { message, .. }) => {
                    return Ok(Err(Rejection::Error(message)));
                }
                ServerLine::Frame(Frame::Busy {
                    scope,
                    queued,
                    capacity,
                    p95_ms,
                }) => {
                    return Ok(Err(Rejection::Busy {
                        scope,
                        queued,
                        capacity,
                        p95_ms,
                    }));
                }
                ServerLine::Frame(other) => {
                    return Err(invalid_data(format!("unexpected frame: {other:?}")));
                }
            }
        }
    }

    /// [`Client::submit`] with up to `retries` additional attempts.
    ///
    /// `busy` frames back off exponentially (with jitter) and resubmit
    /// on the same connection; transport failures reconnect first.
    /// Records are buffered per attempt and released to `on_record`
    /// only after the summary trailer arrives, so a failed attempt's
    /// partial stream is discarded — the caller sees every record of
    /// the winning attempt exactly once, never a duplicate from a
    /// retry. Non-retryable rejections (`error` frames) return
    /// immediately.
    ///
    /// # Errors
    ///
    /// Fails when transport errors outlive the retry budget.
    pub fn submit_with_retries(
        &mut self,
        request: &BatchRequest,
        retries: u32,
        mut on_record: impl FnMut(&str) -> std::io::Result<()>,
    ) -> std::io::Result<Result<BatchOutcome, Rejection>> {
        let mut attempt = 0u32;
        loop {
            let mut records: Vec<String> = Vec::new();
            let submitted = self.submit(request, |record| {
                records.push(record.to_string());
                Ok(())
            });
            match submitted {
                Ok(Ok(mut outcome)) => {
                    for record in &records {
                        on_record(record)?;
                    }
                    outcome.retries = attempt;
                    return Ok(Ok(outcome));
                }
                Ok(Err(rejection)) => {
                    if !matches!(rejection, Rejection::Busy { .. }) || attempt >= retries {
                        return Ok(Err(rejection));
                    }
                    attempt += 1;
                    std::thread::sleep(backoff(attempt));
                }
                Err(error) => {
                    if attempt >= retries {
                        return Err(error);
                    }
                    attempt += 1;
                    std::thread::sleep(backoff(attempt));
                    // Best effort: if the reconnect fails too, the next
                    // submit errors out and consumes another attempt.
                    let _ = self.reconnect();
                }
            }
        }
    }
}

/// Exponential backoff with jitter: 10 ms base doubling per attempt
/// (capped at 640 ms), sleeping between half and one-and-a-half bases.
/// Jitter comes from the standard library's randomly seeded hasher —
/// enough to decorrelate a thundering herd without a rand dependency.
fn backoff(attempt: u32) -> Duration {
    use std::hash::{BuildHasher, Hasher};
    let base = 10u64 << (attempt.min(7) - 1).min(6);
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    hasher.write_u32(attempt);
    let jitter = hasher.finish() % base.max(1);
    Duration::from_millis(base / 2 + jitter)
}

fn invalid_data(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_stays_bounded() {
        for attempt in 1..12 {
            let d = backoff(attempt);
            assert!(d >= Duration::from_millis(5), "attempt {attempt}: {d:?}");
            assert!(d < Duration::from_millis(1280), "attempt {attempt}: {d:?}");
        }
        // The cap: late attempts never exceed 640 ms base.
        assert!(backoff(30) < Duration::from_millis(1280));
    }

    #[test]
    fn connect_failure_is_a_structured_error_naming_the_address() {
        // Bind-then-drop guarantees a port nothing listens on.
        let port = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let listen = Listen::Tcp(format!("127.0.0.1:{port}"));
        let err = Client::connect_with_timeout(&listen, Duration::from_millis(500))
            .expect_err("nothing listens there");
        let message = err.to_string();
        assert!(
            message.contains(&format!("cannot connect to tcp:127.0.0.1:{port}")),
            "error must name the address: {message}"
        );
    }

    #[test]
    fn connect_to_a_missing_unix_socket_fails_fast() {
        let listen = Listen::Unix("/nonexistent/mmflow-test.sock".into());
        let t0 = std::time::Instant::now();
        assert!(Client::connect(&listen).is_err());
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "unix connect must not hang"
        );
    }
}
