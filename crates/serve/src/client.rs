//! A line-protocol client for the batch service.
//!
//! `mmflow submit`, the serve benchmark and embedders all need the same
//! exchange — send one request, split the response stream into raw
//! records and typed frames, stop at the trailer — so the loop lives
//! here once instead of being hand-rolled per caller. (The protocol
//! *tests* deliberately keep their own raw loops: asserting on the exact
//! frame sequence is their job.)

use crate::server::{Listen, SocketStream};
use mm_engine::json::Value;
use mm_engine::protocol::{classify, BatchRequest, Frame, Request, ServerLine};
use std::io::{BufRead, BufReader, Write};

/// What a successful batch submission returned.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// Jobs the server accepted (after `max_jobs` truncation).
    pub accepted: usize,
    /// Jobs queued ahead of this batch at admission (from the server's
    /// `queued` frame; `0` when the batch started immediately).
    pub queued_ahead: usize,
    /// The summary trailer (job counts, timings, cache counters).
    pub summary: Value,
}

impl BatchOutcome {
    /// Jobs the summary reports as failed.
    #[must_use]
    pub fn failed_jobs(&self) -> usize {
        self.summary
            .get("failed")
            .and_then(Value::as_usize)
            .unwrap_or(0)
    }
}

/// Why the server declined a batch without running it. The connection
/// stays usable in both cases.
#[derive(Debug, Clone)]
pub enum Rejection {
    /// A structured `busy` frame: capacity backpressure, retry later.
    Busy {
        /// What was full: `"connections"` or `"jobs"`.
        scope: String,
        /// Occupancy the server reported.
        queued: usize,
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// An `error` frame: the request itself was refused (bad spec,
    /// draining server, …).
    Error(String),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Busy {
                scope,
                queued,
                capacity,
            } => write!(f, "server busy ({scope}: {queued}/{capacity})"),
            Rejection::Error(message) => write!(f, "{message}"),
        }
    }
}

/// One connected protocol session.
#[derive(Debug)]
pub struct Client {
    writer: SocketStream,
    reader: BufReader<SocketStream>,
}

impl Client {
    /// Connects to a serving address.
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be reached.
    pub fn connect(listen: &Listen) -> std::io::Result<Self> {
        let writer = SocketStream::connect(listen)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    fn send(&mut self, request: &Request) -> std::io::Result<()> {
        let mut line = request.to_json_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()
    }

    fn read_line(&mut self) -> std::io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-exchange",
            ));
        }
        Ok(line)
    }

    fn read_frame(&mut self) -> std::io::Result<Frame> {
        let line = self.read_line()?;
        match classify(line.trim_end()).map_err(invalid_data)? {
            ServerLine::Frame(frame) => Ok(frame),
            ServerLine::Record(record) => Err(invalid_data(format!(
                "expected a frame, got a record: {record}"
            ))),
        }
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a non-`pong` answer.
    pub fn ping(&mut self) -> std::io::Result<()> {
        self.send(&Request::Ping)?;
        match self.read_frame()? {
            Frame::Pong => Ok(()),
            other => Err(invalid_data(format!("expected pong, got {other:?}"))),
        }
    }

    /// Asks the server to drain and exit; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// Fails on transport errors or a missing acknowledgement.
    pub fn shutdown(&mut self) -> std::io::Result<()> {
        self.send(&Request::Shutdown)?;
        match self.read_frame()? {
            Frame::ShuttingDown => Ok(()),
            other => Err(invalid_data(format!(
                "expected shutting_down, got {other:?}"
            ))),
        }
    }

    /// Submits one batch and streams it: `on_record` receives every raw
    /// record line (without the trailing newline) in job order —
    /// byte-identical to `mmflow batch` stdout.
    ///
    /// Returns `Ok(Err(rejection))` when the server declines the batch
    /// — an `error` frame (bad request) or a `busy` frame (capacity
    /// backpressure, worth retrying). The connection stays usable.
    ///
    /// # Errors
    ///
    /// Fails on transport errors, a mid-stream disconnect, or a frame
    /// that violates the protocol.
    pub fn submit(
        &mut self,
        request: &BatchRequest,
        mut on_record: impl FnMut(&str) -> std::io::Result<()>,
    ) -> std::io::Result<Result<BatchOutcome, Rejection>> {
        self.send(&Request::Batch(request.clone()))?;
        let mut accepted = 0usize;
        let mut queued_ahead = 0usize;
        loop {
            let line = self.read_line()?;
            match classify(line.trim_end()).map_err(invalid_data)? {
                ServerLine::Record(record) => on_record(record)?,
                ServerLine::Frame(Frame::Accepted { jobs }) => accepted = jobs,
                ServerLine::Frame(Frame::Queued { ahead }) => queued_ahead = ahead,
                ServerLine::Frame(Frame::Summary { summary }) => {
                    return Ok(Ok(BatchOutcome {
                        accepted,
                        queued_ahead,
                        summary,
                    }));
                }
                ServerLine::Frame(Frame::Error { message }) => {
                    return Ok(Err(Rejection::Error(message)));
                }
                ServerLine::Frame(Frame::Busy {
                    scope,
                    queued,
                    capacity,
                }) => {
                    return Ok(Err(Rejection::Busy {
                        scope,
                        queued,
                        capacity,
                    }));
                }
                ServerLine::Frame(other) => {
                    return Err(invalid_data(format!("unexpected frame: {other:?}")));
                }
            }
        }
    }
}

fn invalid_data(message: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, message.into())
}
