//! In-process integration tests of the batch service: protocol frames,
//! record byte-identity with the engine, failure isolation, cache
//! sharing across connections, and graceful drain.

use mm_engine::protocol::{classify, Frame, Request, ServerLine};
use mm_engine::{load_spec, Engine, EngineOptions};
use mm_flow::{FlowOptions, WidthChoice};
use mm_netlist::{blif, LutCircuit};
use mm_serve::{Listen, ServeOptions, Server, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

/// The repo's shared seeded circuit shape (`mm_gen`), shrunk for
/// service tests.
fn small_circuit(name: &str, n_luts: usize, seed: u64) -> LutCircuit {
    mm_gen::seeded_test_circuit(name, 5, n_luts, seed)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mm_serve_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a directory-of-mode-groups spec and returns its path.
fn write_spec_dir(root: &Path, groups: usize) -> PathBuf {
    let dir = root.join("jobs");
    for g in 0..groups {
        let group = dir.join(format!("g{g}"));
        std::fs::create_dir_all(&group).unwrap();
        for m in 0..2 {
            let c = small_circuit(&format!("m{m}"), 8 + g, 0x5eed_0000 + (g * 10 + m) as u64);
            std::fs::write(group.join(format!("m{m}.blif")), blif::to_blif(&c)).unwrap();
        }
    }
    dir
}

/// The overrides every test batch uses (fast, deterministic).
fn test_request(spec: &str) -> mm_engine::protocol::BatchRequest {
    let mut b = mm_engine::protocol::BatchRequest::new(spec);
    b.width = Some(12);
    b.effort = Some(1.0);
    b.max_iterations = Some(30);
    b
}

/// The same overrides as [`test_request`], applied locally.
fn test_options() -> FlowOptions {
    let mut o = FlowOptions {
        width: WidthChoice::Fixed(12),
        ..FlowOptions::default()
    };
    o.placer.inner_num = 1.0;
    o.router.max_iterations = 30;
    o
}

struct RunningServer {
    handle: ServerHandle,
    socket: PathBuf,
    thread: std::thread::JoinHandle<std::io::Result<mm_serve::ServeReport>>,
}

impl RunningServer {
    fn start(root: &Path, options: ServeOptions) -> Self {
        let socket = root.join("mmflow.sock");
        let server = Server::bind(&Listen::Unix(socket.clone()), &options).unwrap();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        Self {
            handle,
            socket,
            thread,
        }
    }

    fn connect(&self) -> UnixStream {
        UnixStream::connect(&self.socket).unwrap()
    }

    fn stop(self) -> mm_serve::ServeReport {
        self.handle.shutdown();
        self.thread.join().unwrap().unwrap()
    }
}

fn send(stream: &mut UnixStream, request: &Request) {
    let mut line = request.to_json_line();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    stream.flush().unwrap();
}

/// Reads server lines until (and including) a terminal frame: summary,
/// error, pong or shutting_down.
fn read_exchange(reader: &mut BufReader<UnixStream>) -> (Vec<String>, Vec<Frame>) {
    let mut records = Vec::new();
    let mut frames = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "server closed mid-exchange");
        match classify(line.trim_end()).unwrap() {
            ServerLine::Record(record) => records.push(record.to_string()),
            ServerLine::Frame(frame) => {
                let terminal = !matches!(frame, Frame::Accepted { .. } | Frame::Queued { .. });
                frames.push(frame);
                if terminal {
                    return (records, frames);
                }
            }
        }
    }
}

#[test]
fn ping_error_recovery_and_shutdown_frames() {
    let root = tmp_dir("ping");
    let server = RunningServer::start(&root, ServeOptions::default());

    let mut stream = server.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    send(&mut stream, &Request::Ping);
    let (records, frames) = read_exchange(&mut reader);
    assert!(records.is_empty());
    assert_eq!(frames, vec![Frame::Pong]);

    // A malformed request yields one error frame — carrying the byte
    // offset of the offending line and a truncated echo of it — and
    // keeps the connection usable.
    stream.write_all(b"this is not json\n").unwrap();
    let (_, frames) = read_exchange(&mut reader);
    match &frames[0] {
        Frame::Error { offset, line, .. } => {
            let ping_len = Request::Ping.to_json_line().len() as u64 + 1;
            assert_eq!(*offset, Some(ping_len), "offset of the bad line");
            assert_eq!(line.as_deref(), Some("this is not json"));
        }
        other => panic!("expected an error frame, got {other:?}"),
    }
    send(&mut stream, &Request::Ping);
    let (_, frames) = read_exchange(&mut reader);
    assert_eq!(frames, vec![Frame::Pong]);

    // A protocol shutdown acknowledges, then the server drains.
    send(&mut stream, &Request::Shutdown);
    let (_, frames) = read_exchange(&mut reader);
    assert_eq!(frames, vec![Frame::ShuttingDown]);
    let report = server.stop();
    assert_eq!(report.connections, 1);
    assert!(!root.join("mmflow.sock").exists(), "socket path cleaned up");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn batch_records_are_byte_identical_to_the_engine() {
    let root = tmp_dir("bytes");
    let spec = write_spec_dir(&root, 3);
    let spec_str = spec.to_str().unwrap();

    // Reference: the engine run `mmflow batch` would perform.
    let reference_engine = Engine::new(EngineOptions {
        threads: 1,
        cache_dir: None,
        ..Default::default()
    })
    .unwrap();
    let batch = load_spec(spec_str, &test_options(), 4).unwrap();
    let expected: Vec<String> = reference_engine
        .run(batch.jobs)
        .results
        .iter()
        .map(mm_engine::JobResult::to_json_line)
        .collect();

    let server = RunningServer::start(
        &root,
        ServeOptions {
            threads: 2,
            cache_dir: None,
            max_connections: 4,
            ..ServeOptions::default()
        },
    );
    let mut stream = server.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    send(&mut stream, &Request::Batch(test_request(spec_str)));
    let (records, frames) = read_exchange(&mut reader);

    assert_eq!(frames[0], Frame::Accepted { jobs: 3 });
    assert_eq!(records, expected, "serve records == batch records");
    let Frame::Summary { summary } = &frames[1] else {
        panic!("expected summary, got {frames:?}");
    };
    assert_eq!(summary.get("jobs").and_then(|v| v.as_usize()), Some(3));
    assert_eq!(summary.get("ok").and_then(|v| v.as_usize()), Some(3));
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn one_infeasible_job_fails_alone_with_a_structured_record() {
    let root = tmp_dir("fail");
    let spec_dir = write_spec_dir(&root, 2);
    // A JSON spec: two good jobs plus one that cannot route (width cap
    // 1) — the batch must finish with exactly one error record.
    let spec_path = root.join("mixed.json");
    let blif = |g: usize, m: usize| format!("{}/g{g}/m{m}.blif", spec_dir.display());
    std::fs::write(
        &spec_path,
        format!(
            r#"{{
              "defaults": {{"width": 12, "effort": 1, "max_iterations": 30}},
              "jobs": [
                {{"name": "good0", "modes": ["{}", "{}"]}},
                {{"name": "doomed", "modes": ["{}", "{}"],
                  "width": 1, "max_width": 1, "max_iterations": 3}},
                {{"name": "good1", "modes": ["{}", "{}"]}}
              ]
            }}"#,
            blif(0, 0),
            blif(0, 1),
            blif(0, 0),
            blif(0, 1),
            blif(1, 0),
            blif(1, 1),
        ),
    )
    .unwrap();

    let server = RunningServer::start(&root, ServeOptions::default());
    let mut stream = server.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    send(
        &mut stream,
        &Request::Batch(mm_engine::protocol::BatchRequest::new(
            spec_path.to_str().unwrap(),
        )),
    );
    let (records, frames) = read_exchange(&mut reader);
    assert_eq!(records.len(), 3, "every job has a record: {records:?}");
    assert!(records[0].contains("\"name\":\"good0\"") && records[0].contains("\"status\":\"ok\""));
    assert!(
        records[1].contains("\"name\":\"doomed\"")
            && records[1].contains("\"status\":\"error\"")
            && records[1].contains("\"stage\":\"route\""),
        "{}",
        records[1]
    );
    assert!(records[2].contains("\"name\":\"good1\"") && records[2].contains("\"status\":\"ok\""));
    let Frame::Summary { summary } = &frames[1] else {
        panic!("expected summary, got {frames:?}");
    };
    assert_eq!(summary.get("failed").and_then(|v| v.as_usize()), Some(1));

    // A bad spec is an error frame, not a dropped connection.
    send(
        &mut stream,
        &Request::Batch(mm_engine::protocol::BatchRequest::new("suite:nope")),
    );
    let (records, frames) = read_exchange(&mut reader);
    assert!(records.is_empty());
    assert!(matches!(frames[0], Frame::Error { .. }));
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn connections_share_one_cache_and_stream_independently() {
    let root = tmp_dir("shared");
    let spec = write_spec_dir(&root, 2);
    let spec_str = spec.to_str().unwrap().to_string();
    let server = RunningServer::start(
        &root,
        ServeOptions {
            threads: 2,
            cache_dir: Some(root.join("cache")),
            max_connections: 4,
            ..ServeOptions::default()
        },
    );

    // Two clients submit the same batch concurrently; both must receive
    // complete, identical, in-order streams.
    let submit = |socket: PathBuf, spec: String| {
        std::thread::spawn(move || {
            let mut stream = UnixStream::connect(socket).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = Request::Batch(test_request(&spec)).to_json_line();
            line.push('\n');
            stream.write_all(line.as_bytes()).unwrap();
            read_exchange(&mut reader)
        })
    };
    let a = submit(server.socket.clone(), spec_str.clone());
    let b = submit(server.socket.clone(), spec_str.clone());
    let (records_a, _) = a.join().unwrap();
    let (records_b, _) = b.join().unwrap();
    assert_eq!(records_a.len(), 2);
    assert_eq!(records_a, records_b, "concurrent streams identical");

    // A third submission is fully warm: the shared cache answers.
    let mut stream = server.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    send(&mut stream, &Request::Batch(test_request(&spec_str)));
    let (records, frames) = read_exchange(&mut reader);
    assert_eq!(records, records_a, "cache transparency over the wire");
    let Frame::Summary { summary } = &frames[1] else {
        panic!("expected summary, got {frames:?}");
    };
    let cache = summary.get("cache").expect("summary carries cache block");
    assert_eq!(
        cache.get("results_from_cache").and_then(|v| v.as_usize()),
        Some(2),
        "{cache:?}"
    );
    assert_eq!(
        cache.get("stages_recomputed").and_then(|v| v.as_usize()),
        Some(0),
        "{cache:?}"
    );

    let report = server.stop();
    assert_eq!(report.batches, 3);
    assert_eq!(report.jobs, 6);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn binding_over_a_live_server_is_refused() {
    let root = tmp_dir("bind2");
    let server = RunningServer::start(&root, ServeOptions::default());
    // The path answers, so a second bind must fail instead of stealing
    // the socket from the live server.
    let err = Server::bind(
        &Listen::Unix(server.socket.clone()),
        &ServeOptions::default(),
    )
    .expect_err("second bind refused");
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "{err}");
    // The live server is unharmed.
    let mut stream = server.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    send(&mut stream, &Request::Ping);
    let (_, frames) = read_exchange(&mut reader);
    assert_eq!(frames, vec![Frame::Pong]);
    server.stop();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn listen_addresses_parse() {
    assert_eq!(
        Listen::parse("unix:/tmp/x.sock").unwrap(),
        Listen::Unix("/tmp/x.sock".into())
    );
    assert_eq!(
        Listen::parse("/tmp/x.sock").unwrap(),
        Listen::Unix("/tmp/x.sock".into())
    );
    assert_eq!(
        Listen::parse("tcp:127.0.0.1:9000").unwrap(),
        Listen::Tcp("127.0.0.1:9000".into())
    );
    assert_eq!(
        Listen::parse("127.0.0.1:0").unwrap(),
        Listen::Tcp("127.0.0.1:0".into())
    );
    assert!(Listen::parse("mystery").is_err());
}

#[test]
fn tcp_transport_works_too() {
    let root = tmp_dir("tcp");
    let spec = write_spec_dir(&root, 1);
    let server =
        Server::bind(&Listen::Tcp("127.0.0.1:0".into()), &ServeOptions::default()).unwrap();
    let Listen::Tcp(addr) = server.listen_addr().clone() else {
        panic!("tcp bind reports tcp addr");
    };
    let handle = server.handle();
    let thread = std::thread::spawn(move || server.run());

    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = Request::Batch(test_request(spec.to_str().unwrap())).to_json_line();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    // Reuse the unix read loop shape inline (TcpStream reader).
    let mut records = 0;
    let mut buf = String::new();
    loop {
        buf.clear();
        assert!(reader.read_line(&mut buf).unwrap() > 0);
        match classify(buf.trim_end()).unwrap() {
            ServerLine::Record(_) => records += 1,
            ServerLine::Frame(Frame::Summary { .. }) => break, // trailer ends the exchange
            ServerLine::Frame(_) => {}
        }
    }
    assert_eq!(records, 1);
    drop(stream);
    handle.shutdown();
    thread.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn over_capacity_connection_gets_a_busy_frame_not_a_stall() {
    let root = tmp_dir("busyconn");
    let server = RunningServer::start(
        &root,
        ServeOptions {
            max_connections: 1,
            ..ServeOptions::default()
        },
    );

    // Occupy the single slot (the ping proves the server registered us).
    let mut first = server.connect();
    let mut first_reader = BufReader::new(first.try_clone().unwrap());
    send(&mut first, &Request::Ping);
    let (_, frames) = read_exchange(&mut first_reader);
    assert_eq!(frames, vec![Frame::Pong]);

    // The excess connection is answered — one structured busy frame,
    // then a close — instead of waiting silently for a slot.
    let second = server.connect();
    let mut second_reader = BufReader::new(second);
    let mut line = String::new();
    assert!(second_reader.read_line(&mut line).unwrap() > 0);
    let ServerLine::Frame(Frame::Busy {
        scope,
        queued,
        capacity,
        ..
    }) = classify(line.trim_end()).unwrap()
    else {
        panic!("expected a busy frame, got {line:?}");
    };
    assert_eq!(scope, "connections");
    assert_eq!(capacity, 1);
    assert!(queued >= 1, "{queued}");
    line.clear();
    assert_eq!(second_reader.read_line(&mut line).unwrap(), 0, "then EOF");

    // The admitted connection is unaffected.
    send(&mut first, &Request::Ping);
    let (_, frames) = read_exchange(&mut first_reader);
    assert_eq!(frames, vec![Frame::Pong]);
    drop(first);
    drop(first_reader);
    let report = server.stop();
    assert_eq!(report.connections, 1);
    assert_eq!(report.rejected_connections, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn over_quota_batch_bounces_busy_and_the_connection_stays_usable() {
    let root = tmp_dir("busyjobs");
    let spec = write_spec_dir(&root, 3);
    let spec_str = spec.to_str().unwrap();
    let server = RunningServer::start(
        &root,
        ServeOptions {
            threads: 1,
            workers: 1,
            queue_depth: 2,
            cache_dir: None,
            ..ServeOptions::default()
        },
    );

    let mut stream = server.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Three jobs into a depth-2 queue: admission is batch-atomic, so
    // the whole batch bounces with a busy frame (nothing half-runs).
    send(&mut stream, &Request::Batch(test_request(spec_str)));
    let (records, frames) = read_exchange(&mut reader);
    assert!(records.is_empty());
    let Frame::Busy {
        scope, capacity, ..
    } = &frames[0]
    else {
        panic!("expected busy, got {frames:?}");
    };
    assert_eq!(scope, "jobs");
    assert_eq!(*capacity, 2);

    // A batch that fits is admitted on the very same connection.
    let mut request = test_request(spec_str);
    request.max_jobs = Some(2);
    request.priority = 3;
    send(&mut stream, &Request::Batch(request));
    let (records, frames) = read_exchange(&mut reader);
    assert_eq!(frames[0], Frame::Accepted { jobs: 2 });
    assert_eq!(records.len(), 2);
    assert!(matches!(frames.last(), Some(Frame::Summary { .. })));

    let report = server.stop();
    assert_eq!(report.rejected_batches, 1);
    assert_eq!(report.batches, 1);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn a_disconnecting_client_has_its_queued_jobs_purged() {
    let root = tmp_dir("discon");
    let spec = write_spec_dir(&root, 4);
    let spec_str = spec.to_str().unwrap();
    let server = RunningServer::start(
        &root,
        ServeOptions {
            threads: 1,
            workers: 1,
            cache_dir: None,
            ..ServeOptions::default()
        },
    );

    // Submit four slow jobs to the single worker, then vanish without
    // reading a byte: the server must cancel, purge the queue, and not
    // burn the worker on results nobody will read.
    {
        let mut stream = server.connect();
        send(&mut stream, &Request::Batch(test_request(spec_str)));
        // dropped here: EOF mid-batch
    }

    // The server stays fully usable for the next client, and its
    // summary's shard stats show the purge (and an empty queue).
    let mut stream = server.connect();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut request = test_request(spec_str);
    request.max_jobs = Some(1);
    send(&mut stream, &Request::Batch(request));
    let (records, frames) = read_exchange(&mut reader);
    assert_eq!(records.len(), 1);
    let Frame::Summary { summary } = frames.last().unwrap() else {
        panic!("expected summary, got {frames:?}");
    };
    let shards = summary
        .get("shards")
        .and_then(|v| v.as_arr())
        .expect("summary carries per-shard stats");
    let purged: usize = shards
        .iter()
        .map(|s| s.get("purged").and_then(|v| v.as_usize()).unwrap_or(0))
        .sum();
    let queued: usize = shards
        .iter()
        .map(|s| s.get("queued").and_then(|v| v.as_usize()).unwrap_or(0))
        .sum();
    assert!(purged >= 1, "disconnect purged queued jobs: {summary:?}");
    assert_eq!(queued, 0, "no ghost jobs left queued: {summary:?}");

    drop(stream);
    drop(reader);
    let report = server.stop();
    assert_eq!(report.purged_jobs as usize, purged);
    assert!(
        (report.jobs as usize) + purged >= 5,
        "every admitted job either ran or was purged: {report:?}"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn concurrent_clients_all_get_reference_byte_streams() {
    let root = tmp_dir("storm");
    let spec = write_spec_dir(&root, 2);
    let spec_str = spec.to_str().unwrap().to_string();

    let reference_engine = Engine::new(EngineOptions {
        threads: 1,
        cache_dir: None,
        ..Default::default()
    })
    .unwrap();
    let batch = load_spec(&spec_str, &test_options(), 4).unwrap();
    let expected: Vec<String> = reference_engine
        .run(batch.jobs)
        .results
        .iter()
        .map(mm_engine::JobResult::to_json_line)
        .collect();

    let server = RunningServer::start(
        &root,
        ServeOptions {
            threads: 2,
            workers: 2,
            cache_dir: Some(root.join("cache")),
            ..ServeOptions::default()
        },
    );

    // Four clients, two rounds each, all interleaving on the shared
    // scheduler: every stream must still be the reference bytes, in
    // order, per connection.
    let clients: Vec<_> = (0..4)
        .map(|i| {
            let socket = server.socket.clone();
            let spec = spec_str.clone();
            std::thread::spawn(move || {
                let mut stream = UnixStream::connect(socket).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut streams = Vec::new();
                for _ in 0..2 {
                    let mut request = test_request(&spec);
                    request.priority = 1 + (i % 3) as u8;
                    send_unix(&mut stream, &Request::Batch(request));
                    let (records, frames) = read_exchange(&mut reader);
                    assert!(matches!(frames.last(), Some(Frame::Summary { .. })));
                    streams.push(records);
                }
                streams
            })
        })
        .collect();
    for client in clients {
        for records in client.join().unwrap() {
            assert_eq!(records, expected, "contended stream == reference bytes");
        }
    }

    let report = server.stop();
    assert_eq!(report.batches, 8);
    assert_eq!(report.jobs, 16);
    assert_eq!(report.purged_jobs, 0);
    let _ = std::fs::remove_dir_all(&root);
}

/// `send` for threads that own their stream (no helper borrow games).
fn send_unix(stream: &mut UnixStream, request: &Request) {
    let mut line = request.to_json_line();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    stream.flush().unwrap();
}
