//! End-to-end chaos tests of the batch service under armed fault
//! points: workers killed mid-job, jobs stalled past their deadline,
//! and connections dropped mid-stream. In every scenario the server
//! must drain cleanly and the surviving records must be byte-identical
//! to a fault-free engine run.
//!
//! The fault-point registry is process-global, so this file is its own
//! test binary and every test serializes on [`FAULT_LOCK`], disarming
//! through a drop guard.

use mm_engine::protocol::{classify, Frame, Request, ServerLine};
use mm_engine::{faultpoint, load_spec, Engine, EngineOptions};
use mm_flow::{FlowOptions, WidthChoice};
use mm_netlist::blif;
use mm_serve::{Client, Listen, ServeOptions, Server, ServerHandle};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// Holds the process-wide fault lock for a test and disarms the
/// registry on the way out, panic or not.
struct FaultGuard<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

impl<'a> FaultGuard<'a> {
    fn take() -> Self {
        Self {
            _guard: FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

impl Drop for FaultGuard<'_> {
    fn drop(&mut self) {
        faultpoint::disarm();
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mm_serve_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_spec_dir(root: &Path, groups: usize) -> PathBuf {
    let dir = root.join("jobs");
    for g in 0..groups {
        let group = dir.join(format!("g{g}"));
        std::fs::create_dir_all(&group).unwrap();
        for m in 0..2 {
            let c = mm_gen::seeded_test_circuit(
                &format!("m{m}"),
                5,
                8 + g,
                0x5eed_0000 + (g * 10 + m) as u64,
            );
            std::fs::write(group.join(format!("m{m}.blif")), blif::to_blif(&c)).unwrap();
        }
    }
    dir
}

fn test_request(spec: &str) -> mm_engine::protocol::BatchRequest {
    let mut b = mm_engine::protocol::BatchRequest::new(spec);
    b.width = Some(12);
    b.effort = Some(1.0);
    b.max_iterations = Some(30);
    b
}

/// The same overrides applied locally — reference records come from a
/// serial, cacheless, fault-free engine.
fn reference_records(spec: &str) -> Vec<String> {
    let mut o = FlowOptions {
        width: WidthChoice::Fixed(12),
        ..FlowOptions::default()
    };
    o.placer.inner_num = 1.0;
    o.router.max_iterations = 30;
    let jobs = load_spec(spec, &o, 4).unwrap().jobs;
    let engine = Engine::new(EngineOptions {
        threads: 1,
        cache_dir: None,
        result_memo: 0,
    })
    .unwrap();
    engine
        .run(jobs)
        .results
        .iter()
        .map(mm_engine::JobResult::to_json_line)
        .collect()
}

struct RunningServer {
    handle: ServerHandle,
    socket: PathBuf,
    thread: std::thread::JoinHandle<std::io::Result<mm_serve::ServeReport>>,
}

impl RunningServer {
    fn start(root: &Path, options: ServeOptions) -> Self {
        let socket = root.join("mmflow.sock");
        let server = Server::bind(&Listen::Unix(socket.clone()), &options).unwrap();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        Self {
            handle,
            socket,
            thread,
        }
    }

    fn listen(&self) -> Listen {
        Listen::Unix(self.socket.clone())
    }

    fn stop(self) -> mm_serve::ServeReport {
        self.handle.shutdown();
        self.thread.join().unwrap().unwrap()
    }
}

#[test]
fn worker_panics_mid_job_recover_to_reference_bytes() {
    let _fault = FaultGuard::take();
    let root = tmp_dir("panic");
    let spec = write_spec_dir(&root, 4);
    let spec = spec.to_string_lossy().into_owned();
    let reference = reference_records(&spec);

    let server = RunningServer::start(
        &root,
        ServeOptions {
            threads: 1,
            cache_dir: None,
            fault_spec: Some("seed=3,worker_panic=0.8".into()),
            ..ServeOptions::default()
        },
    );
    let mut client = Client::connect(&server.listen()).unwrap();
    let mut records = Vec::new();
    let outcome = client
        .submit(&test_request(&spec), |r| {
            records.push(r.to_string());
            Ok(())
        })
        .unwrap()
        .expect("batch admitted");
    assert_eq!(outcome.accepted, reference.len());
    assert_eq!(records, reference, "retried panics must not change bytes");

    drop(client);
    let report = server.stop();
    assert_eq!(report.jobs, reference.len() as u64);
    assert!(
        report.panic_retries > 0,
        "the armed fault must actually have killed at least one execution"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn stuck_jobs_time_out_and_the_shard_survives() {
    let _fault = FaultGuard::take();
    let root = tmp_dir("stall");
    let spec = write_spec_dir(&root, 2);
    let spec = spec.to_string_lossy().into_owned();
    let reference = reference_records(&spec);

    let server = RunningServer::start(
        &root,
        ServeOptions {
            threads: 2,
            cache_dir: None,
            deadline_ms: 100,
            fault_spec: Some("seed=4,job_stall=1,stall_ms=1500".into()),
            ..ServeOptions::default()
        },
    );

    // Every job stalls 1.5 s against a 100 ms deadline: the watchdog
    // answers each with a structured timeout record.
    let mut stream = UnixStream::connect(&server.socket).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = Request::Batch(test_request(&spec)).to_json_line();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    let (records, _) = read_exchange(&mut reader);
    assert_eq!(records.len(), reference.len());
    for record in &records {
        assert!(
            record.contains("\"stage\":\"timeout\""),
            "expected a timeout record, got {record}"
        );
    }

    // Disarm and resubmit on the same connection: the shard survived
    // and now produces the reference bytes.
    faultpoint::disarm();
    stream.write_all(line.as_bytes()).unwrap();
    let (records, _) = read_exchange(&mut reader);
    assert_eq!(records, reference);

    drop((stream, reader));
    let report = server.stop();
    assert_eq!(report.timed_out_jobs, reference.len() as u64);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn dropped_connections_are_purged_and_a_retrying_client_completes() {
    let _fault = FaultGuard::take();
    let root = tmp_dir("drop");
    let spec = write_spec_dir(&root, 4);
    let spec = spec.to_string_lossy().into_owned();
    let reference = reference_records(&spec);

    // Phase 1: every admission drops the connection mid-stream while
    // jobs are slowed enough that some are still queued at the drop —
    // the server must purge them and keep draining.
    let server = RunningServer::start(
        &root,
        ServeOptions {
            threads: 1,
            cache_dir: None,
            fault_spec: Some("seed=5,conn_drop=1,job_stall=1,stall_ms=300".into()),
            ..ServeOptions::default()
        },
    );
    let mut stream = UnixStream::connect(&server.socket).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = Request::Batch(test_request(&spec)).to_json_line();
    line.push('\n');
    stream.write_all(line.as_bytes()).unwrap();
    let mut streamed = 0usize;
    let mut saw_summary = false;
    let mut buf = String::new();
    loop {
        buf.clear();
        if reader.read_line(&mut buf).unwrap() == 0 {
            break; // the injected drop closed the connection
        }
        match classify(buf.trim_end()).unwrap() {
            ServerLine::Record(_) => streamed += 1,
            ServerLine::Frame(Frame::Summary { .. }) => saw_summary = true,
            ServerLine::Frame(_) => {}
        }
    }
    assert!(!saw_summary, "the batch must have been cut off mid-stream");
    assert!(
        streamed < reference.len(),
        "drop_at fires before the stream completes"
    );
    drop((stream, reader));

    // Phase 2: re-arm with an intermittent drop (no stall) and let the
    // retrying client ride through it to a byte-perfect batch.
    faultpoint::arm("seed=6,conn_drop=0.45").unwrap();
    let mut client = Client::connect(&server.listen()).unwrap();
    let mut records = Vec::new();
    let outcome = client
        .submit_with_retries(&test_request(&spec), 16, |r| {
            records.push(r.to_string());
            Ok(())
        })
        .unwrap()
        .expect("retrying client completes");
    assert_eq!(records, reference, "no lost or duplicated records");
    drop(client);

    faultpoint::disarm();
    let report = server.stop();
    assert!(
        report.purged_jobs > 0,
        "queued jobs of the dropped client must be purged and counted"
    );
    assert!(outcome.retries <= 16);
    let _ = std::fs::remove_dir_all(&root);
}

/// Reads server lines until (and including) a terminal frame.
fn read_exchange(reader: &mut BufReader<UnixStream>) -> (Vec<String>, Vec<Frame>) {
    let mut records = Vec::new();
    let mut frames = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "server closed mid-exchange");
        match classify(line.trim_end()).unwrap() {
            ServerLine::Record(record) => records.push(record.to_string()),
            ServerLine::Frame(frame) => {
                let terminal = !matches!(frame, Frame::Accepted { .. } | Frame::Queued { .. });
                frames.push(frame);
                if terminal {
                    return (records, frames);
                }
            }
        }
    }
}
