//! Logic netlists for the multi-mode tool flow.
//!
//! Three levels of representation:
//!
//! * [`GateNetwork`] — technology-independent gate-level logic, emitted by
//!   the benchmark generators (`mm-gen`) and consumed by synthesis
//!   (`mm-synth`).
//! * [`TruthTable`] — the configuration of one k-input LUT (k ≤ 6).
//! * [`LutCircuit`] — a technology-mapped circuit of k-LUT logic blocks
//!   (one LUT + optional flip-flop per block, as in VPR's
//!   `4lut_sanitized.arch`) with IO pads. This is the unit the paper's
//!   flow merges, places and routes.
//!
//! BLIF I/O lives in [`blif`]; cycle-accurate simulation (used heavily by
//! the test-suite to prove that mapping and multi-mode merging preserve
//! behaviour) in [`LutSimulator`] and [`GateSimulator`].
//!
//! # Example
//!
//! ```
//! use mm_netlist::{LutCircuit, LutSimulator, TruthTable};
//!
//! # fn main() -> Result<(), mm_netlist::NetlistError> {
//! let mut c = LutCircuit::new("xor2", 4);
//! let a = c.add_input("a")?;
//! let b = c.add_input("b")?;
//! let x = c.add_lut("x", vec![a, b], TruthTable::var(2, 0) ^ TruthTable::var(2, 1), false)?;
//! c.add_output("y", x)?;
//!
//! let mut sim = LutSimulator::new(&c)?;
//! assert_eq!(sim.step(&[true, false]), vec![true]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blif;
mod error;
mod gates;
mod lut;
mod sim;
mod truth;

pub use error::NetlistError;
pub use gates::{GateNetwork, GateOp, GateSimulator, SignalId};
pub use lut::{Block, BlockId, BlockKind, LutCircuit, LutStats};
pub use sim::{first_divergence, LutSimulator};
pub use truth::{TruthTable, MAX_LUT_INPUTS};
