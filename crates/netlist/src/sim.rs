//! Cycle-accurate simulation of [`LutCircuit`]s.
//!
//! The simulator is the work-horse of the test-suite: technology mapping
//! and multi-mode merging are both verified by proving that the simulated
//! behaviour is unchanged (per mode, for the merge).

use crate::{BlockId, BlockKind, LutCircuit, NetlistError};

/// Cycle-accurate two-valued simulator for a [`LutCircuit`].
///
/// # Example
///
/// ```
/// use mm_netlist::{LutCircuit, LutSimulator, TruthTable};
///
/// # fn main() -> Result<(), mm_netlist::NetlistError> {
/// let mut c = LutCircuit::new("inv", 4);
/// let a = c.add_input("a")?;
/// let g = c.add_lut("g", vec![a], !TruthTable::var(1, 0), false)?;
/// c.add_output("y", g)?;
///
/// let mut sim = LutSimulator::new(&c)?;
/// assert_eq!(sim.step(&[false]), vec![true]);
/// assert_eq!(sim.step(&[true]), vec![false]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LutSimulator<'a> {
    circuit: &'a LutCircuit,
    /// Topological order of the unregistered LUTs.
    comb_order: Vec<BlockId>,
    /// Current output value of every block.
    values: Vec<bool>,
}

impl<'a> LutSimulator<'a> {
    /// Creates a simulator with flip-flops at their initial values.
    ///
    /// # Errors
    ///
    /// Fails if the circuit has a combinational cycle.
    pub fn new(circuit: &'a LutCircuit) -> Result<Self, NetlistError> {
        let comb_order = circuit.comb_topo_order()?;
        let mut sim = Self {
            circuit,
            comb_order,
            values: vec![false; circuit.block_count()],
        };
        sim.reset();
        Ok(sim)
    }

    /// Resets all flip-flops to their initial values.
    pub fn reset(&mut self) {
        for id in self.circuit.block_ids() {
            if let BlockKind::Lut {
                registered: true,
                init,
                ..
            } = self.circuit.block(id).kind()
            {
                self.values[id.index()] = *init;
            }
        }
    }

    fn eval_lut(&self, id: BlockId) -> bool {
        match self.circuit.block(id).kind() {
            BlockKind::Lut { inputs, truth, .. } => {
                let mut idx = 0usize;
                for (j, src) in inputs.iter().enumerate() {
                    if self.values[src.index()] {
                        idx |= 1 << j;
                    }
                }
                truth.eval_index(idx)
            }
            _ => unreachable!("eval_lut on non-LUT"),
        }
    }

    /// Evaluates one clock cycle: applies the primary-input values (in
    /// declaration order), settles combinational logic, samples the
    /// primary outputs *just before the clock edge*, then latches the
    /// flip-flops. The pre-edge samples are returned, matching
    /// [`GateSimulator::step`](crate::GateSimulator::step) so that
    /// gate-level and mapped circuits can be compared cycle by cycle.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the input-pad count.
    pub fn step(&mut self, input_values: &[bool]) -> Vec<bool> {
        let inputs = self.circuit.inputs();
        assert_eq!(input_values.len(), inputs.len(), "input width mismatch");
        for (&pad, &v) in inputs.iter().zip(input_values) {
            self.values[pad.index()] = v;
        }
        // Settle combinational LUTs in topological order.
        for i in 0..self.comb_order.len() {
            let id = self.comb_order[i];
            self.values[id.index()] = self.eval_lut(id);
        }
        // Sample outputs before the edge: registered blocks still show
        // their pre-edge state.
        let sampled = self.outputs();
        // Compute flip-flop next states from the settled values, then
        // latch simultaneously.
        let mut latched: Vec<(BlockId, bool)> = Vec::new();
        for &id in self.circuit.luts() {
            if matches!(
                self.circuit.block(id).kind(),
                BlockKind::Lut {
                    registered: true,
                    ..
                }
            ) {
                latched.push((id, self.eval_lut(id)));
            }
        }
        for (id, v) in latched {
            self.values[id.index()] = v;
        }
        sampled
    }

    /// Primary-output values read from the current block values (after the
    /// most recent clock edge).
    #[must_use]
    pub fn outputs(&self) -> Vec<bool> {
        self.circuit
            .outputs()
            .iter()
            .map(|&pad| match self.circuit.block(pad).kind() {
                BlockKind::OutputPad { source, .. } => self.values[source.index()],
                _ => unreachable!("outputs() lists only pads"),
            })
            .collect()
    }

    /// The current output value of an arbitrary block.
    #[must_use]
    pub fn value(&self, id: BlockId) -> bool {
        self.values[id.index()]
    }
}

/// Runs both circuits on the same pseudo-random input sequence and reports
/// the first cycle where any primary output differs, or `None` when they
/// agree for all `cycles` cycles.
///
/// Inputs are matched *by pad name*, outputs *by port name*; circuits must
/// expose identical port sets.
///
/// # Errors
///
/// Fails if either circuit has a combinational cycle or the port sets
/// differ.
pub fn first_divergence(
    a: &LutCircuit,
    b: &LutCircuit,
    cycles: usize,
    seed: u64,
) -> Result<Option<usize>, NetlistError> {
    let mut sim_a = LutSimulator::new(a)?;
    let mut sim_b = LutSimulator::new(b)?;

    // Map b's inputs onto a's input order.
    let a_in_names: Vec<&str> = a.inputs().iter().map(|&i| a.block(i).name()).collect();
    let mut b_in_perm = Vec::with_capacity(a_in_names.len());
    for name in &a_in_names {
        let id = b
            .find(name)
            .ok_or_else(|| NetlistError::UnknownName((*name).to_string()))?;
        let pos = b
            .inputs()
            .iter()
            .position(|&p| p == id)
            .ok_or_else(|| NetlistError::WrongBlockKind(format!("'{name}' is not an input")))?;
        b_in_perm.push(pos);
    }
    if b.inputs().len() != a.inputs().len() {
        return Err(NetlistError::WrongBlockKind(
            "input port sets differ".into(),
        ));
    }

    // Map output ports.
    let port_of = |c: &LutCircuit, pad: BlockId| -> String {
        match c.block(pad).kind() {
            BlockKind::OutputPad { port, .. } => port.clone(),
            _ => unreachable!(),
        }
    };
    let a_ports: Vec<String> = a.outputs().iter().map(|&p| port_of(a, p)).collect();
    let b_ports: Vec<String> = b.outputs().iter().map(|&p| port_of(b, p)).collect();
    let mut b_out_perm = Vec::with_capacity(a_ports.len());
    for p in &a_ports {
        let pos = b_ports
            .iter()
            .position(|q| q == p)
            .ok_or_else(|| NetlistError::UnknownName(p.clone()))?;
        b_out_perm.push(pos);
    }
    if b_ports.len() != a_ports.len() {
        return Err(NetlistError::WrongBlockKind(
            "output port sets differ".into(),
        ));
    }

    // xorshift64* gives deterministic stimulus without external deps.
    let mut state = seed | 1;
    let mut next_bit = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state & 1 == 1
    };

    let n_in = a.inputs().len();
    let mut a_vec = vec![false; n_in];
    let mut b_vec = vec![false; n_in];
    for cycle in 0..cycles {
        for (i, slot) in a_vec.iter_mut().enumerate() {
            *slot = next_bit();
            b_vec[b_in_perm[i]] = *slot;
        }
        let out_a = sim_a.step(&a_vec);
        let out_b = sim_b.step(&b_vec);
        for (i, &va) in out_a.iter().enumerate() {
            if va != out_b[b_out_perm[i]] {
                return Ok(Some(cycle));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TruthTable;

    fn and2() -> TruthTable {
        TruthTable::var(2, 0) & TruthTable::var(2, 1)
    }

    #[test]
    fn combinational_eval() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_lut("g", vec![a, b], and2(), false).unwrap();
        c.add_output("y", g).unwrap();
        let mut sim = LutSimulator::new(&c).unwrap();
        assert_eq!(sim.step(&[true, true]), vec![true]);
        assert_eq!(sim.step(&[true, false]), vec![false]);
    }

    #[test]
    fn registered_lut_delays() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        let g = c
            .add_lut("g", vec![a], TruthTable::var(1, 0), true)
            .unwrap();
        c.add_output("y", g).unwrap();
        let mut sim = LutSimulator::new(&c).unwrap();
        // step() samples before the edge: the first step still shows the
        // initial flip-flop value.
        assert_eq!(sim.step(&[true]), vec![false]);
        assert_eq!(sim.step(&[false]), vec![true]);
        assert_eq!(sim.step(&[false]), vec![false]);
    }

    #[test]
    fn registered_self_loop_toggles() {
        let mut c = LutCircuit::new("t", 4);
        let g = c.add_lut("g", vec![], TruthTable::const0(0), true).unwrap();
        c.set_lut(g, vec![g], !TruthTable::var(1, 0)).unwrap();
        c.add_output("y", g).unwrap();
        let mut sim = LutSimulator::new(&c).unwrap();
        assert_eq!(sim.step(&[]), vec![false]);
        assert_eq!(sim.step(&[]), vec![true]);
        assert_eq!(sim.step(&[]), vec![false]);
    }

    #[test]
    fn init_value_respected() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        let g = c
            .add_lut("g", vec![a], TruthTable::var(1, 0), true)
            .unwrap();
        c.set_init(g, true).unwrap();
        c.add_output("y", g).unwrap();
        let sim = LutSimulator::new(&c).unwrap();
        assert!(sim.value(g));
    }

    #[test]
    fn equivalence_of_identical_circuits() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_lut("g", vec![a, b], and2(), false).unwrap();
        c.add_output("y", g).unwrap();
        // Same function, different structure (swapped input order).
        let mut d = LutCircuit::new("t2", 4);
        let b2 = d.add_input("b").unwrap();
        let a2 = d.add_input("a").unwrap();
        let g2 = d.add_lut("g", vec![b2, a2], and2(), false).unwrap();
        d.add_output("y", g2).unwrap();
        assert_eq!(first_divergence(&c, &d, 64, 42).unwrap(), None);
    }

    #[test]
    fn divergence_detected() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        let g = c
            .add_lut("g", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        c.add_output("y", g).unwrap();
        let mut d = LutCircuit::new("t2", 4);
        let a2 = d.add_input("a").unwrap();
        let g2 = d
            .add_lut("g", vec![a2], !TruthTable::var(1, 0), false)
            .unwrap();
        d.add_output("y", g2).unwrap();
        assert!(first_divergence(&c, &d, 64, 42).unwrap().is_some());
    }

    #[test]
    fn port_mismatch_is_error() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        c.add_output("y", a).unwrap();
        let mut d = LutCircuit::new("t2", 4);
        let b = d.add_input("b").unwrap();
        d.add_output("y", b).unwrap();
        assert!(first_divergence(&c, &d, 8, 1).is_err());
    }
}
