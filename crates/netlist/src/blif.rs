//! Reading and writing LUT circuits in the Berkeley Logic Interchange
//! Format (BLIF) — the lingua franca of academic FPGA CAD flows (SIS, VPR,
//! ABC).
//!
//! The supported subset is the one VPR consumes: `.model`, `.inputs`,
//! `.outputs`, `.names` (single-output covers), `.latch` (rising-edge,
//! optional clock, optional init) and `.end`. On reading, a `.names`
//! feeding exactly one `.latch` and nothing else is packed into a single
//! registered logic block, mirroring VPack's LUT+FF packing for an
//! architecture with one 4-LUT and one flip-flop per logic block.

use crate::{BlockId, BlockKind, LutCircuit, NetlistError, TruthTable};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Serialises a circuit to BLIF text.
///
/// Registered LUTs are emitted as a `.names` for the LUT function feeding a
/// `.latch`; output pads whose port name differs from their driver's name
/// get an explicit buffer `.names` so that the port appears under its own
/// signal name.
#[must_use]
pub fn to_blif(circuit: &LutCircuit) -> String {
    let mut s = String::new();
    let _ = writeln!(s, ".model {}", circuit.name());

    let _ = write!(s, ".inputs");
    for &pad in circuit.inputs() {
        let _ = write!(s, " {}", circuit.block(pad).name());
    }
    let _ = writeln!(s);

    let _ = write!(s, ".outputs");
    for &pad in circuit.outputs() {
        if let BlockKind::OutputPad { port, .. } = circuit.block(pad).kind() {
            let _ = write!(s, " {port}");
        }
    }
    let _ = writeln!(s);

    for &id in circuit.luts() {
        let block = circuit.block(id);
        let BlockKind::Lut {
            inputs,
            truth,
            registered,
            init,
        } = block.kind()
        else {
            continue;
        };
        let out_name = block.name();
        if *registered {
            // LUT feeds the latch through an intermediate signal.
            let d = format!("{out_name}^d");
            write_names(&mut s, circuit, inputs, &d, *truth);
            let _ = writeln!(s, ".latch {d} {out_name} re clk {}", u8::from(*init));
        } else {
            write_names(&mut s, circuit, inputs, out_name, *truth);
        }
    }

    // Buffers for output ports whose name differs from the driver's.
    for &pad in circuit.outputs() {
        if let BlockKind::OutputPad { source, port } = circuit.block(pad).kind() {
            let src_name = circuit.block(*source).name();
            if src_name != port {
                let _ = writeln!(s, ".names {src_name} {port}");
                let _ = writeln!(s, "1 1");
            }
        }
    }

    let _ = writeln!(s, ".end");
    s
}

fn write_names(
    s: &mut String,
    circuit: &LutCircuit,
    inputs: &[BlockId],
    out: &str,
    truth: TruthTable,
) {
    let _ = write!(s, ".names");
    for &src in inputs {
        let _ = write!(s, " {}", circuit.block(src).name());
    }
    let _ = writeln!(s, " {out}");
    for (pattern, val) in truth.to_cover() {
        if inputs.is_empty() {
            let _ = writeln!(s, "{val}");
        } else {
            let _ = writeln!(s, "{pattern} {val}");
        }
    }
}

#[derive(Debug)]
struct NamesDecl {
    line: usize,
    inputs: Vec<String>,
    output: String,
    cover: Vec<(String, char)>,
}

#[derive(Debug)]
struct LatchDecl {
    line: usize,
    input: String,
    output: String,
    init: bool,
}

/// Parses BLIF text into a [`LutCircuit`] for k-input LUTs.
///
/// # Errors
///
/// Fails on malformed BLIF, on `.names` wider than `k`, on dangling signal
/// references, or on combinational cycles.
pub fn from_blif(text: &str, k: usize) -> Result<LutCircuit, NetlistError> {
    let mut model = String::from("blif");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut names: Vec<NamesDecl> = Vec::new();
    let mut latches: Vec<LatchDecl> = Vec::new();

    // Logical lines: joined on trailing '\', comments stripped.
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let no_comment = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = no_comment.trim_end();
        let (content, cont) = match trimmed.strip_suffix('\\') {
            Some(rest) => (rest, true),
            None => (trimmed, false),
        };
        if pending.is_empty() {
            pending_line = line_no;
        }
        pending.push_str(content);
        pending.push(' ');
        if !cont {
            let joined = pending.trim().to_string();
            if !joined.is_empty() {
                logical.push((pending_line, joined));
            }
            pending.clear();
        }
    }
    if !pending.trim().is_empty() {
        logical.push((pending_line, pending.trim().to_string()));
    }

    let mut idx = 0usize;
    while idx < logical.len() {
        let (line_no, line) = &logical[idx];
        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("nonempty logical line");
        match head {
            ".model" => {
                if let Some(n) = tokens.next() {
                    model = n.to_string();
                }
                idx += 1;
            }
            ".inputs" => {
                inputs.extend(tokens.map(str::to_string));
                idx += 1;
            }
            ".outputs" => {
                outputs.extend(tokens.map(str::to_string));
                idx += 1;
            }
            ".names" => {
                let mut sigs: Vec<String> = tokens.map(str::to_string).collect();
                let output = sigs.pop().ok_or(NetlistError::BlifParse {
                    line: *line_no,
                    msg: ".names needs at least an output".into(),
                })?;
                idx += 1;
                let mut cover = Vec::new();
                while idx < logical.len() && !logical[idx].1.starts_with('.') {
                    let (cov_line, body) = &logical[idx];
                    let parts: Vec<&str> = body.split_whitespace().collect();
                    match parts.as_slice() {
                        [out] if sigs.is_empty() => {
                            let c = out.chars().next().expect("nonempty token");
                            cover.push((String::new(), c));
                        }
                        [pat, out] => {
                            let c = out.chars().next().expect("nonempty token");
                            cover.push(((*pat).to_string(), c));
                        }
                        _ => {
                            return Err(NetlistError::BlifParse {
                                line: *cov_line,
                                msg: format!("malformed cover line '{body}'"),
                            })
                        }
                    }
                    idx += 1;
                }
                names.push(NamesDecl {
                    line: *line_no,
                    inputs: sigs,
                    output,
                    cover,
                });
            }
            ".latch" => {
                let args: Vec<&str> = tokens.collect();
                // .latch input output [type [control]] [init]
                if args.len() < 2 {
                    return Err(NetlistError::BlifParse {
                        line: *line_no,
                        msg: ".latch needs input and output".into(),
                    });
                }
                let init = match args.last() {
                    Some(&"0") => false,
                    Some(&"1") => true,
                    Some(&"2") | Some(&"3") => false, // don't-care / unknown
                    _ => false,
                };
                latches.push(LatchDecl {
                    line: *line_no,
                    input: args[0].to_string(),
                    output: args[1].to_string(),
                    init,
                });
                idx += 1;
            }
            ".end" => break,
            // Tolerated/ignored directives.
            ".clock" | ".default_input_arrival" | ".wire_load_slope" => idx += 1,
            other => {
                return Err(NetlistError::BlifParse {
                    line: *line_no,
                    msg: format!("unsupported directive '{other}'"),
                })
            }
        }
    }

    build_circuit(model, k, inputs, outputs, names, latches)
}

fn build_circuit(
    model: String,
    k: usize,
    inputs: Vec<String>,
    outputs: Vec<String>,
    names: Vec<NamesDecl>,
    latches: Vec<LatchDecl>,
) -> Result<LutCircuit, NetlistError> {
    // Count fanout of each signal to decide LUT/latch packing and PO
    // buffer collapsing.
    let mut fanout: HashMap<&str, usize> = HashMap::new();
    for n in &names {
        for i in &n.inputs {
            *fanout.entry(i.as_str()).or_default() += 1;
        }
    }
    for l in &latches {
        *fanout.entry(l.input.as_str()).or_default() += 1;
    }

    let is_po: std::collections::HashSet<&str> = outputs.iter().map(String::as_str).collect();

    let names_by_output: HashMap<&str, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.output.as_str(), i))
        .collect();

    // A .names is *absorbed* into a latch when it feeds exactly that latch
    // and nothing else (VPack-style packing).
    let mut absorbed_by: HashMap<usize, usize> = HashMap::new(); // names idx → latch idx
    for (li, l) in latches.iter().enumerate() {
        if let Some(&ni) = names_by_output.get(l.input.as_str()) {
            let fo = fanout.get(l.input.as_str()).copied().unwrap_or(0);
            if fo == 1 && !is_po.contains(l.input.as_str()) {
                absorbed_by.insert(ni, li);
            }
        }
    }

    let mut circuit = LutCircuit::new(model, k);
    let mut sig: HashMap<String, BlockId> = HashMap::new();

    for name in &inputs {
        let id = circuit.add_input(name.clone())?;
        sig.insert(name.clone(), id);
    }

    // Phase 1: create one block per producer with placeholder fanin.
    let placeholder = TruthTable::const0(0);
    let mut names_block: Vec<Option<BlockId>> = vec![None; names.len()];
    let mut latch_block: Vec<BlockId> = Vec::with_capacity(latches.len());
    for (ni, n) in names.iter().enumerate() {
        if absorbed_by.contains_key(&ni) {
            continue; // becomes part of the latch block
        }
        if sig.contains_key(&n.output) {
            return Err(NetlistError::BlifParse {
                line: n.line,
                msg: format!("signal '{}' driven twice", n.output),
            });
        }
        let id = circuit.add_lut(n.output.clone(), vec![], placeholder, false)?;
        sig.insert(n.output.clone(), id);
        names_block[ni] = Some(id);
    }
    for l in &latches {
        if sig.contains_key(&l.output) {
            return Err(NetlistError::BlifParse {
                line: l.line,
                msg: format!("signal '{}' driven twice", l.output),
            });
        }
        let id = circuit.add_lut(l.output.clone(), vec![], placeholder, true)?;
        circuit.set_init(id, l.init)?;
        sig.insert(l.output.clone(), id);
        latch_block.push(id);
    }

    let resolve = |sig: &HashMap<String, BlockId>, s: &str, line: usize| {
        sig.get(s).copied().ok_or(NetlistError::BlifParse {
            line,
            msg: format!("undriven signal '{s}'"),
        })
    };

    // Phase 2: patch fanin and truth tables.
    for (ni, n) in names.iter().enumerate() {
        let truth = TruthTable::from_cover(n.inputs.len(), &n.cover).map_err(|e| {
            NetlistError::BlifParse {
                line: n.line,
                msg: e.to_string(),
            }
        })?;
        if n.inputs.len() > k {
            return Err(NetlistError::BlifParse {
                line: n.line,
                msg: format!(".names with {} inputs exceeds k = {k}", n.inputs.len()),
            });
        }
        let fanin: Vec<BlockId> = n
            .inputs
            .iter()
            .map(|s| resolve(&sig, s, n.line))
            .collect::<Result<_, _>>()?;
        let target = match absorbed_by.get(&ni) {
            Some(&li) => latch_block[li],
            None => names_block[ni].expect("non-absorbed names has a block"),
        };
        circuit.set_lut(target, fanin, truth)?;
    }
    for (li, l) in latches.iter().enumerate() {
        let ni = names_by_output.get(l.input.as_str()).copied();
        if ni.is_some_and(|ni| absorbed_by.get(&ni) == Some(&li)) {
            continue; // fanin already patched from the absorbed .names
        }
        // Pass-through registered LUT sampling the latch input.
        let src = resolve(&sig, &l.input, l.line)?;
        circuit.set_lut(latch_block[li], vec![src], TruthTable::var(1, 0))?;
    }

    // Primary outputs. Collapse identity buffers (single-input .names with
    // f = x) that only feed the PO back into a pad reference.
    for out in &outputs {
        let src = resolve(&sig, out, 0).map_err(|_| NetlistError::BlifParse {
            line: 0,
            msg: format!("primary output '{out}' is never driven"),
        })?;
        let mut pad_source = src;
        if let BlockKind::Lut {
            inputs: fin,
            truth,
            registered: false,
            ..
        } = circuit.block(src).kind()
        {
            if fin.len() == 1 && *truth == TruthTable::var(1, 0) {
                // Identity buffer; only collapse if nothing else reads it.
                let fo = fanout.get(out.as_str()).copied().unwrap_or(0);
                if fo == 0 {
                    pad_source = fin[0];
                }
            }
        }
        let pad_name = if circuit.find(out).is_none() {
            out.clone()
        } else {
            format!("{out}$pad")
        };
        circuit.add_output_port(pad_name, out.clone(), pad_source)?;
    }

    // Note: collapsed buffers may remain as dangling LUTs; prune them.
    let circuit = prune_dangling(&circuit)?;
    circuit.validate()?;
    Ok(circuit)
}

/// Rebuilds the circuit without LUTs that drive nothing (recursively).
/// BLIF files occasionally contain dangling logic; the paper's flow counts
/// only live LUTs.
pub fn prune_dangling(circuit: &LutCircuit) -> Result<LutCircuit, NetlistError> {
    // Mark live blocks: outputs, their transitive fanin.
    let mut live = vec![false; circuit.block_count()];
    let mut stack: Vec<BlockId> = circuit.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        for &src in circuit.block(id).fanin() {
            if !live[src.index()] {
                stack.push(src);
            }
        }
    }
    // Keep all input pads (ports are part of the interface).
    for &pad in circuit.inputs() {
        live[pad.index()] = true;
    }

    // Two-phase rebuild: registered LUTs may reference themselves or later
    // blocks, so create every driver with placeholder fanin first.
    let mut out = LutCircuit::new(circuit.name().to_string(), circuit.k());
    let mut remap: HashMap<BlockId, BlockId> = HashMap::new();
    let placeholder = TruthTable::const0(0);
    for id in circuit.block_ids() {
        if !live[id.index()] {
            continue;
        }
        let block = circuit.block(id);
        match block.kind() {
            BlockKind::InputPad => {
                let nid = out.add_input(block.name().to_string())?;
                remap.insert(id, nid);
            }
            BlockKind::Lut {
                registered, init, ..
            } => {
                let nid =
                    out.add_lut(block.name().to_string(), vec![], placeholder, *registered)?;
                if *registered {
                    out.set_init(nid, *init)?;
                }
                remap.insert(id, nid);
            }
            BlockKind::OutputPad { .. } => {}
        }
    }
    for id in circuit.block_ids() {
        if !live[id.index()] {
            continue;
        }
        let block = circuit.block(id);
        match block.kind() {
            BlockKind::Lut { inputs, truth, .. } => {
                let fanin: Vec<BlockId> = inputs.iter().map(|s| remap[s]).collect();
                out.set_lut(remap[&id], fanin, *truth)?;
            }
            BlockKind::OutputPad { source, port } => {
                out.add_output_port(block.name().to_string(), port.clone(), remap[source])?;
            }
            BlockKind::InputPad => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::first_divergence;

    fn and2() -> TruthTable {
        TruthTable::var(2, 0) & TruthTable::var(2, 1)
    }

    #[test]
    fn roundtrip_combinational() {
        let mut c = LutCircuit::new("rt", 4);
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_lut("y", vec![a, b], and2(), false).unwrap();
        c.add_output("y_pad", g).unwrap();
        let text = to_blif(&c);
        let d = from_blif(&text, 4).unwrap();
        // The port buffer emitted for y→y_pad collapses back into the pad.
        assert_eq!(d.lut_count(), 1);
        assert!(d.outputs().iter().any(
            |&p| matches!(d.block(p).kind(), BlockKind::OutputPad { port, .. } if port == "y_pad")
        ));
        assert_eq!(first_divergence(&c, &d, 64, 5).unwrap(), None);
    }

    #[test]
    fn roundtrip_same_name_output_no_buffer() {
        let mut c = LutCircuit::new("rt", 4);
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_lut("y", vec![a, b], and2(), false).unwrap();
        c.add_output_port("y$pad", "y", g).unwrap();
        let text = to_blif(&c);
        assert!(!text.contains(".names y y"), "no buffer expected:\n{text}");
        let d = from_blif(&text, 4).unwrap();
        assert_eq!(d.lut_count(), 1);
        assert_eq!(first_divergence(&c, &d, 64, 7).unwrap(), None);
    }

    #[test]
    fn roundtrip_registered() {
        let mut c = LutCircuit::new("rt", 4);
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_lut("q", vec![a, b], and2(), true).unwrap();
        c.set_init(g, true).unwrap();
        c.add_output_port("q$pad", "q", g).unwrap();
        let text = to_blif(&c);
        assert!(text.contains(".latch q^d q re clk 1"), "{text}");
        let d = from_blif(&text, 4).unwrap();
        // The .names feeding the latch is absorbed back into one block.
        assert_eq!(d.lut_count(), 1);
        assert_eq!(first_divergence(&c, &d, 64, 9).unwrap(), None);
    }

    #[test]
    fn parse_continuation_and_comments() {
        let text = "\
.model m # trailing comment
.inputs a \\
        b
.outputs y
.names a b y
11 1
.end
";
        let c = from_blif(text, 4).unwrap();
        assert_eq!(c.inputs().len(), 2);
        assert_eq!(c.lut_count(), 1);
    }

    #[test]
    fn parse_offset_cover() {
        let text = "\
.model m
.inputs a b
.outputs y
.names a b y
11 0
.end
";
        let c = from_blif(text, 4).unwrap();
        let y = c.find("y").unwrap();
        match c.block(y).kind() {
            BlockKind::Lut { truth, .. } => assert_eq!(*truth, !and2()),
            _ => panic!("expected LUT"),
        }
    }

    #[test]
    fn parse_constant_names() {
        let text = "\
.model m
.inputs
.outputs one zero
.names one
1
.names zero
.end
";
        let c = from_blif(text, 4).unwrap();
        assert_eq!(c.lut_count(), 2);
    }

    #[test]
    fn latch_from_pi_becomes_passthrough() {
        let text = "\
.model m
.inputs d
.outputs q
.latch d q re clk 0
.end
";
        let c = from_blif(text, 4).unwrap();
        assert_eq!(c.lut_count(), 1);
        let q = c.find("q").unwrap();
        assert!(matches!(
            c.block(q).kind(),
            BlockKind::Lut {
                registered: true,
                ..
            }
        ));
    }

    #[test]
    fn latch_not_absorbed_when_names_has_other_fanout() {
        let text = "\
.model m
.inputs a b
.outputs q y
.names a b f
11 1
.latch f q re clk 0
.names f y
1 1
.end
";
        let c = from_blif(text, 4).unwrap();
        // f stays a LUT; q is a pass-through registered LUT; y collapses
        // into a pad on f... but f also feeds q, so fanout(f) = 2 and the
        // buffer does not collapse.
        assert!(c.find("f").is_some());
        let q = c.find("q").unwrap();
        assert_eq!(c.block(q).fanin().len(), 1);
    }

    #[test]
    fn error_on_undriven_signal() {
        let text = "\
.model m
.inputs a
.outputs y
.names a ghost y
11 1
.end
";
        let err = from_blif(text, 4).unwrap_err();
        assert!(matches!(err, NetlistError::BlifParse { .. }), "{err}");
    }

    #[test]
    fn error_on_doubly_driven_signal() {
        let text = "\
.model m
.inputs a
.outputs y
.names a y
1 1
.names a y
0 1
.end
";
        assert!(from_blif(text, 4).is_err());
    }

    #[test]
    fn error_on_wide_names() {
        let text = "\
.model m
.inputs a b c d e
.outputs y
.names a b c d e y
11111 1
.end
";
        assert!(from_blif(text, 4).is_err());
        assert!(from_blif(text, 5).is_ok());
    }

    #[test]
    fn error_on_unknown_directive() {
        assert!(from_blif(".model m\n.gate foo\n.end\n", 4).is_err());
    }

    #[test]
    fn prune_removes_dead_logic() {
        let mut c = LutCircuit::new("p", 4);
        let a = c.add_input("a").unwrap();
        let live = c
            .add_lut("live", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        let _dead = c
            .add_lut("dead", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        c.add_output("y", live).unwrap();
        let pruned = prune_dangling(&c).unwrap();
        assert_eq!(pruned.lut_count(), 1);
        assert!(pruned.find("dead").is_none());
        assert!(pruned.find("a").is_some());
    }

    #[test]
    fn sequential_roundtrip_behaviour() {
        // A 2-bit counter with enable.
        let mut c = LutCircuit::new("ctr", 4);
        let en = c.add_input("en").unwrap();
        let b0 = c
            .add_lut("b0", vec![], TruthTable::const0(0), true)
            .unwrap();
        let b1 = c
            .add_lut("b1", vec![], TruthTable::const0(0), true)
            .unwrap();
        // b0' = b0 ^ en
        c.set_lut(
            b0,
            vec![b0, en],
            TruthTable::var(2, 0) ^ TruthTable::var(2, 1),
        )
        .unwrap();
        // b1' = b1 ^ (b0 & en)
        c.set_lut(
            b1,
            vec![b1, b0, en],
            TruthTable::from_fn(3, |i| (i & 1) ^ (((i >> 1) & 1) & ((i >> 2) & 1)) == 1),
        )
        .unwrap();
        c.add_output_port("c0", "c0", b0).unwrap();
        c.add_output_port("c1", "c1", b1).unwrap();
        c.validate().unwrap();
        let text = to_blif(&c);
        let d = from_blif(&text, 4).unwrap();
        assert_eq!(first_divergence(&c, &d, 128, 3).unwrap(), None);
    }
}
