//! Error types for netlist construction and BLIF I/O.

use std::error::Error;
use std::fmt;

/// Errors produced while building, validating or parsing netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A block or signal name was declared twice.
    DuplicateName(String),
    /// A referenced signal/block name is not declared.
    UnknownName(String),
    /// A LUT was given more inputs than the architecture's k.
    TooManyInputs {
        /// Offending block name.
        name: String,
        /// Requested fanin.
        got: usize,
        /// Architecture LUT width.
        k: usize,
    },
    /// Truth-table width does not match the declared fanin.
    TruthWidthMismatch {
        /// Offending block name.
        name: String,
        /// Truth-table width.
        truth_k: usize,
        /// Declared fanin.
        fanin: usize,
    },
    /// The combinational part of the circuit contains a cycle.
    CombinationalCycle(String),
    /// A cover in a BLIF `.names` body is malformed.
    InvalidCover(String),
    /// BLIF text could not be parsed.
    BlifParse {
        /// 1-based source line.
        line: usize,
        /// Problem description.
        msg: String,
    },
    /// An operation referenced a block of the wrong kind (e.g. asking for
    /// the truth table of an input pad).
    WrongBlockKind(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "duplicate name '{n}'"),
            NetlistError::UnknownName(n) => write!(f, "unknown name '{n}'"),
            NetlistError::TooManyInputs { name, got, k } => {
                write!(f, "block '{name}' has {got} inputs, architecture k = {k}")
            }
            NetlistError::TruthWidthMismatch {
                name,
                truth_k,
                fanin,
            } => write!(
                f,
                "block '{name}': truth table width {truth_k} != fanin {fanin}"
            ),
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through '{n}'")
            }
            NetlistError::InvalidCover(msg) => write!(f, "invalid cover: {msg}"),
            NetlistError::BlifParse { line, msg } => {
                write!(f, "BLIF parse error on line {line}: {msg}")
            }
            NetlistError::WrongBlockKind(msg) => write!(f, "wrong block kind: {msg}"),
        }
    }
}

impl Error for NetlistError {}
