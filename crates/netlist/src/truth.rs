//! Truth tables for k-input look-up tables (k ≤ 6).

use crate::NetlistError;
use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Maximum LUT input count supported by the 64-bit truth-table
/// representation.
pub const MAX_LUT_INPUTS: usize = 6;

/// The truth table of a k-input LUT, k ≤ [`MAX_LUT_INPUTS`].
///
/// Entry `i` (bit `i` of the backing `u64`) is the output for the input
/// assignment where LUT input `j` carries bit `j` of `i`. This is the
/// conventional FPGA configuration-bit ordering: the 2^k entries are
/// exactly the LUT's configuration memory cells, which the multi-mode flow
/// turns into Boolean functions of the mode bits when LUTs of different
/// modes share a tunable LUT.
///
/// # Example
///
/// ```
/// use mm_netlist::TruthTable;
/// let a = TruthTable::var(2, 0);
/// let b = TruthTable::var(2, 1);
/// let f = a & !b;
/// assert!(f.eval_index(0b01));
/// assert!(!f.eval_index(0b11));
/// // Entry 0 is leftmost: only entry 1 (a=1, b=0) is true.
/// assert_eq!(f.to_string(), "0100:2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    bits: u64,
    k: u8,
}

/// All 2^k table entries are meaningful only for k inputs; this is the mask
/// of valid bits.
fn mask(k: usize) -> u64 {
    if k >= 6 {
        u64::MAX
    } else {
        (1u64 << (1usize << k)) - 1
    }
}

impl TruthTable {
    /// Creates a truth table from raw bits; bits above entry `2^k` are
    /// cleared.
    ///
    /// # Panics
    ///
    /// Panics if `k > MAX_LUT_INPUTS`.
    #[must_use]
    pub fn from_bits(k: usize, bits: u64) -> Self {
        assert!(
            k <= MAX_LUT_INPUTS,
            "LUT width {k} exceeds {MAX_LUT_INPUTS}"
        );
        Self {
            bits: bits & mask(k),
            k: k as u8,
        }
    }

    /// The constant-0 function of `k` inputs.
    #[must_use]
    pub fn const0(k: usize) -> Self {
        Self::from_bits(k, 0)
    }

    /// The constant-1 function of `k` inputs.
    #[must_use]
    pub fn const1(k: usize) -> Self {
        Self::from_bits(k, u64::MAX)
    }

    /// The projection onto input `var` (`f = x_var`) over `k` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `var >= k`.
    #[must_use]
    pub fn var(k: usize, var: usize) -> Self {
        assert!(var < k, "input {var} out of range for {k}-LUT");
        // Standard variable masks: for var v, entries with bit v set.
        let mut bits = 0u64;
        for i in 0..(1usize << k) {
            if i & (1 << var) != 0 {
                bits |= 1 << i;
            }
        }
        Self::from_bits(k, bits)
    }

    /// Builds a table by evaluating `f` on every entry index.
    #[must_use]
    pub fn from_fn(k: usize, f: impl Fn(usize) -> bool) -> Self {
        let mut bits = 0u64;
        for i in 0..(1usize << k) {
            if f(i) {
                bits |= 1 << i;
            }
        }
        Self::from_bits(k, bits)
    }

    /// Number of LUT inputs.
    #[must_use]
    pub fn k(self) -> usize {
        self.k as usize
    }

    /// Raw configuration bits (entry `i` in bit `i`).
    #[must_use]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Number of configuration entries (2^k).
    #[must_use]
    pub fn len(self) -> usize {
        1usize << self.k
    }

    /// Truth tables are never empty; provided for clippy-friendliness.
    #[must_use]
    pub fn is_empty(self) -> bool {
        false
    }

    /// Output for entry `index` (input `j` = bit `j` of `index`).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^k`.
    #[must_use]
    pub fn eval_index(self, index: usize) -> bool {
        assert!(index < self.len(), "entry {index} out of range");
        self.bits & (1 << index) != 0
    }

    /// Output for the given input values (`inputs.len()` must equal `k`).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != k`.
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.k(), "input count mismatch");
        let mut idx = 0usize;
        for (j, &v) in inputs.iter().enumerate() {
            if v {
                idx |= 1 << j;
            }
        }
        self.eval_index(idx)
    }

    /// Sets entry `index` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 2^k`.
    pub fn set(&mut self, index: usize, value: bool) {
        assert!(index < self.len(), "entry {index} out of range");
        if value {
            self.bits |= 1 << index;
        } else {
            self.bits &= !(1 << index);
        }
    }

    /// Whether the function is constant (0 or 1).
    #[must_use]
    pub fn is_const(self) -> bool {
        self.bits == 0 || self.bits == mask(self.k())
    }

    /// Whether input `var` influences the output.
    ///
    /// # Panics
    ///
    /// Panics if `var >= k`.
    #[must_use]
    pub fn depends_on(self, var: usize) -> bool {
        assert!(var < self.k(), "input {var} out of range");
        let vmask = Self::var(self.k(), var).bits;
        // Positive cofactor (entries with var=1, shifted down) vs negative.
        let hi = (self.bits & vmask) >> (1 << var);
        let lo = self.bits & !vmask;
        hi != lo
    }

    /// The set of inputs that influence the output (the *support*).
    #[must_use]
    pub fn support(self) -> Vec<usize> {
        (0..self.k()).filter(|&v| self.depends_on(v)).collect()
    }

    /// Extends the table to `new_k` inputs (added inputs are don't-cares).
    ///
    /// # Panics
    ///
    /// Panics if `new_k < k` or `new_k > MAX_LUT_INPUTS`.
    #[must_use]
    pub fn extend_to(self, new_k: usize) -> Self {
        assert!(new_k >= self.k(), "cannot shrink with extend_to");
        let mut t = self;
        while t.k() < new_k {
            let k = t.k();
            let m = mask(k);
            let bits = (t.bits & m) | ((t.bits & m) << (1u32 << k));
            t = Self::from_bits(k + 1, bits);
        }
        t
    }

    /// Reorders inputs: new input `j` takes the role of old input
    /// `perm[j]`. `perm` must be a permutation of `0..k`.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..k`.
    #[must_use]
    pub fn permute(self, perm: &[usize]) -> Self {
        let k = self.k();
        assert_eq!(perm.len(), k, "permutation length mismatch");
        let mut seen = vec![false; k];
        for &p in perm {
            assert!(p < k && !seen[p], "not a permutation of 0..{k}");
            seen[p] = true;
        }
        Self::from_fn(k, |idx| {
            let mut old = 0usize;
            for (new_pos, &old_pos) in perm.iter().enumerate() {
                if idx & (1 << new_pos) != 0 {
                    old |= 1 << old_pos;
                }
            }
            self.eval_index(old)
        })
    }

    /// The function with input `var` fixed to `value`, as a table over the
    /// same `k` inputs (the fixed input becomes a don't-care).
    ///
    /// # Panics
    ///
    /// Panics if `var >= k`.
    #[must_use]
    pub fn cofactor(self, var: usize, value: bool) -> Self {
        Self::from_fn(self.k(), |idx| {
            let fixed = if value {
                idx | (1 << var)
            } else {
                idx & !(1 << var)
            };
            self.eval_index(fixed)
        })
    }

    /// Parses a BLIF-style single-output cover into a truth table over
    /// `k` inputs.
    ///
    /// Each element of `cover` is `(input pattern, output char)` where the
    /// pattern uses `0`, `1` and `-`; all output chars must agree (`1` for
    /// an ON-set cover, `0` for an OFF-set cover). The *first* pattern
    /// character corresponds to LUT input 0, matching the order of the
    /// `.names` header.
    ///
    /// # Errors
    ///
    /// Returns an error if patterns have the wrong length, contain invalid
    /// characters, or mix output polarities.
    pub fn from_cover(k: usize, cover: &[(String, char)]) -> Result<Self, NetlistError> {
        if cover.is_empty() {
            // An empty cover is the constant 0 in BLIF.
            return Ok(Self::const0(k));
        }
        let polarity = cover[0].1;
        if polarity != '0' && polarity != '1' {
            return Err(NetlistError::InvalidCover(format!(
                "bad output value '{polarity}'"
            )));
        }
        let mut on = 0u64;
        for (pat, out) in cover {
            if *out != polarity {
                return Err(NetlistError::InvalidCover(
                    "mixed output polarities in cover".into(),
                ));
            }
            if pat.len() != k {
                return Err(NetlistError::InvalidCover(format!(
                    "pattern '{pat}' has {} chars, expected {k}",
                    pat.len()
                )));
            }
            let mut care = 0usize;
            let mut val = 0usize;
            for (j, c) in pat.chars().enumerate() {
                match c {
                    '0' => care |= 1 << j,
                    '1' => {
                        care |= 1 << j;
                        val |= 1 << j;
                    }
                    '-' => {}
                    _ => {
                        return Err(NetlistError::InvalidCover(format!(
                            "bad pattern character '{c}'"
                        )))
                    }
                }
            }
            for idx in 0..(1usize << k) {
                if idx & care == val {
                    on |= 1 << idx;
                }
            }
        }
        let t = Self::from_bits(k, on);
        Ok(if polarity == '1' { t } else { !t })
    }

    /// Emits a BLIF ON-set cover (pattern, `'1'`) pairs; one line per
    /// minterm. The empty vector encodes the constant-0 function.
    #[must_use]
    pub fn to_cover(self) -> Vec<(String, char)> {
        let k = self.k();
        let mut lines = Vec::new();
        for idx in 0..(1usize << k) {
            if self.eval_index(idx) {
                let pat: String = (0..k)
                    .map(|j| if idx & (1 << j) != 0 { '1' } else { '0' })
                    .collect();
                lines.push((pat, '1'));
            }
        }
        lines
    }
}

impl fmt::Display for TruthTable {
    /// Renders as `<entries>:<k>` with entry 0 leftmost, e.g. the 2-input
    /// AND is `0001:2`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len() {
            write!(f, "{}", u8::from(self.eval_index(i)))?;
        }
        write!(f, ":{}", self.k)
    }
}

impl BitAnd for TruthTable {
    type Output = TruthTable;
    /// # Panics
    /// Panics if the two tables have different input counts.
    fn bitand(self, rhs: TruthTable) -> TruthTable {
        assert_eq!(self.k, rhs.k, "truth-table width mismatch");
        TruthTable::from_bits(self.k(), self.bits & rhs.bits)
    }
}

impl BitOr for TruthTable {
    type Output = TruthTable;
    /// # Panics
    /// Panics if the two tables have different input counts.
    fn bitor(self, rhs: TruthTable) -> TruthTable {
        assert_eq!(self.k, rhs.k, "truth-table width mismatch");
        TruthTable::from_bits(self.k(), self.bits | rhs.bits)
    }
}

impl BitXor for TruthTable {
    type Output = TruthTable;
    /// # Panics
    /// Panics if the two tables have different input counts.
    fn bitxor(self, rhs: TruthTable) -> TruthTable {
        assert_eq!(self.k, rhs.k, "truth-table width mismatch");
        TruthTable::from_bits(self.k(), self.bits ^ rhs.bits)
    }
}

impl Not for TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        TruthTable::from_bits(self.k(), !self.bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn var_tables() {
        let a = TruthTable::var(2, 0);
        assert_eq!(a.bits(), 0b1010);
        let b = TruthTable::var(2, 1);
        assert_eq!(b.bits(), 0b1100);
    }

    #[test]
    fn boolean_ops() {
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        assert_eq!((a & b).bits(), 0b1000);
        assert_eq!((a | b).bits(), 0b1110);
        assert_eq!((a ^ b).bits(), 0b0110);
        assert_eq!((!a).bits(), 0b0101);
    }

    #[test]
    fn eval_paths_agree() {
        let f = TruthTable::from_bits(3, 0b1110_1000); // majority
        for idx in 0..8usize {
            let ins = [(idx & 1) != 0, (idx & 2) != 0, (idx & 4) != 0];
            assert_eq!(f.eval(&ins), f.eval_index(idx));
        }
    }

    #[test]
    fn const_detection() {
        assert!(TruthTable::const0(4).is_const());
        assert!(TruthTable::const1(6).is_const());
        assert!(!TruthTable::var(3, 1).is_const());
    }

    #[test]
    fn support_of_degenerate_function() {
        // f = x0 over 3 inputs: support is {0}.
        let f = TruthTable::var(3, 0);
        assert_eq!(f.support(), vec![0]);
        assert!(f.depends_on(0));
        assert!(!f.depends_on(1));
        assert!(!f.depends_on(2));
    }

    #[test]
    fn extend_preserves_function() {
        let f = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        let g = f.extend_to(4);
        assert_eq!(g.k(), 4);
        for idx in 0..16usize {
            assert_eq!(g.eval_index(idx), f.eval_index(idx & 0b11));
        }
    }

    #[test]
    fn permute_swaps_roles() {
        // f(x0,x1) = x0 & !x1, permuted with perm=[1,0] gives x1 & !x0.
        let f = TruthTable::var(2, 0) & !TruthTable::var(2, 1);
        let g = f.permute(&[1, 0]);
        assert_eq!(g, TruthTable::var(2, 1) & !TruthTable::var(2, 0));
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn permute_rejects_non_permutation() {
        let _ = TruthTable::var(2, 0).permute(&[0, 0]);
    }

    #[test]
    fn cofactor_fixes_input() {
        let f = TruthTable::var(2, 0) ^ TruthTable::var(2, 1);
        let f0 = f.cofactor(1, false);
        let f1 = f.cofactor(1, true);
        assert_eq!(f0, TruthTable::var(2, 0));
        assert_eq!(f1, !TruthTable::var(2, 0));
    }

    #[test]
    fn cover_roundtrip() {
        let f = TruthTable::from_bits(3, 0b1001_0110); // parity
        let cover = f.to_cover();
        let g = TruthTable::from_cover(3, &cover).expect("parse cover");
        assert_eq!(f, g);
    }

    #[test]
    fn cover_with_dontcares() {
        // "1-" means input0=1: f = x0 over 2 inputs.
        let cover = vec![("1-".to_string(), '1')];
        let f = TruthTable::from_cover(2, &cover).expect("parse");
        assert_eq!(f, TruthTable::var(2, 0));
    }

    #[test]
    fn offset_cover_complements() {
        // OFF-set cover "11 0": f = !(x0&x1) = NAND.
        let cover = vec![("11".to_string(), '0')];
        let f = TruthTable::from_cover(2, &cover).expect("parse");
        assert_eq!(f, !(TruthTable::var(2, 0) & TruthTable::var(2, 1)));
    }

    #[test]
    fn empty_cover_is_const0() {
        let f = TruthTable::from_cover(2, &[]).expect("parse");
        assert_eq!(f, TruthTable::const0(2));
    }

    #[test]
    fn cover_errors() {
        assert!(TruthTable::from_cover(2, &[("1".into(), '1')]).is_err());
        assert!(TruthTable::from_cover(2, &[("1x".into(), '1')]).is_err());
        assert!(TruthTable::from_cover(2, &[("11".into(), '1'), ("00".into(), '0')]).is_err());
        assert!(TruthTable::from_cover(2, &[("11".into(), '2')]).is_err());
    }

    #[test]
    fn six_input_tables() {
        let f = TruthTable::var(6, 5);
        assert_eq!(f.support(), vec![5]);
        assert!(!TruthTable::const1(6).bits() == 0);
    }

    #[test]
    fn display_format() {
        let and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
        assert_eq!(and2.to_string(), "0001:2");
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn rejects_wide_luts() {
        let _ = TruthTable::const0(7);
    }
}
