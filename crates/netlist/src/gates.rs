//! Gate-level logic networks — the front-end IR emitted by the benchmark
//! generators and consumed by synthesis.
//!
//! A [`GateNetwork`] is a word-level-free, technology-independent netlist
//! of two-input gates, inverters, multiplexers and D flip-flops.
//! Combinational acyclicity is guaranteed *by construction*: every gate may
//! only reference signals created before it; cycles are closed exclusively
//! through flip-flops, whose data input is connected after creation with
//! [`GateNetwork::connect_dff`].

use crate::NetlistError;
use std::fmt;

/// Identifier of a signal (gate output) in a [`GateNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// The raw index of the signal.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The operation producing a signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateOp {
    /// Primary input.
    Input,
    /// Constant 0 or 1.
    Const(bool),
    /// Inverter.
    Not(SignalId),
    /// 2-input AND.
    And(SignalId, SignalId),
    /// 2-input OR.
    Or(SignalId, SignalId),
    /// 2-input XOR.
    Xor(SignalId, SignalId),
    /// 2:1 multiplexer: `sel ? hi : lo`.
    Mux {
        /// Select input.
        sel: SignalId,
        /// Output when `sel` is 1.
        hi: SignalId,
        /// Output when `sel` is 0.
        lo: SignalId,
    },
    /// D flip-flop; `d` is patched by [`GateNetwork::connect_dff`] and the
    /// placeholder value points at the flip-flop itself until then.
    Dff {
        /// Data input.
        d: SignalId,
        /// Reset/initial value.
        init: bool,
    },
}

impl GateOp {
    fn operands(&self) -> impl Iterator<Item = SignalId> + '_ {
        let ops: [Option<SignalId>; 3] = match *self {
            GateOp::Input | GateOp::Const(_) => [None, None, None],
            GateOp::Not(a) => [Some(a), None, None],
            GateOp::And(a, b) | GateOp::Or(a, b) | GateOp::Xor(a, b) => [Some(a), Some(b), None],
            GateOp::Mux { sel, hi, lo } => [Some(sel), Some(hi), Some(lo)],
            GateOp::Dff { d, .. } => [Some(d), None, None],
        };
        ops.into_iter().flatten()
    }
}

/// A gate-level logic network with named primary inputs and outputs.
///
/// # Example
///
/// ```
/// use mm_netlist::GateNetwork;
///
/// # fn main() -> Result<(), mm_netlist::NetlistError> {
/// let mut n = GateNetwork::new("half_adder");
/// let a = n.add_input("a")?;
/// let b = n.add_input("b")?;
/// let sum = n.xor(a, b);
/// let carry = n.and(a, b);
/// n.add_output("sum", sum)?;
/// n.add_output("carry", carry)?;
/// assert_eq!(n.gate_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GateNetwork {
    name: String,
    gates: Vec<GateOp>,
    inputs: Vec<(String, SignalId)>,
    outputs: Vec<(String, SignalId)>,
}

impl GateNetwork {
    /// Creates an empty network.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The network name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    fn push(&mut self, op: GateOp) -> SignalId {
        for operand in op.operands() {
            // DFF placeholders reference themselves; allow equality.
            assert!(
                operand.index() <= self.gates.len(),
                "operand {operand} not yet defined"
            );
        }
        let id = SignalId(self.gates.len() as u32);
        self.gates.push(op);
        id
    }

    /// Adds a named primary input.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if an input or output of
    /// this name exists.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<SignalId, NetlistError> {
        let name = name.into();
        if self.port_exists(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let id = self.push(GateOp::Input);
        self.inputs.push((name, id));
        Ok(id)
    }

    /// Exports `signal` as a named primary output.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if an input or output of
    /// this name exists.
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        signal: SignalId,
    ) -> Result<(), NetlistError> {
        let name = name.into();
        if self.port_exists(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        self.outputs.push((name, signal));
        Ok(())
    }

    fn port_exists(&self, name: &str) -> bool {
        self.inputs.iter().any(|(n, _)| n == name) || self.outputs.iter().any(|(n, _)| n == name)
    }

    /// Constant signal.
    pub fn constant(&mut self, value: bool) -> SignalId {
        self.push(GateOp::Const(value))
    }

    /// Inverter.
    pub fn not(&mut self, a: SignalId) -> SignalId {
        self.push(GateOp::Not(a))
    }

    /// 2-input AND.
    pub fn and(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(GateOp::And(a, b))
    }

    /// 2-input OR.
    pub fn or(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(GateOp::Or(a, b))
    }

    /// 2-input XOR.
    pub fn xor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        self.push(GateOp::Xor(a, b))
    }

    /// 2-input NAND.
    pub fn nand(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let g = self.and(a, b);
        self.not(g)
    }

    /// 2-input NOR.
    pub fn nor(&mut self, a: SignalId, b: SignalId) -> SignalId {
        let g = self.or(a, b);
        self.not(g)
    }

    /// 2:1 multiplexer `sel ? hi : lo`.
    pub fn mux(&mut self, sel: SignalId, hi: SignalId, lo: SignalId) -> SignalId {
        self.push(GateOp::Mux { sel, hi, lo })
    }

    /// Reduction AND over any number of signals (empty = constant 1).
    pub fn and_many(&mut self, signals: &[SignalId]) -> SignalId {
        self.reduce(signals, true)
    }

    /// Reduction OR over any number of signals (empty = constant 0).
    pub fn or_many(&mut self, signals: &[SignalId]) -> SignalId {
        self.reduce(signals, false)
    }

    fn reduce(&mut self, signals: &[SignalId], is_and: bool) -> SignalId {
        match signals {
            [] => self.constant(is_and),
            [s] => *s,
            _ => {
                // Balanced tree keeps depth logarithmic.
                let mid = signals.len() / 2;
                let l = self.reduce(&signals[..mid], is_and);
                let r = self.reduce(&signals[mid..], is_and);
                if is_and {
                    self.and(l, r)
                } else {
                    self.or(l, r)
                }
            }
        }
    }

    /// Reduction XOR (parity) over any number of signals (empty = 0).
    pub fn xor_many(&mut self, signals: &[SignalId]) -> SignalId {
        match signals {
            [] => self.constant(false),
            [s] => *s,
            _ => {
                let mid = signals.len() / 2;
                let l = self.xor_many(&signals[..mid]);
                let r = self.xor_many(&signals[mid..]);
                self.xor(l, r)
            }
        }
    }

    /// Creates a D flip-flop whose data input is connected later with
    /// [`GateNetwork::connect_dff`]; until then it feeds back on itself.
    pub fn add_dff(&mut self, init: bool) -> SignalId {
        let id = SignalId(self.gates.len() as u32);
        self.gates.push(GateOp::Dff { d: id, init });
        id
    }

    /// Creates a D flip-flop clocked from an already-defined signal.
    pub fn dff(&mut self, d: SignalId, init: bool) -> SignalId {
        self.push(GateOp::Dff { d, init })
    }

    /// Connects the data input of a flip-flop created with
    /// [`GateNetwork::add_dff`] — the only way to close a (sequential)
    /// cycle.
    ///
    /// # Errors
    ///
    /// Fails if `ff` is not a flip-flop.
    pub fn connect_dff(&mut self, ff: SignalId, d: SignalId) -> Result<(), NetlistError> {
        assert!(d.index() < self.gates.len(), "data signal not defined");
        match self.gates.get_mut(ff.index()) {
            Some(GateOp::Dff { d: slot, .. }) => {
                *slot = d;
                Ok(())
            }
            _ => Err(NetlistError::WrongBlockKind(format!(
                "{ff} is not a flip-flop"
            ))),
        }
    }

    /// The operation producing `signal`.
    ///
    /// # Panics
    ///
    /// Panics if the signal does not belong to this network.
    #[must_use]
    pub fn op(&self, signal: SignalId) -> GateOp {
        self.gates[signal.index()]
    }

    /// Number of signals (gates + inputs + constants + flip-flops).
    #[must_use]
    pub fn signal_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of combinational gates (excluding inputs, constants and
    /// flip-flops).
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g, GateOp::Input | GateOp::Const(_) | GateOp::Dff { .. }))
            .count()
    }

    /// Number of flip-flops.
    #[must_use]
    pub fn dff_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| matches!(g, GateOp::Dff { .. }))
            .count()
    }

    /// Named primary inputs in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[(String, SignalId)] {
        &self.inputs
    }

    /// Named primary outputs in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, SignalId)] {
        &self.outputs
    }

    /// All signal ids in definition order.
    pub fn signal_ids(&self) -> impl Iterator<Item = SignalId> {
        (0..self.gates.len() as u32).map(SignalId)
    }
}

/// Cycle-accurate two-valued simulator for a [`GateNetwork`].
///
/// Evaluation order is definition order, which is a topological order of
/// the combinational logic by construction; flip-flops read their state
/// and latch their next value at [`GateSimulator::step`].
#[derive(Debug, Clone)]
pub struct GateSimulator<'a> {
    net: &'a GateNetwork,
    values: Vec<bool>,
    state: Vec<bool>,
}

impl<'a> GateSimulator<'a> {
    /// Creates a simulator with flip-flops at their initial values.
    #[must_use]
    pub fn new(net: &'a GateNetwork) -> Self {
        let state = net
            .gates
            .iter()
            .map(|g| match g {
                GateOp::Dff { init, .. } => *init,
                _ => false,
            })
            .collect();
        Self {
            net,
            values: vec![false; net.gates.len()],
            state,
        }
    }

    /// Resets all flip-flops to their initial values.
    pub fn reset(&mut self) {
        for (i, g) in self.net.gates.iter().enumerate() {
            if let GateOp::Dff { init, .. } = g {
                self.state[i] = *init;
            }
        }
    }

    /// Evaluates one clock cycle: applies `input_values` (one per primary
    /// input, in declaration order), computes all signals, latches
    /// flip-flops, and returns the primary-output values in declaration
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `input_values.len()` differs from the input count.
    pub fn step(&mut self, input_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_values.len(),
            self.net.inputs.len(),
            "input width mismatch"
        );
        let mut next_in = input_values.iter();
        for (i, g) in self.net.gates.iter().enumerate() {
            let v = |s: SignalId| self.values[s.index()];
            self.values[i] = match *g {
                GateOp::Input => *next_in.next().expect("inputs counted"),
                GateOp::Const(b) => b,
                GateOp::Not(a) => !v(a),
                GateOp::And(a, b) => v(a) && v(b),
                GateOp::Or(a, b) => v(a) || v(b),
                GateOp::Xor(a, b) => v(a) ^ v(b),
                GateOp::Mux { sel, hi, lo } => {
                    if v(sel) {
                        v(hi)
                    } else {
                        v(lo)
                    }
                }
                GateOp::Dff { .. } => self.state[i],
            };
        }
        // Latch flip-flops from the settled combinational values.
        for (i, g) in self.net.gates.iter().enumerate() {
            if let GateOp::Dff { d, .. } = g {
                self.state[i] = self.values[d.index()];
            }
        }
        self.net
            .outputs
            .iter()
            .map(|&(_, s)| self.values[s.index()])
            .collect()
    }

    /// The settled value of an arbitrary signal after the latest
    /// [`GateSimulator::step`].
    #[must_use]
    pub fn value(&self, signal: SignalId) -> bool {
        self.values[signal.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_adder_truth() {
        let mut n = GateNetwork::new("ha");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let s = n.xor(a, b);
        let c = n.and(a, b);
        n.add_output("s", s).unwrap();
        n.add_output("c", c).unwrap();
        let mut sim = GateSimulator::new(&n);
        for (ia, ib) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = sim.step(&[ia, ib]);
            assert_eq!(out[0], ia ^ ib);
            assert_eq!(out[1], ia && ib);
        }
    }

    #[test]
    fn mux_selects() {
        let mut n = GateNetwork::new("m");
        let s = n.add_input("s").unwrap();
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let m = n.mux(s, a, b);
        n.add_output("y", m).unwrap();
        let mut sim = GateSimulator::new(&n);
        assert_eq!(sim.step(&[false, true, false]), vec![false]); // lo = b
        assert_eq!(sim.step(&[true, true, false]), vec![true]); // hi = a
    }

    #[test]
    fn dff_delays_one_cycle() {
        let mut n = GateNetwork::new("d");
        let a = n.add_input("a").unwrap();
        let q = n.dff(a, false);
        n.add_output("q", q).unwrap();
        let mut sim = GateSimulator::new(&n);
        assert_eq!(sim.step(&[true]), vec![false]); // init visible
        assert_eq!(sim.step(&[false]), vec![true]); // previous input
        assert_eq!(sim.step(&[false]), vec![false]);
    }

    #[test]
    fn toggle_flipflop_via_feedback() {
        let mut n = GateNetwork::new("t");
        let ff = n.add_dff(false);
        let nq = n.not(ff);
        n.connect_dff(ff, nq).unwrap();
        n.add_output("q", ff).unwrap();
        let mut sim = GateSimulator::new(&n);
        assert_eq!(sim.step(&[]), vec![false]);
        assert_eq!(sim.step(&[]), vec![true]);
        assert_eq!(sim.step(&[]), vec![false]);
        sim.reset();
        assert_eq!(sim.step(&[]), vec![false]);
    }

    #[test]
    fn reductions() {
        let mut n = GateNetwork::new("r");
        let sigs: Vec<SignalId> = (0..5)
            .map(|i| n.add_input(format!("i{i}")).unwrap())
            .collect();
        let all = n.and_many(&sigs);
        let any = n.or_many(&sigs);
        let par = n.xor_many(&sigs);
        n.add_output("all", all).unwrap();
        n.add_output("any", any).unwrap();
        n.add_output("par", par).unwrap();
        let mut sim = GateSimulator::new(&n);
        let out = sim.step(&[true, true, false, true, true]);
        assert_eq!(out, vec![false, true, false]);
        let out = sim.step(&[true; 5]);
        assert_eq!(out, vec![true, true, true]);
    }

    #[test]
    fn empty_reductions_are_constants() {
        let mut n = GateNetwork::new("r");
        let t = n.and_many(&[]);
        let f = n.or_many(&[]);
        n.add_output("t", t).unwrap();
        n.add_output("f", f).unwrap();
        let mut sim = GateSimulator::new(&n);
        assert_eq!(sim.step(&[]), vec![true, false]);
    }

    #[test]
    fn duplicate_port_names_rejected() {
        let mut n = GateNetwork::new("x");
        let a = n.add_input("a").unwrap();
        assert!(n.add_input("a").is_err());
        assert!(n.add_output("a", a).is_err());
        n.add_output("y", a).unwrap();
        assert!(n.add_output("y", a).is_err());
    }

    #[test]
    fn connect_dff_rejects_non_ff() {
        let mut n = GateNetwork::new("x");
        let a = n.add_input("a").unwrap();
        assert!(n.connect_dff(a, a).is_err());
    }

    #[test]
    fn counts() {
        let mut n = GateNetwork::new("x");
        let a = n.add_input("a").unwrap();
        let b = n.add_input("b").unwrap();
        let g = n.and(a, b);
        let _ = n.dff(g, false);
        let _ = n.constant(true);
        assert_eq!(n.signal_count(), 5);
        assert_eq!(n.gate_count(), 1);
        assert_eq!(n.dff_count(), 1);
    }
}
