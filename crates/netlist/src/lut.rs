//! k-LUT circuits — the intermediate representation produced by technology
//! mapping and consumed by placement, merging and routing.

use crate::{NetlistError, TruthTable};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a block inside one [`LutCircuit`].
///
/// Blocks are input pads, output pads and LUTs; the id is an index into the
/// circuit's block table and is only meaningful for the circuit that issued
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) u32);

impl BlockId {
    /// The raw index of the block.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// The role of a block within a [`LutCircuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockKind {
    /// A primary-input pad; drives one net named after the block.
    InputPad,
    /// A primary-output pad consuming the value of `source`.
    OutputPad {
        /// The driver block (input pad or LUT) observed by this output.
        source: BlockId,
        /// Exported port name (the BLIF `.outputs` signal).
        port: String,
    },
    /// A logic block: one k-input LUT plus an optional output flip-flop —
    /// the paper's "logic block … consisting of a combination of a look-up
    /// table and a flip-flop".
    Lut {
        /// Driver blocks of the LUT inputs, in truth-table input order.
        inputs: Vec<BlockId>,
        /// The LUT configuration.
        truth: TruthTable,
        /// Whether the block output is taken from the flip-flop
        /// (sequential) rather than the LUT (combinational).
        registered: bool,
        /// Initial flip-flop value (only meaningful when `registered`).
        init: bool,
    },
}

/// One block of a [`LutCircuit`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    name: String,
    kind: BlockKind,
}

impl Block {
    /// The unique block name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The block role.
    #[must_use]
    pub fn kind(&self) -> &BlockKind {
        &self.kind
    }

    /// Whether the block drives a net (input pads and LUTs do; output pads
    /// do not).
    #[must_use]
    pub fn is_driver(&self) -> bool {
        !matches!(self.kind, BlockKind::OutputPad { .. })
    }

    /// Whether the block occupies a logic (CLB) site when placed.
    #[must_use]
    pub fn is_lut(&self) -> bool {
        matches!(self.kind, BlockKind::Lut { .. })
    }

    /// Whether the block occupies an IO site when placed.
    #[must_use]
    pub fn is_pad(&self) -> bool {
        matches!(self.kind, BlockKind::InputPad | BlockKind::OutputPad { .. })
    }

    /// Driver blocks feeding this block, in pin order (empty for input
    /// pads).
    #[must_use]
    pub fn fanin(&self) -> &[BlockId] {
        match &self.kind {
            BlockKind::InputPad => &[],
            BlockKind::OutputPad { source, .. } => std::slice::from_ref(source),
            BlockKind::Lut { inputs, .. } => inputs,
        }
    }
}

/// A circuit of k-input LUT logic blocks with IO pads — the output of
/// technology mapping for one mode, and (after merging) the structural
/// skeleton of a tunable circuit.
///
/// Every block has a unique name. Input pads and LUTs each drive one net;
/// nets are identified with their driver block. Registered LUT outputs
/// come from the block's flip-flop and therefore break combinational
/// paths.
///
/// # Example
///
/// ```
/// use mm_netlist::{LutCircuit, TruthTable};
///
/// # fn main() -> Result<(), mm_netlist::NetlistError> {
/// let mut c = LutCircuit::new("toy", 4);
/// let a = c.add_input("a")?;
/// let b = c.add_input("b")?;
/// let and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
/// let g = c.add_lut("g", vec![a, b], and2, false)?;
/// c.add_output("y", g)?;
/// assert_eq!(c.lut_count(), 1);
/// c.validate()?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LutCircuit {
    name: String,
    k: usize,
    blocks: Vec<Block>,
    by_name: HashMap<String, BlockId>,
    inputs: Vec<BlockId>,
    outputs: Vec<BlockId>,
    luts: Vec<BlockId>,
}

impl LutCircuit {
    /// Creates an empty circuit for k-input LUTs.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds
    /// [`MAX_LUT_INPUTS`](crate::MAX_LUT_INPUTS).
    #[must_use]
    pub fn new(name: impl Into<String>, k: usize) -> Self {
        assert!(
            (1..=crate::MAX_LUT_INPUTS).contains(&k),
            "LUT width must be 1..={}",
            crate::MAX_LUT_INPUTS
        );
        Self {
            name: name.into(),
            k,
            blocks: Vec::new(),
            by_name: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            luts: Vec::new(),
        }
    }

    /// The circuit (model) name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The architecture's LUT input count k.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    fn insert_name(&mut self, name: &str, id: BlockId) -> Result<(), NetlistError> {
        if self.by_name.contains_key(name) {
            return Err(NetlistError::DuplicateName(name.to_string()));
        }
        self.by_name.insert(name.to_string(), id);
        Ok(())
    }

    /// Adds a primary-input pad.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is taken.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<BlockId, NetlistError> {
        let name = name.into();
        let id = BlockId(self.blocks.len() as u32);
        self.insert_name(&name, id)?;
        self.blocks.push(Block {
            name,
            kind: BlockKind::InputPad,
        });
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a LUT logic block with the given input drivers and truth table.
    ///
    /// # Errors
    ///
    /// Fails if the name is taken, the fanin exceeds k, the truth-table
    /// width disagrees with the fanin, or an input id does not refer to a
    /// driver block.
    pub fn add_lut(
        &mut self,
        name: impl Into<String>,
        inputs: Vec<BlockId>,
        truth: TruthTable,
        registered: bool,
    ) -> Result<BlockId, NetlistError> {
        let name = name.into();
        if inputs.len() > self.k {
            return Err(NetlistError::TooManyInputs {
                name,
                got: inputs.len(),
                k: self.k,
            });
        }
        if truth.k() != inputs.len() {
            return Err(NetlistError::TruthWidthMismatch {
                name,
                truth_k: truth.k(),
                fanin: inputs.len(),
            });
        }
        for &i in &inputs {
            let blk = self
                .blocks
                .get(i.index())
                .ok_or_else(|| NetlistError::UnknownName(format!("{i}")))?;
            if !blk.is_driver() {
                return Err(NetlistError::WrongBlockKind(format!(
                    "'{}' cannot drive a LUT input",
                    blk.name
                )));
            }
        }
        let id = BlockId(self.blocks.len() as u32);
        self.insert_name(&name, id)?;
        self.blocks.push(Block {
            name,
            kind: BlockKind::Lut {
                inputs,
                truth,
                registered,
                init: false,
            },
        });
        self.luts.push(id);
        Ok(id)
    }

    /// Adds a primary-output pad observing `source`; the exported port name
    /// equals the pad's block name.
    ///
    /// # Errors
    ///
    /// Fails if the name is taken or `source` is not a driver block.
    pub fn add_output(
        &mut self,
        name: impl Into<String>,
        source: BlockId,
    ) -> Result<BlockId, NetlistError> {
        let name = name.into();
        self.add_output_port(name.clone(), name, source)
    }

    /// Adds a primary-output pad with an explicit exported `port` name that
    /// may differ from the (unique) block name — needed when the port name
    /// collides with an internal signal.
    ///
    /// # Errors
    ///
    /// Fails if the block name is taken or `source` is not a driver block.
    pub fn add_output_port(
        &mut self,
        name: impl Into<String>,
        port: impl Into<String>,
        source: BlockId,
    ) -> Result<BlockId, NetlistError> {
        let name = name.into();
        let src = self
            .blocks
            .get(source.index())
            .ok_or_else(|| NetlistError::UnknownName(format!("{source}")))?;
        if !src.is_driver() {
            return Err(NetlistError::WrongBlockKind(format!(
                "'{}' cannot feed an output pad",
                src.name
            )));
        }
        let id = BlockId(self.blocks.len() as u32);
        self.insert_name(&name, id)?;
        self.blocks.push(Block {
            name,
            kind: BlockKind::OutputPad {
                source,
                port: port.into(),
            },
        });
        self.outputs.push(id);
        Ok(id)
    }

    /// Sets the initial flip-flop value of a registered LUT.
    ///
    /// # Errors
    ///
    /// Fails if `id` is not a registered LUT.
    pub fn set_init(&mut self, id: BlockId, value: bool) -> Result<(), NetlistError> {
        match self.blocks.get_mut(id.index()).map(|b| &mut b.kind) {
            Some(BlockKind::Lut {
                registered: true,
                init,
                ..
            }) => {
                *init = value;
                Ok(())
            }
            _ => Err(NetlistError::WrongBlockKind(format!(
                "{id} is not a registered LUT"
            ))),
        }
    }

    /// Replaces the fanin and truth table of a LUT block.
    ///
    /// This is the low-level patching API for *two-phase construction*:
    /// registered LUTs may participate in sequential cycles, so builders
    /// (the BLIF reader, the technology mapper, the tunable-circuit merge)
    /// first create blocks with placeholder functions and patch the fanin
    /// once every driver exists. Call [`LutCircuit::validate`] after
    /// patching to re-establish the acyclicity invariant.
    ///
    /// # Errors
    ///
    /// Fails if `id` is not a LUT, the fanin exceeds k, or the truth-table
    /// width disagrees with the fanin.
    pub fn set_lut(
        &mut self,
        id: BlockId,
        inputs: Vec<BlockId>,
        truth: TruthTable,
    ) -> Result<(), NetlistError> {
        if inputs.len() > self.k {
            return Err(NetlistError::TooManyInputs {
                name: self.blocks[id.index()].name.clone(),
                got: inputs.len(),
                k: self.k,
            });
        }
        if truth.k() != inputs.len() {
            return Err(NetlistError::TruthWidthMismatch {
                name: self.blocks[id.index()].name.clone(),
                truth_k: truth.k(),
                fanin: inputs.len(),
            });
        }
        match self.blocks.get_mut(id.index()).map(|b| &mut b.kind) {
            Some(BlockKind::Lut {
                inputs: i,
                truth: t,
                ..
            }) => {
                *i = inputs;
                *t = truth;
                Ok(())
            }
            _ => Err(NetlistError::WrongBlockKind(format!("{id} is not a LUT"))),
        }
    }

    /// Looks a block up by name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<BlockId> {
        self.by_name.get(name).copied()
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    #[must_use]
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Total number of blocks (pads + LUTs).
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of LUT logic blocks.
    #[must_use]
    pub fn lut_count(&self) -> usize {
        self.luts.len()
    }

    /// All block ids in insertion order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len() as u32).map(BlockId)
    }

    /// Input pads in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[BlockId] {
        &self.inputs
    }

    /// Output pads in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[BlockId] {
        &self.outputs
    }

    /// LUT blocks in declaration order.
    #[must_use]
    pub fn luts(&self) -> &[BlockId] {
        &self.luts
    }

    /// For every block, the blocks consuming its output (sink pins count
    /// once per pin).
    #[must_use]
    pub fn fanouts(&self) -> Vec<Vec<BlockId>> {
        let mut fo = vec![Vec::new(); self.blocks.len()];
        for id in self.block_ids() {
            for &src in self.block(id).fanin() {
                fo[src.index()].push(id);
            }
        }
        fo
    }

    /// The distinct directed connections (source driver → sink block) of
    /// the circuit — the paper's *circuit edges*. A sink using the same
    /// source on several pins contributes one connection.
    #[must_use]
    pub fn connections(&self) -> Vec<(BlockId, BlockId)> {
        let mut conns = Vec::new();
        for id in self.block_ids() {
            let mut seen: Vec<BlockId> = Vec::new();
            for &src in self.block(id).fanin() {
                if !seen.contains(&src) {
                    seen.push(src);
                    conns.push((src, id));
                }
            }
        }
        conns
    }

    /// Topological order of the *unregistered* LUTs along combinational
    /// paths (input pads and registered outputs are sources and do not
    /// appear).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if a combinational
    /// cycle exists.
    pub fn comb_topo_order(&self) -> Result<Vec<BlockId>, NetlistError> {
        let is_comb_lut = |id: BlockId| {
            matches!(
                self.block(id).kind(),
                BlockKind::Lut {
                    registered: false,
                    ..
                }
            )
        };
        // Kahn over the sub-graph of unregistered LUTs.
        let mut indeg: HashMap<BlockId, usize> = HashMap::new();
        let mut succ: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &id in &self.luts {
            if !is_comb_lut(id) {
                continue;
            }
            let mut d = 0;
            for &src in self.block(id).fanin() {
                if is_comb_lut(src) {
                    d += 1;
                    succ.entry(src).or_default().push(id);
                }
            }
            indeg.insert(id, d);
        }
        let mut ready: Vec<BlockId> = indeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&id, _)| id)
            .collect();
        ready.sort_unstable();
        let mut order = Vec::with_capacity(indeg.len());
        while let Some(id) = ready.pop() {
            order.push(id);
            if let Some(ss) = succ.get(&id) {
                for &s in ss {
                    let d = indeg.get_mut(&s).expect("successor tracked");
                    *d -= 1;
                    if *d == 0 {
                        ready.push(s);
                    }
                }
            }
        }
        if order.len() != indeg.len() {
            let stuck = indeg
                .iter()
                .find(|&(id, _)| !order.contains(id))
                .map(|(&id, _)| self.block(id).name().to_string())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle(stuck));
        }
        Ok(order)
    }

    /// Checks structural invariants: combinational acyclicity (fanin
    /// widths and name uniqueness are enforced at construction).
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), NetlistError> {
        self.comb_topo_order().map(|_| ())
    }

    /// Longest combinational path measured in LUT levels.
    #[must_use]
    pub fn depth(&self) -> usize {
        let Ok(order) = self.comb_topo_order() else {
            return 0;
        };
        let mut level: HashMap<BlockId, usize> = HashMap::new();
        let mut max = 0;
        for id in order {
            let l = 1 + self
                .block(id)
                .fanin()
                .iter()
                .map(|s| level.get(s).copied().unwrap_or(0))
                .max()
                .unwrap_or(0);
            max = max.max(l);
            level.insert(id, l);
        }
        max
    }

    /// Summary statistics of the circuit.
    #[must_use]
    pub fn stats(&self) -> LutStats {
        let registered = self
            .luts
            .iter()
            .filter(|&&id| {
                matches!(
                    self.block(id).kind(),
                    BlockKind::Lut {
                        registered: true,
                        ..
                    }
                )
            })
            .count();
        let total_fanin: usize = self
            .luts
            .iter()
            .map(|&id| self.block(id).fanin().len())
            .sum();
        LutStats {
            luts: self.luts.len(),
            registered_luts: registered,
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            connections: self.connections().len(),
            depth: self.depth(),
            avg_fanin: if self.luts.is_empty() {
                0.0
            } else {
                total_fanin as f64 / self.luts.len() as f64
            },
        }
    }
}

/// Summary statistics of a [`LutCircuit`], as reported in the paper's
/// Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutStats {
    /// Number of LUT logic blocks.
    pub luts: usize,
    /// LUTs whose output is registered.
    pub registered_luts: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Distinct (source, sink) connections.
    pub connections: usize,
    /// Combinational depth in LUT levels.
    pub depth: usize,
    /// Mean LUT fanin.
    pub avg_fanin: f64,
}

impl fmt::Display for LutStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs ({} registered), {} PIs, {} POs, {} connections, depth {}, avg fanin {:.2}",
            self.luts,
            self.registered_luts,
            self.inputs,
            self.outputs,
            self.connections,
            self.depth,
            self.avg_fanin
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and2() -> TruthTable {
        TruthTable::var(2, 0) & TruthTable::var(2, 1)
    }

    #[test]
    fn build_simple_circuit() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_lut("g", vec![a, b], and2(), false).unwrap();
        let y = c.add_output("y", g).unwrap();
        assert_eq!(c.lut_count(), 1);
        assert_eq!(c.inputs(), &[a, b]);
        assert_eq!(c.outputs(), &[y]);
        assert_eq!(c.find("g"), Some(g));
        assert!(c.block(g).is_lut());
        assert!(c.block(a).is_pad());
        c.validate().unwrap();
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut c = LutCircuit::new("t", 4);
        c.add_input("a").unwrap();
        assert!(matches!(
            c.add_input("a"),
            Err(NetlistError::DuplicateName(_))
        ));
    }

    #[test]
    fn fanin_limit_enforced() {
        let mut c = LutCircuit::new("t", 2);
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let d = c.add_input("d").unwrap();
        let t3 = TruthTable::const0(3);
        assert!(matches!(
            c.add_lut("g", vec![a, b, d], t3, false),
            Err(NetlistError::TooManyInputs { .. })
        ));
    }

    #[test]
    fn truth_width_must_match() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        assert!(matches!(
            c.add_lut("g", vec![a], TruthTable::const0(2), false),
            Err(NetlistError::TruthWidthMismatch { .. })
        ));
    }

    #[test]
    fn output_pad_cannot_drive() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        let y = c.add_output("y", a).unwrap();
        assert!(matches!(
            c.add_lut("g", vec![y], TruthTable::var(1, 0), false),
            Err(NetlistError::WrongBlockKind(_))
        ));
        assert!(c.add_output("z", y).is_err());
    }

    #[test]
    fn comb_cycle_detected() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        // g feeds itself (patched via two-phase construction).
        let g = c
            .add_lut("g", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        c.set_lut(g, vec![g], TruthTable::var(1, 0)).unwrap();
        assert!(matches!(
            c.validate(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn registered_breaks_cycle() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        let g = c
            .add_lut("g", vec![a], TruthTable::var(1, 0), true)
            .unwrap();
        c.set_lut(g, vec![g], TruthTable::var(1, 0)).unwrap();
        c.validate().expect("registered self-loop is legal");
    }

    #[test]
    fn connections_dedup_per_sink() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        // Same source on two pins.
        let g = c
            .add_lut("g", vec![a, a], TruthTable::var(2, 0), false)
            .unwrap();
        c.add_output("y", g).unwrap();
        let conns = c.connections();
        assert_eq!(conns.len(), 2); // a→g once, g→y.
        assert!(conns.contains(&(a, g)));
    }

    #[test]
    fn depth_counts_lut_levels() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        let g1 = c
            .add_lut("g1", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        let g2 = c
            .add_lut("g2", vec![g1], TruthTable::var(1, 0), false)
            .unwrap();
        let g3 = c
            .add_lut("g3", vec![g2], TruthTable::var(1, 0), true)
            .unwrap();
        let g4 = c
            .add_lut("g4", vec![g3], TruthTable::var(1, 0), false)
            .unwrap();
        c.add_output("y", g4).unwrap();
        // g1,g2 comb chain of 2; g3 registered; g4 restarts at level 1.
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn stats_reports_counts() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g = c.add_lut("g", vec![a, b], and2(), true).unwrap();
        c.add_output("y", g).unwrap();
        let s = c.stats();
        assert_eq!(s.luts, 1);
        assert_eq!(s.registered_luts, 1);
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.connections, 3);
        assert!((s.avg_fanin - 2.0).abs() < 1e-9);
    }

    #[test]
    fn set_init_only_on_registered() {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        let g = c
            .add_lut("g", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        assert!(c.set_init(g, true).is_err());
        let r = c
            .add_lut("r", vec![a], TruthTable::var(1, 0), true)
            .unwrap();
        c.set_init(r, true).unwrap();
    }

    #[test]
    fn zero_input_lut_constant() {
        let mut c = LutCircuit::new("t", 4);
        let g = c
            .add_lut("one", vec![], TruthTable::const1(0), false)
            .unwrap();
        c.add_output("y", g).unwrap();
        c.validate().unwrap();
        assert_eq!(c.block(g).fanin().len(), 0);
    }
}
