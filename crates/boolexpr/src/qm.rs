//! Quine–McCluskey two-level minimisation over the mode bits.
//!
//! The tool flow reports parameterized configuration bits as Boolean
//! expressions of the mode bits (the paper's `…, m1·m0, m0, 1, 0, …`
//! notation). The functions involved are tiny — at most
//! `B = ceil(log2 M)` variables — so exact Quine–McCluskey with a greedy
//! set cover for the cyclic core is more than adequate.
//!
//! Codes `M..2^B` (bit patterns that never occur because there are only
//! `M` modes) are treated as don't-cares, which is what lets e.g. the
//! 3-mode function `{1,2}` minimise to `m0 + m1` instead of
//! `m̄1·m0 + m1·m̄0`.

use crate::{Cube, ModeSet, ModeSpace};

/// Minimises the Boolean function represented by `on` (the set of modes
/// where the function is 1) into a minimal sum of prime-implicant cubes
/// over the mode bits of `space`.
///
/// Unused codes act as don't-cares. Returns an empty vector for the
/// constant-0 function and `vec![Cube::universe()]` for constant-1.
///
/// # Example
///
/// ```
/// use mm_boolexpr::{qm, ModeSet, ModeSpace};
/// let space = ModeSpace::new(4);
/// let cubes = qm::minimize(ModeSet::of(&[1, 3]), space);
/// assert_eq!(cubes.len(), 1);
/// assert_eq!(cubes[0].to_string(), "m0");
/// ```
#[must_use]
pub fn minimize(on: ModeSet, space: ModeSpace) -> Vec<Cube> {
    let bits = space.bit_count();
    let valid = space.all();
    let on = on & valid;
    if on.is_never() {
        return Vec::new();
    }
    if on.is_always(space) {
        return vec![Cube::universe()];
    }

    // Don't-care codes: everything in 0..2^B outside the valid modes.
    let total_codes: u64 = 1u64 << bits;
    let minterms: Vec<u64> = on.iter().map(|m| m as u64).collect();
    let dontcares: Vec<u64> = (0..total_codes)
        .filter(|&c| c as usize >= space.mode_count())
        .collect();

    let primes = prime_implicants(&minterms, &dontcares, bits);
    cover(&minterms, &primes)
}

/// Computes all prime implicants of the function with the given ON-set
/// minterms and don't-cares over `bits` variables, via iterated cube
/// merging.
#[must_use]
pub fn prime_implicants(minterms: &[u64], dontcares: &[u64], bits: usize) -> Vec<Cube> {
    let mut current: Vec<Cube> = minterms
        .iter()
        .chain(dontcares.iter())
        .map(|&c| Cube::minterm(c, bits))
        .collect();
    current.sort_unstable();
    current.dedup();

    let mut primes: Vec<Cube> = Vec::new();
    while !current.is_empty() {
        let mut merged_flag = vec![false; current.len()];
        let mut next: Vec<Cube> = Vec::new();
        for i in 0..current.len() {
            for j in (i + 1)..current.len() {
                if let Some(m) = current[i].merge(current[j]) {
                    merged_flag[i] = true;
                    merged_flag[j] = true;
                    next.push(m);
                }
            }
        }
        for (i, cube) in current.iter().enumerate() {
            if !merged_flag[i] {
                primes.push(*cube);
            }
        }
        next.sort_unstable();
        next.dedup();
        current = next;
    }
    primes.sort_unstable();
    primes.dedup();
    primes
}

/// Selects a small cover of `minterms` out of the prime implicants:
/// essential primes first, then greedy set cover (fewest literals breaking
/// ties) for the remaining minterms.
fn cover(minterms: &[u64], primes: &[Cube]) -> Vec<Cube> {
    let mut chosen: Vec<Cube> = Vec::new();
    let mut uncovered: Vec<u64> = minterms.to_vec();

    // Essential primes: minterms covered by exactly one prime.
    loop {
        let mut essential: Option<Cube> = None;
        for &m in &uncovered {
            let covering: Vec<&Cube> = primes.iter().filter(|p| p.covers(m)).collect();
            if covering.len() == 1 && !chosen.contains(covering[0]) {
                essential = Some(*covering[0]);
                break;
            }
        }
        match essential {
            Some(p) => {
                chosen.push(p);
                uncovered.retain(|&m| !p.covers(m));
                if uncovered.is_empty() {
                    return finalize(chosen);
                }
            }
            None => break,
        }
    }

    // Greedy cover of the cyclic core: repeatedly pick the prime covering
    // the most uncovered minterms; prefer fewer literals on ties.
    while !uncovered.is_empty() {
        let best = primes
            .iter()
            .filter(|p| !chosen.contains(*p))
            .map(|p| {
                let gain = uncovered.iter().filter(|&&m| p.covers(m)).count();
                (gain, std::cmp::Reverse(p.literal_count()), *p)
            })
            .max_by_key(|&(gain, lits, _)| (gain, lits))
            .map(|(gain, _, p)| (gain, p));
        match best {
            Some((gain, p)) if gain > 0 => {
                chosen.push(p);
                uncovered.retain(|&m| !p.covers(m));
            }
            _ => unreachable!("prime implicants always cover all minterms"),
        }
    }
    finalize(chosen)
}

fn finalize(mut cubes: Vec<Cube>) -> Vec<Cube> {
    cubes.sort_unstable();
    cubes.dedup();
    cubes
}

/// Evaluates a sum-of-products on a code: true iff any cube covers it.
#[must_use]
pub fn eval_cubes(cubes: &[Cube], code: u64) -> bool {
    cubes.iter().any(|c| c.covers(code))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equivalent(on: ModeSet, space: ModeSpace) {
        let cubes = minimize(on, space);
        for m in space.modes() {
            assert_eq!(
                eval_cubes(&cubes, m as u64),
                on.contains(m),
                "mode {m}, on={on}, cubes={cubes:?}"
            );
        }
    }

    #[test]
    fn constant_functions() {
        let space = ModeSpace::new(3);
        assert!(minimize(ModeSet::EMPTY, space).is_empty());
        assert_eq!(minimize(space.all(), space), vec![Cube::universe()]);
    }

    #[test]
    fn two_modes_single_literal() {
        let space = ModeSpace::new(2);
        let cubes = minimize(ModeSet::of(&[1]), space);
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].to_string(), "m0");
        let cubes = minimize(ModeSet::of(&[0]), space);
        assert_eq!(cubes[0].to_string(), "~m0");
    }

    #[test]
    fn dontcare_codes_simplify() {
        // 3 modes, function {1,2}: with code 3 as don't-care this is m0+m1.
        let space = ModeSpace::new(3);
        let cubes = minimize(ModeSet::of(&[1, 2]), space);
        assert_eq!(cubes.len(), 2);
        let rendered: Vec<String> = cubes.iter().map(|c| c.to_string()).collect();
        assert!(rendered.contains(&"m0".to_string()), "{rendered:?}");
        assert!(rendered.contains(&"m1".to_string()), "{rendered:?}");
    }

    #[test]
    fn four_mode_bit_function() {
        let space = ModeSpace::new(4);
        // Modes {2,3} = m1.
        let cubes = minimize(ModeSet::of(&[2, 3]), space);
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].to_string(), "m1");
    }

    #[test]
    fn xor_needs_two_cubes() {
        let space = ModeSpace::new(4);
        // Modes {1,2} = m1 xor m0 over 2 bits, no don't-cares.
        let cubes = minimize(ModeSet::of(&[1, 2]), space);
        assert_eq!(cubes.len(), 2);
        check_equivalent(ModeSet::of(&[1, 2]), space);
    }

    #[test]
    fn exhaustive_equivalence_small_spaces() {
        for mode_count in 1..=5usize {
            let space = ModeSpace::new(mode_count);
            let all = space.all().mask();
            for mask in 0..=all {
                check_equivalent(ModeSet::from_mask(mask), space);
            }
        }
    }

    #[test]
    fn prime_implicants_of_full_square() {
        // ON = {0,1,2,3} over 2 bits → single universal prime.
        let primes = prime_implicants(&[0, 1, 2, 3], &[], 2);
        assert_eq!(primes, vec![Cube::universe()]);
    }

    #[test]
    fn cover_is_minimal_for_classic_example() {
        // Classic QM example: f(a,b,c,d) with ON-set
        // {4,8,10,11,12,15}, DC {9,14} minimises to 3 cubes.
        let primes = prime_implicants(&[4, 8, 10, 11, 12, 15], &[9, 14], 4);
        let cover = cover(&[4, 8, 10, 11, 12, 15], &primes);
        assert_eq!(cover.len(), 3, "cover={cover:?}");
        for m in [4u64, 8, 10, 11, 12, 15] {
            assert!(eval_cubes(&cover, m));
        }
        for m in [0u64, 1, 2, 3, 5, 6, 7, 13] {
            assert!(!eval_cubes(&cover, m), "minterm {m} wrongly covered");
        }
    }
}
