//! Boolean *mode algebra* for multi-mode circuits.
//!
//! A multi-mode circuit implements `M` mutually exclusive circuits
//! (*modes*). The active mode is selected by `B = ceil(log2 M)` slowly
//! varying signals, the *mode bits* `m_{B-1} … m_0`. Throughout the tool
//! flow, three kinds of Boolean functions **of the mode bits** appear:
//!
//! * *activation functions* of tunable connections — the connection must be
//!   realised exactly for the modes in which the function is true;
//! * *parameterized configuration bits* — truth-table bits of tunable LUTs
//!   and routing-switch bits whose value depends on the mode;
//! * the *Boolean product* of a mode — the minterm of the mode's binary
//!   code, e.g. mode `10₂` has product `m1·m̄0`.
//!
//! Any Boolean function of the mode bits is fully determined by its value
//! on each of the `M` valid mode codes (codes `M..2^B` never occur and are
//! don't-cares). This crate therefore represents such functions canonically
//! as a [`ModeSet`]: the set of modes in which the function evaluates to
//! true. All algebra (AND/OR/NOT, constant tests) is cheap bit-mask
//! arithmetic, and two functions are equal iff their mode sets are equal.
//!
//! For human consumption (reports, bitstream dumps, the paper's
//! `1, 0, 0, m1·m0, m0, 1, 0 …` notation), [`ModeSet::to_expr`] converts a
//! mode set back into a minimised sum-of-products over the mode bits using
//! a small Quine–McCluskey minimiser ([`qm`]) that exploits the unused
//! codes as don't-cares.
//!
//! # Example
//!
//! ```
//! use mm_boolexpr::{ModeSpace, ModeSet};
//!
//! // Three modes need two mode bits; code 3 is a don't-care.
//! let space = ModeSpace::new(3);
//! assert_eq!(space.bit_count(), 2);
//!
//! // A connection used by modes 1 and 2.
//! let act = ModeSet::of(&[1, 2]);
//! assert!(!act.is_always(space));
//! assert!(act.contains(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cube;
mod expr;
mod modeset;
pub mod qm;

pub use cube::Cube;
pub use expr::{Expr, ParseExprError};
pub use modeset::{ModeSet, ModeSpace, MAX_MODES};
