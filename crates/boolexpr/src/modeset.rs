//! Mode spaces and mode sets — the canonical representation of Boolean
//! functions of the mode bits.

use crate::expr::Expr;
use crate::qm;
use std::fmt;
use std::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, Not};

/// Maximum number of modes supported by [`ModeSet`]'s bit-mask
/// representation.
///
/// The paper's multi-mode circuits have 2–3 modes; 64 leaves ample head
/// room while keeping every set operation a single machine instruction.
pub const MAX_MODES: usize = 64;

/// The space of modes of a multi-mode circuit: how many modes exist and how
/// they are encoded in mode bits.
///
/// Modes are numbered `0..M` and encoded in binary using
/// `B = ceil(log2 M)` mode bits (at least one bit even for a single mode,
/// so a mode product always exists). Codes `M..2^B` never occur at run time
/// and act as don't-cares during expression minimisation.
///
/// # Example
///
/// ```
/// use mm_boolexpr::ModeSpace;
/// let space = ModeSpace::new(5);
/// assert_eq!(space.mode_count(), 5);
/// assert_eq!(space.bit_count(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModeSpace {
    modes: u8,
}

impl ModeSpace {
    /// Creates the mode space for `mode_count` modes.
    ///
    /// # Panics
    ///
    /// Panics if `mode_count` is zero or exceeds [`MAX_MODES`].
    #[must_use]
    pub fn new(mode_count: usize) -> Self {
        assert!(
            (1..=MAX_MODES).contains(&mode_count),
            "mode count must be in 1..={MAX_MODES}, got {mode_count}"
        );
        Self {
            modes: mode_count as u8,
        }
    }

    /// Number of modes `M`.
    #[must_use]
    pub fn mode_count(self) -> usize {
        self.modes as usize
    }

    /// Number of mode bits `B = max(1, ceil(log2 M))`.
    #[must_use]
    pub fn bit_count(self) -> usize {
        let m = self.modes as usize;
        if m <= 2 {
            1
        } else {
            (usize::BITS - (m - 1).leading_zeros()) as usize
        }
    }

    /// Iterates over all mode numbers `0..M`.
    pub fn modes(self) -> impl Iterator<Item = usize> {
        0..self.modes as usize
    }

    /// The set of *all* modes in this space (the constant-true function).
    #[must_use]
    pub fn all(self) -> ModeSet {
        if self.modes as usize == MAX_MODES {
            ModeSet(u64::MAX)
        } else {
            ModeSet((1u64 << self.modes) - 1)
        }
    }

    /// The *Boolean product* (minterm over the mode bits) of `mode`, i.e.
    /// the function that is true exactly in that mode — as a [`ModeSet`]
    /// this is simply the singleton set.
    ///
    /// # Panics
    ///
    /// Panics if `mode >= self.mode_count()`.
    #[must_use]
    pub fn product(self, mode: usize) -> ModeSet {
        assert!(
            mode < self.modes as usize,
            "mode {mode} out of range (mode count {})",
            self.modes
        );
        ModeSet(1u64 << mode)
    }
}

/// A set of modes — canonically representing a Boolean function of the
/// mode bits (the function that is true exactly for the modes in the set).
///
/// `ModeSet` is the workhorse of the tool flow: activation functions of
/// tunable connections, parameterized LUT truth-table bits and routing
/// switch bits are all `ModeSet`s. Logical AND/OR/NOT on the functions are
/// the set operations `&`, `|` and complement (via [`ModeSet::complement`]).
///
/// A `ModeSet` does not know the size of its [`ModeSpace`]; operations that
/// need it (complement, constant tests, expression conversion) take the
/// space as an argument.
///
/// # Example
///
/// ```
/// use mm_boolexpr::{ModeSet, ModeSpace};
/// let space = ModeSpace::new(2);
/// let a = space.product(0);
/// let b = space.product(1);
/// // A connection present in both modes is always active:
/// assert!((a | b).is_always(space));
/// // …and one present in no mode is never active:
/// assert!((a & b).is_never());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ModeSet(u64);

impl ModeSet {
    /// The empty set (the constant-false function).
    pub const EMPTY: ModeSet = ModeSet(0);

    /// Creates a set from a raw bit mask (bit `i` ⇔ mode `i`).
    #[must_use]
    pub const fn from_mask(mask: u64) -> Self {
        Self(mask)
    }

    /// The raw bit mask (bit `i` ⇔ mode `i`).
    #[must_use]
    pub const fn mask(self) -> u64 {
        self.0
    }

    /// Creates a set containing exactly the given modes.
    ///
    /// # Panics
    ///
    /// Panics if any mode number is `>= MAX_MODES`.
    #[must_use]
    pub fn of(modes: &[usize]) -> Self {
        let mut mask = 0u64;
        for &m in modes {
            assert!(m < MAX_MODES, "mode {m} out of range");
            mask |= 1 << m;
        }
        Self(mask)
    }

    /// Creates the singleton set `{mode}`.
    ///
    /// # Panics
    ///
    /// Panics if `mode >= MAX_MODES`.
    #[must_use]
    pub fn single(mode: usize) -> Self {
        assert!(mode < MAX_MODES, "mode {mode} out of range");
        Self(1 << mode)
    }

    /// Whether `mode` is in the set.
    #[must_use]
    pub fn contains(self, mode: usize) -> bool {
        mode < MAX_MODES && self.0 & (1 << mode) != 0
    }

    /// Inserts `mode` into the set.
    ///
    /// # Panics
    ///
    /// Panics if `mode >= MAX_MODES`.
    pub fn insert(&mut self, mode: usize) {
        assert!(mode < MAX_MODES, "mode {mode} out of range");
        self.0 |= 1 << mode;
    }

    /// Removes `mode` from the set.
    pub fn remove(&mut self, mode: usize) {
        if mode < MAX_MODES {
            self.0 &= !(1 << mode);
        }
    }

    /// Number of modes in the set.
    #[must_use]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty, i.e. the function is the constant `0` —
    /// the connection/bit is never active.
    #[must_use]
    pub fn is_never(self) -> bool {
        self.0 == 0
    }

    /// Alias of [`ModeSet::is_never`] for use as a collection.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether the function is the constant `1` in `space`, i.e. the set
    /// contains every valid mode. Don't-care codes are ignored.
    #[must_use]
    pub fn is_always(self, space: ModeSpace) -> bool {
        self.0 & space.all().0 == space.all().0
    }

    /// Whether the function depends on the mode bits in `space`: not
    /// constant-0 and not constant-1. Such a configuration bit is
    /// *parameterized* and must be rewritten when the mode changes.
    #[must_use]
    pub fn is_parameterized(self, space: ModeSpace) -> bool {
        !self.is_never() && !self.is_always(space)
    }

    /// Whether the two sets share no mode — e.g. two connections that may
    /// share a physical wire because they are never active simultaneously.
    #[must_use]
    pub fn is_disjoint(self, other: ModeSet) -> bool {
        self.0 & other.0 == 0
    }

    /// Whether `self` is a subset of `other`.
    #[must_use]
    pub fn is_subset(self, other: ModeSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// The complement within `space` (logical NOT of the function).
    #[must_use]
    pub fn complement(self, space: ModeSpace) -> ModeSet {
        ModeSet(!self.0 & space.all().0)
    }

    /// Iterates over the mode numbers in the set, ascending.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut rest = self.0;
        std::iter::from_fn(move || {
            if rest == 0 {
                None
            } else {
                let m = rest.trailing_zeros() as usize;
                rest &= rest - 1;
                Some(m)
            }
        })
    }

    /// Evaluates the function for a concrete `mode` (truth value of the
    /// corresponding parameterized bit / activation function in that mode).
    #[must_use]
    pub fn eval(self, mode: usize) -> bool {
        self.contains(mode)
    }

    /// Converts the function to a minimised sum-of-products expression over
    /// the mode bits of `space`, using the unused codes `M..2^B` as
    /// don't-cares.
    ///
    /// ```
    /// use mm_boolexpr::{ModeSet, ModeSpace};
    /// let space = ModeSpace::new(4);
    /// // Modes 2 and 3 are exactly the codes with m1 = 1.
    /// assert_eq!(ModeSet::of(&[2, 3]).to_expr(space).to_string(), "m1");
    /// ```
    #[must_use]
    pub fn to_expr(self, space: ModeSpace) -> Expr {
        let cubes = qm::minimize(self, space);
        Expr::from_cubes(&cubes)
    }
}

impl fmt::Display for ModeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

impl BitOr for ModeSet {
    type Output = ModeSet;
    fn bitor(self, rhs: ModeSet) -> ModeSet {
        ModeSet(self.0 | rhs.0)
    }
}

impl BitOrAssign for ModeSet {
    fn bitor_assign(&mut self, rhs: ModeSet) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for ModeSet {
    type Output = ModeSet;
    fn bitand(self, rhs: ModeSet) -> ModeSet {
        ModeSet(self.0 & rhs.0)
    }
}

impl BitAndAssign for ModeSet {
    fn bitand_assign(&mut self, rhs: ModeSet) {
        self.0 &= rhs.0;
    }
}

impl BitXor for ModeSet {
    type Output = ModeSet;
    fn bitxor(self, rhs: ModeSet) -> ModeSet {
        ModeSet(self.0 ^ rhs.0)
    }
}

impl Not for ModeSet {
    type Output = ModeSet;
    /// Bitwise complement over the full 64-bit mask. Prefer
    /// [`ModeSet::complement`] which respects the mode space.
    fn not(self) -> ModeSet {
        ModeSet(!self.0)
    }
}

impl FromIterator<usize> for ModeSet {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let mut s = ModeSet::EMPTY;
        for m in iter {
            s.insert(m);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_count_matches_ceil_log2() {
        let expect = [
            (1, 1),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (16, 4),
            (17, 5),
            (33, 6),
            (64, 6),
        ];
        for (m, b) in expect {
            assert_eq!(ModeSpace::new(m).bit_count(), b, "modes={m}");
        }
    }

    #[test]
    fn all_contains_every_mode() {
        for m in [1, 2, 3, 5, 64] {
            let space = ModeSpace::new(m);
            let all = space.all();
            assert_eq!(all.len(), m);
            for i in 0..m {
                assert!(all.contains(i));
            }
            assert!(all.is_always(space));
        }
    }

    #[test]
    fn product_is_singleton() {
        let space = ModeSpace::new(3);
        let p = space.product(2);
        assert_eq!(p.len(), 1);
        assert!(p.contains(2));
        assert!(!p.contains(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn product_rejects_out_of_range() {
        let _ = ModeSpace::new(3).product(3);
    }

    #[test]
    fn and_of_two_products_is_never() {
        let space = ModeSpace::new(2);
        assert!((space.product(0) & space.product(1)).is_never());
    }

    #[test]
    fn or_of_all_products_is_always() {
        let space = ModeSpace::new(5);
        let mut s = ModeSet::EMPTY;
        for m in space.modes() {
            s |= space.product(m);
        }
        assert!(s.is_always(space));
        assert!(!s.is_parameterized(space));
    }

    #[test]
    fn parameterized_detection() {
        let space = ModeSpace::new(3);
        assert!(!ModeSet::EMPTY.is_parameterized(space));
        assert!(!space.all().is_parameterized(space));
        assert!(ModeSet::of(&[1]).is_parameterized(space));
        assert!(ModeSet::of(&[0, 2]).is_parameterized(space));
    }

    #[test]
    fn complement_respects_space() {
        let space = ModeSpace::new(3);
        let s = ModeSet::of(&[0]);
        let c = s.complement(space);
        assert_eq!(c, ModeSet::of(&[1, 2]));
        assert!((s | c).is_always(space));
        assert!((s & c).is_never());
    }

    #[test]
    fn iter_ascending() {
        let s = ModeSet::of(&[5, 1, 9]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 5, 9]);
    }

    #[test]
    fn from_iterator_collects() {
        let s: ModeSet = [0usize, 2, 2, 4].into_iter().collect();
        assert_eq!(s, ModeSet::of(&[0, 2, 4]));
    }

    #[test]
    fn display_lists_modes() {
        assert_eq!(ModeSet::of(&[0, 3]).to_string(), "{0,3}");
        assert_eq!(ModeSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut s = ModeSet::EMPTY;
        s.insert(7);
        assert!(s.contains(7));
        s.remove(7);
        assert!(s.is_never());
        // Removing an absent mode is a no-op.
        s.remove(63);
        assert!(s.is_never());
    }

    #[test]
    fn subset_and_disjoint() {
        let a = ModeSet::of(&[1, 2]);
        let b = ModeSet::of(&[1, 2, 3]);
        assert!(a.is_subset(b));
        assert!(!b.is_subset(a));
        assert!(a.is_disjoint(ModeSet::of(&[0, 4])));
        assert!(!a.is_disjoint(b));
    }

    #[test]
    fn max_modes_space() {
        let space = ModeSpace::new(64);
        assert_eq!(space.all().mask(), u64::MAX);
        assert!(space.all().is_always(space));
    }
}
