//! Cubes (product terms) over the mode bits.

use std::fmt;

/// A cube (product term) over `B` Boolean variables, e.g. `m2·m̄0`.
///
/// Each variable independently appears positive, negative, or not at all
/// (don't-care). The representation is the classic pair of bit masks:
/// `care` marks the variables that appear, `value` their required polarity
/// (only meaningful where `care` is set).
///
/// Cubes are produced by the [Quine–McCluskey minimiser](crate::qm) and
/// rendered through [`Expr`](crate::Expr).
///
/// # Example
///
/// ```
/// use mm_boolexpr::Cube;
/// // m1·m̄0 — covers exactly the codes with bit1 = 1 and bit0 = 0.
/// let c = Cube::new(0b11, 0b10);
/// assert!(c.covers(0b10));
/// assert!(!c.covers(0b11));
/// assert_eq!(c.literal_count(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    care: u64,
    value: u64,
}

impl Cube {
    /// Creates a cube from a care mask and a value mask.
    ///
    /// Bits of `value` outside `care` are normalised to zero so that equal
    /// cubes compare equal.
    #[must_use]
    pub fn new(care: u64, value: u64) -> Self {
        Self {
            care,
            value: value & care,
        }
    }

    /// The minterm cube for `code` over `bits` variables (all variables
    /// cared for).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 64.
    #[must_use]
    pub fn minterm(code: u64, bits: usize) -> Self {
        assert!((1..=64).contains(&bits), "bits must be in 1..=64");
        let care = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        Self::new(care, code)
    }

    /// The universal cube (empty product, constant true).
    #[must_use]
    pub const fn universe() -> Self {
        Self { care: 0, value: 0 }
    }

    /// Mask of variables appearing in the cube.
    #[must_use]
    pub const fn care(self) -> u64 {
        self.care
    }

    /// Polarity mask (only bits inside [`Cube::care`] are meaningful).
    #[must_use]
    pub const fn value(self) -> u64 {
        self.value
    }

    /// Whether the cube covers the given variable assignment `code`.
    #[must_use]
    pub fn covers(self, code: u64) -> bool {
        code & self.care == self.value
    }

    /// Number of literals in the product term.
    #[must_use]
    pub fn literal_count(self) -> usize {
        self.care.count_ones() as usize
    }

    /// Tries to merge two cubes that differ in exactly one cared-for
    /// variable (the Quine–McCluskey combining step), returning the merged
    /// cube with that variable dropped.
    ///
    /// Returns `None` if the cubes care about different variable sets or
    /// differ in more than one position.
    #[must_use]
    pub fn merge(self, other: Cube) -> Option<Cube> {
        if self.care != other.care {
            return None;
        }
        let diff = self.value ^ other.value;
        if diff.count_ones() == 1 {
            Some(Cube::new(self.care & !diff, self.value & !diff))
        } else {
            None
        }
    }

    /// Whether `self` covers every assignment covered by `other`
    /// (i.e. `other ⇒ self` as product terms).
    #[must_use]
    pub fn contains_cube(self, other: Cube) -> bool {
        // Every literal of self must appear in other with equal polarity.
        self.care & other.care == self.care && other.value & self.care == self.value
    }

    /// Iterates over the codes (assignments over `bits` variables) covered
    /// by this cube, ascending.
    pub fn codes(self, bits: usize) -> impl Iterator<Item = u64> {
        let total = if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let free = total & !self.care;
        let base = self.value & total;
        // Iterate subsets of the free mask in ascending order using the
        // standard (sub - free) & free enumeration.
        let mut sub: Option<u64> = Some(0);
        std::iter::from_fn(move || {
            let s = sub?;
            let code = base | s;
            sub = if s == free {
                None
            } else {
                Some((s.wrapping_sub(free)) & free)
            };
            Some(code)
        })
    }
}

impl fmt::Display for Cube {
    /// Renders the cube as a product of `m<i>` / `~m<i>` literals,
    /// lowest-index variable first; the universal cube prints as `1`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.care == 0 {
            return write!(f, "1");
        }
        let mut first = true;
        for i in 0..64 {
            if self.care & (1 << i) != 0 {
                if !first {
                    write!(f, "·")?;
                }
                if self.value & (1 << i) == 0 {
                    write!(f, "~")?;
                }
                write!(f, "m{i}")?;
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minterm_covers_only_its_code() {
        let c = Cube::minterm(0b101, 3);
        for code in 0..8u64 {
            assert_eq!(c.covers(code), code == 0b101);
        }
        assert_eq!(c.literal_count(), 3);
    }

    #[test]
    fn universe_covers_everything() {
        let u = Cube::universe();
        for code in 0..16u64 {
            assert!(u.covers(code));
        }
        assert_eq!(u.literal_count(), 0);
        assert_eq!(u.to_string(), "1");
    }

    #[test]
    fn merge_drops_single_differing_bit() {
        let a = Cube::minterm(0b00, 2);
        let b = Cube::minterm(0b01, 2);
        let m = a.merge(b).expect("mergeable");
        assert_eq!(m.care(), 0b10);
        assert_eq!(m.value(), 0b00);
        assert!(m.covers(0b00) && m.covers(0b01));
        assert!(!m.covers(0b10));
    }

    #[test]
    fn merge_rejects_two_bit_difference() {
        let a = Cube::minterm(0b00, 2);
        let b = Cube::minterm(0b11, 2);
        assert!(a.merge(b).is_none());
    }

    #[test]
    fn merge_rejects_different_care_sets() {
        let a = Cube::new(0b11, 0b01);
        let b = Cube::new(0b01, 0b01);
        assert!(a.merge(b).is_none());
    }

    #[test]
    fn contains_cube_partial_order() {
        let big = Cube::new(0b10, 0b10); // m1
        let small = Cube::new(0b11, 0b10); // m1·~m0
        assert!(big.contains_cube(small));
        assert!(!small.contains_cube(big));
        assert!(Cube::universe().contains_cube(big));
        // Reflexive.
        assert!(big.contains_cube(big));
    }

    #[test]
    fn codes_enumerates_covered_assignments() {
        let c = Cube::new(0b10, 0b10); // m1 over 3 bits
        let codes: Vec<u64> = c.codes(3).collect();
        assert_eq!(codes, vec![0b010, 0b011, 0b110, 0b111]);
    }

    #[test]
    fn codes_of_minterm_is_single() {
        let c = Cube::minterm(5, 3);
        assert_eq!(c.codes(3).collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn display_polarity() {
        let c = Cube::new(0b101, 0b100);
        assert_eq!(c.to_string(), "~m0·m2");
    }

    #[test]
    fn value_outside_care_normalised() {
        assert_eq!(Cube::new(0b01, 0b11), Cube::new(0b01, 0b01));
    }
}
