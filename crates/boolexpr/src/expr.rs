//! Boolean expression trees over the mode bits, for rendering and parsing
//! the paper's `m1·m0 + m̄0` notation.

use crate::Cube;
use std::error::Error;
use std::fmt;

/// A Boolean expression over the mode bits `m0, m1, …`.
///
/// `Expr` is the human-facing companion of [`ModeSet`](crate::ModeSet):
/// mode sets are canonical and cheap, expressions are readable. Convert
/// with [`ModeSet::to_expr`](crate::ModeSet::to_expr) (minimised) and back
/// with [`Expr::eval`] over all mode codes.
///
/// # Example
///
/// ```
/// use mm_boolexpr::Expr;
/// let e: Expr = "m1·~m0 + m0".parse()?;
/// assert!(e.eval(0b01));
/// assert!(e.eval(0b10));
/// assert!(!e.eval(0b00));
/// # Ok::<(), mm_boolexpr::ParseExprError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Constant `0` or `1`.
    Const(bool),
    /// Mode bit `m<i>`.
    Var(usize),
    /// Logical negation.
    Not(Box<Expr>),
    /// Logical conjunction.
    And(Vec<Expr>),
    /// Logical disjunction.
    Or(Vec<Expr>),
}

impl Expr {
    /// Builds a sum-of-products expression from Quine–McCluskey cubes.
    ///
    /// An empty slice yields the constant `0`; a lone universal cube yields
    /// the constant `1`.
    #[must_use]
    pub fn from_cubes(cubes: &[Cube]) -> Self {
        if cubes.is_empty() {
            return Expr::Const(false);
        }
        let mut terms: Vec<Expr> = Vec::with_capacity(cubes.len());
        for cube in cubes {
            if cube.care() == 0 {
                return Expr::Const(true);
            }
            let mut lits: Vec<Expr> = Vec::with_capacity(cube.literal_count());
            for i in 0..64 {
                if cube.care() & (1 << i) != 0 {
                    let v = Expr::Var(i);
                    if cube.value() & (1 << i) != 0 {
                        lits.push(v);
                    } else {
                        lits.push(Expr::Not(Box::new(v)));
                    }
                }
            }
            terms.push(if lits.len() == 1 {
                lits.pop().expect("one literal")
            } else {
                Expr::And(lits)
            });
        }
        if terms.len() == 1 {
            terms.pop().expect("one term")
        } else {
            Expr::Or(terms)
        }
    }

    /// Evaluates the expression with mode bit `i` taken from bit `i` of
    /// `code`.
    #[must_use]
    pub fn eval(&self, code: u64) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(i) => code & (1 << i) != 0,
            Expr::Not(e) => !e.eval(code),
            Expr::And(es) => es.iter().all(|e| e.eval(code)),
            Expr::Or(es) => es.iter().any(|e| e.eval(code)),
        }
    }

    /// The highest mode-bit index referenced, if any.
    #[must_use]
    pub fn max_var(&self) -> Option<usize> {
        match self {
            Expr::Const(_) => None,
            Expr::Var(i) => Some(*i),
            Expr::Not(e) => e.max_var(),
            Expr::And(es) | Expr::Or(es) => es.iter().filter_map(Expr::max_var).max(),
        }
    }

    /// Counts the literals (variable occurrences) in the expression — a
    /// rough measure of reconfiguration-manager evaluation cost.
    #[must_use]
    pub fn literal_count(&self) -> usize {
        match self {
            Expr::Const(_) => 0,
            Expr::Var(_) => 1,
            Expr::Not(e) => e.literal_count(),
            Expr::And(es) | Expr::Or(es) => es.iter().map(Expr::literal_count).sum(),
        }
    }
}

impl fmt::Display for Expr {
    /// Renders with `·` for AND, `+` for OR and `~` for NOT, parenthesising
    /// only where precedence requires it.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_prec(e: &Expr, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
            // precedence: Or = 0, And = 1, Not/Var/Const = 2
            match e {
                Expr::Const(b) => write!(f, "{}", if *b { "1" } else { "0" }),
                Expr::Var(i) => write!(f, "m{i}"),
                Expr::Not(inner) => {
                    write!(f, "~")?;
                    write_prec(inner, f, 2)
                }
                Expr::And(es) => {
                    let need = parent > 1;
                    if need {
                        write!(f, "(")?;
                    }
                    for (i, t) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, "·")?;
                        }
                        write_prec(t, f, 1)?;
                    }
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Expr::Or(es) => {
                    let need = parent > 0;
                    if need {
                        write!(f, "(")?;
                    }
                    for (i, t) in es.iter().enumerate() {
                        if i > 0 {
                            write!(f, " + ")?;
                        }
                        write_prec(t, f, 0)?;
                    }
                    if need {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        write_prec(self, f, 0)
    }
}

/// Error returned when parsing an [`Expr`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    msg: String,
    pos: usize,
}

impl ParseExprError {
    fn new(msg: impl Into<String>, pos: usize) -> Self {
        Self {
            msg: msg.into(),
            pos,
        }
    }

    /// Byte offset in the input at which parsing failed.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl Error for ParseExprError {}

impl std::str::FromStr for Expr {
    type Err = ParseExprError;

    /// Parses expressions in the crate's own `Display` syntax:
    /// `m<i>` variables, `~` negation, `·`, `*` or `&` for AND (also
    /// implicit by juxtaposition of factors), `+` or `|` for OR, `0`/`1`
    /// constants and parentheses.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut p = Parser {
            src: s.as_bytes(),
            pos: 0,
            text: s,
        };
        let e = p.parse_or()?;
        p.skip_ws();
        if p.pos != p.src.len() {
            return Err(ParseExprError::new("unexpected trailing input", p.pos));
        }
        Ok(e)
    }
}

struct Parser<'a> {
    src: &'a [u8],
    text: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.text[self.pos..].chars().next()
    }

    fn bump(&mut self, c: char) {
        self.pos += c.len_utf8();
    }

    fn parse_or(&mut self) -> Result<Expr, ParseExprError> {
        let mut terms = vec![self.parse_and()?];
        while let Some(c) = self.peek() {
            if c == '+' || c == '|' {
                self.bump(c);
                terms.push(self.parse_and()?);
            } else {
                break;
            }
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("nonempty")
        } else {
            Expr::Or(terms)
        })
    }

    fn parse_and(&mut self) -> Result<Expr, ParseExprError> {
        let mut factors = vec![self.parse_atom()?];
        loop {
            match self.peek() {
                Some(c) if c == '·' || c == '*' || c == '&' || c == '.' => {
                    self.bump(c);
                    factors.push(self.parse_atom()?);
                }
                // Implicit AND: a factor can start right after another.
                Some(c) if c == '~' || c == 'm' || c == '(' => {
                    factors.push(self.parse_atom()?);
                }
                _ => break,
            }
        }
        Ok(if factors.len() == 1 {
            factors.pop().expect("nonempty")
        } else {
            Expr::And(factors)
        })
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseExprError> {
        match self.peek() {
            Some('~') | Some('!') => {
                let c = self.peek().expect("peeked");
                self.bump(c);
                Ok(Expr::Not(Box::new(self.parse_atom()?)))
            }
            Some('(') => {
                self.bump('(');
                let inner = self.parse_or()?;
                if self.peek() == Some(')') {
                    self.bump(')');
                    Ok(inner)
                } else {
                    Err(ParseExprError::new("expected ')'", self.pos))
                }
            }
            Some('0') => {
                self.bump('0');
                Ok(Expr::Const(false))
            }
            Some('1') => {
                self.bump('1');
                Ok(Expr::Const(true))
            }
            Some('m') => {
                self.bump('m');
                let start = self.pos;
                while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                if self.pos == start {
                    return Err(ParseExprError::new("expected digits after 'm'", self.pos));
                }
                let idx: usize = self.text[start..self.pos]
                    .parse()
                    .map_err(|_| ParseExprError::new("mode-bit index out of range", start))?;
                if idx >= 64 {
                    return Err(ParseExprError::new("mode-bit index out of range", start));
                }
                Ok(Expr::Var(idx))
            }
            Some(c) => Err(ParseExprError::new(
                format!("unexpected character '{c}'"),
                self.pos,
            )),
            None => Err(ParseExprError::new("unexpected end of input", self.pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModeSet, ModeSpace};

    #[test]
    fn display_constants_and_vars() {
        assert_eq!(Expr::Const(true).to_string(), "1");
        assert_eq!(Expr::Const(false).to_string(), "0");
        assert_eq!(Expr::Var(3).to_string(), "m3");
        assert_eq!(Expr::Not(Box::new(Expr::Var(0))).to_string(), "~m0");
    }

    #[test]
    fn display_precedence() {
        let e = Expr::Or(vec![
            Expr::And(vec![Expr::Var(1), Expr::Not(Box::new(Expr::Var(0)))]),
            Expr::Var(0),
        ]);
        assert_eq!(e.to_string(), "m1·~m0 + m0");
    }

    #[test]
    fn display_nested_or_in_and_parenthesised() {
        let e = Expr::And(vec![
            Expr::Or(vec![Expr::Var(0), Expr::Var(1)]),
            Expr::Var(2),
        ]);
        assert_eq!(e.to_string(), "(m0 + m1)·m2");
    }

    #[test]
    fn parse_roundtrip_display() {
        for src in ["m0", "~m1", "m1·~m0 + m0", "(m0 + m1)·m2", "0", "1"] {
            let e: Expr = src.parse().expect(src);
            assert_eq!(e.to_string(), src);
        }
    }

    #[test]
    fn parse_alternative_operators() {
        let a: Expr = "m0*m1 | !m2".parse().expect("parse");
        let b: Expr = "m0·m1 + ~m2".parse().expect("parse");
        assert_eq!(a, b);
    }

    #[test]
    fn parse_implicit_and() {
        let a: Expr = "m1~m0".parse().expect("parse");
        let b: Expr = "m1·~m0".parse().expect("parse");
        assert_eq!(a, b);
    }

    #[test]
    fn parse_errors_report_position() {
        let err = "m0 + ".parse::<Expr>().unwrap_err();
        assert_eq!(err.position(), 5);
        assert!("m".parse::<Expr>().is_err());
        assert!("m0)".parse::<Expr>().is_err());
        assert!("(m0".parse::<Expr>().is_err());
        assert!("m999999999999999999999".parse::<Expr>().is_err());
    }

    #[test]
    fn eval_matches_semantics() {
        let e: Expr = "m1·~m0 + m2".parse().expect("parse");
        for code in 0..8u64 {
            let m0 = code & 1 != 0;
            let m1 = code & 2 != 0;
            let m2 = code & 4 != 0;
            assert_eq!(e.eval(code), (m1 && !m0) || m2, "code={code:03b}");
        }
    }

    #[test]
    fn from_cubes_matches_modeset() {
        let space = ModeSpace::new(6);
        for mask in [0u64, 1, 0b10110, 0b111111, 0b101010] {
            let s = ModeSet::from_mask(mask);
            let e = s.to_expr(space);
            for m in space.modes() {
                assert_eq!(e.eval(m as u64), s.contains(m), "mask={mask:b} mode={m}");
            }
        }
    }

    #[test]
    fn max_var_and_literals() {
        let e: Expr = "m1·~m0 + m4".parse().expect("parse");
        assert_eq!(e.max_var(), Some(4));
        assert_eq!(e.literal_count(), 3);
        assert_eq!(Expr::Const(true).max_var(), None);
    }
}
