//! Static timing analysis for the multi-mode tool flow.
//!
//! A levelized arrival/required-time analysis over the unit-delay model
//! of the reproduction (each wire segment costs 1, each LUT costs
//! [`LUT_DELAY`]), producing per-connection slack and a normalized
//! criticality in `0..=1` that the placer and router consume for
//! timing-driven optimization.
//!
//! Two implementations share one semantics:
//!
//! * [`Sta`] — the production engine. It stores the levelized graph once
//!   and, after [`Sta::set_delay`] updates, re-levelizes only the fanout
//!   and fanin cones actually touched ([`Sta::refresh`]), so repeated
//!   analysis during placement/routing iteration is cheap.
//! * [`reference::analyze`] — a from-scratch `HashMap`-based
//!   implementation recomputing everything on every call.
//!
//! Both compute every node value as the same pure function of the delay
//! inputs (identical fold order and expressions), so their results are
//! **bit-identical** — the property-based parity suite in
//! `tests/parity.rs` holds them to that.
//!
//! # Timing model
//!
//! * Startpoints (arrival `0.0`): input pads and registered-LUT outputs.
//! * A combinational LUT's arrival is the max over its fanin connections
//!   of `arrival(src) + delay(conn)`, plus [`LUT_DELAY`].
//! * Endpoints: registered-LUT inputs (the fold plus [`LUT_DELAY`] for
//!   the capturing LUT) and output pads (`arrival(src) + delay`).
//! * The critical path `T` is the max over all combinational arrivals
//!   and endpoint arrivals.
//! * `slack(conn)` measures how much the connection's delay could grow
//!   without growing `T`; `criticality = 1 - slack / T` clamped to
//!   `0..=1` (or `0.0` when `T = 0`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod reference;

use mm_arch::{RoutingGraph, RrNodeId, Site};
use mm_netlist::{BlockId, BlockKind, LutCircuit};
use mm_route::{RouteNet, Routing};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

/// Delay of one LUT in the unit-delay model (a LUT traversal costs a
/// couple of wire segments' worth of time).
pub const LUT_DELAY: f64 = 2.0;

/// Errors produced by timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub enum StaError {
    /// The circuit's combinational part contains a cycle (the payload
    /// names a block on it).
    Cycle(String),
    /// The delay vector does not have one entry per connection.
    DelayCount {
        /// Connections in the circuit.
        expected: usize,
        /// Delays supplied.
        got: usize,
    },
    /// A delay is not a finite non-negative number.
    InvalidDelay {
        /// Index into the connection list.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A routed connection has no delay in the delay map — the routing
    /// does not cover the connection (or the lookup is mis-keyed).
    /// Silently treating it as zero would underestimate the critical
    /// path, so this is a hard error.
    MissingDelay {
        /// Driver block name.
        source: String,
        /// Consumer block name.
        sink: String,
    },
}

impl fmt::Display for StaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Cycle(name) => write!(f, "combinational cycle through '{name}'"),
            Self::DelayCount { expected, got } => {
                write!(f, "expected {expected} connection delays, got {got}")
            }
            Self::InvalidDelay { index, value } => {
                write!(f, "connection {index} has invalid delay {value}")
            }
            Self::MissingDelay { source, sink } => {
                write!(f, "no routed delay for connection {source} -> {sink}")
            }
        }
    }
}

impl std::error::Error for StaError {}

/// Timing of one connection (driver → consumer pin pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnectionTiming {
    /// Driver block.
    pub source: BlockId,
    /// Consumer block.
    pub sink: BlockId,
    /// Connection delay (routed wire count, estimate, or unit).
    pub delay: f64,
    /// Signal arrival time at the consumer's input.
    pub arrival: f64,
    /// Slack: how much `delay` could grow without growing the critical
    /// path (negative never occurs under a consistent analysis).
    pub slack: f64,
    /// Normalized criticality in `0..=1` (1 = on the critical path).
    pub criticality: f64,
}

/// Result of a full timing analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingAnalysis {
    /// Length of the longest registered-to-registered (or pad-to-pad)
    /// path in delay units.
    pub critical_path: f64,
    /// Per-connection timing, in [`LutCircuit::connections`] order.
    pub connections: Vec<ConnectionTiming>,
}

impl TimingAnalysis {
    /// Mean connection delay (0.0 for a circuit without connections).
    #[must_use]
    pub fn mean_connection_delay(&self) -> f64 {
        if self.connections.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.connections.iter().map(|c| c.delay).sum();
        sum / self.connections.len() as f64
    }

    /// Criticalities in [`LutCircuit::connections`] order.
    #[must_use]
    pub fn criticalities(&self) -> Vec<f64> {
        self.connections.iter().map(|c| c.criticality).collect()
    }
}

/// Validates one delay value (finite, non-negative, not `-0.0` — the
/// sign would leak into max/min folds where IEEE leaves the result
/// underspecified).
fn check_delay(index: usize, value: f64) -> Result<(), StaError> {
    if !value.is_finite() || value.is_sign_negative() {
        return Err(StaError::InvalidDelay { index, value });
    }
    Ok(())
}

/// Node classification for the timing graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    CombLut,
    RegLut,
    InputPad,
    OutputPad,
}

/// Incremental static timing analyzer.
///
/// Built once per circuit from a delay vector aligned with
/// [`LutCircuit::connections`]; delays can then be changed with
/// [`Sta::set_delay`] and the analysis brought up to date with
/// [`Sta::refresh`], which re-levelizes only the cones reachable from
/// the changed connections. Results are bit-identical to a from-scratch
/// run ([`reference::analyze`]) because every node value is recomputed
/// in full (never delta-adjusted) with identical fold orders.
#[derive(Debug, Clone)]
pub struct Sta {
    // Static structure.
    conn_pairs: Vec<(BlockId, BlockId)>,
    conn_src: Vec<u32>,
    conn_dst: Vec<u32>,
    delays: Vec<f64>,
    class: Vec<Class>,
    fanin_idx: Vec<u32>,
    fanin_dat: Vec<u32>,
    fanout_idx: Vec<u32>,
    fanout_dat: Vec<u32>,
    /// Combinational LUTs in topological order.
    order: Vec<u32>,
    /// Block → position in `order` (`u32::MAX` for non-comb blocks).
    pos: Vec<u32>,
    // Dynamic values.
    arr: Vec<f64>,
    contrib: Vec<f64>,
    req: Vec<f64>,
    t: f64,
    slack: Vec<f64>,
    crit: Vec<f64>,
    // Dirty-set machinery (reused across refreshes).
    fwd_heap: BinaryHeap<Reverse<u32>>,
    fwd_in: Vec<bool>,
    bwd_heap: BinaryHeap<u32>,
    bwd_in: Vec<bool>,
    dirty_end: Vec<u32>,
    end_in: Vec<bool>,
    dirty_conns: Vec<u32>,
    conn_in: Vec<bool>,
}

impl Sta {
    /// Builds the analyzer and runs the initial full analysis.
    ///
    /// `delays` holds one delay per [`LutCircuit::connections`] entry,
    /// in that order.
    ///
    /// # Errors
    ///
    /// [`StaError::DelayCount`] on a length mismatch,
    /// [`StaError::InvalidDelay`] for non-finite or negative delays, and
    /// [`StaError::Cycle`] if the combinational part of the circuit is
    /// cyclic.
    pub fn new(circuit: &LutCircuit, delays: &[f64]) -> Result<Self, StaError> {
        let conn_pairs = circuit.connections();
        if delays.len() != conn_pairs.len() {
            return Err(StaError::DelayCount {
                expected: conn_pairs.len(),
                got: delays.len(),
            });
        }
        for (i, &d) in delays.iter().enumerate() {
            check_delay(i, d)?;
        }
        let order_ids = circuit
            .comb_topo_order()
            .map_err(|e| StaError::Cycle(e.to_string()))?;

        let n = circuit.block_count();
        let class: Vec<Class> = circuit
            .block_ids()
            .map(|id| match circuit.block(id).kind() {
                BlockKind::InputPad => Class::InputPad,
                BlockKind::OutputPad { .. } => Class::OutputPad,
                BlockKind::Lut {
                    registered: true, ..
                } => Class::RegLut,
                BlockKind::Lut { .. } => Class::CombLut,
            })
            .collect();

        let conn_src: Vec<u32> = conn_pairs.iter().map(|&(s, _)| s.index() as u32).collect();
        let conn_dst: Vec<u32> = conn_pairs.iter().map(|&(_, d)| d.index() as u32).collect();
        let (fanin_idx, fanin_dat) = csr(n, &conn_dst);
        let (fanout_idx, fanout_dat) = csr(n, &conn_src);

        let mut pos = vec![u32::MAX; n];
        let order: Vec<u32> = order_ids.iter().map(|id| id.index() as u32).collect();
        for (p, &b) in order.iter().enumerate() {
            pos[b as usize] = p as u32;
        }

        let m = conn_pairs.len();
        let mut sta = Self {
            conn_pairs,
            conn_src,
            conn_dst,
            delays: delays.to_vec(),
            class,
            fanin_idx,
            fanin_dat,
            fanout_idx,
            fanout_dat,
            order,
            pos,
            arr: vec![0.0; n],
            contrib: vec![0.0; n],
            req: vec![0.0; n],
            t: 0.0,
            slack: vec![0.0; m],
            crit: vec![0.0; m],
            fwd_heap: BinaryHeap::new(),
            fwd_in: vec![false; n],
            bwd_heap: BinaryHeap::new(),
            bwd_in: vec![false; n],
            dirty_end: Vec::new(),
            end_in: vec![false; n],
            dirty_conns: Vec::new(),
            conn_in: vec![false; m],
        };
        sta.recompute();
        Ok(sta)
    }

    /// Number of connections (and delays).
    #[must_use]
    pub fn connection_count(&self) -> usize {
        self.delays.len()
    }

    /// The connection pairs, in [`LutCircuit::connections`] order.
    #[must_use]
    pub fn connections(&self) -> &[(BlockId, BlockId)] {
        &self.conn_pairs
    }

    /// Current delay vector.
    #[must_use]
    pub fn delays(&self) -> &[f64] {
        &self.delays
    }

    /// Critical path as of the last [`Sta::refresh`] (or construction).
    #[must_use]
    pub fn critical_path(&self) -> f64 {
        self.t
    }

    /// Per-connection slacks.
    #[must_use]
    pub fn slacks(&self) -> &[f64] {
        &self.slack
    }

    /// Per-connection criticalities in `0..=1`.
    #[must_use]
    pub fn criticalities(&self) -> &[f64] {
        &self.crit
    }

    /// Updates one connection delay, marking the affected cones dirty.
    /// Call [`Sta::refresh`] to bring the analysis up to date.
    ///
    /// # Errors
    ///
    /// [`StaError::InvalidDelay`] for a non-finite or negative value.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_delay(&mut self, index: usize, delay: f64) -> Result<(), StaError> {
        check_delay(index, delay)?;
        if self.delays[index].to_bits() == delay.to_bits() {
            return Ok(());
        }
        self.delays[index] = delay;
        self.mark_conn(index as u32);
        let dst = self.conn_dst[index] as usize;
        match self.class[dst] {
            Class::CombLut => self.push_fwd(self.pos[dst]),
            Class::RegLut | Class::OutputPad => self.mark_end(dst as u32),
            Class::InputPad => {}
        }
        let src = self.conn_src[index] as usize;
        if self.class[src] == Class::CombLut {
            self.push_bwd(self.pos[src]);
        }
        Ok(())
    }

    /// Replaces the whole delay vector (marking only actually-changed
    /// connections dirty) and refreshes.
    ///
    /// # Errors
    ///
    /// [`StaError::DelayCount`] on a length mismatch and
    /// [`StaError::InvalidDelay`] for invalid values.
    pub fn set_delays(&mut self, delays: &[f64]) -> Result<(), StaError> {
        if delays.len() != self.delays.len() {
            return Err(StaError::DelayCount {
                expected: self.delays.len(),
                got: delays.len(),
            });
        }
        for (i, &d) in delays.iter().enumerate() {
            self.set_delay(i, d)?;
        }
        self.refresh();
        Ok(())
    }

    /// Propagates all pending delay changes through the affected fanout
    /// and fanin cones. A no-op when nothing is dirty.
    pub fn refresh(&mut self) {
        // Forward: arrival times, ascending topological position. A
        // node's recomputed arrival only dirties its successors (strictly
        // larger positions), so one ascending sweep settles the cone.
        while let Some(Reverse(p)) = self.fwd_heap.pop() {
            self.fwd_in[p as usize] = false;
            let b = self.order[p as usize] as usize;
            let a = self.compute_arr(b);
            if a.to_bits() != self.arr[b].to_bits() {
                self.arr[b] = a;
                self.contrib[b] = a;
                let (s, e) = self.fanout_range(b);
                for i in s..e {
                    let ci = self.fanout_dat[i];
                    self.mark_conn(ci);
                    let d = self.conn_dst[ci as usize] as usize;
                    match self.class[d] {
                        Class::CombLut => self.push_fwd(self.pos[d]),
                        Class::RegLut | Class::OutputPad => self.mark_end(d as u32),
                        Class::InputPad => {}
                    }
                }
                // Required times downstream do not depend on arrivals,
                // but this node's own required time bounds its fanin
                // slacks — those connections were marked above.
            }
        }

        // Endpoints: recompute the dirtied critical-path contributions.
        let dirty_end = std::mem::take(&mut self.dirty_end);
        for &b in &dirty_end {
            self.end_in[b as usize] = false;
            let e = self.compute_end(b as usize);
            if e.to_bits() != self.contrib[b as usize].to_bits() {
                self.contrib[b as usize] = e;
            }
        }
        self.dirty_end = dirty_end;
        self.dirty_end.clear();

        // Critical path: an exact max over the contribution vector (max
        // is order-insensitive on finite floats, so a full scan is both
        // cheap and bit-stable).
        let t = self.compute_t();
        if t.to_bits() != self.t.to_bits() {
            // A changed critical path moves every required time and every
            // criticality: fall back to the full backward pass.
            self.t = t;
            self.bwd_heap.clear();
            self.bwd_in.iter_mut().for_each(|f| *f = false);
            self.dirty_conns.clear();
            self.conn_in.iter_mut().for_each(|f| *f = false);
            self.recompute_backward();
            self.recompute_all_slacks();
            return;
        }

        // Backward: required times, descending topological position (a
        // node's required time depends only on successors).
        while let Some(p) = self.bwd_heap.pop() {
            self.bwd_in[p as usize] = false;
            let b = self.order[p as usize] as usize;
            let r = self.compute_req(b);
            if r.to_bits() != self.req[b].to_bits() {
                self.req[b] = r;
                let (s, e) = self.fanin_range(b);
                for i in s..e {
                    let ci = self.fanin_dat[i];
                    self.mark_conn(ci);
                    let src = self.conn_src[ci as usize] as usize;
                    if self.class[src] == Class::CombLut {
                        self.push_bwd(self.pos[src]);
                    }
                }
            }
        }

        // Slack/criticality of exactly the touched connections.
        let dirty = std::mem::take(&mut self.dirty_conns);
        for &ci in &dirty {
            self.conn_in[ci as usize] = false;
            let (s, c) = self.conn_timing(ci as usize);
            self.slack[ci as usize] = s;
            self.crit[ci as usize] = c;
        }
        self.dirty_conns = dirty;
        self.dirty_conns.clear();
    }

    /// Extracts the full analysis at the current delay state.
    #[must_use]
    pub fn analysis(&self) -> TimingAnalysis {
        let connections = self
            .conn_pairs
            .iter()
            .enumerate()
            .map(|(i, &(source, sink))| ConnectionTiming {
                source,
                sink,
                delay: self.delays[i],
                arrival: self.arr[self.conn_src[i] as usize] + self.delays[i],
                slack: self.slack[i],
                criticality: self.crit[i],
            })
            .collect();
        TimingAnalysis {
            critical_path: self.t,
            connections,
        }
    }

    // ---- internals ----

    fn fanin_range(&self, b: usize) -> (usize, usize) {
        (self.fanin_idx[b] as usize, self.fanin_idx[b + 1] as usize)
    }

    fn fanout_range(&self, b: usize) -> (usize, usize) {
        (self.fanout_idx[b] as usize, self.fanout_idx[b + 1] as usize)
    }

    fn push_fwd(&mut self, p: u32) {
        if !self.fwd_in[p as usize] {
            self.fwd_in[p as usize] = true;
            self.fwd_heap.push(Reverse(p));
        }
    }

    fn push_bwd(&mut self, p: u32) {
        if !self.bwd_in[p as usize] {
            self.bwd_in[p as usize] = true;
            self.bwd_heap.push(p);
        }
    }

    fn mark_end(&mut self, b: u32) {
        if !self.end_in[b as usize] {
            self.end_in[b as usize] = true;
            self.dirty_end.push(b);
        }
    }

    fn mark_conn(&mut self, ci: u32) {
        if !self.conn_in[ci as usize] {
            self.conn_in[ci as usize] = true;
            self.dirty_conns.push(ci);
        }
    }

    /// Arrival at a combinational LUT's output: max over fanin of
    /// `arrival(src) + delay`, plus the LUT delay.
    fn compute_arr(&self, b: usize) -> f64 {
        let (s, e) = self.fanin_range(b);
        let mut a = 0.0f64;
        for i in s..e {
            let ci = self.fanin_dat[i] as usize;
            a = a.max(self.arr[self.conn_src[ci] as usize] + self.delays[ci]);
        }
        a + LUT_DELAY
    }

    /// Critical-path contribution of an endpoint block: a registered
    /// LUT's capture (fold + LUT delay) or an output pad's arrival.
    fn compute_end(&self, b: usize) -> f64 {
        let (s, e) = self.fanin_range(b);
        let mut a = 0.0f64;
        for i in s..e {
            let ci = self.fanin_dat[i] as usize;
            a = a.max(self.arr[self.conn_src[ci] as usize] + self.delays[ci]);
        }
        match self.class[b] {
            Class::RegLut => a + LUT_DELAY,
            _ => a,
        }
    }

    /// Required time at the consumer side of connection `ci` (the time
    /// by which the signal must arrive at the consumer's input).
    fn edge_req(&self, ci: usize) -> f64 {
        let d = self.conn_dst[ci] as usize;
        match self.class[d] {
            Class::CombLut => self.req[d] - LUT_DELAY,
            Class::RegLut => self.t - LUT_DELAY,
            Class::OutputPad | Class::InputPad => self.t,
        }
    }

    /// Required time at a combinational LUT's output: min over fanout of
    /// `edge_req - delay`, starting from `T` (the node's own arrival also
    /// counts toward the critical path).
    fn compute_req(&self, b: usize) -> f64 {
        let (s, e) = self.fanout_range(b);
        let mut r = self.t;
        for i in s..e {
            let ci = self.fanout_dat[i] as usize;
            r = r.min(self.edge_req(ci) - self.delays[ci]);
        }
        r
    }

    fn compute_t(&self) -> f64 {
        let mut t = 0.0f64;
        for &c in &self.contrib {
            t = t.max(c);
        }
        t
    }

    fn conn_timing(&self, ci: usize) -> (f64, f64) {
        let slack = self.edge_req(ci) - (self.arr[self.conn_src[ci] as usize] + self.delays[ci]);
        let crit = if self.t > 0.0 {
            (1.0 - slack / self.t).clamp(0.0, 1.0)
        } else {
            0.0
        };
        (slack, crit)
    }

    /// Full from-scratch recompute of every derived value.
    fn recompute(&mut self) {
        for p in 0..self.order.len() {
            let b = self.order[p] as usize;
            let a = self.compute_arr(b);
            self.arr[b] = a;
            self.contrib[b] = a;
        }
        for b in 0..self.class.len() {
            match self.class[b] {
                Class::RegLut | Class::OutputPad => self.contrib[b] = self.compute_end(b),
                Class::CombLut => {}
                Class::InputPad => self.contrib[b] = 0.0,
            }
        }
        self.t = self.compute_t();
        self.recompute_backward();
        self.recompute_all_slacks();
    }

    fn recompute_backward(&mut self) {
        for p in (0..self.order.len()).rev() {
            let b = self.order[p] as usize;
            self.req[b] = self.compute_req(b);
        }
    }

    fn recompute_all_slacks(&mut self) {
        for ci in 0..self.delays.len() {
            let (s, c) = self.conn_timing(ci);
            self.slack[ci] = s;
            self.crit[ci] = c;
        }
    }
}

/// Builds a CSR mapping block → connection indices whose `key` equals
/// the block, preserving connection order within each list.
fn csr(n: usize, key: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut idx = vec![0u32; n + 1];
    for &k in key {
        idx[k as usize + 1] += 1;
    }
    for i in 0..n {
        idx[i + 1] += idx[i];
    }
    let mut dat = vec![0u32; key.len()];
    let mut cursor = idx.clone();
    for (ci, &k) in key.iter().enumerate() {
        dat[cursor[k as usize] as usize] = ci as u32;
        cursor[k as usize] += 1;
    }
    (idx, dat)
}

/// Runs a full analysis of `circuit` under `delays` (one entry per
/// [`LutCircuit::connections`] element, in order).
///
/// # Errors
///
/// See [`Sta::new`].
pub fn analyze(circuit: &LutCircuit, delays: &[f64]) -> Result<TimingAnalysis, StaError> {
    Ok(Sta::new(circuit, delays)?.analysis())
}

/// Extracts per-connection routed delays for `mode` from a routing:
/// `(source SOURCE node, sink SINK node) → wire segments on the path`.
#[must_use]
pub fn routed_delay_map(
    rrg: &RoutingGraph,
    nets: &[RouteNet],
    routing: &Routing,
    mode: usize,
) -> HashMap<(RrNodeId, RrNodeId), f64> {
    let mut map = HashMap::new();
    for (net, route) in nets.iter().zip(&routing.nets) {
        for (si, sink) in net.sinks.iter().enumerate() {
            if sink.activation.contains(mode) {
                map.insert((net.source, sink.node), route.wires_to_sink(rrg, si) as f64);
            }
        }
    }
    map
}

/// Resolves each circuit connection to its routed delay, strictly: a
/// connection absent from `map` is an error, never a silent `0.0`.
///
/// `site_of` maps blocks to their placed sites.
///
/// # Errors
///
/// [`StaError::MissingDelay`] for any connection without a routed delay.
pub fn routed_connection_delays(
    circuit: &LutCircuit,
    mut site_of: impl FnMut(BlockId) -> Site,
    rrg: &RoutingGraph,
    map: &HashMap<(RrNodeId, RrNodeId), f64>,
) -> Result<Vec<f64>, StaError> {
    circuit
        .connections()
        .into_iter()
        .map(|(src, dst)| {
            let key = (rrg.source_at(site_of(src)), rrg.sink_at(site_of(dst)));
            map.get(&key)
                .copied()
                .ok_or_else(|| StaError::MissingDelay {
                    source: circuit.block(src).name().to_string(),
                    sink: circuit.block(dst).name().to_string(),
                })
        })
        .collect()
}

/// Analyzes one placed-and-routed circuit in `mode`.
///
/// # Errors
///
/// [`StaError::MissingDelay`] if the routing does not cover every
/// connection in `mode`; otherwise see [`Sta::new`].
pub fn analyze_routed(
    circuit: &LutCircuit,
    site_of: impl FnMut(BlockId) -> Site,
    rrg: &RoutingGraph,
    nets: &[RouteNet],
    routing: &Routing,
    mode: usize,
) -> Result<TimingAnalysis, StaError> {
    let map = routed_delay_map(rrg, nets, routing, mode);
    let delays = routed_connection_delays(circuit, site_of, rrg, &map)?;
    analyze(circuit, &delays)
}

/// Placement-independent criticalities under a unit wire delay per
/// connection — the topological criticality the annealer weights its
/// timing cost with (pure function of the circuit, so content-addressed
/// caching of placements keyed on circuit hashes stays sound).
///
/// # Errors
///
/// [`StaError::Cycle`] for a combinationally cyclic circuit.
pub fn unit_criticalities(circuit: &LutCircuit) -> Result<Vec<f64>, StaError> {
    let delays = vec![1.0; circuit.connections().len()];
    Ok(analyze(circuit, &delays)?.criticalities())
}

/// Analyzes a circuit under estimated (pre-routing) connection delays
/// supplied by `dist` — typically a placement's Manhattan distances.
///
/// # Errors
///
/// See [`Sta::new`].
pub fn analyze_estimated(
    circuit: &LutCircuit,
    mut dist: impl FnMut(BlockId, BlockId) -> f64,
) -> Result<TimingAnalysis, StaError> {
    let delays: Vec<f64> = circuit
        .connections()
        .into_iter()
        .map(|(s, d)| dist(s, d))
        .collect();
    analyze(circuit, &delays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_netlist::TruthTable;

    /// in → g1 → g2 → g3 → out, all combinational.
    fn chain() -> LutCircuit {
        let mut c = LutCircuit::new("chain", 4);
        let a = c.add_input("a").unwrap();
        let g1 = c
            .add_lut("g1", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        let g2 = c
            .add_lut("g2", vec![g1], TruthTable::var(1, 0), false)
            .unwrap();
        let g3 = c
            .add_lut("g3", vec![g2], TruthTable::var(1, 0), false)
            .unwrap();
        c.add_output("y", g3).unwrap();
        c
    }

    #[test]
    fn chain_critical_path_counts_levels() {
        let c = chain();
        let delays = vec![1.0; c.connections().len()];
        let a = analyze(&c, &delays).unwrap();
        // 4 connections of delay 1 plus 3 LUT traversals.
        assert_eq!(a.critical_path, 4.0 + 3.0 * LUT_DELAY);
        // Every connection lies on the single path: criticality 1.
        for conn in &a.connections {
            assert_eq!(conn.criticality, 1.0, "{conn:?}");
            assert_eq!(conn.slack, 0.0, "{conn:?}");
        }
    }

    #[test]
    fn registered_lut_cuts_the_path() {
        let mut c = LutCircuit::new("cut", 4);
        let a = c.add_input("a").unwrap();
        let g1 = c
            .add_lut("g1", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        let r = c
            .add_lut("r", vec![g1], TruthTable::var(1, 0), true)
            .unwrap();
        let g2 = c
            .add_lut("g2", vec![r], TruthTable::var(1, 0), false)
            .unwrap();
        c.add_output("y", g2).unwrap();
        let delays = vec![1.0; c.connections().len()];
        let an = analyze(&c, &delays).unwrap();
        // Longest stage: a→g1→r capture = 1 + 2 + 1 + 2 = 6.
        assert_eq!(an.critical_path, 6.0);
    }

    #[test]
    fn off_path_connection_has_slack() {
        let mut c = LutCircuit::new("slack", 4);
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g1 = c
            .add_lut("g1", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        let g2 = c
            .add_lut("g2", vec![g1, b], TruthTable::var(2, 0), false)
            .unwrap();
        c.add_output("y", g2).unwrap();
        // a→g1 long, b→g2 short: b's connection is slack.
        let conns = c.connections();
        let delays: Vec<f64> = conns
            .iter()
            .map(|&(s, _)| if s == a { 5.0 } else { 1.0 })
            .collect();
        let an = analyze(&c, &delays).unwrap();
        let b_conn = an
            .connections
            .iter()
            .find(|ct| ct.source == b)
            .expect("b drives g2");
        assert!(b_conn.slack > 0.0);
        assert!(b_conn.criticality < 1.0);
        let a_conn = an.connections.iter().find(|ct| ct.source == a).unwrap();
        assert_eq!(a_conn.criticality, 1.0);
    }

    #[test]
    fn delay_vector_length_is_checked() {
        let c = chain();
        assert!(matches!(
            analyze(&c, &[1.0]),
            Err(StaError::DelayCount { .. })
        ));
    }

    #[test]
    fn invalid_delays_are_rejected() {
        let c = chain();
        let n = c.connections().len();
        for bad in [f64::NAN, f64::INFINITY, -1.0, -0.0] {
            let mut delays = vec![1.0; n];
            delays[0] = bad;
            assert!(
                matches!(analyze(&c, &delays), Err(StaError::InvalidDelay { .. })),
                "{bad} accepted"
            );
        }
    }

    #[test]
    fn missing_routed_delay_is_an_error() {
        use mm_arch::Architecture;
        let c = chain();
        let arch = Architecture::new(4, 3, 4);
        let rrg = RoutingGraph::build(&arch);
        let map = HashMap::new();
        let err = routed_connection_delays(&c, |_| Site::new(1, 1, 0), &rrg, &map).unwrap_err();
        assert!(matches!(err, StaError::MissingDelay { .. }));
    }

    #[test]
    fn incremental_update_tracks_full_rebuild() {
        let c = chain();
        let n = c.connections().len();
        let mut sta = Sta::new(&c, &vec![1.0; n]).unwrap();
        let mut delays = vec![1.0; n];
        delays[1] = 7.0;
        sta.set_delays(&delays).unwrap();
        let fresh = Sta::new(&c, &delays).unwrap();
        assert_eq!(
            sta.critical_path().to_bits(),
            fresh.critical_path().to_bits()
        );
        for i in 0..n {
            assert_eq!(sta.slacks()[i].to_bits(), fresh.slacks()[i].to_bits());
            assert_eq!(
                sta.criticalities()[i].to_bits(),
                fresh.criticalities()[i].to_bits()
            );
        }
    }

    #[test]
    fn unit_criticalities_are_normalized() {
        let crits = unit_criticalities(&chain()).unwrap();
        assert!(!crits.is_empty());
        for c in crits {
            assert!((0.0..=1.0).contains(&c));
        }
    }
}
