//! From-scratch reference timing analysis.
//!
//! An independent, obviously-correct implementation of the semantics in
//! the crate docs: plain `HashMap`s, full recomputation on every call,
//! no incremental state. The production [`Sta`](crate::Sta) engine must
//! stay **bit-identical** to this — both compute every value with the
//! same fold order and expressions, and the proptest parity suite
//! enforces it.

use crate::{ConnectionTiming, StaError, TimingAnalysis, LUT_DELAY};
use mm_netlist::{BlockId, BlockKind, LutCircuit};
use std::collections::HashMap;

/// Analyzes `circuit` under `delays` by full recomputation.
///
/// # Errors
///
/// Same contract as [`crate::analyze`].
pub fn analyze(circuit: &LutCircuit, delays: &[f64]) -> Result<TimingAnalysis, StaError> {
    let conns = circuit.connections();
    if delays.len() != conns.len() {
        return Err(StaError::DelayCount {
            expected: conns.len(),
            got: delays.len(),
        });
    }
    for (i, &d) in delays.iter().enumerate() {
        if !d.is_finite() || d.is_sign_negative() {
            return Err(StaError::InvalidDelay { index: i, value: d });
        }
    }
    let order = circuit
        .comb_topo_order()
        .map_err(|e| StaError::Cycle(e.to_string()))?;

    // Fanin/fanout connection indices per block, in connection order.
    let mut fanin: HashMap<BlockId, Vec<usize>> = HashMap::new();
    let mut fanout: HashMap<BlockId, Vec<usize>> = HashMap::new();
    for (ci, &(src, dst)) in conns.iter().enumerate() {
        fanout.entry(src).or_default().push(ci);
        fanin.entry(dst).or_default().push(ci);
    }
    // Forward: arrivals of combinational LUTs (everything else is a
    // startpoint at 0.0).
    let mut arr: HashMap<BlockId, f64> = HashMap::new();
    let arrival_of =
        |arr: &HashMap<BlockId, f64>, id: BlockId| arr.get(&id).copied().unwrap_or(0.0);
    let input_fold = |arr: &HashMap<BlockId, f64>, id: BlockId| {
        let mut a = 0.0f64;
        if let Some(list) = fanin.get(&id) {
            for &ci in list {
                a = a.max(arrival_of(arr, conns[ci].0) + delays[ci]);
            }
        }
        a
    };
    for &b in &order {
        let a = input_fold(&arr, b) + LUT_DELAY;
        arr.insert(b, a);
    }

    // Critical path: max over combinational arrivals and endpoint
    // arrivals, scanning blocks in ascending id order.
    let mut t = 0.0f64;
    for id in circuit.block_ids() {
        match circuit.block(id).kind() {
            BlockKind::Lut {
                registered: false, ..
            } => t = t.max(arrival_of(&arr, id)),
            BlockKind::Lut {
                registered: true, ..
            } => t = t.max(input_fold(&arr, id) + LUT_DELAY),
            BlockKind::OutputPad { .. } => t = t.max(input_fold(&arr, id)),
            BlockKind::InputPad => {}
        }
    }

    // Backward: required time at each combinational LUT's output.
    let mut req: HashMap<BlockId, f64> = HashMap::new();
    let edge_req = |req: &HashMap<BlockId, f64>, dst: BlockId| match circuit.block(dst).kind() {
        BlockKind::Lut {
            registered: false, ..
        } => req[&dst] - LUT_DELAY,
        BlockKind::Lut {
            registered: true, ..
        } => t - LUT_DELAY,
        _ => t,
    };
    for &b in order.iter().rev() {
        let mut r = t;
        if let Some(list) = fanout.get(&b) {
            for &ci in list {
                r = r.min(edge_req(&req, conns[ci].1) - delays[ci]);
            }
        }
        req.insert(b, r);
    }

    // Per-connection slack and criticality.
    let connections = conns
        .iter()
        .enumerate()
        .map(|(ci, &(source, sink))| {
            let arrival = arrival_of(&arr, source) + delays[ci];
            let slack = edge_req(&req, sink) - arrival;
            let criticality = if t > 0.0 {
                (1.0 - slack / t).clamp(0.0, 1.0)
            } else {
                0.0
            };
            ConnectionTiming {
                source,
                sink,
                delay: delays[ci],
                arrival,
                slack,
                criticality,
            }
        })
        .collect();

    Ok(TimingAnalysis {
        critical_path: t,
        connections,
    })
}

#[cfg(test)]
mod tests {
    use mm_netlist::{LutCircuit, TruthTable};

    #[test]
    fn reference_matches_production_on_a_small_circuit() {
        let mut c = LutCircuit::new("x", 4);
        let a = c.add_input("a").unwrap();
        let b = c.add_input("b").unwrap();
        let g1 = c
            .add_lut("g1", vec![a, b], TruthTable::var(2, 0), false)
            .unwrap();
        let g2 = c
            .add_lut("g2", vec![g1, a], TruthTable::var(2, 1), true)
            .unwrap();
        let g3 = c
            .add_lut("g3", vec![g2, g1], TruthTable::var(2, 0), false)
            .unwrap();
        c.add_output("y", g3).unwrap();
        let delays: Vec<f64> = (0..c.connections().len()).map(|i| 0.5 * i as f64).collect();
        let r = super::analyze(&c, &delays).unwrap();
        let p = crate::analyze(&c, &delays).unwrap();
        assert_eq!(r.critical_path.to_bits(), p.critical_path.to_bits());
        assert_eq!(r.connections.len(), p.connections.len());
        for (rc, pc) in r.connections.iter().zip(&p.connections) {
            assert_eq!(rc.slack.to_bits(), pc.slack.to_bits());
            assert_eq!(rc.criticality.to_bits(), pc.criticality.to_bits());
            assert_eq!(rc.arrival.to_bits(), pc.arrival.to_bits());
        }
    }
}
