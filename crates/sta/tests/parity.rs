//! Differential tests: the incremental [`mm_sta::Sta`] engine must be
//! bit-identical to the from-scratch reference analysis — same critical
//! path, same slacks, same criticalities — both on construction and
//! after arbitrary sequences of incremental delay updates.

use mm_netlist::{BlockId, LutCircuit, TruthTable};
use mm_sta::{reference, Sta};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random k-LUT circuit (the shape used across the
/// repo's tests and benches), with a mix of registered and purely
/// combinational LUTs.
fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = LutCircuit::new(name, 4);
    let mut drivers: Vec<BlockId> = (0..n_inputs)
        .map(|i| c.add_input(format!("i{i}")).unwrap())
        .collect();
    for j in 0..n_luts {
        let fanin = rng.gen_range(1..=4.min(drivers.len()));
        let mut ins = Vec::new();
        while ins.len() < fanin {
            let d = drivers[rng.gen_range(0..drivers.len())];
            if !ins.contains(&d) {
                ins.push(d);
            }
        }
        let tt = TruthTable::from_bits(ins.len(), rng.gen());
        let id = c
            .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.3))
            .unwrap();
        drivers.push(id);
    }
    for t in 0..3.min(n_luts) {
        let d = drivers[drivers.len() - 1 - t];
        c.add_output(format!("o{t}"), d).unwrap();
    }
    c
}

/// Random delay vector with varied bit patterns (quarter-unit steps so
/// sums exercise non-trivial mantissas).
fn random_delays(n: usize, rng: &mut StdRng) -> Vec<f64> {
    (0..n)
        .map(|_| f64::from(rng.gen_range(0u16..64)) * 0.25)
        .collect()
}

fn assert_bit_identical(sta: &Sta, circuit: &LutCircuit, delays: &[f64]) {
    let want = reference::analyze(circuit, delays).expect("reference analysis");
    assert_eq!(
        sta.critical_path().to_bits(),
        want.critical_path.to_bits(),
        "critical path diverged"
    );
    assert_eq!(sta.connection_count(), want.connections.len());
    let got = sta.analysis();
    for (i, (g, w)) in got.connections.iter().zip(&want.connections).enumerate() {
        assert_eq!(g.slack.to_bits(), w.slack.to_bits(), "slack[{i}]");
        assert_eq!(
            g.criticality.to_bits(),
            w.criticality.to_bits(),
            "criticality[{i}]"
        );
        assert_eq!(g.arrival.to_bits(), w.arrival.to_bits(), "arrival[{i}]");
        assert_eq!(g.delay.to_bits(), w.delay.to_bits(), "delay[{i}]");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fresh construction matches the reference bit for bit.
    #[test]
    fn initial_analysis_matches_reference(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let luts = rng.gen_range(5..=40usize);
        let circuit = random_circuit("p", 5, luts, seed ^ 0xace);
        let delays = random_delays(circuit.connections().len(), &mut rng);
        let sta = Sta::new(&circuit, &delays).expect("valid circuit");
        assert_bit_identical(&sta, &circuit, &delays);
    }

    /// Arbitrary incremental update sequences stay bit-identical to a
    /// reference rebuilt from scratch after every batch.
    #[test]
    fn incremental_updates_match_reference(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(11).wrapping_add(5));
        let luts = rng.gen_range(5..=40usize);
        let circuit = random_circuit("q", 5, luts, seed ^ 0xbee);
        let n = circuit.connections().len();
        let mut delays = random_delays(n, &mut rng);
        let mut sta = Sta::new(&circuit, &delays).expect("valid circuit");

        for _ in 0..8 {
            // A batch of single-connection updates (sometimes touching
            // the same connection twice, sometimes a no-op rewrite).
            let batch = rng.gen_range(1..=6usize);
            for _ in 0..batch {
                let i = rng.gen_range(0..n);
                let d = if rng.gen_bool(0.15) {
                    delays[i] // no-op: must not dirty anything lasting
                } else {
                    f64::from(rng.gen_range(0u16..64)) * 0.25
                };
                delays[i] = d;
                sta.set_delay(i, d).expect("valid delay");
            }
            sta.refresh();
            assert_bit_identical(&sta, &circuit, &delays);
        }

        // A whole-vector swap through the batch entry point.
        let fresh = random_delays(n, &mut rng);
        delays.copy_from_slice(&fresh);
        sta.set_delays(&fresh).expect("valid delays");
        assert_bit_identical(&sta, &circuit, &delays);
    }
}

/// `refresh` with no pending updates must leave everything untouched.
#[test]
fn refresh_is_idempotent() {
    let circuit = random_circuit("idem", 5, 20, 42);
    let mut rng = StdRng::seed_from_u64(7);
    let delays = random_delays(circuit.connections().len(), &mut rng);
    let mut sta = Sta::new(&circuit, &delays).unwrap();
    let before = sta.analysis();
    sta.refresh();
    sta.refresh();
    assert_eq!(before, sta.analysis());
}
