//! MCNC-style general benchmark circuits.
//!
//! The paper's third experiment takes "5 circuits out of the general MCNC
//! benchmark suite that were of similar size compared to the rest of the
//! circuits" (§IV-A). The original suite is not redistributable here, so
//! this module generates five structurally diverse circuits of the same
//! post-mapping size class: an ALU, PLA-style two-level logic, an array
//! multiplier, a parallel CRC update, and an interrupt controller. What
//! matters for the experiment is preserved: general circuits whose pairs
//! share *less* structure than the targeted multi-mode applications.

use crate::words::Word;
use mm_netlist::{GateNetwork, SignalId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A combinational `width`-bit ALU with eight operations (in the spirit of
/// MCNC's `alu4`): add, sub, and, or, xor, shift-left, set-less-than,
/// nand.
#[must_use]
pub fn alu(name: &str, width: usize) -> GateNetwork {
    let mut net = GateNetwork::new(name.to_string());
    let a = Word::inputs(&mut net, "a", width);
    let b = Word::inputs(&mut net, "b", width);
    let op = Word::inputs(&mut net, "op", 3);

    let (sum, _) = a.add(&mut net, &b);
    let (dif, no_borrow) = a.sub(&mut net, &b);
    let and = a.and(&mut net, &b);
    let or = a.or(&mut net, &b);
    let xor = a.xor(&mut net, &b);
    let shl = {
        let shifted = a.shifted_left(&mut net, 1);
        shifted.resize(&mut net, width, false)
    };
    let slt = {
        let lt = net.not(no_borrow);
        let mut bits = vec![lt];
        for _ in 1..width {
            bits.push(net.constant(false));
        }
        Word::from_bits(bits)
    };
    let nand = and.not(&mut net);

    // 8:1 word mux on op (op = 0..7 selects add, sub, and, or, xor, shl,
    // slt, nand). Word::mux is `sel ? self : other`.
    let l0 = dif.mux(&mut net, &sum, op.bit(0)); // op0 ? sub : add
    let l1 = or.mux(&mut net, &and, op.bit(0)); // op0 ? or : and
    let l2 = shl.mux(&mut net, &xor, op.bit(0)); // op0 ? shl : xor
    let l3 = nand.mux(&mut net, &slt, op.bit(0)); // op0 ? nand : slt
    let m0 = l1.mux(&mut net, &l0, op.bit(1));
    let m1 = l3.mux(&mut net, &l2, op.bit(1));
    let f = m1.mux(&mut net, &m0, op.bit(2));
    f.export(&mut net, "f");
    net
}

/// PLA-style two-level logic (in the spirit of `misex`/`ex5p`): every
/// output is an OR of random product terms over the inputs.
#[must_use]
pub fn pla(
    name: &str,
    inputs: usize,
    outputs: usize,
    terms_per_output: usize,
    literals_per_term: usize,
    seed: u64,
) -> GateNetwork {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut net = GateNetwork::new(name.to_string());
    let ins: Vec<SignalId> = (0..inputs)
        .map(|i| net.add_input(format!("i{i}")).expect("unique"))
        .collect();
    // Pre-build complements for sharing.
    let negs: Vec<SignalId> = ins.iter().map(|&s| net.not(s)).collect();
    for o in 0..outputs {
        let mut terms = Vec::with_capacity(terms_per_output);
        for _ in 0..terms_per_output {
            let mut lits = Vec::with_capacity(literals_per_term);
            let mut used = vec![false; inputs];
            while lits.len() < literals_per_term.min(inputs) {
                let v = rng.gen_range(0..inputs);
                if used[v] {
                    continue;
                }
                used[v] = true;
                lits.push(if rng.gen_bool(0.5) { ins[v] } else { negs[v] });
            }
            terms.push(net.and_many(&lits));
        }
        let f = net.or_many(&terms);
        net.add_output(format!("o{o}"), f).expect("unique");
    }
    net
}

/// A combinational array multiplier (in the spirit of MCNC's arithmetic
/// blocks): `p = a × b`, unsigned.
#[must_use]
pub fn multiplier(name: &str, width: usize) -> GateNetwork {
    let mut net = GateNetwork::new(name.to_string());
    let a = Word::inputs(&mut net, "a", width);
    let b = Word::inputs(&mut net, "b", width);
    let out_w = 2 * width;
    let mut acc = Word::constant(&mut net, 0, out_w);
    for i in 0..width {
        let partial = a
            .shifted_left(&mut net, i)
            .resize(&mut net, out_w, false)
            .gated(&mut net, b.bit(i));
        acc = acc.add(&mut net, &partial).0;
    }
    acc.export(&mut net, "p");
    net
}

/// A registered parallel CRC update: per cycle the CRC register absorbs
/// `data_width` input bits using the given generator polynomial
/// (reflected form, e.g. `0xEDB8_8320` for CRC-32).
#[must_use]
pub fn crc(name: &str, poly: u64, crc_width: usize, data_width: usize) -> GateNetwork {
    let mut net = GateNetwork::new(name.to_string());
    let data = Word::inputs(&mut net, "d", data_width);
    // CRC state flip-flops (initialised to all-ones as usual).
    let state: Vec<SignalId> = (0..crc_width).map(|_| net.add_dff(true)).collect();

    // Unroll the serial LFSR update data_width times.
    let mut cur: Vec<SignalId> = state.clone();
    for bit in 0..data_width {
        let feedback = net.xor(cur[0], data.bit(bit));
        let mut next = Vec::with_capacity(crc_width);
        for i in 0..crc_width {
            let shifted = if i + 1 < crc_width {
                cur[i + 1]
            } else {
                net.constant(false)
            };
            next.push(if (poly >> i) & 1 == 1 {
                net.xor(shifted, feedback)
            } else {
                shifted
            });
        }
        cur = next;
    }
    for (i, &s) in state.iter().enumerate() {
        net.connect_dff(s, cur[i]).expect("state is a flip-flop");
        net.add_output(format!("crc{i}"), s).expect("unique");
    }
    net
}

/// A sequential interrupt controller: `requests` request lines, a
/// writable mask register, pending latching, and a rotating-priority
/// encoder producing the grant id.
#[must_use]
pub fn interrupt_controller(name: &str, requests: usize) -> GateNetwork {
    assert!(requests.is_power_of_two(), "request count must be 2^n");
    let id_bits = requests.trailing_zeros() as usize;
    let mut net = GateNetwork::new(name.to_string());
    let req = Word::inputs(&mut net, "irq", requests);
    let wr_mask = net.add_input("wr_mask").expect("unique");
    let wdata = Word::inputs(&mut net, "wdata", requests);
    let ack = net.add_input("ack").expect("unique");

    // Mask register, loadable.
    let mask_ff: Vec<SignalId> = (0..requests).map(|_| net.add_dff(false)).collect();
    for (i, &ff) in mask_ff.iter().enumerate() {
        let next = net.mux(wr_mask, wdata.bit(i), ff);
        net.connect_dff(ff, next).expect("ff");
    }

    // Pending = (req & !mask) | (pending & !ack-clear), latched.
    let pending_ff: Vec<SignalId> = (0..requests).map(|_| net.add_dff(false)).collect();
    let nack = net.not(ack);
    for i in 0..requests {
        let nm = net.not(mask_ff[i]);
        let take = net.and(req.bit(i), nm);
        let hold = net.and(pending_ff[i], nack);
        let next = net.or(take, hold);
        net.connect_dff(pending_ff[i], next).expect("ff");
    }

    // Rotating priority pointer: advances on ack.
    let ptr_ff: Vec<SignalId> = (0..id_bits).map(|_| net.add_dff(false)).collect();
    {
        // ptr + 1 when ack else ptr.
        let ptr = Word::from_bits(ptr_ff.clone());
        let one = Word::constant(&mut net, 1, id_bits);
        let (inc, _) = ptr.add(&mut net, &one);
        for (i, &ff) in ptr_ff.iter().enumerate() {
            let next = net.mux(ack, inc.bit(i), ptr.bit(i));
            net.connect_dff(ff, next).expect("ff");
        }
    }

    // Rotated pending: pending[(i + ptr) mod N] via mux layers (barrel
    // rotate by the pointer).
    let mut rotated: Vec<SignalId> = pending_ff.clone();
    for (level, &p) in ptr_ff.iter().enumerate() {
        let shift = 1usize << level;
        let mut next = Vec::with_capacity(requests);
        for i in 0..requests {
            let a = rotated[(i + shift) % requests];
            let b = rotated[i];
            next.push(net.mux(p, a, b));
        }
        rotated = next;
    }

    // Priority encoder over the rotated vector (LSB wins).
    let mut taken = net.constant(false);
    let mut grant_rel: Vec<SignalId> = vec![net.constant(false); id_bits];
    for (i, &req) in rotated.iter().enumerate() {
        let nt = net.not(taken);
        let fire = net.and(req, nt);
        for (b, slot) in grant_rel.iter_mut().enumerate() {
            if (i >> b) & 1 == 1 {
                *slot = net.or(*slot, fire);
            }
        }
        taken = net.or(taken, fire);
    }
    // Absolute grant id = rel + ptr (mod N).
    let rel = Word::from_bits(grant_rel);
    let ptr = Word::from_bits(ptr_ff);
    let (abs, _) = rel.add(&mut net, &ptr);
    for i in 0..id_bits {
        net.add_output(format!("id{i}"), abs.bit(i))
            .expect("unique");
    }
    net.add_output("valid", taken).expect("unique");
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_netlist::GateSimulator;

    fn word_bits(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    fn word_val(bits: &[bool]) -> u64 {
        bits.iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn alu_operations() {
        let net = alu("alu8", 8);
        let mut sim = GateSimulator::new(&net);
        let cases = [
            (5u64, 3u64, 0u64, 8u64),    // add
            (5, 3, 1, 2),                // sub
            (0b1100, 0b1010, 2, 0b1000), // and
            (0b1100, 0b1010, 3, 0b1110), // or
            (0b1100, 0b1010, 4, 0b0110), // xor
            (0b1100, 0, 5, 0b11000),     // shl
            (3, 7, 6, 1),                // slt
            (0xff, 0xff, 7, 0x00),       // nand
        ];
        for (a, b, op, expect) in cases {
            let mut ins = word_bits(a, 8);
            ins.extend(word_bits(b, 8));
            ins.extend(word_bits(op, 3));
            let out = sim.step(&ins);
            assert_eq!(word_val(&out), expect & 0xff, "a={a} b={b} op={op}");
        }
    }

    #[test]
    fn multiplier_exhaustive_small() {
        let net = multiplier("m4", 4);
        let mut sim = GateSimulator::new(&net);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut ins = word_bits(a, 4);
                ins.extend(word_bits(b, 4));
                let out = sim.step(&ins);
                assert_eq!(word_val(&out), a * b, "{a}×{b}");
            }
        }
    }

    #[test]
    fn crc32_matches_software() {
        // Byte-wise CRC-32 (reflected 0xEDB88320) against the classic
        // table-free software implementation.
        let net = crc("crc32", 0xEDB8_8320, 32, 8);
        let mut sim = GateSimulator::new(&net);
        let message = b"123456789";
        let mut hw = 0u64;
        for &byte in message.iter() {
            let out = sim.step(&word_bits(u64::from(byte), 8));
            hw = word_val(&out); // state *before* this byte is absorbed
        }
        let _ = hw;
        // Flush: read the state after the last byte.
        let out = sim.step(&word_bits(0, 8));
        let hw_after_message = word_val(&out);

        let mut sw = u32::MAX;
        for &byte in message.iter() {
            sw ^= u32::from(byte);
            for _ in 0..8 {
                sw = if sw & 1 != 0 {
                    (sw >> 1) ^ 0xEDB8_8320
                } else {
                    sw >> 1
                };
            }
        }
        // The check value for "123456789" is 0xCBF43926 after final XOR;
        // our register holds the pre-inversion value.
        assert_eq!(hw_after_message as u32, sw);
        assert_eq!(!sw, 0xCBF4_3926);
    }

    #[test]
    fn interrupt_controller_grants_and_rotates() {
        let net = interrupt_controller("intc", 8);
        let mut sim = GateSimulator::new(&net);
        let step = |sim: &mut GateSimulator, irq: u64, wr: bool, wdata: u64, ack: bool| {
            let mut ins = word_bits(irq, 8);
            ins.push(wr);
            ins.extend(word_bits(wdata, 8));
            ins.push(ack);
            let out = sim.step(&ins);
            (word_val(&out[..3]), out[3]) // (id, valid)
        };
        // Nothing pending.
        let (_, valid) = step(&mut sim, 0, false, 0, false);
        assert!(!valid);
        // Raise irq 2 and 5; next cycle the encoder grants 2 (LSB-first).
        step(&mut sim, 0b0010_0100, false, 0, false);
        let (id, valid) = step(&mut sim, 0, false, 0, false);
        assert!(valid);
        assert_eq!(id, 2);
        // Mask irq 2: after reprogramming, new requests on 2 are ignored.
        step(&mut sim, 0, true, 0b0000_0100, true); // also ack clears pending
        step(&mut sim, 0b0000_0100, false, 0, false);
        let (_, valid) = step(&mut sim, 0, false, 0, false);
        assert!(!valid, "masked request must not pend");
        // Unmasked irq 5 still fires.
        step(&mut sim, 0b0010_0000, false, 0, false);
        let (id, valid) = step(&mut sim, 0, false, 0, false);
        assert!(valid);
        assert_eq!(id, 5);
    }

    #[test]
    fn pla_is_deterministic_and_seeded() {
        let a = pla("p", 10, 8, 6, 4, 42);
        let b = pla("p", 10, 8, 6, 4, 42);
        let c = pla("p", 10, 8, 6, 4, 43);
        assert_eq!(a.signal_count(), b.signal_count());
        // Different seed gives different logic (overwhelmingly likely).
        let mut sa = GateSimulator::new(&a);
        let mut sc = GateSimulator::new(&c);
        let mut differs = false;
        for v in 0..64u64 {
            let ins = word_bits(v * 17 % 1024, 10);
            if sa.step(&ins) != sc.step(&ins) {
                differs = true;
                break;
            }
        }
        assert!(differs);
    }
}
