//! Regular-expression hardware engines.
//!
//! Reimplements the generator of Sourdis/Bispo/Cardoso (paper ref. \[7\]):
//! a regular expression is compiled into a streaming matcher circuit with
//! one flip-flop per NFA state (Glushkov construction, as in
//! Sidhu–Prasanna), shared nibble-based character decoders, and a
//! registered `match` output. The resulting [`GateNetwork`] is synthesised
//! to 4-LUTs to form one *mode* of the paper's multi-mode transceiver
//! experiments.
//!
//! Supported syntax: literals, `.`, escapes (`\xHH`, `\d \w \s \D \W \S`,
//! control escapes), character classes `[a-z]` / `[^…]`, grouping,
//! alternation `|`, and the quantifiers `* + ? {n} {n,} {n,m}` (counted
//! quantifiers are expanded).

use crate::words::Word;
use mm_netlist::{GateNetwork, SignalId};
use std::collections::{BTreeSet, HashMap};
use std::error::Error;
use std::fmt;

/// A set of bytes (a character class) as a 256-bit mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CharClass([u64; 4]);

impl CharClass {
    /// The empty class.
    #[must_use]
    pub fn empty() -> Self {
        Self([0; 4])
    }

    /// The class matching every byte (`.` matches everything but `\n`
    /// per convention; use [`CharClass::dot`] for that).
    #[must_use]
    pub fn full() -> Self {
        Self([u64::MAX; 4])
    }

    /// `.`: every byte except `\n`.
    #[must_use]
    pub fn dot() -> Self {
        let mut c = Self::full();
        c.remove(b'\n');
        c
    }

    /// The singleton class `{byte}`.
    #[must_use]
    pub fn single(byte: u8) -> Self {
        let mut c = Self::empty();
        c.insert(byte);
        c
    }

    /// Inserts a byte.
    pub fn insert(&mut self, byte: u8) {
        self.0[usize::from(byte >> 6)] |= 1 << (byte & 63);
    }

    /// Removes a byte.
    pub fn remove(&mut self, byte: u8) {
        self.0[usize::from(byte >> 6)] &= !(1 << (byte & 63));
    }

    /// Inserts an inclusive byte range.
    pub fn insert_range(&mut self, lo: u8, hi: u8) {
        for b in lo..=hi {
            self.insert(b);
        }
    }

    /// Whether the class contains a byte.
    #[must_use]
    pub fn contains(&self, byte: u8) -> bool {
        self.0[usize::from(byte >> 6)] & (1 << (byte & 63)) != 0
    }

    /// The complement class.
    #[must_use]
    pub fn negated(&self) -> Self {
        Self([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }

    /// Union of two classes.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        Self([
            self.0[0] | other.0[0],
            self.0[1] | other.0[1],
            self.0[2] | other.0[2],
            self.0[3] | other.0[3],
        ])
    }

    /// Number of bytes in the class.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the class is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0 == [0; 4]
    }

    fn digits() -> Self {
        let mut c = Self::empty();
        c.insert_range(b'0', b'9');
        c
    }

    fn word_chars() -> Self {
        let mut c = Self::digits();
        c.insert_range(b'a', b'z');
        c.insert_range(b'A', b'Z');
        c.insert(b'_');
        c
    }

    fn whitespace() -> Self {
        let mut c = Self::empty();
        for b in [b' ', b'\t', b'\n', b'\r', 0x0b, 0x0c] {
            c.insert(b);
        }
        c
    }
}

/// Regex parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegexError {
    msg: String,
    pos: usize,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl Error for ParseRegexError {}

/// Regex AST.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ast {
    Empty,
    Char(CharClass),
    Concat(Vec<Ast>),
    Alt(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Opt(Box<Ast>),
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseRegexError {
        ParseRegexError {
            msg: msg.into(),
            pos: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn parse_alternation(&mut self) -> Result<Ast, ParseRegexError> {
        let mut branches = vec![self.parse_concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("nonempty")
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, ParseRegexError> {
        let mut items = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().expect("nonempty"),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, ParseRegexError> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    atom = Ast::Star(Box::new(atom));
                }
                Some(b'+') => {
                    self.bump();
                    atom = Ast::Plus(Box::new(atom));
                }
                Some(b'?') => {
                    self.bump();
                    atom = Ast::Opt(Box::new(atom));
                }
                Some(b'{') => {
                    self.bump();
                    let (lo, hi) = self.parse_counts()?;
                    atom = expand_counted(&atom, lo, hi);
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    /// Parses `n}`, `n,}` or `n,m}` after `{`.
    fn parse_counts(&mut self) -> Result<(usize, Option<usize>), ParseRegexError> {
        let n = self.parse_number()?;
        match self.bump() {
            Some(b'}') => Ok((n, Some(n))),
            Some(b',') => {
                if self.peek() == Some(b'}') {
                    self.bump();
                    Ok((n, None))
                } else {
                    let m = self.parse_number()?;
                    if self.bump() != Some(b'}') {
                        return Err(self.err("expected '}'"));
                    }
                    if m < n {
                        return Err(self.err("bad repetition range"));
                    }
                    Ok((n, Some(m)))
                }
            }
            _ => Err(self.err("expected '}' or ','")),
        }
    }

    fn parse_number(&mut self) -> Result<usize, ParseRegexError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("digits are UTF-8")
            .parse()
            .map_err(|_| self.err("repetition count too large"))
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseRegexError> {
        match self.bump() {
            Some(b'(') => {
                let inner = self.parse_alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.err("unclosed group"));
                }
                Ok(inner)
            }
            Some(b'.') => Ok(Ast::Char(CharClass::dot())),
            Some(b'[') => self.parse_class(),
            Some(b'\\') => Ok(Ast::Char(self.parse_escape()?)),
            Some(b) if b == b'*' || b == b'+' || b == b'?' => {
                Err(self.err("quantifier without atom"))
            }
            Some(b) => Ok(Ast::Char(CharClass::single(b))),
            None => Err(self.err("unexpected end of pattern")),
        }
    }

    fn parse_escape(&mut self) -> Result<CharClass, ParseRegexError> {
        match self.bump() {
            Some(b'd') => Ok(CharClass::digits()),
            Some(b'D') => Ok(CharClass::digits().negated()),
            Some(b'w') => Ok(CharClass::word_chars()),
            Some(b'W') => Ok(CharClass::word_chars().negated()),
            Some(b's') => Ok(CharClass::whitespace()),
            Some(b'S') => Ok(CharClass::whitespace().negated()),
            Some(b'n') => Ok(CharClass::single(b'\n')),
            Some(b'r') => Ok(CharClass::single(b'\r')),
            Some(b't') => Ok(CharClass::single(b'\t')),
            Some(b'0') => Ok(CharClass::single(0)),
            Some(b'x') => {
                let hi = self.hex_digit()?;
                let lo = self.hex_digit()?;
                Ok(CharClass::single(hi * 16 + lo))
            }
            Some(b) => Ok(CharClass::single(b)), // \. \\ \[ …
            None => Err(self.err("dangling escape")),
        }
    }

    fn hex_digit(&mut self) -> Result<u8, ParseRegexError> {
        match self.bump() {
            Some(b) if b.is_ascii_hexdigit() => Ok(match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                _ => b - b'A' + 10,
            }),
            _ => Err(self.err("expected hex digit")),
        }
    }

    fn parse_class(&mut self) -> Result<Ast, ParseRegexError> {
        let negate = if self.peek() == Some(b'^') {
            self.bump();
            true
        } else {
            false
        };
        let mut class = CharClass::empty();
        let mut first = true;
        loop {
            let b = self.bump().ok_or_else(|| self.err("unclosed class"))?;
            if b == b']' && !first {
                break;
            }
            first = false;
            let lo = if b == b'\\' {
                let c = self.parse_escape()?;
                if c.len() != 1 {
                    class = class.union(&c);
                    continue;
                }
                (0u8..=255)
                    .find(|&x| c.contains(x))
                    .expect("singleton class")
            } else {
                b
            };
            if self.peek() == Some(b'-') && self.src.get(self.pos + 1) != Some(&b']') {
                self.bump(); // '-'
                let hi = match self.bump() {
                    Some(b'\\') => {
                        let c = self.parse_escape()?;
                        (0u8..=255)
                            .find(|&x| c.contains(x))
                            .ok_or_else(|| self.err("bad range end"))?
                    }
                    Some(h) => h,
                    None => return Err(self.err("unclosed class")),
                };
                if hi < lo {
                    return Err(self.err("reversed range"));
                }
                class.insert_range(lo, hi);
            } else {
                class.insert(lo);
            }
        }
        Ok(Ast::Char(if negate { class.negated() } else { class }))
    }
}

fn expand_counted(atom: &Ast, lo: usize, hi: Option<usize>) -> Ast {
    let mut items: Vec<Ast> = Vec::new();
    for _ in 0..lo {
        items.push(atom.clone());
    }
    match hi {
        None => {
            // {n,}: the final copy becomes a Plus (or a bare Star for n=0).
            if let Some(last) = items.pop() {
                items.push(Ast::Plus(Box::new(last)));
            } else {
                items.push(Ast::Star(Box::new(atom.clone())));
            }
        }
        Some(m) => {
            for _ in lo..m {
                items.push(Ast::Opt(Box::new(atom.clone())));
            }
        }
    }
    match items.len() {
        0 => Ast::Empty,
        1 => items.pop().expect("nonempty"),
        _ => Ast::Concat(items),
    }
}

/// Glushkov construction state.
struct Glushkov {
    classes: Vec<CharClass>,
    nullable: bool,
    first: BTreeSet<u32>,
    last: BTreeSet<u32>,
    follow: Vec<BTreeSet<u32>>,
}

fn glushkov(ast: &Ast) -> Glushkov {
    struct Ctx {
        classes: Vec<CharClass>,
        follow: Vec<BTreeSet<u32>>,
    }
    struct Info {
        nullable: bool,
        first: BTreeSet<u32>,
        last: BTreeSet<u32>,
    }
    fn visit(ast: &Ast, ctx: &mut Ctx) -> Info {
        match ast {
            Ast::Empty => Info {
                nullable: true,
                first: BTreeSet::new(),
                last: BTreeSet::new(),
            },
            Ast::Char(c) => {
                let p = ctx.classes.len() as u32;
                ctx.classes.push(*c);
                ctx.follow.push(BTreeSet::new());
                Info {
                    nullable: false,
                    first: BTreeSet::from([p]),
                    last: BTreeSet::from([p]),
                }
            }
            Ast::Concat(items) => {
                let mut acc = Info {
                    nullable: true,
                    first: BTreeSet::new(),
                    last: BTreeSet::new(),
                };
                for item in items {
                    let info = visit(item, ctx);
                    // follow: last(acc) → first(item)
                    for &q in &acc.last {
                        ctx.follow[q as usize].extend(info.first.iter().copied());
                    }
                    if acc.nullable {
                        acc.first.extend(info.first.iter().copied());
                    }
                    if info.nullable {
                        acc.last.extend(info.last.iter().copied());
                    } else {
                        acc.last = info.last;
                    }
                    acc.nullable &= info.nullable;
                }
                acc
            }
            Ast::Alt(branches) => {
                let mut acc = Info {
                    nullable: false,
                    first: BTreeSet::new(),
                    last: BTreeSet::new(),
                };
                for b in branches {
                    let info = visit(b, ctx);
                    acc.nullable |= info.nullable;
                    acc.first.extend(info.first);
                    acc.last.extend(info.last);
                }
                acc
            }
            Ast::Star(inner) | Ast::Plus(inner) => {
                let info = visit(inner, ctx);
                for &q in &info.last {
                    ctx.follow[q as usize].extend(info.first.iter().copied());
                }
                Info {
                    nullable: info.nullable || matches!(ast, Ast::Star(_)),
                    first: info.first,
                    last: info.last,
                }
            }
            Ast::Opt(inner) => {
                let info = visit(inner, ctx);
                Info {
                    nullable: true,
                    first: info.first,
                    last: info.last,
                }
            }
        }
    }
    let mut ctx = Ctx {
        classes: Vec::new(),
        follow: Vec::new(),
    };
    let info = visit(ast, &mut ctx);
    Glushkov {
        classes: ctx.classes,
        nullable: info.nullable,
        first: info.first,
        last: info.last,
        follow: ctx.follow,
    }
}

/// A compiled regular-expression hardware engine.
///
/// The circuit consumes one input byte (`ch0..ch7`, LSB first) per clock
/// cycle and raises the registered `match` output one cycle after the last
/// byte of any (unanchored) occurrence of the pattern.
///
/// # Example
///
/// ```
/// use mm_gen::regex::RegexEngine;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = RegexEngine::compile("cmd\\.exe", 4)?;
/// assert!(engine.matches(b"GET /scripts/cmd.exe HTTP/1.0"));
/// assert!(!engine.matches(b"GET /index.html"));
/// println!("{} states, {} LUTs", engine.state_count(), engine.lut_circuit().lut_count());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RegexEngine {
    pattern: String,
    network: GateNetwork,
    lut_circuit: mm_netlist::LutCircuit,
    state_count: usize,
    /// The combinational (pre-register) match signal, for validation.
    match_comb: SignalId,
}

impl RegexEngine {
    /// Compiles `pattern` into a matcher circuit mapped to `k`-input LUTs.
    ///
    /// # Errors
    ///
    /// Fails on malformed patterns or (theoretically) on internal netlist
    /// errors during mapping.
    pub fn compile(pattern: &str, k: usize) -> Result<Self, Box<dyn Error>> {
        let mut parser = Parser {
            src: pattern.as_bytes(),
            pos: 0,
        };
        let ast = parser.parse_alternation()?;
        if parser.pos != parser.src.len() {
            return Err(Box::new(parser.err("unexpected ')'")));
        }
        let nfa = glushkov(&ast);
        let (network, match_comb) = build_matcher(pattern, &nfa);
        let lut_circuit = mm_synth::synthesize(&network, mm_synth::MapOptions::for_k(k.max(2)))?;
        Ok(Self {
            pattern: pattern.to_string(),
            state_count: nfa.classes.len(),
            network,
            lut_circuit,
            match_comb,
        })
    }

    /// The source pattern.
    #[must_use]
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of NFA states (flip-flops).
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// The gate-level matcher.
    #[must_use]
    pub fn network(&self) -> &GateNetwork {
        &self.network
    }

    /// The technology-mapped matcher.
    #[must_use]
    pub fn lut_circuit(&self) -> &mm_netlist::LutCircuit {
        &self.lut_circuit
    }

    /// Consumes the engine, returning the mapped circuit (one mode of a
    /// multi-mode input).
    #[must_use]
    pub fn into_lut_circuit(self) -> mm_netlist::LutCircuit {
        self.lut_circuit
    }

    /// Streams `haystack` through the gate-level matcher and reports
    /// whether the pattern occurred (functional validation).
    ///
    /// Reads the combinational match signal: during the cycle after byte
    /// `i`, it reflects occurrences ending at byte `i` (the flip-flops
    /// were latched at the end of that cycle), so one trailing evaluation
    /// with unchanged state covers the final byte without the flush bytes
    /// themselves being able to extend a match.
    #[must_use]
    pub fn matches(&self, haystack: &[u8]) -> bool {
        let mut sim = mm_netlist::GateSimulator::new(&self.network);
        let mut hit = false;
        for &byte in haystack {
            let bits: Vec<bool> = (0..8).map(|i| (byte >> i) & 1 == 1).collect();
            sim.step(&bits);
            hit |= sim.value(self.match_comb);
        }
        // One trailing evaluation: the combinational match computed from
        // the states latched after the final byte. The dummy byte cannot
        // influence the sampled value (it only affects the next latch).
        sim.step(&[false; 8]);
        hit | sim.value(self.match_comb)
    }
}

/// Builds the one-hot NFA matcher network; returns the network and the
/// combinational match signal.
fn build_matcher(pattern: &str, nfa: &Glushkov) -> (GateNetwork, SignalId) {
    let mut net = GateNetwork::new(format!("re_{}", sanitize(pattern)));
    let ch = Word::inputs(&mut net, "ch", 8);

    // Shared nibble decoders.
    let lo_bits = Word::from_bits(ch.bits()[0..4].to_vec());
    let hi_bits = Word::from_bits(ch.bits()[4..8].to_vec());
    let lo_eq: Vec<SignalId> = (0..16).map(|v| lo_bits.equals_const(&mut net, v)).collect();
    let hi_eq: Vec<SignalId> = (0..16).map(|v| hi_bits.equals_const(&mut net, v)).collect();

    // Character-class decoders, deduplicated by class.
    let mut decoder_of: HashMap<CharClass, SignalId> = HashMap::new();
    let mut decoders: Vec<SignalId> = Vec::with_capacity(nfa.classes.len());
    for class in &nfa.classes {
        let sig = *decoder_of
            .entry(*class)
            .or_insert_with(|| build_decoder(&mut net, class, &lo_eq, &hi_eq));
        decoders.push(sig);
    }

    // One flip-flop per position; the virtual start state is constant 1
    // (unanchored matching — the engine hunts for the pattern anywhere in
    // the stream, as IDS engines do).
    let start = net.constant(true);
    let states: Vec<SignalId> = (0..nfa.classes.len()).map(|_| net.add_dff(false)).collect();

    // incoming(p) = OR of predecessor states (+ start if p ∈ first).
    let mut preds: Vec<Vec<SignalId>> = vec![Vec::new(); nfa.classes.len()];
    for &p in &nfa.first {
        preds[p as usize].push(start);
    }
    for (q, follows) in nfa.follow.iter().enumerate() {
        for &p in follows {
            preds[p as usize].push(states[q]);
        }
    }
    for (p, pred) in preds.iter().enumerate() {
        let incoming = net.or_many(pred);
        let next = net.and(incoming, decoders[p]);
        net.connect_dff(states[p], next)
            .expect("state is a flip-flop");
    }

    // match = OR of last states, registered.
    let lasts: Vec<SignalId> = nfa.last.iter().map(|&p| states[p as usize]).collect();
    let mut matched = net.or_many(&lasts);
    if nfa.nullable {
        // A nullable pattern matches trivially; fold in constant true to
        // keep semantics (degenerate case).
        let t = net.constant(true);
        matched = net.or(matched, t);
    }
    let registered = net.dff(matched, false);
    net.add_output("match", registered)
        .expect("unique output name");
    (net, matched)
}

/// Class decoder via the shared nibble comparators: group the class bytes
/// by high nibble, OR the needed low-nibble comparators per group.
fn build_decoder(
    net: &mut GateNetwork,
    class: &CharClass,
    lo_eq: &[SignalId],
    hi_eq: &[SignalId],
) -> SignalId {
    if class.is_empty() {
        return net.constant(false);
    }
    if class.len() == 256 {
        return net.constant(true);
    }
    let mut groups: Vec<SignalId> = Vec::new();
    for hi in 0..16u16 {
        let lows: Vec<usize> = (0..16usize)
            .filter(|&lo| class.contains((hi as u8) << 4 | lo as u8))
            .collect();
        if lows.is_empty() {
            continue;
        }
        if lows.len() == 16 {
            groups.push(hi_eq[hi as usize]);
        } else {
            let lo_signals: Vec<SignalId> = lows.iter().map(|&l| lo_eq[l]).collect();
            let lo_any = net.or_many(&lo_signals);
            groups.push(net.and(hi_eq[hi as usize], lo_any));
        }
    }
    net.or_many(&groups)
}

fn sanitize(p: &str) -> String {
    p.chars()
        .take(12)
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Five IDS payload patterns representative of the Bleeding Edge rule set
/// used in the paper (the original distribution is defunct; these match
/// its web-attack rules in length and structure).
#[must_use]
pub fn bleeding_edge_patterns() -> Vec<&'static str> {
    vec![
        // Unicode directory traversal against IIS, full command tail.
        r"GET /(scripts|msadc|iisadmpwd|_vti_bin)/\.\.%(c0%af|c1%1c|255c|%35c)\.\./\.\.%(c0%af|c1%1c)\.\./winnt/system32/cmd\.exe\?/c\+(dir\+c:\\\\|copy\+\\\\winnt\\\\system32\\\\cmd\.exe\+root\.exe|tftp\+-i\+[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\.[0-9]{1,3}\+GET) HTTP/1\.[01]",
        // Code-Red-style .ida overflow: long filler then %u escapes.
        r"GET /default\.ida\?[NX]{144}%u(9090|4141)%u(9090|4141)%u(8190|00c3)%u(0003|9090)%u(8b00|531b)%u(53ff|0078)=a\s+HTTP/1\.[01]",
        // awstats/cgi command injection with shell metacharacters.
        r"GET /(cgi-bin|awstats|cgi-local|scgi-bin)/awstats\.(pl|cgi)\?(configdir|logfile|pluginmode|loadplugin)=\|(echo ?;?|%20)?(id|uname -a|cat|ls -la|head -n1) ?(/etc/(passwd|shadow|hosts)|/var/log/(messages|secure)|/proc/self/environ)? ?\|(%00)? HTTP/1\.[01]",
        // Suspicious scanner user agents plus SQL injection tail.
        r"User-Agent: (sqlmap|nikto|w3af|havij|acunetix|dirbuster)/[0-9]\.[0-9]{1,2}[\r\n]+.*(union (all )?select [a-z0-9_,%]{12,} from|or 1=1( )?--|xp_cmdshell\('.{4,}'\)|information_schema\.(tables|columns)|waitfor delay '0:0:[0-9]{2}'|benchmark\([0-9]{6,},md5\()",
        // NOP sled, setuid shellcode preamble and an int 0x80 trigger.
        r"\x90{128,}(\x31\xc0\x31\xdb|\x31\xd2\x31\xc9|\xeb\x1f\x5e)(\x50|\x68....|\x6a.|\x89[\xe0-\xe6])+(\xb0\x17\xcd\x80|\xb0\x0b\xcd\x80|\xb0\x2e\xcd\x80)(\x31\xc0(\x40)?|\x89\xc3)\xcd\x80",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(p: &str) -> RegexEngine {
        RegexEngine::compile(p, 4).expect("compiles")
    }

    #[test]
    fn literal_match() {
        let e = engine("abc");
        assert!(e.matches(b"xxabcxx"));
        assert!(e.matches(b"abc"));
        assert!(!e.matches(b"ab"));
        assert!(!e.matches(b"axbxc"));
        assert_eq!(e.state_count(), 3);
    }

    #[test]
    fn alternation_and_group() {
        let e = engine("(cat|dog)s?");
        assert!(e.matches(b"hotdogs!"));
        assert!(e.matches(b"a cat"));
        assert!(!e.matches(b"cow"));
    }

    #[test]
    fn char_classes_and_ranges() {
        let e = engine("[a-c]x[0-9]");
        assert!(e.matches(b"bx7"));
        assert!(!e.matches(b"dx7"));
        assert!(!e.matches(b"bxx"));
        let neg = engine("a[^0-9]b");
        assert!(neg.matches(b"a-b"));
        assert!(!neg.matches(b"a5b"));
    }

    #[test]
    fn dot_and_escapes() {
        let e = engine(r"a.c");
        assert!(e.matches(b"abc"));
        assert!(e.matches(b"a%c"));
        assert!(!e.matches(b"a\nc"), ". excludes newline");
        let hex = engine(r"\x41\x42");
        assert!(hex.matches(b"xxABxx"));
        let d = engine(r"\d\d\d");
        assert!(d.matches(b"abc123"));
        assert!(!d.matches(b"ab12c"));
    }

    #[test]
    fn quantifiers() {
        let star = engine("ab*c");
        assert!(star.matches(b"ac"));
        assert!(star.matches(b"abbbbc"));
        let plus = engine("ab+c");
        assert!(!plus.matches(b"ac"));
        assert!(plus.matches(b"abc"));
        let opt = engine("colou?r");
        assert!(opt.matches(b"color"));
        assert!(opt.matches(b"colour"));
    }

    #[test]
    fn counted_repetition() {
        let exact = engine("a{3}b");
        assert!(exact.matches(b"aaab"));
        assert!(!exact.matches(b"aab"));
        let atleast = engine("x{2,}y");
        assert!(!atleast.matches(b"xy"));
        assert!(atleast.matches(b"xxy"));
        assert!(atleast.matches(b"xxxxxy"));
        let range = engine("z{1,3}w");
        assert!(range.matches(b"zw"));
        assert!(range.matches(b"zzzw"));
        assert!(!range.matches(b"w"));
    }

    #[test]
    fn unanchored_overlapping_stream() {
        let e = engine("abab");
        assert!(e.matches(b"xxabababxx"), "overlapping occurrence");
        assert!(!e.matches(b"abba"));
    }

    #[test]
    fn parse_errors() {
        assert!(RegexEngine::compile("(abc", 4).is_err());
        assert!(RegexEngine::compile("abc)", 4).is_err());
        assert!(RegexEngine::compile("[abc", 4).is_err());
        assert!(RegexEngine::compile("a{3,1}", 4).is_err());
        assert!(RegexEngine::compile("*a", 4).is_err());
        assert!(RegexEngine::compile(r"a\x4", 4).is_err());
        assert!(RegexEngine::compile("[z-a]", 4).is_err());
    }

    #[test]
    fn bleeding_edge_patterns_compile_and_fire() {
        let patterns = bleeding_edge_patterns();
        assert_eq!(patterns.len(), 5);
        // Spot-check pattern 0 on a crafted attack string.
        let e = engine(patterns[0]);
        assert!(e.matches(
            b"GET /scripts/..%c0%af../..%c1%1c../winnt/system32/cmd.exe?/c+dir+c:\\\\ HTTP/1.0"
        ));
        assert!(!e.matches(b"GET /index.html HTTP/1.0"));
    }

    #[test]
    fn mapped_circuit_sizes_are_reported() {
        let e = engine("ab[0-9]+cd");
        let stats = e.lut_circuit().stats();
        assert!(stats.luts > 0);
        assert!(stats.registered_luts >= e.state_count());
        assert_eq!(stats.inputs, 8);
        assert_eq!(stats.outputs, 1);
    }

    #[test]
    fn lut_circuit_matches_gate_network() {
        // The mapped circuit must behave identically to the gate network.
        let e = engine("(ab|ba)+c");
        let mut gate_sim = mm_netlist::GateSimulator::new(e.network());
        let mut lut_sim = mm_netlist::LutSimulator::new(e.lut_circuit()).unwrap();
        let stream = b"abbaabbac ababc baac";
        for &byte in stream.iter() {
            let bits: Vec<bool> = (0..8).map(|i| (byte >> i) & 1 == 1).collect();
            assert_eq!(gate_sim.step(&bits), lut_sim.step(&bits));
        }
    }
}
