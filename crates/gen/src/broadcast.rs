//! Broadcast benchmark circuits: one hub net with very high fanout.
//!
//! The paper's suites (RegExp, FIR, MCNC) have modest per-net fanout, so
//! the router's per-sink whole-net bounding boxes stay small. These
//! generators build the opposite shape — a single hub LUT fanning out to
//! dozens of consumers spread across the fabric — where a whole-net box
//! covers most of the chip and every sink search pays for it. They are
//! the workload for the Steiner-tree decomposition mode
//! (`RouterOptions::steiner_fanout` in `mm-route`) and the `high_fanout`
//! section of `BENCH_router.json`.

use mm_netlist::{BlockId, LutCircuit, TruthTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One broadcast circuit: a hub LUT driving `fanout` consumer LUTs.
///
/// * a handful of primary inputs feed the hub LUT (the broadcast
///   driver);
/// * `fanout` consumer LUTs each read the hub plus one random primary
///   input, so the hub's net has exactly `fanout` sinks after
///   consumer-site deduplication by the placer;
/// * a second "counter-pressure" chain threads through a quarter of the
///   consumers so placement cannot collapse them all onto one spot;
/// * two outputs tap the end of that chain.
///
/// Deterministic per `(name, k, fanout, seed)`; `k >= 2` and
/// `fanout >= 1` required.
///
/// # Panics
///
/// Panics on `k < 2` or `fanout == 0`.
#[must_use]
pub fn broadcast_circuit(name: &str, k: usize, fanout: usize, seed: u64) -> LutCircuit {
    assert!(k >= 2, "broadcast circuits need at least 2-LUTs");
    assert!(fanout > 0, "degenerate broadcast shape");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = LutCircuit::new(name, k);

    let inputs: Vec<BlockId> = (0..4)
        .map(|i| c.add_input(format!("i{i}")).unwrap())
        .collect();
    let hub_fanin: Vec<BlockId> = inputs.iter().copied().take(k.min(4)).collect();
    let n = hub_fanin.len();
    let hub = c
        .add_lut("hub", hub_fanin, TruthTable::from_bits(n, rng.gen()), false)
        .unwrap();

    // The broadcast: every consumer reads the hub (plus a side input so
    // truth tables stay non-trivial).
    let consumers: Vec<BlockId> = (0..fanout)
        .map(|j| {
            let side = inputs[rng.gen_range(0..inputs.len())];
            c.add_lut(
                format!("c{j}"),
                vec![hub, side],
                TruthTable::from_bits(2, rng.gen()),
                false,
            )
            .unwrap()
        })
        .collect();

    // Counter-pressure chain through every fourth consumer: gives the
    // placer a reason to spread the consumers instead of clustering them
    // around the hub, which keeps the hub net genuinely high-fanout in
    // routed distance, not just in sink count.
    let mut prev = consumers[0];
    for (j, &cons) in consumers.iter().enumerate().skip(1) {
        if j % 4 != 0 {
            continue;
        }
        prev = c
            .add_lut(
                format!("s{j}"),
                vec![prev, cons],
                TruthTable::from_bits(2, rng.gen()),
                false,
            )
            .unwrap();
    }
    c.add_output("y0", prev).unwrap();
    c.add_output("y1", *consumers.last().unwrap()).unwrap();
    c.validate().expect("generated broadcast circuit is valid");
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_fanout_matches_request() {
        let c = broadcast_circuit("b", 4, 24, 9);
        c.validate().unwrap();
        let hub = c.find("hub").unwrap();
        let fanout = c.connections().iter().filter(|(s, _)| *s == hub).count();
        assert_eq!(fanout, 24);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = broadcast_circuit("b", 4, 32, 3);
        let b = broadcast_circuit("b", 4, 32, 3);
        assert_eq!(mm_netlist::blif::to_blif(&a), mm_netlist::blif::to_blif(&b));
    }
}
