//! Adaptive-filtering benchmark: FIR filters with constant-propagated
//! coefficients.
//!
//! The paper's second experiment "combined 10 low pass and 10 high pass
//! finite impulse response (FIR) filters into 10 multi-mode circuits. The
//! non-zero coefficients were chosen randomly, after which all the
//! constants were propagated. Such a FIR filter is 3 times smaller than
//! the generic version." (§IV-A)
//!
//! [`specialized_fir`] builds a direct-form FIR with *constant*
//! coefficients: each tap multiplier becomes a canonical-signed-digit
//! (CSD) shift-add network and the AIG's constant propagation removes the
//! zero taps entirely. [`generic_fir`] keeps the coefficients as inputs —
//! the full programmable filter used for the area comparison.

use crate::words::Word;
use mm_netlist::GateNetwork;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a constant-coefficient FIR filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirSpec {
    /// Filter name (becomes the circuit name).
    pub name: String,
    /// Signed coefficients, one per tap (zeros allowed and common).
    pub taps: Vec<i32>,
    /// Input sample width in bits.
    pub data_width: usize,
}

impl FirSpec {
    /// Accumulator width needed to hold `Σ |c_i| · max_sample` plus sign.
    #[must_use]
    pub fn accumulator_width(&self) -> usize {
        let sum_abs: i64 = self.taps.iter().map(|&c| i64::from(c.abs())).sum();
        let max_mag = sum_abs.max(1) * ((1i64 << self.data_width) - 1);
        let mut bits = 1usize;
        while (1i64 << bits) <= max_mag {
            bits += 1;
        }
        bits + 1 // sign
    }

    /// Number of non-zero taps.
    #[must_use]
    pub fn nonzero_taps(&self) -> usize {
        self.taps.iter().filter(|&&c| c != 0).count()
    }

    /// Reference (software) filter response for validation: `y[n]` given
    /// the full input history `x[0..=n]`.
    #[must_use]
    pub fn reference_output(&self, history: &[u64], n: usize) -> i64 {
        let mut acc = 0i64;
        for (i, &c) in self.taps.iter().enumerate() {
            if n >= i {
                acc += i64::from(c) * history[n - i] as i64;
            }
        }
        acc
    }
}

/// Canonical signed-digit decomposition: returns `(shift, negative)`
/// digits such that `value = Σ ±2^shift` with no two adjacent digits.
#[must_use]
pub fn csd_digits(value: i32) -> Vec<(usize, bool)> {
    let mut digits = Vec::new();
    let mut n = i64::from(value);
    let mut shift = 0usize;
    while n != 0 {
        if n & 1 != 0 {
            // ±1 digit choosing the remainder that clears two bits.
            let d: i64 = 2 - (n & 3);
            digits.push((shift, d < 0));
            n -= d;
        }
        n >>= 1;
        shift += 1;
    }
    digits
}

/// Builds the direct-form FIR with constant coefficients.
///
/// Inputs `x0..x{W-1}` (unsigned sample), outputs `y0..` (two's-complement
/// accumulator). The delay line is truncated after the last non-zero tap —
/// exactly what constant propagation achieves on the generic filter.
#[must_use]
pub fn specialized_fir(spec: &FirSpec) -> GateNetwork {
    let mut net = GateNetwork::new(spec.name.clone());
    let x = Word::inputs(&mut net, "x", spec.data_width);
    let acc_w = spec.accumulator_width();

    // Delay line up to the last non-zero tap.
    let last_used = spec.taps.iter().rposition(|&c| c != 0).unwrap_or(0);
    let mut delayed: Vec<Word> = Vec::with_capacity(last_used + 1);
    let mut current = x;
    for i in 0..=last_used {
        if i > 0 {
            current = current.registered(&mut net, false);
        }
        delayed.push(current.clone());
    }

    // Sum of CSD partial products.
    let mut acc = Word::constant(&mut net, 0, acc_w);
    for (i, &c) in spec.taps.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let xi = delayed[i].resize(&mut net, acc_w, false);
        for (shift, negative) in csd_digits(c) {
            let term = xi
                .shifted_left(&mut net, shift)
                .resize(&mut net, acc_w, false);
            acc = if negative {
                acc.sub(&mut net, &term).0
            } else {
                acc.add(&mut net, &term).0
            };
        }
    }

    let y = acc.registered(&mut net, false);
    y.export(&mut net, "y");
    net
}

/// Builds the generic (programmable-coefficient) direct-form FIR: the
/// coefficients are two's-complement inputs `c<i>_<bit>`. This is the
/// baseline for the paper's "3 times smaller" area claim.
#[must_use]
pub fn generic_fir(name: &str, taps: usize, data_width: usize, coef_width: usize) -> GateNetwork {
    let mut net = GateNetwork::new(name.to_string());
    let x = Word::inputs(&mut net, "x", data_width);
    let coefs: Vec<Word> = (0..taps)
        .map(|i| Word::inputs(&mut net, &format!("c{i}_"), coef_width))
        .collect();
    // Worst-case accumulator width.
    let acc_w = data_width + coef_width + taps.next_power_of_two().trailing_zeros() as usize + 1;

    let mut delayed = x;
    let mut acc = Word::constant(&mut net, 0, acc_w);
    for (i, coef) in coefs.iter().enumerate() {
        if i > 0 {
            delayed = delayed.registered(&mut net, false);
        }
        let xi = delayed.resize(&mut net, acc_w, false);
        // Signed multiply: sum of gated shifts; the coefficient MSB is the
        // sign digit (subtract).
        for bit in 0..coef_width {
            let term = xi
                .shifted_left(&mut net, bit)
                .resize(&mut net, acc_w, false)
                .gated(&mut net, coef.bit(bit));
            acc = if bit == coef_width - 1 {
                acc.sub(&mut net, &term).0
            } else {
                acc.add(&mut net, &term).0
            };
        }
    }
    let y = acc.registered(&mut net, false);
    y.export(&mut net, "y");
    net
}

/// Randomly generated low-pass taps: a symmetric positive main lobe, with
/// `nonzero` taps set (paper: "the non-zero coefficients were chosen
/// randomly").
#[must_use]
pub fn lowpass_taps(tap_count: usize, nonzero: usize, max_magnitude: i32, seed: u64) -> Vec<i32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut taps = vec![0i32; tap_count];
    let mut positions = pick_symmetric_positions(tap_count, nonzero, &mut rng);
    positions.sort_unstable();
    let centre = (tap_count as f64 - 1.0) / 2.0;
    for &p in &positions {
        // Larger magnitudes near the centre, always positive: a low-pass
        // main-lobe shape.
        let dist = ((p as f64 - centre).abs() / centre.max(1.0)).min(1.0);
        let scale = 1.0 - 0.7 * dist;
        let magnitude = rng.gen_range(1..=max_magnitude.max(1));
        taps[p] = ((f64::from(magnitude) * scale).round() as i32).max(1);
    }
    taps
}

/// Randomly generated high-pass taps: the low-pass lobe modulated by
/// `(-1)^n` (spectral inversion).
#[must_use]
pub fn highpass_taps(tap_count: usize, nonzero: usize, max_magnitude: i32, seed: u64) -> Vec<i32> {
    let mut taps = lowpass_taps(tap_count, nonzero, max_magnitude, seed ^ 0x9e37_79b9);
    for (i, t) in taps.iter_mut().enumerate() {
        if i % 2 == 1 {
            *t = -*t;
        }
    }
    taps
}

fn pick_symmetric_positions(tap_count: usize, nonzero: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut positions: Vec<usize> = Vec::new();
    let half = tap_count / 2;
    while positions.len() < nonzero.min(tap_count) {
        let p = rng.gen_range(0..=half.min(tap_count - 1));
        let mirror = tap_count - 1 - p;
        if !positions.contains(&p) {
            positions.push(p);
            if positions.len() < nonzero && !positions.contains(&mirror) && mirror != p {
                positions.push(mirror);
            }
        }
    }
    positions.truncate(nonzero);
    positions
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_netlist::GateSimulator;

    fn run_filter(net: &GateNetwork, spec: &FirSpec, samples: &[u64]) -> Vec<i64> {
        let mut sim = GateSimulator::new(net);
        let acc_w = spec.accumulator_width();
        let mut out = Vec::new();
        for &s in samples {
            let bits: Vec<bool> = (0..spec.data_width).map(|i| (s >> i) & 1 == 1).collect();
            let y = sim.step(&bits);
            // Outputs are registered: result of the *previous* cycle.
            out.push(sign_extend(&y, acc_w));
        }
        // One more cycle to flush the output register.
        let y = sim.step(&vec![false; spec.data_width]);
        out.push(sign_extend(&y, acc_w));
        out.remove(0);
        out
    }

    fn sign_extend(bits: &[bool], width: usize) -> i64 {
        let mut v = 0i64;
        for (i, &b) in bits.iter().enumerate().take(width) {
            if b {
                v |= 1 << i;
            }
        }
        if bits[width - 1] {
            v -= 1 << width;
        }
        v
    }

    #[test]
    fn csd_reconstructs_values() {
        for v in [-1000i32, -255, -7, -1, 0, 1, 3, 5, 7, 23, 100, 255, 683] {
            let digits = csd_digits(v);
            let sum: i64 = digits
                .iter()
                .map(|&(s, neg)| {
                    let m = 1i64 << s;
                    if neg {
                        -m
                    } else {
                        m
                    }
                })
                .sum();
            assert_eq!(sum, i64::from(v), "value {v}");
            // CSD property: no two adjacent non-zero digits.
            let mut shifts: Vec<usize> = digits.iter().map(|&(s, _)| s).collect();
            shifts.sort_unstable();
            for w in shifts.windows(2) {
                assert!(w[1] > w[0] + 1, "adjacent digits in CSD of {v}");
            }
        }
    }

    #[test]
    fn specialized_fir_matches_reference() {
        let spec = FirSpec {
            name: "t".into(),
            taps: vec![3, 0, -5, 0, 0, 7, 1],
            data_width: 6,
        };
        let net = specialized_fir(&spec);
        let samples: Vec<u64> = vec![1, 5, 63, 0, 17, 42, 8, 9, 60, 2, 11, 33];
        let hw = run_filter(&net, &spec, &samples);
        for (n, &y) in hw.iter().enumerate() {
            assert_eq!(y, spec.reference_output(&samples, n), "sample {n}");
        }
    }

    #[test]
    fn generic_fir_matches_reference_when_programmed() {
        // Program the generic filter's coefficient inputs with constants
        // and compare against the same reference.
        let taps = vec![2i32, -3, 0, 5];
        let (data_w, coef_w) = (4usize, 5usize);
        let net = generic_fir("g", taps.len(), data_w, coef_w);
        let mut sim = GateSimulator::new(&net);
        let samples: Vec<u64> = vec![3, 15, 7, 0, 12, 1, 9, 9, 4];
        let spec = FirSpec {
            name: "ref".into(),
            taps: taps.clone(),
            data_width: data_w,
        };
        let acc_w = data_w + coef_w + 2 + 1;
        let mut outs = Vec::new();
        for &s in &samples {
            let mut bits: Vec<bool> = (0..data_w).map(|i| (s >> i) & 1 == 1).collect();
            for &c in &taps {
                let enc = (c as i64 & ((1 << coef_w) - 1)) as u64;
                bits.extend((0..coef_w).map(|i| (enc >> i) & 1 == 1));
            }
            let y = sim.step(&bits);
            outs.push(sign_extend(&y, acc_w));
        }
        let mut flush: Vec<bool> = vec![false; data_w];
        for &c in &taps {
            let enc = (c as i64 & ((1 << coef_w) - 1)) as u64;
            flush.extend((0..coef_w).map(|i| (enc >> i) & 1 == 1));
        }
        outs.push(sign_extend(&sim.step(&flush), acc_w));
        outs.remove(0);
        for (n, &y) in outs.iter().enumerate() {
            assert_eq!(y, spec.reference_output(&samples, n), "sample {n}");
        }
    }

    #[test]
    fn accumulator_width_bounds_outputs() {
        let spec = FirSpec {
            name: "w".into(),
            taps: vec![127, 127, 127],
            data_width: 8,
        };
        // 3 * 127 * 255 = 97155 < 2^17; +sign → 18 bits.
        assert_eq!(spec.accumulator_width(), 18);
    }

    #[test]
    fn tap_generators_have_requested_sparsity() {
        for seed in 0..5 {
            let lp = lowpass_taps(20, 6, 63, seed);
            assert_eq!(lp.len(), 20);
            assert_eq!(lp.iter().filter(|&&c| c != 0).count(), 6, "seed {seed}");
            assert!(lp.iter().all(|&c| c >= 0), "low-pass taps are positive");
            let hp = highpass_taps(20, 6, 63, seed);
            assert_eq!(hp.iter().filter(|&&c| c != 0).count(), 6);
            assert!(
                hp.iter()
                    .enumerate()
                    .all(|(i, &c)| c == 0 || (i % 2 == 0) == (c > 0)),
                "high-pass signs alternate: {hp:?}"
            );
        }
    }

    #[test]
    fn specialization_shrinks_mapped_circuit() {
        // The headline property: constants propagate, zero taps vanish.
        let taps = lowpass_taps(12, 4, 31, 7);
        let spec = FirSpec {
            name: "s".into(),
            taps: taps.clone(),
            data_width: 6,
        };
        let special =
            mm_synth::synthesize(&specialized_fir(&spec), mm_synth::MapOptions::default()).unwrap();
        let generic =
            mm_synth::synthesize(&generic_fir("g", 12, 6, 6), mm_synth::MapOptions::default())
                .unwrap();
        assert!(
            special.lut_count() * 2 < generic.lut_count(),
            "specialized {} vs generic {}",
            special.lut_count(),
            generic.lut_count()
        );
    }
}
