//! Multi-mode benchmark generators.
//!
//! Recreates the paper's three experiments (§IV-A):
//!
//! * [`regexp_suite`] — five regular-expression matching engines compiled
//!   from IDS payload patterns ([`regex`]); all 10 pairs of two engines
//!   form the `RegExp` multi-mode circuits.
//! * [`fir_suite`] — ten low-pass and ten high-pass constant-coefficient
//!   FIR filters ([`fir`]); filter `i` of each family forms multi-mode
//!   pair `i`.
//! * [`mcnc_suite`] — five MCNC-class general circuits ([`mcnc`]); all 10
//!   pairs form the `MCNC` multi-mode circuits.
//!
//! All generators are deterministic (seeded) and return circuits already
//! technology-mapped to k-input LUTs.
//!
//! Beyond the paper's pairs, the suites combine into **N-mode** problems:
//! [`all_tuples`] enumerates every ascending combination of `m` circuits
//! (RegExp/MCNC triples, quadruples, …) and [`fir_mode_tuples`]
//! generalizes the low-pass/high-pass pairing to `m` interleaved filters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broadcast;
pub mod deeplogic;
pub mod fir;
pub mod mcnc;
pub mod regex;
pub mod words;

use mm_netlist::LutCircuit;
use mm_synth::MapOptions;

/// A deterministic random k=4 LUT circuit — the seeded shape the repo's
/// engine/serve/bench tests and benchmarks all share (byte-identical per
/// seed, so test fixtures and committed BENCH workloads stay stable).
///
/// # Panics
///
/// Never for sane shapes (`n_inputs >= 2`).
#[must_use]
pub fn seeded_test_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
    use mm_netlist::TruthTable;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = LutCircuit::new(name, 4);
    let mut drivers: Vec<mm_netlist::BlockId> = (0..n_inputs)
        .map(|i| c.add_input(format!("i{i}")).unwrap())
        .collect();
    for j in 0..n_luts {
        let fanin = rng.gen_range(2..=4.min(drivers.len()));
        let mut ins = Vec::new();
        while ins.len() < fanin {
            let d = drivers[rng.gen_range(0..drivers.len())];
            if !ins.contains(&d) {
                ins.push(d);
            }
        }
        let tt = TruthTable::from_bits(ins.len(), rng.gen());
        let id = c
            .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.2))
            .unwrap();
        drivers.push(id);
    }
    for t in 0..2 {
        let d = drivers[drivers.len() - 1 - t];
        c.add_output(format!("o{t}"), d).unwrap();
    }
    c
}

/// Number of circuits in the RegExp and MCNC suites.
pub const SUITE_SIZE: usize = 5;
/// Number of filters per FIR family.
pub const FIR_FAMILY_SIZE: usize = 10;

/// Compiles the five regular-expression engines, mapped to k-LUTs.
///
/// # Panics
///
/// Panics only if a built-in pattern fails to compile (a bug).
#[must_use]
pub fn regexp_suite(k: usize) -> Vec<LutCircuit> {
    regex::bleeding_edge_patterns()
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let c = regex::RegexEngine::compile(p, k)
                .expect("built-in pattern compiles")
                .into_lut_circuit();
            rename(c, &format!("regexp{i}"))
        })
        .collect()
}

/// Generates the ten low-pass + ten high-pass specialised FIR filters
/// (indices `0..10` low-pass, `10..20` high-pass), mapped to k-LUTs.
///
/// # Panics
///
/// Panics only on internal synthesis errors (a bug).
#[must_use]
pub fn fir_suite(k: usize) -> Vec<LutCircuit> {
    let mut out = Vec::with_capacity(2 * FIR_FAMILY_SIZE);
    for i in 0..FIR_FAMILY_SIZE {
        let spec = fir::FirSpec {
            name: format!("fir_lp{i}"),
            taps: fir::lowpass_taps(14, 7, 7, 1000 + i as u64),
            data_width: 8,
        };
        out.push(map(&fir::specialized_fir(&spec), k));
    }
    for i in 0..FIR_FAMILY_SIZE {
        let spec = fir::FirSpec {
            name: format!("fir_hp{i}"),
            taps: fir::highpass_taps(14, 7, 7, 2000 + i as u64),
            data_width: 8,
        };
        out.push(map(&fir::specialized_fir(&spec), k));
    }
    out
}

/// The generic (programmable) FIR used as the area baseline: same tap
/// count and widths as the specialised filters.
///
/// # Panics
///
/// Panics only on internal synthesis errors (a bug).
#[must_use]
pub fn fir_generic_reference(k: usize) -> LutCircuit {
    map(&fir::generic_fir("fir_generic", 14, 8, 4), k)
}

/// Generates the five MCNC-class circuits, mapped to k-LUTs.
///
/// # Panics
///
/// Panics only on internal synthesis errors (a bug).
#[must_use]
pub fn mcnc_suite(k: usize) -> Vec<LutCircuit> {
    vec![
        map(&mcnc::alu("alu24", 24), k),
        map(&mcnc::pla("plax", 14, 20, 8, 5, 0xbeef), k),
        map(&mcnc::multiplier("mult10", 10), k),
        map(&mcnc::crc("crc32p48", 0xEDB8_8320, 32, 48), k),
        map(&mcnc::interrupt_controller("intc32", 32), k),
    ]
}

/// Generates the five deep-logic circuits — serial-multiplier-like
/// register-to-register chains wrapped in shallow noise logic
/// ([`deeplogic::deep_chain_circuit`]) — where wirelength-driven and
/// timing-driven placements visibly diverge. Sized well below the
/// paper's suites so timing sweeps stay fast.
///
/// # Panics
///
/// Panics on `k < 2`.
#[must_use]
pub fn deeplogic_suite(k: usize) -> Vec<LutCircuit> {
    (0..SUITE_SIZE)
        .map(|i| {
            deeplogic::deep_chain_circuit(
                &format!("deep{i}"),
                k,
                5 + i,      // registered inputs
                2 + i % 3,  // chains
                10 + 2 * i, // chain depth
                24 + 6 * i, // shallow noise LUTs
                0xdee9_1057 + i as u64,
            )
        })
        .collect()
}

/// Fanout of circuit `i` of the broadcast suite.
#[must_use]
pub const fn broadcast_fanout(i: usize) -> usize {
    [16, 32, 64, 96, 128][i % SUITE_SIZE]
}

/// Generates the five broadcast circuits — a single hub LUT fanning out
/// to 16/32/64/96/128 consumers ([`broadcast::broadcast_circuit`]) — the
/// high-fanout workload for the router's Steiner-tree decomposition mode
/// and the `high_fanout` section of `BENCH_router.json`.
///
/// # Panics
///
/// Panics on `k < 2`.
#[must_use]
pub fn broadcast_suite(k: usize) -> Vec<LutCircuit> {
    (0..SUITE_SIZE)
        .map(|i| {
            broadcast::broadcast_circuit(
                &format!("bcast{i}"),
                k,
                broadcast_fanout(i),
                0xb04d_ca57 + i as u64,
            )
        })
        .collect()
}

/// All unordered pairs `(i, j)` with `i < j < n` — the paper's "all
/// possible combinations of 2 circuits out of the 5" (10 pairs for 5).
#[must_use]
pub fn all_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(n * n / 2);
    for i in 0..n {
        for j in (i + 1)..n {
            pairs.push((i, j));
        }
    }
    pairs
}

/// All ascending `m`-element combinations of `0..n`, in lexicographic
/// order — the N-mode generalization of [`all_pairs`] (`m == 2` yields
/// the same pairs in the same order). `m == 0` or `m > n` yields no
/// tuples.
#[must_use]
pub fn all_tuples(n: usize, m: usize) -> Vec<Vec<usize>> {
    if m == 0 || m > n {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut current: Vec<usize> = (0..m).collect();
    loop {
        out.push(current.clone());
        // Advance the rightmost index that can still move.
        let mut i = m;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if current[i] + (m - i) < n {
                break;
            }
        }
        current[i] += 1;
        for j in i + 1..m {
            current[j] = current[j - 1] + 1;
        }
    }
}

/// The FIR `m`-mode tuples (indices into [`fir_suite`]'s output): tuple
/// `i` interleaves the low-pass and high-pass families starting at
/// filter `i`, walking the family index with wrap-around —
/// `[lp i, hp i, lp i+1, hp i+1, …]` truncated to `m` modes. `m == 2`
/// reproduces the paper's pairing (low-pass `i` with high-pass `i`);
/// there are always
/// [`FIR_FAMILY_SIZE`] tuples. `m` is capped at `2 * FIR_FAMILY_SIZE`
/// (beyond that a tuple would repeat a filter).
#[must_use]
pub fn fir_mode_tuples(m: usize) -> Vec<Vec<usize>> {
    let m = m.min(2 * FIR_FAMILY_SIZE);
    if m == 0 {
        return Vec::new();
    }
    (0..FIR_FAMILY_SIZE)
        .map(|i| {
            (0..m)
                .map(|j| {
                    let family = (j % 2) * FIR_FAMILY_SIZE;
                    family + (i + j / 2) % FIR_FAMILY_SIZE
                })
                .collect()
        })
        .collect()
}

fn map(net: &mm_netlist::GateNetwork, k: usize) -> LutCircuit {
    mm_synth::synthesize(net, MapOptions::for_k(k)).expect("generator circuits synthesize")
}

/// Rebuilds a circuit under a new model name (generators produce
/// pattern-derived names; suites use stable ones).
fn rename(circuit: LutCircuit, name: &str) -> LutCircuit {
    let mut out = LutCircuit::new(name, circuit.k());
    let mut remap = std::collections::HashMap::new();
    // Two-phase copy (registered feedback may point forward).
    for id in circuit.block_ids() {
        let block = circuit.block(id);
        match block.kind() {
            mm_netlist::BlockKind::InputPad => {
                remap.insert(id, out.add_input(block.name().to_string()).expect("copy"));
            }
            mm_netlist::BlockKind::Lut {
                registered, init, ..
            } => {
                let nid = out
                    .add_lut(
                        block.name().to_string(),
                        vec![],
                        mm_netlist::TruthTable::const0(0),
                        *registered,
                    )
                    .expect("copy");
                if *registered {
                    out.set_init(nid, *init).expect("registered");
                }
                remap.insert(id, nid);
            }
            mm_netlist::BlockKind::OutputPad { .. } => {}
        }
    }
    for id in circuit.block_ids() {
        let block = circuit.block(id);
        match block.kind() {
            mm_netlist::BlockKind::Lut { inputs, truth, .. } => {
                let fanin: Vec<_> = inputs.iter().map(|s| remap[s]).collect();
                out.set_lut(remap[&id], fanin, *truth).expect("copy");
            }
            mm_netlist::BlockKind::OutputPad { source, port } => {
                out.add_output_port(block.name().to_string(), port.clone(), remap[source])
                    .expect("copy");
            }
            mm_netlist::BlockKind::InputPad => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_enumeration() {
        let p = all_pairs(5);
        assert_eq!(p.len(), 10);
        assert_eq!(p[0], (0, 1));
        assert_eq!(p[9], (3, 4));
        assert!(p.iter().all(|&(i, j)| i < j && j < 5));
        assert_eq!(fir_mode_tuples(2).len(), 10);
        assert_eq!(fir_mode_tuples(2)[3], vec![3, 13]);
    }

    #[test]
    fn tuples_generalize_pairs() {
        // m == 2 reproduces all_pairs exactly, order included.
        let pairs: Vec<Vec<usize>> = all_pairs(5).into_iter().map(|(i, j)| vec![i, j]).collect();
        assert_eq!(all_tuples(5, 2), pairs);
        // C(5,3) = 10, C(5,4) = 5; tuples are ascending and in range.
        let triples = all_tuples(5, 3);
        assert_eq!(triples.len(), 10);
        assert_eq!(triples[0], vec![0, 1, 2]);
        assert_eq!(triples[9], vec![2, 3, 4]);
        for t in &triples {
            assert!(t.windows(2).all(|w| w[0] < w[1]) && t[2] < 5, "{t:?}");
        }
        assert_eq!(all_tuples(5, 4).len(), 5);
        assert_eq!(all_tuples(5, 5), vec![vec![0, 1, 2, 3, 4]]);
        assert!(all_tuples(5, 6).is_empty());
        assert!(all_tuples(5, 0).is_empty());
    }

    #[test]
    fn fir_mode_tuples_of_two_pair_each_low_pass_with_its_high_pass() {
        let tuples = fir_mode_tuples(2);
        let pairs: Vec<Vec<usize>> = (0..FIR_FAMILY_SIZE)
            .map(|i| vec![i, FIR_FAMILY_SIZE + i])
            .collect();
        assert_eq!(
            tuples, pairs,
            "the paper's pairing: low-pass i with high-pass i"
        );
    }

    #[test]
    fn fir_mode_tuples_interleave_families() {
        let triples = fir_mode_tuples(3);
        assert_eq!(triples.len(), FIR_FAMILY_SIZE);
        // Tuple i: lp i, hp i, lp i+1 (wrapping).
        assert_eq!(triples[0], vec![0, 10, 1]);
        assert_eq!(triples[9], vec![9, 19, 0]);
        let quads = fir_mode_tuples(4);
        assert_eq!(quads[4], vec![4, 14, 5, 15]);
        for t in &quads {
            let mut seen = t.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), 4, "no repeated filter in {t:?}");
            assert!(t.iter().all(|&i| i < 2 * FIR_FAMILY_SIZE));
        }
        // Saturating cap: every filter exactly once.
        assert_eq!(fir_mode_tuples(99)[0].len(), 2 * FIR_FAMILY_SIZE);
        assert!(fir_mode_tuples(0).is_empty());
    }

    #[test]
    fn regexp_suite_sizes_in_band() {
        let suite = regexp_suite(4);
        assert_eq!(suite.len(), SUITE_SIZE);
        for c in &suite {
            let n = c.lut_count();
            assert!(
                (180..=320).contains(&n),
                "{}: {n} LUTs out of calibration band",
                c.name()
            );
            c.validate().unwrap();
        }
    }

    #[test]
    fn fir_suite_sizes_in_band() {
        let suite = fir_suite(4);
        assert_eq!(suite.len(), 20);
        for c in &suite {
            let n = c.lut_count();
            assert!(
                (200..=420).contains(&n),
                "{}: {n} LUTs out of calibration band",
                c.name()
            );
            c.validate().unwrap();
        }
    }

    #[test]
    fn mcnc_suite_sizes_in_band() {
        let suite = mcnc_suite(4);
        assert_eq!(suite.len(), SUITE_SIZE);
        for c in &suite {
            let n = c.lut_count();
            assert!(
                (250..=450).contains(&n),
                "{}: {n} LUTs out of calibration band",
                c.name()
            );
            c.validate().unwrap();
        }
    }

    #[test]
    fn generic_fir_larger_than_specialised() {
        let generic = fir_generic_reference(4).lut_count();
        let suite = fir_suite(4);
        let avg: usize = suite.iter().map(LutCircuit::lut_count).sum::<usize>() / suite.len();
        assert!(
            generic > 2 * avg,
            "generic {generic} vs avg specialised {avg}"
        );
    }

    #[test]
    fn deeplogic_suite_shape() {
        let suite = deeplogic_suite(4);
        assert_eq!(suite.len(), SUITE_SIZE);
        for c in &suite {
            c.validate().unwrap();
            let n = c.lut_count();
            assert!((40..=160).contains(&n), "{}: {n} LUTs", c.name());
        }
        let again = deeplogic_suite(4);
        for (x, y) in suite.iter().zip(&again) {
            assert_eq!(mm_netlist::blif::to_blif(x), mm_netlist::blif::to_blif(y));
        }
    }

    #[test]
    fn broadcast_suite_shape() {
        let suite = broadcast_suite(4);
        assert_eq!(suite.len(), SUITE_SIZE);
        for (i, c) in suite.iter().enumerate() {
            c.validate().unwrap();
            let hub = c.find("hub").unwrap();
            let fanout = c.connections().iter().filter(|(s, _)| *s == hub).count();
            assert_eq!(fanout, broadcast_fanout(i), "{}", c.name());
        }
        let again = broadcast_suite(4);
        for (x, y) in suite.iter().zip(&again) {
            assert_eq!(mm_netlist::blif::to_blif(x), mm_netlist::blif::to_blif(y));
        }
    }

    #[test]
    fn suites_are_deterministic() {
        let a = mcnc_suite(4);
        let b = mcnc_suite(4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(mm_netlist::blif::to_blif(x), mm_netlist::blif::to_blif(y));
        }
    }

    #[test]
    fn rename_preserves_structure() {
        let suite = regexp_suite(4);
        assert_eq!(suite[0].name(), "regexp0");
        assert!(suite[0].lut_count() > 0);
    }
}
