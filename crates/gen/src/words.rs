//! Word-level construction helpers over [`GateNetwork`]s.
//!
//! The benchmark generators build datapaths (FIR filters, ALUs,
//! multipliers) gate by gate; this module provides little-endian
//! bit-vector words with ripple-carry arithmetic so the generators read
//! like RTL.

use mm_netlist::{GateNetwork, SignalId};

/// A little-endian bit vector (`bits[0]` is the LSB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    bits: Vec<SignalId>,
}

impl Word {
    /// Wraps existing signals (LSB first).
    #[must_use]
    pub fn from_bits(bits: Vec<SignalId>) -> Self {
        Self { bits }
    }

    /// A constant word of the given width.
    #[must_use]
    pub fn constant(net: &mut GateNetwork, value: u64, width: usize) -> Self {
        let bits = (0..width)
            .map(|i| net.constant((value >> i) & 1 == 1))
            .collect();
        Self { bits }
    }

    /// Fresh named inputs `prefix0..prefixN`.
    ///
    /// # Panics
    ///
    /// Panics if an input name collides (generator bug).
    #[must_use]
    pub fn inputs(net: &mut GateNetwork, prefix: &str, width: usize) -> Self {
        let bits = (0..width)
            .map(|i| {
                net.add_input(format!("{prefix}{i}"))
                    .expect("generator input names are unique")
            })
            .collect();
        Self { bits }
    }

    /// Width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// The bit signals, LSB first.
    #[must_use]
    pub fn bits(&self) -> &[SignalId] {
        &self.bits
    }

    /// Bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bit(&self, i: usize) -> SignalId {
        self.bits[i]
    }

    /// Exports the word as outputs `prefix0..prefixN`.
    ///
    /// # Panics
    ///
    /// Panics if an output name collides (generator bug).
    pub fn export(&self, net: &mut GateNetwork, prefix: &str) {
        for (i, &b) in self.bits.iter().enumerate() {
            net.add_output(format!("{prefix}{i}"), b)
                .expect("generator output names are unique");
        }
    }

    /// Zero- or sign-extends / truncates to `width`.
    #[must_use]
    pub fn resize(&self, net: &mut GateNetwork, width: usize, signed: bool) -> Word {
        let mut bits = self.bits.clone();
        if bits.len() > width {
            bits.truncate(width);
        } else {
            let fill = if signed && !bits.is_empty() {
                *bits.last().expect("nonempty")
            } else {
                net.constant(false)
            };
            while bits.len() < width {
                bits.push(fill);
            }
        }
        Word { bits }
    }

    /// Logical shift left by a constant (drops carried-out bits, keeps
    /// width + shift).
    #[must_use]
    pub fn shifted_left(&self, net: &mut GateNetwork, shift: usize) -> Word {
        let mut bits: Vec<SignalId> = (0..shift).map(|_| net.constant(false)).collect();
        bits.extend_from_slice(&self.bits);
        Word { bits }
    }

    /// Bitwise NOT.
    #[must_use]
    pub fn not(&self, net: &mut GateNetwork) -> Word {
        Word {
            bits: self.bits.iter().map(|&b| net.not(b)).collect(),
        }
    }

    /// Bitwise AND with a single control bit (masking).
    #[must_use]
    pub fn gated(&self, net: &mut GateNetwork, enable: SignalId) -> Word {
        Word {
            bits: self.bits.iter().map(|&b| net.and(b, enable)).collect(),
        }
    }

    /// Bitwise binary op.
    fn zip(
        &self,
        net: &mut GateNetwork,
        other: &Word,
        f: impl Fn(&mut GateNetwork, SignalId, SignalId) -> SignalId,
    ) -> Word {
        assert_eq!(self.width(), other.width(), "word width mismatch");
        Word {
            bits: self
                .bits
                .iter()
                .zip(&other.bits)
                .map(|(&a, &b)| f(net, a, b))
                .collect(),
        }
    }

    /// Bitwise AND.
    #[must_use]
    pub fn and(&self, net: &mut GateNetwork, other: &Word) -> Word {
        self.zip(net, other, |n, a, b| n.and(a, b))
    }

    /// Bitwise OR.
    #[must_use]
    pub fn or(&self, net: &mut GateNetwork, other: &Word) -> Word {
        self.zip(net, other, |n, a, b| n.or(a, b))
    }

    /// Bitwise XOR.
    #[must_use]
    pub fn xor(&self, net: &mut GateNetwork, other: &Word) -> Word {
        self.zip(net, other, |n, a, b| n.xor(a, b))
    }

    /// Ripple-carry addition (result has the same width; carry-out
    /// returned separately).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn add(&self, net: &mut GateNetwork, other: &Word) -> (Word, SignalId) {
        assert_eq!(self.width(), other.width(), "word width mismatch");
        let mut carry = net.constant(false);
        let mut bits = Vec::with_capacity(self.width());
        for (&a, &b) in self.bits.iter().zip(&other.bits) {
            let axb = net.xor(a, b);
            let sum = net.xor(axb, carry);
            let g1 = net.and(a, b);
            let g2 = net.and(axb, carry);
            carry = net.or(g1, g2);
            bits.push(sum);
        }
        (Word { bits }, carry)
    }

    /// Two's-complement subtraction `self - other` (same width; borrow-free
    /// flag = carry-out).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn sub(&self, net: &mut GateNetwork, other: &Word) -> (Word, SignalId) {
        assert_eq!(self.width(), other.width(), "word width mismatch");
        let mut carry = net.constant(true);
        let mut bits = Vec::with_capacity(self.width());
        for (&a, &b) in self.bits.iter().zip(&other.bits) {
            let nb = net.not(b);
            let axb = net.xor(a, nb);
            let sum = net.xor(axb, carry);
            let g1 = net.and(a, nb);
            let g2 = net.and(axb, carry);
            carry = net.or(g1, g2);
            bits.push(sum);
        }
        (Word { bits }, carry)
    }

    /// Word-level 2:1 multiplexer `sel ? self : other`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    #[must_use]
    pub fn mux(&self, net: &mut GateNetwork, other: &Word, sel: SignalId) -> Word {
        self.zip(net, other, |n, a, b| n.mux(sel, a, b))
    }

    /// Registers every bit through a D flip-flop.
    #[must_use]
    pub fn registered(&self, net: &mut GateNetwork, init: bool) -> Word {
        Word {
            bits: self.bits.iter().map(|&b| net.dff(b, init)).collect(),
        }
    }

    /// Equality comparator against a constant.
    #[must_use]
    pub fn equals_const(&self, net: &mut GateNetwork, value: u64) -> SignalId {
        let lits: Vec<SignalId> = self
            .bits
            .iter()
            .enumerate()
            .map(|(i, &b)| if (value >> i) & 1 == 1 { b } else { net.not(b) })
            .collect();
        net.and_many(&lits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_netlist::GateSimulator;

    fn eval_word(out: &[bool]) -> u64 {
        out.iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    fn bits_of(v: u64, w: usize) -> Vec<bool> {
        (0..w).map(|i| (v >> i) & 1 == 1).collect()
    }

    #[test]
    fn adder_exhaustive_4bit() {
        let mut net = GateNetwork::new("add");
        let a = Word::inputs(&mut net, "a", 4);
        let b = Word::inputs(&mut net, "b", 4);
        let (s, c) = a.add(&mut net, &b);
        s.export(&mut net, "s");
        net.add_output("c", c).unwrap();
        let mut sim = GateSimulator::new(&net);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut ins = bits_of(x, 4);
                ins.extend(bits_of(y, 4));
                let out = sim.step(&ins);
                let sum = eval_word(&out[..4]);
                let carry = out[4];
                assert_eq!(sum, (x + y) & 0xf, "{x}+{y}");
                assert_eq!(carry, x + y > 15, "{x}+{y}");
            }
        }
    }

    #[test]
    fn subtractor_exhaustive_4bit() {
        let mut net = GateNetwork::new("sub");
        let a = Word::inputs(&mut net, "a", 4);
        let b = Word::inputs(&mut net, "b", 4);
        let (d, no_borrow) = a.sub(&mut net, &b);
        d.export(&mut net, "d");
        net.add_output("nb", no_borrow).unwrap();
        let mut sim = GateSimulator::new(&net);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut ins = bits_of(x, 4);
                ins.extend(bits_of(y, 4));
                let out = sim.step(&ins);
                assert_eq!(eval_word(&out[..4]), x.wrapping_sub(y) & 0xf, "{x}-{y}");
                assert_eq!(out[4], x >= y, "{x}-{y}");
            }
        }
    }

    #[test]
    fn constant_and_shift() {
        let mut net = GateNetwork::new("c");
        let k = Word::constant(&mut net, 0b1011, 4);
        let sh = k.shifted_left(&mut net, 2);
        assert_eq!(sh.width(), 6);
        sh.export(&mut net, "o");
        let mut sim = GateSimulator::new(&net);
        let out = sim.step(&[]);
        assert_eq!(eval_word(&out), 0b101100);
    }

    #[test]
    fn resize_signed_and_unsigned() {
        let mut net = GateNetwork::new("r");
        let k = Word::constant(&mut net, 0b100, 3); // -4 signed
        let u = k.resize(&mut net, 5, false);
        let s = k.resize(&mut net, 5, true);
        let t = k.resize(&mut net, 2, false);
        u.export(&mut net, "u");
        s.export(&mut net, "s");
        t.export(&mut net, "t");
        let mut sim = GateSimulator::new(&net);
        let out = sim.step(&[]);
        assert_eq!(eval_word(&out[..5]), 0b00100);
        assert_eq!(eval_word(&out[5..10]), 0b11100);
        assert_eq!(eval_word(&out[10..]), 0b00);
    }

    #[test]
    fn mux_and_gate() {
        let mut net = GateNetwork::new("m");
        let sel = net.add_input("sel").unwrap();
        let a = Word::constant(&mut net, 0b1010, 4);
        let b = Word::constant(&mut net, 0b0101, 4);
        let m = a.mux(&mut net, &b, sel);
        let g = a.gated(&mut net, sel);
        m.export(&mut net, "m");
        g.export(&mut net, "g");
        let mut sim = GateSimulator::new(&net);
        let out0 = sim.step(&[false]);
        assert_eq!(eval_word(&out0[..4]), 0b0101);
        assert_eq!(eval_word(&out0[4..]), 0);
        let out1 = sim.step(&[true]);
        assert_eq!(eval_word(&out1[..4]), 0b1010);
        assert_eq!(eval_word(&out1[4..]), 0b1010);
    }

    #[test]
    fn equals_const_decoder() {
        let mut net = GateNetwork::new("e");
        let a = Word::inputs(&mut net, "a", 4);
        let hit = a.equals_const(&mut net, 9);
        net.add_output("hit", hit).unwrap();
        let mut sim = GateSimulator::new(&net);
        for x in 0..16u64 {
            let out = sim.step(&bits_of(x, 4));
            assert_eq!(out[0], x == 9, "{x}");
        }
    }

    #[test]
    fn registered_word_delays() {
        let mut net = GateNetwork::new("reg");
        let a = Word::inputs(&mut net, "a", 2);
        let q = a.registered(&mut net, false);
        q.export(&mut net, "q");
        let mut sim = GateSimulator::new(&net);
        assert_eq!(sim.step(&[true, false]), vec![false, false]);
        assert_eq!(sim.step(&[false, true]), vec![true, false]);
        assert_eq!(sim.step(&[false, false]), vec![false, true]);
    }
}
