//! Deep-logic benchmark circuits: long register-to-register chains.
//!
//! The paper's suites (RegExp, FIR, MCNC) are dominated by wide, shallow
//! logic, so a wirelength-optimised placement is already near
//! delay-optimal and a timing-driven cost has little to bite on. These
//! generators build the opposite shape — serial-multiplier-like circuits
//! whose critical paths run through long combinational chains between
//! register boundaries, surrounded by wide shallow "noise" logic that
//! pulls a pure-wirelength placer away from the chains. On them the
//! wirelength and delay optima visibly diverge, which is what the
//! `timing:<alpha>` cost and the `BENCH_sta.json` comparison measure.

use mm_netlist::{BlockId, LutCircuit, TruthTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One deep-logic circuit.
///
/// * `width` registered input samplers feed `chains` combinational
///   chains of `depth` LUTs each (the register-to-register critical
///   paths);
/// * every chain ends in a registered accumulator;
/// * `noise` shallow LUTs with random fanin provide the wirelength
///   pressure that competes with the chains.
///
/// Deterministic per `(name, k, ...)`; `k >= 2` required.
///
/// # Panics
///
/// Panics on `k < 2` or degenerate shapes (`width == 0`, `depth == 0`).
#[must_use]
pub fn deep_chain_circuit(
    name: &str,
    k: usize,
    width: usize,
    chains: usize,
    depth: usize,
    noise: usize,
    seed: u64,
) -> LutCircuit {
    assert!(k >= 2, "deep-logic circuits need at least 2-LUTs");
    assert!(width > 0 && depth > 0, "degenerate deep-logic shape");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = LutCircuit::new(name, k);

    let inputs: Vec<BlockId> = (0..width)
        .map(|i| c.add_input(format!("d{i}")).unwrap())
        .collect();
    // Register boundary: arrival time 0 sources for the chains.
    let regs: Vec<BlockId> = inputs
        .iter()
        .enumerate()
        .map(|(i, &d)| {
            c.add_lut(format!("r{i}"), vec![d], TruthTable::var(1, 0), true)
                .unwrap()
        })
        .collect();

    let lut = |rng: &mut StdRng, n: usize| TruthTable::from_bits(n, rng.gen());
    let mut accumulators = Vec::with_capacity(chains);
    let mut chain_nodes: Vec<BlockId> = Vec::new();
    for ch in 0..chains {
        let mut prev = regs[ch % regs.len()];
        for d in 0..depth {
            // Each stage mixes the chain with one side operand — a
            // register or an earlier chain node — like the partial-product
            // add/shift of a serial multiplier.
            let side = if !chain_nodes.is_empty() && rng.gen_bool(0.3) {
                chain_nodes[rng.gen_range(0..chain_nodes.len())]
            } else {
                regs[rng.gen_range(0..regs.len())]
            };
            let fanin = if side == prev {
                vec![prev]
            } else {
                vec![prev, side]
            };
            let n = fanin.len();
            prev = c
                .add_lut(format!("c{ch}_{d}"), fanin, lut(&mut rng, n), false)
                .unwrap();
            chain_nodes.push(prev);
        }
        // The register-to-register endpoint of the chain.
        let acc = c
            .add_lut(format!("acc{ch}"), vec![prev], TruthTable::var(1, 0), true)
            .unwrap();
        accumulators.push(acc);
    }

    // Wide shallow noise: two levels deep at most, heavily connected to
    // the registers so wirelength pressure points away from the chains.
    let mut noise_nodes: Vec<BlockId> = Vec::new();
    for j in 0..noise {
        let pool: &[BlockId] = if j < noise / 2 || noise_nodes.is_empty() {
            &regs
        } else {
            &noise_nodes
        };
        let want = rng.gen_range(2..=k.clamp(2, 4));
        let mut fanin: Vec<BlockId> = Vec::new();
        while fanin.len() < want.min(pool.len()) {
            let cand = pool[rng.gen_range(0..pool.len())];
            if !fanin.contains(&cand) {
                fanin.push(cand);
            }
        }
        let n = fanin.len();
        noise_nodes.push(
            c.add_lut(format!("w{j}"), fanin, lut(&mut rng, n), rng.gen_bool(0.5))
                .unwrap(),
        );
    }

    for (t, &acc) in accumulators.iter().enumerate() {
        c.add_output(format!("y{t}"), acc).unwrap();
    }
    for (t, &w) in noise_nodes.iter().rev().take(2).enumerate() {
        c.add_output(format!("z{t}"), w).unwrap();
    }
    c.validate().expect("generated deep-logic circuit is valid");
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_dominate_the_critical_path() {
        let c = deep_chain_circuit("deep", 4, 6, 3, 12, 30, 7);
        c.validate().unwrap();
        // Unit wire delays: the deepest chain alone is 12 combinational
        // LUTs plus the registered endpoint.
        let delays = vec![1.0; c.connections().len()];
        let a = mm_sta::analyze(&c, &delays).unwrap();
        assert!(
            a.critical_path >= 12.0 * mm_sta::LUT_DELAY,
            "critical path {} too shallow",
            a.critical_path
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = deep_chain_circuit("deep", 4, 5, 2, 10, 20, 3);
        let b = deep_chain_circuit("deep", 4, 5, 2, 10, 20, 3);
        assert_eq!(mm_netlist::blif::to_blif(&a), mm_netlist::blif::to_blif(&b));
    }
}
