//! Prints the mapped size of every benchmark circuit — the raw data behind
//! Table I and the knob used to calibrate the generators.

fn main() {
    println!("-- RegExp suite --");
    for c in mm_gen::regexp_suite(4) {
        println!("{:12} {:4} LUTs", c.name(), c.lut_count());
    }
    println!("-- FIR suite (every 5th) --");
    for (i, c) in mm_gen::fir_suite(4).iter().enumerate() {
        if i % 5 == 0 {
            println!("{:12} {:4} LUTs", c.name(), c.lut_count());
        }
    }
    println!(
        "{:12} {:4} LUTs",
        "fir_generic",
        mm_gen::fir_generic_reference(4).lut_count()
    );
    println!("-- MCNC suite --");
    for c in mm_gen::mcnc_suite(4) {
        println!("{:12} {:4} LUTs", c.name(), c.lut_count());
    }
}
