//! Integration tests of the batch engine's three contracts:
//!
//! 1. **Determinism** — parallel execution emits byte-identical result
//!    records to sequential execution under the same seeds.
//! 2. **Cache transparency** — a warm-cache re-run recomputes zero flow
//!    stages and still emits byte-identical records.
//! 3. **Corruption safety** — damaged cache entries are discarded and
//!    recomputed, never believed.

use mm_engine::{Engine, EngineOptions, FlowKind, Job, JobResult};
use mm_flow::FlowOptions;
use mm_netlist::LutCircuit;
use mm_place::CostKind;
use std::path::PathBuf;

/// The repo's shared seeded circuit shape (`mm_gen`), so fixtures match
/// the bench workloads byte-for-byte per seed.
fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
    mm_gen::seeded_test_circuit(name, n_inputs, n_luts, seed)
}

fn quick_options(seed: u64) -> FlowOptions {
    let mut o = FlowOptions::default().with_fixed_width(12).with_seed(seed);
    o.placer.inner_num = 1.0;
    o.router.max_iterations = 30;
    o
}

/// A suite of `n` small multi-mode problems with distinct circuits and
/// seeds, mixing DCS and MDR flows.
fn suite(n: usize) -> Vec<Job> {
    (0..n)
        .map(|i| {
            let a = random_circuit("m0", 5, 12 + i % 4, 1000 + i as u64);
            let b = random_circuit("m1", 5, 13 + (i / 2) % 3, 2000 + i as u64);
            Job {
                name: format!("p{i}"),
                circuits: vec![a, b],
                flow: if i % 3 == 2 {
                    FlowKind::Mdr
                } else {
                    FlowKind::Dcs(CostKind::WireLength)
                },
                options: quick_options(0x5eed + i as u64),
            }
        })
        .collect()
}

fn record_stream(results: &[JobResult]) -> String {
    let mut out = String::new();
    for r in results {
        out.push_str(&r.to_json_line());
        out.push('\n');
    }
    out
}

fn tmp_cache(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mm_engine_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn parallel_batch_is_byte_identical_to_sequential() {
    let serial_engine = Engine::new(EngineOptions {
        threads: 1,
        cache_dir: None,
        ..Default::default()
    })
    .unwrap();
    let parallel_engine = Engine::new(EngineOptions {
        threads: 4,
        cache_dir: None,
        ..Default::default()
    })
    .unwrap();

    let mut streamed = String::new();
    let serial = serial_engine.run(suite(8));
    let parallel = parallel_engine.run_streamed(suite(8), |r| {
        streamed.push_str(&r.to_json_line());
        streamed.push('\n');
    });

    assert_eq!(serial.results.len(), 8);
    assert!(serial.results.iter().all(|r| r.outcome.is_ok()));
    let serial_bytes = record_stream(&serial.results);
    let parallel_bytes = record_stream(&parallel.results);
    assert_eq!(serial_bytes, parallel_bytes, "parallel == sequential");
    assert_eq!(streamed, parallel_bytes, "stream order == job order");
    assert_eq!(parallel.threads, 4);
    assert_eq!(parallel.stats.results_from_cache, 0, "no cache configured");
}

#[test]
fn warm_cache_rerun_recomputes_nothing_and_matches() {
    let dir = tmp_cache("warm");
    let make = || {
        Engine::new(EngineOptions {
            threads: 2,
            cache_dir: Some(dir.clone()),
            ..Default::default()
        })
        .unwrap()
    };

    let cold = make().run(suite(8));
    assert!(cold.results.iter().all(|r| r.outcome.is_ok()));
    assert_eq!(cold.stats.results_from_cache, 0);
    assert!(
        cold.stats.stages_recomputed >= 8,
        "cold run computes stages"
    );

    // Fresh engine, same cache directory: everything must come from disk.
    let warm = make().run(suite(8));
    assert_eq!(warm.stats.results_from_cache, 8, "all results cached");
    assert_eq!(
        warm.stats.stages_recomputed, 0,
        "zero flow-stage recomputation"
    );
    assert_eq!(
        record_stream(&cold.results),
        record_stream(&warm.results),
        "cache transparency: identical records"
    );
    let summary = warm.summary_json();
    assert!(summary.contains("\"stages_recomputed\":0"), "{summary}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn placement_stage_is_shared_across_router_variants() {
    let dir = tmp_cache("share");
    let engine = Engine::new(EngineOptions {
        threads: 1, // sequential so job 0 seeds the cache for job 1
        cache_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();

    let a = random_circuit("m0", 5, 14, 71);
    let b = random_circuit("m1", 5, 15, 72);
    let mut variant = quick_options(9);
    variant.router.max_iterations = 31; // different result key, same placement key
    let jobs = vec![
        Job {
            name: "base".into(),
            circuits: vec![a.clone(), b.clone()],
            flow: FlowKind::Dcs(CostKind::WireLength),
            options: quick_options(9),
        },
        Job {
            name: "router-variant".into(),
            circuits: vec![a, b],
            flow: FlowKind::Dcs(CostKind::WireLength),
            options: variant,
        },
    ];
    let report = engine.run(jobs);
    assert!(report.results.iter().all(|r| r.outcome.is_ok()));
    assert_eq!(report.stats.results_from_cache, 0);
    assert_eq!(
        report.stats.placements_from_cache, 1,
        "the second job reuses the first job's annealing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn pair_jobs_share_placement_stages_with_plain_jobs() {
    let dir = tmp_cache("pairshare");
    let engine = Engine::new(EngineOptions {
        threads: 1,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();

    let a = random_circuit("m0", 5, 12, 81);
    let b = random_circuit("m1", 5, 13, 82);
    let job = |name: &str, flow: FlowKind, max_iterations: usize| {
        let mut options = quick_options(7);
        // Vary only the router so result keys miss while placement keys
        // (which exclude router options) still match.
        options.router.max_iterations = max_iterations;
        Job {
            name: name.into(),
            circuits: vec![a.clone(), b.clone()],
            flow,
            options,
        }
    };

    // Warm the placement stages with *plain* jobs.
    let warm = engine.run(vec![
        job("dcs", FlowKind::Dcs(CostKind::WireLength), 30),
        job("mdr", FlowKind::Mdr, 30),
    ]);
    assert!(warm.results.iter().all(|r| r.outcome.is_ok()));

    // A pair job on the same mode group shares the MDR and DCS-wl legs;
    // only the edge-matching leg and the routing stage are computed.
    let pair = engine.run(vec![job("pair", FlowKind::Pair, 29)]);
    let info = pair.results[0].cache;
    assert!(pair.results[0].outcome.is_ok());
    assert!(info.placement_hit, "pair reuses plain-job annealing");
    assert_eq!(info.placement_hits, 2, "mdr + dcs-wl legs from cache");
    assert_eq!(info.stages_recomputed, 2, "edge leg + routing only");

    // A second pair run (different router again) now hits all three legs.
    let pair2 = engine.run(vec![job("pair2", FlowKind::Pair, 28)]);
    let info2 = pair2.results[0].cache;
    assert_eq!(info2.placement_hits, 3, "all legs cached");
    assert_eq!(info2.stages_recomputed, 1, "only routing recomputed");

    // And the sharing works in reverse: a plain dcs-edge job reuses the
    // edge leg the pair job stored.
    let edge = engine.run(vec![job("edge", FlowKind::Dcs(CostKind::EdgeMatching), 27)]);
    assert!(edge.results[0].outcome.is_ok());
    assert!(
        edge.results[0].cache.placement_hit,
        "plain job reuses pair-job annealing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The PR 2 `placement_hits` contract at N = 3: a combined job's
/// single-mode legs use the same placement keys as plain `dcs`/`mdr`
/// jobs on the same 3-mode list (sharing in both directions), and a
/// warm re-run of the combined job recomputes zero stages.
#[test]
fn three_mode_combined_jobs_share_stages_and_rerun_warm() {
    let dir = tmp_cache("n3share");
    let engine = Engine::new(EngineOptions {
        threads: 1, // sequential so earlier jobs seed the cache for later ones
        cache_dir: Some(dir.clone()),
        ..Default::default()
    })
    .unwrap();

    // Shapes matter here: the edge-matching leg of the combined
    // comparison can be structurally unroutable on very dissimilar
    // random circuits; this trio routes at the fixed quick width.
    let circuits = vec![
        random_circuit("m0", 5, 8, 181),
        random_circuit("m1", 5, 9, 182),
        random_circuit("m2", 5, 8, 183),
    ];
    let job = |name: &str, flow: FlowKind, max_iterations: usize| {
        let mut options = quick_options(7);
        // Vary only the router so result keys miss while placement keys
        // (which exclude router options) still match.
        options.router.max_iterations = max_iterations;
        Job {
            name: name.into(),
            circuits: circuits.clone(),
            flow,
            options,
        }
    };

    // Warm the placement stages with *plain* 3-mode jobs.
    let warm = engine.run(vec![
        job("dcs", FlowKind::Dcs(CostKind::WireLength), 30),
        job("mdr", FlowKind::Mdr, 30),
    ]);
    assert!(warm.results.iter().all(|r| r.outcome.is_ok()));

    // A combined job on the same 3-mode list shares the MDR and DCS-wl
    // legs; only the edge-matching leg and the routing stage compute.
    let combined = engine.run(vec![job("combined", FlowKind::Pair, 29)]);
    let info = combined.results[0].cache;
    assert!(combined.results[0].outcome.is_ok());
    assert!(info.placement_hit, "combined reuses plain-job annealing");
    assert_eq!(info.placement_hits, 2, "mdr + dcs-wl legs from cache");
    assert_eq!(info.stages_recomputed, 2, "edge leg + routing only");

    // A warm re-run of the *same* combined job recomputes zero stages.
    let rerun = engine.run(vec![job("combined", FlowKind::Pair, 29)]);
    let rerun_info = rerun.results[0].cache;
    assert!(rerun_info.result_hit, "combined result cached");
    assert_eq!(rerun_info.stages_recomputed, 0, "warm N-mode re-run");
    assert_eq!(
        rerun.results[0].to_json_line(),
        combined.results[0].to_json_line(),
        "cache transparency at N = 3"
    );

    // And the sharing works in reverse: a plain 3-mode dcs-edge job
    // reuses the edge leg the combined job stored.
    let edge = engine.run(vec![job("edge", FlowKind::Dcs(CostKind::EdgeMatching), 27)]);
    assert!(edge.results[0].outcome.is_ok());
    assert!(
        edge.results[0].cache.placement_hit,
        "plain 3-mode job reuses combined-job annealing"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A 3-mode timing job records one finite critical path per mode, and
/// those numbers are bit-identical to what mm-sta reports on the same
/// combined result via `mm_flow::dcs_timing`. Default-cost records on
/// the same circuits carry no `critical_paths` field at all.
#[test]
fn three_mode_timing_jobs_record_per_mode_critical_paths() {
    let engine = Engine::new(EngineOptions {
        threads: 1,
        cache_dir: None,
        ..Default::default()
    })
    .unwrap();
    let circuits = vec![
        random_circuit("m0", 5, 10, 611),
        random_circuit("m1", 5, 11, 612),
        random_circuit("m2", 5, 9, 613),
    ];
    let job = |name: &str, flow: FlowKind| Job {
        name: name.into(),
        circuits: circuits.clone(),
        flow,
        options: quick_options(23),
    };
    let report = engine.run(vec![
        job("wl", FlowKind::Dcs(CostKind::WireLength)),
        job("t", FlowKind::Dcs(CostKind::Timing { alpha: 0.6 })),
    ]);
    let lines: Vec<String> = report.results.iter().map(JobResult::to_json_line).collect();
    assert!(
        !lines[0].contains("critical_paths"),
        "default records must stay byte-identical"
    );
    assert!(lines[1].contains("\"critical_paths\""));

    let mm_engine::JobOutcome::Dcs(summary) = report.results[1].outcome.as_ref().unwrap() else {
        panic!("dcs job must produce a dcs summary");
    };
    let cps = summary
        .critical_paths
        .clone()
        .expect("timing jobs record critical paths");
    assert_eq!(cps.len(), 3, "one critical path per mode");
    assert!(cps.iter().all(|c| c.is_finite() && *c > 0.0), "{cps:?}");

    let input = mm_flow::MultiModeInput::new(circuits).unwrap();
    let result = mm_flow::DcsFlow::new(quick_options(23))
        .with_cost(CostKind::Timing { alpha: 0.6 })
        .run(&input)
        .unwrap();
    let expected: Vec<f64> = mm_flow::dcs_timing(&input, &result)
        .unwrap()
        .iter()
        .map(|r| r.critical_path)
        .collect();
    assert_eq!(cps, expected, "record matches routed STA bit-for-bit");
}

/// `run_combined_n` at N = 2 streams records byte-identical to the
/// historical pair flow, across several seeded circuits (the engine-level
/// half of the parity campaign; the flow-level property test lives in
/// the root facade's test suite).
#[test]
fn combined_n2_records_match_pair_records() {
    for seed in [11u64, 12, 13] {
        let circuits = vec![
            random_circuit("m0", 5, 12 + seed as usize % 3, 400 + seed),
            random_circuit("m1", 5, 13 + seed as usize % 2, 500 + seed),
        ];
        let options = quick_options(seed);
        let input = mm_flow::MultiModeInput::new(circuits.clone()).unwrap();
        let via_pair = mm_flow::run_pair(&input, &options, "p").unwrap();
        let via_n = mm_flow::run_combined_n(&circuits, &options, "p").unwrap();
        assert_eq!(via_pair, via_n, "seed {seed}");
        assert_eq!(
            mm_engine::JobOutcome::Pair(via_pair).to_value().to_json(),
            mm_engine::JobOutcome::Pair(via_n).to_value().to_json(),
            "record bytes, seed {seed}"
        );
    }
}

#[test]
fn corrupted_cache_entries_are_recomputed_not_believed() {
    let dir = tmp_cache("corrupt");
    let make = || {
        Engine::new(EngineOptions {
            threads: 2,
            cache_dir: Some(dir.clone()),
            ..Default::default()
        })
        .unwrap()
    };
    let cold = make().run(suite(4));
    let reference = record_stream(&cold.results);

    // Vandalize every cached entry: truncations and garbage.
    let mut damaged = 0;
    for entry in walk_json_files(&dir) {
        let text = std::fs::read_to_string(&entry).unwrap();
        let new = if damaged % 2 == 0 {
            text[..text.len() / 3].to_string()
        } else {
            "{\"key\":\"not-the-right-key\",\"stage\":\"result\",\"payload\":{}}".to_string()
        };
        std::fs::write(&entry, new).unwrap();
        damaged += 1;
    }
    assert!(damaged >= 4, "cache had entries to damage");

    let rerun = make().run(suite(4));
    assert_eq!(rerun.stats.results_from_cache, 0, "nothing trusted");
    assert!(rerun.cache.corrupt >= 4, "corruption detected and counted");
    assert_eq!(
        record_stream(&rerun.results),
        reference,
        "recomputed results identical"
    );

    // Third run: the repaired cache works again.
    let repaired = make().run(suite(4));
    assert_eq!(repaired.stats.results_from_cache, 4);
    assert_eq!(repaired.stats.stages_recomputed, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_jobs_are_reported_not_cached_and_deterministic() {
    let dir = tmp_cache("fail");
    let make = || {
        Engine::new(EngineOptions {
            threads: 2,
            cache_dir: Some(dir.clone()),
            ..Default::default()
        })
        .unwrap()
    };
    // One impossible job (unroutable width cap) among good ones.
    let mut jobs = suite(3);
    let mut impossible = quick_options(5);
    impossible.width = mm_flow::WidthChoice::Fixed(1);
    impossible.max_width = 1;
    impossible.router.max_iterations = 3;
    jobs.push(Job {
        name: "impossible".into(),
        circuits: vec![
            random_circuit("m0", 5, 16, 301),
            random_circuit("m1", 5, 16, 302),
        ],
        flow: FlowKind::Dcs(CostKind::WireLength),
        options: impossible,
    });

    let first = make().run(jobs.clone());
    assert_eq!(first.stats.ok, 3);
    assert_eq!(first.stats.failed, 1);
    // The batch finished: every job has a record, and exactly the
    // infeasible one is a structured error (stage + message), streamed
    // in place.
    assert_eq!(first.results.len(), 4);
    for r in &first.results[..3] {
        assert!(r.outcome.is_ok(), "{}: {:?}", r.name, r.outcome);
    }
    let err = first.results[3].outcome.as_ref().unwrap_err();
    assert_eq!(err.stage, "route", "{err}");
    let line = first.results[3].to_json_line();
    assert!(line.contains("\"status\":\"error\""), "{line}");
    assert!(line.contains("\"stage\":\"route\""), "{line}");

    // Cache counters stay consistent around the failure: the summary
    // numbers equal the sum of the per-job provenance records, and the
    // failed job still accounts the placement stage it computed.
    let summed: usize = first
        .results
        .iter()
        .map(|r| r.cache.stages_recomputed)
        .sum();
    assert_eq!(first.stats.stages_recomputed, summed);
    assert!(
        first.results[3].cache.stages_recomputed >= 1,
        "the doomed job annealed before routing failed"
    );

    let second = make().run(jobs);
    assert_eq!(
        second.stats.results_from_cache, 3,
        "failures are not cached; successes are"
    );
    assert!(
        second.results[3].cache.placement_hit,
        "the failed job's placement stage was cached and reused"
    );
    assert_eq!(
        record_stream(&first.results),
        record_stream(&second.results)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancellation_fails_pending_jobs_fast() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let engine = Engine::new(EngineOptions {
        threads: 1,
        cache_dir: None,
        ..Default::default()
    })
    .unwrap();
    let cancel = AtomicBool::new(false);
    let t0 = std::time::Instant::now();
    // Cancel from the sink after the first result — the remaining jobs
    // must fail fast instead of running their flows.
    let report = engine.run_streamed_cancellable(suite(6), Some(&cancel), |_r| {
        cancel.store(true, Ordering::Relaxed);
    });
    assert!(report.results[0].outcome.is_ok(), "in-flight job finished");
    for r in &report.results[1..] {
        let err = r.outcome.as_ref().unwrap_err();
        assert_eq!(err.stage, "engine", "{err}");
        assert!(err.message.contains("cancelled"), "{err}");
    }
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(30),
        "cancelled jobs must not run their flows"
    );
}

fn walk_json_files(root: &std::path::Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "json") {
                out.push(path);
            }
        }
    }
    out
}
