//! Golden-bytes regression test for default (non-timing) result records.
//!
//! The timing subsystem adds an optional `critical_paths` member to DCS
//! records, emitted only when a `timing:<alpha>` cost is requested. This
//! test pins the exact bytes of default records to the pre-timing output
//! so that the opt-in can never leak into the default stream.

use mm_engine::{Engine, EngineOptions, FlowKind, Job};
use mm_flow::FlowOptions;
use mm_place::CostKind;

fn quick_options(seed: u64) -> FlowOptions {
    let mut o = FlowOptions::default().with_fixed_width(12).with_seed(seed);
    o.placer.inner_num = 1.0;
    o.router.max_iterations = 30;
    o
}

fn jobs() -> Vec<Job> {
    let a = mm_gen::seeded_test_circuit("m0", 5, 12, 9001);
    let b = mm_gen::seeded_test_circuit("m1", 5, 13, 9002);
    vec![
        Job {
            name: "golden-dcs".into(),
            circuits: vec![a.clone(), b.clone()],
            flow: FlowKind::Dcs(CostKind::WireLength),
            options: quick_options(0x601d),
        },
        Job {
            name: "golden-mdr".into(),
            circuits: vec![a.clone(), b.clone()],
            flow: FlowKind::Mdr,
            options: quick_options(0x601d),
        },
        Job {
            name: "golden-pair".into(),
            circuits: vec![a, b],
            flow: FlowKind::Pair,
            options: quick_options(0x601d),
        },
    ]
}

/// The exact record bytes these jobs produced before the timing
/// subsystem existed (captured from the pre-PR engine). Default jobs
/// must keep emitting them byte-for-byte.
const GOLDEN: [&str; 3] = [
    r#"{"name":"golden-dcs","flow":"dcs","status":"ok","metrics":{"kind":"dcs","grid":4,"channel_width":12,"modes":2,"param_bits":79,"static_on_bits":90,"dcs_cost":{"lut_bits":272,"routing_bits":79},"mdr_cost":{"lut_bits":272,"routing_bits":1896},"speedup":6.176638176638177,"wires":[87,96],"tunable":{"modes":2,"tunable_luts":13,"io_sites":8,"connections":59,"merged_connections":17}}}"#,
    r#"{"name":"golden-mdr","flow":"mdr","status":"ok","metrics":{"kind":"mdr","grid":4,"channel_width":12,"modes":2,"mdr_cost":{"lut_bits":272,"routing_bits":1896},"avg_diff_cost":{"lut_bits":272,"routing_bits":165},"wires":[60,61]}}"#,
    r#"{"name":"golden-pair","flow":"pair","status":"ok","metrics":{"kind":"pair","grid":4,"width_mdr":12,"width_edge":12,"width_wirelength":12,"mdr":{"lut_bits":272,"routing_bits":1896},"diff":{"lut_bits":272,"routing_bits":165},"dcs_edge":{"lut_bits":272,"routing_bits":78},"dcs_wirelength":{"lut_bits":272,"routing_bits":79},"speedup_edge":6.194285714285714,"speedup_wirelength":6.176638176638177,"wires_mdr":60.5,"wires_edge":107,"wires_wirelength":91.5,"tunable":{"modes":2,"tunable_luts":13,"io_sites":8,"connections":59,"merged_connections":17},"mode_luts":[12,13]}}"#,
];

#[test]
fn default_records_are_byte_identical_to_pre_timing_output() {
    let engine = Engine::new(EngineOptions {
        threads: 1,
        cache_dir: None,
        ..Default::default()
    })
    .unwrap();
    let report = engine.run(jobs());
    assert_eq!(report.results.len(), GOLDEN.len());
    for (r, expected) in report.results.iter().zip(GOLDEN) {
        assert_eq!(r.to_json_line(), expected, "{} record drifted", r.name);
    }
}
