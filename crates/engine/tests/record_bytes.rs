//! Golden-bytes regression suite for default JSONL result records.
//!
//! Records carry no timings or cache info by design (those live in the
//! batch summary), so their bytes must be a pure function of the job.
//! The goldens below were captured from the engine *before* the stage-graph
//! refactor (and, for the first three, before the timing subsystem), so
//! they pin two invariants at once:
//!
//! - opt-in features (`timing:<alpha>` costs, `--emit-stage-times`) never
//!   leak members into default records, and
//! - the plan-executor rewrite of dcs/mdr/combined-N reproduces the
//!   hand-wired flows byte-for-byte.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use mm_engine::{Engine, EngineOptions, FlowKind, Job};
use mm_flow::FlowOptions;
use mm_place::CostKind;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn quick_options(seed: u64) -> FlowOptions {
    let mut o = FlowOptions::default().with_fixed_width(12).with_seed(seed);
    o.placer.inner_num = 1.0;
    o.router.max_iterations = 30;
    o
}

fn jobs() -> Vec<Job> {
    let a = mm_gen::seeded_test_circuit("m0", 5, 12, 9001);
    let b = mm_gen::seeded_test_circuit("m1", 5, 13, 9002);
    let n3: Vec<_> = (0..3usize)
        .map(|m| mm_gen::seeded_test_circuit(&format!("m{m}"), 5, 10, 29_100 + (m as u64) * 1000))
        .collect();
    vec![
        Job {
            name: "golden-dcs".into(),
            circuits: vec![a.clone(), b.clone()],
            flow: FlowKind::Dcs(CostKind::WireLength),
            options: quick_options(0x601d),
        },
        Job {
            name: "golden-mdr".into(),
            circuits: vec![a.clone(), b.clone()],
            flow: FlowKind::Mdr,
            options: quick_options(0x601d),
        },
        Job {
            name: "golden-pair".into(),
            circuits: vec![a.clone(), b.clone()],
            flow: FlowKind::Pair,
            options: quick_options(0x601d),
        },
        Job {
            name: "golden-combined3".into(),
            circuits: n3,
            flow: FlowKind::Pair,
            options: quick_options(0x601d),
        },
        Job {
            name: "golden-timing".into(),
            circuits: vec![a, b],
            flow: FlowKind::Dcs(CostKind::Timing { alpha: 0.5 }),
            options: quick_options(0x601d),
        },
    ]
}

/// Exact record bytes captured from the pre-refactor engine (commit
/// fd634a0, before the stage-graph rewrite). Default jobs must keep
/// emitting them byte-for-byte.
const GOLDEN: [&str; 5] = [
    r#"{"name":"golden-dcs","flow":"dcs","status":"ok","metrics":{"kind":"dcs","grid":4,"channel_width":12,"modes":2,"param_bits":79,"static_on_bits":90,"dcs_cost":{"lut_bits":272,"routing_bits":79},"mdr_cost":{"lut_bits":272,"routing_bits":1896},"speedup":6.176638176638177,"wires":[87,96],"tunable":{"modes":2,"tunable_luts":13,"io_sites":8,"connections":59,"merged_connections":17}}}"#,
    r#"{"name":"golden-mdr","flow":"mdr","status":"ok","metrics":{"kind":"mdr","grid":4,"channel_width":12,"modes":2,"mdr_cost":{"lut_bits":272,"routing_bits":1896},"avg_diff_cost":{"lut_bits":272,"routing_bits":165},"wires":[60,61]}}"#,
    r#"{"name":"golden-pair","flow":"pair","status":"ok","metrics":{"kind":"pair","grid":4,"width_mdr":12,"width_edge":12,"width_wirelength":12,"mdr":{"lut_bits":272,"routing_bits":1896},"diff":{"lut_bits":272,"routing_bits":165},"dcs_edge":{"lut_bits":272,"routing_bits":78},"dcs_wirelength":{"lut_bits":272,"routing_bits":79},"speedup_edge":6.194285714285714,"speedup_wirelength":6.176638176638177,"wires_mdr":60.5,"wires_edge":107,"wires_wirelength":91.5,"tunable":{"modes":2,"tunable_luts":13,"io_sites":8,"connections":59,"merged_connections":17},"mode_luts":[12,13]}}"#,
    r#"{"name":"golden-combined3","flow":"pair","status":"ok","metrics":{"kind":"pair","grid":4,"width_mdr":12,"width_edge":12,"width_wirelength":12,"mdr":{"lut_bits":272,"routing_bits":1896},"diff":{"lut_bits":272,"routing_bits":151},"dcs_edge":{"lut_bits":272,"routing_bits":143},"dcs_wirelength":{"lut_bits":272,"routing_bits":132},"speedup_edge":5.224096385542168,"speedup_wirelength":5.366336633663367,"wires_mdr":50.666666666666664,"wires_edge":88,"wires_wirelength":74,"tunable":{"modes":3,"tunable_luts":11,"io_sites":11,"connections":60,"merged_connections":3},"mode_luts":[10,10,10]}}"#,
    r#"{"name":"golden-timing","flow":"dcs-timing","status":"ok","metrics":{"kind":"dcs","grid":4,"channel_width":12,"modes":2,"param_bits":90,"static_on_bits":77,"dcs_cost":{"lut_bits":272,"routing_bits":90},"mdr_cost":{"lut_bits":272,"routing_bits":1896},"speedup":5.988950276243094,"wires":[80,88],"critical_paths":[28,31],"tunable":{"modes":2,"tunable_luts":13,"io_sites":9,"connections":58,"merged_connections":18}}}"#,
];

fn run_records(threads: usize) -> Vec<String> {
    let engine = Engine::new(EngineOptions {
        threads,
        cache_dir: None,
        ..Default::default()
    })
    .unwrap();
    let report = engine.run(jobs());
    report.results.iter().map(|r| r.to_json_line()).collect()
}

#[test]
fn default_records_are_byte_identical_to_pre_refactor_goldens() {
    let records = run_records(1);
    assert_eq!(records.len(), GOLDEN.len());
    for ((record, expected), job) in records.iter().zip(GOLDEN).zip(jobs()) {
        assert_eq!(record, expected, "{} record drifted", job.name);
    }
}

#[test]
fn parallel_execution_matches_goldens() {
    let records = run_records(4);
    assert_eq!(records.len(), GOLDEN.len());
    for ((record, expected), job) in records.iter().zip(GOLDEN).zip(jobs()) {
        assert_eq!(
            record, expected,
            "{} record drifted under threads=4",
            job.name
        );
    }
}

/// A random small batch: 1–3 jobs over 2–3 seeded modes each, with the
/// flow kind, cost, flow seed, and intra-stage parallelism all drawn
/// from the case seed. Every job stays tiny so a proptest case runs the
/// batch four times in well under a second.
fn random_jobs(seed: u64) -> Vec<Job> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_jobs = rng.gen_range(1..=3usize);
    (0..n_jobs)
        .map(|j| {
            let modes = rng.gen_range(2..=3usize);
            let circuits: Vec<_> = (0..modes)
                .map(|m| {
                    let luts = rng.gen_range(8..=14usize);
                    mm_gen::seeded_test_circuit(&format!("m{m}"), 5, luts, rng.gen())
                })
                .collect();
            let flow = match rng.gen_range(0..4u8) {
                0 => FlowKind::Dcs(CostKind::WireLength),
                1 => FlowKind::Dcs(CostKind::Timing { alpha: 0.5 }),
                2 => FlowKind::Mdr,
                _ => FlowKind::Pair,
            };
            let mut options = quick_options(rng.gen());
            options.intra_parallelism = rng.gen_range(0..=3usize);
            Job {
                name: format!("prop-{j}"),
                circuits,
                flow,
                options,
            }
        })
        .collect()
}

fn prop_tmp_dir() -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mm-record-prop-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn run_lines(jobs: Vec<Job>, threads: usize, cache_dir: Option<PathBuf>) -> Vec<String> {
    let engine = Engine::new(EngineOptions {
        threads,
        cache_dir,
        ..Default::default()
    })
    .unwrap();
    engine
        .run(jobs)
        .results
        .iter()
        .map(mm_engine::JobResult::to_json_line)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Scheduling is invisible in record bytes: for a random job mix,
    /// serial/cacheless execution, parallel execution, a cold cached run,
    /// and a warm cached replay all emit identical JSONL lines.
    #[test]
    fn record_bytes_are_invariant_under_scheduling(seed in 0u64..1_000_000) {
        let jobs = random_jobs(seed);
        let baseline = run_lines(jobs.clone(), 1, None);
        let threads = 2 + (seed as usize % 3);
        let parallel = run_lines(jobs.clone(), threads, None);
        prop_assert_eq!(&parallel, &baseline);
        let dir = prop_tmp_dir();
        let cold = run_lines(jobs.clone(), threads, Some(dir.clone()));
        prop_assert_eq!(&cold, &baseline);
        let warm = run_lines(jobs, 1, Some(dir.clone()));
        let _ = std::fs::remove_dir_all(&dir);
        prop_assert_eq!(&warm, &baseline);
    }
}
