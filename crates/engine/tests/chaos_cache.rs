//! Chaos tests for the crash-safe stage cache.
//!
//! Two layers of abuse, both with the same acceptance bar: records must
//! stay byte-identical to a cold cacheless run, and every corrupted
//! entry the engine touches must show up in `EngineStats::quarantined`.
//!
//! * A proptest storm flips and truncates bytes in on-disk `result`
//!   entries directly — simulating bit rot, torn writes from a crashed
//!   process, or a hostile filesystem.
//! * Armed fault points (`cache_read_io`, `cache_write_partial`) break
//!   the cache from the inside. The fault-point registry is
//!   process-global, so those tests serialize on a mutex and disarm via
//!   a drop guard.

use mm_engine::faultpoint;
use mm_engine::{Engine, EngineOptions, FlowKind, Job};
use mm_flow::FlowOptions;
use mm_place::CostKind;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

fn quick_options(seed: u64) -> FlowOptions {
    let mut o = FlowOptions::default().with_fixed_width(12).with_seed(seed);
    o.placer.inner_num = 1.0;
    o.router.max_iterations = 30;
    o
}

fn jobs() -> Vec<Job> {
    let a = mm_gen::seeded_test_circuit("m0", 5, 10, 0xc4a0_0001);
    let b = mm_gen::seeded_test_circuit("m1", 5, 11, 0xc4a0_0002);
    let c = mm_gen::seeded_test_circuit("m2", 5, 12, 0xc4a0_0003);
    vec![
        Job {
            name: "storm-dcs".into(),
            circuits: vec![a.clone(), b.clone()],
            flow: FlowKind::Dcs(CostKind::WireLength),
            options: quick_options(0xc4a0),
        },
        Job {
            name: "storm-mdr".into(),
            circuits: vec![b, c.clone()],
            flow: FlowKind::Mdr,
            options: quick_options(0xc4a0),
        },
        Job {
            name: "storm-pair".into(),
            circuits: vec![a, c],
            flow: FlowKind::Pair,
            options: quick_options(0xc4a0),
        },
    ]
}

fn tmp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("mm-chaos-cache-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmp dir");
    dir
}

fn engine_with_cache(dir: &Path) -> Engine {
    Engine::new(EngineOptions {
        threads: 1,
        cache_dir: Some(dir.to_path_buf()),
        result_memo: 0,
    })
    .expect("engine")
}

fn record_lines(engine: &Engine) -> Vec<String> {
    engine
        .run(jobs())
        .results
        .iter()
        .map(mm_engine::JobResult::to_json_line)
        .collect()
}

/// The records a cacheless serial run produces — ground truth for every
/// byte-parity assertion below.
fn cold_reference() -> Vec<String> {
    let engine = Engine::new(EngineOptions {
        threads: 1,
        cache_dir: None,
        result_memo: 0,
    })
    .expect("engine");
    record_lines(&engine)
}

/// All `result`-stage entry files currently in the store, sorted for a
/// deterministic mapping between proptest masks and files.
fn result_entries(root: &Path) -> Vec<PathBuf> {
    let mut found = Vec::new();
    let mut stack = vec![root.join("result")];
    while let Some(dir) = stack.pop() {
        let Ok(read) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in read.flatten() {
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "json") {
                found.push(path);
            }
        }
    }
    found.sort();
    found
}

fn quarantined_files(root: &Path) -> usize {
    std::fs::read_dir(root.join("quarantine"))
        .map(|read| read.flatten().count())
        .unwrap_or(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Flip or truncate bytes in a mask-chosen subset of on-disk result
    /// entries. The next batch must (a) emit records byte-identical to
    /// the cold reference, (b) quarantine exactly the corrupted entries
    /// and report every one of them in `EngineStats::quarantined`, and
    /// (c) leave the store healed: a third run is fully warm and clean.
    #[test]
    fn corruption_storm_never_reaches_a_record(mask: u64, flip_byte: u8, truncate: bool) {
        let reference = cold_reference();
        let dir = tmp_dir("storm");

        // Cold run populates the store and must already match.
        let warm_engine = engine_with_cache(&dir);
        prop_assert_eq!(&record_lines(&warm_engine), &reference);
        drop(warm_engine);

        let entries = result_entries(&dir);
        prop_assert!(!entries.is_empty());
        let mut corrupted = 0usize;
        for (i, path) in entries.iter().enumerate() {
            // Always corrupt at least the first entry so every case
            // exercises the quarantine path.
            if i > 0 && (mask >> (i % 64)) & 1 == 0 {
                continue;
            }
            let mut bytes = std::fs::read(path).expect("read entry");
            if truncate {
                bytes.truncate(bytes.len() / 2);
            } else {
                let pos = (mask as usize).wrapping_add(i) % bytes.len().max(1);
                bytes[pos] ^= flip_byte | 1;
            }
            std::fs::write(path, bytes).expect("corrupt entry");
            corrupted += 1;
        }

        // Storm run: every corrupted entry is read, fails validation,
        // is quarantined, and is transparently recomputed.
        let storm = engine_with_cache(&dir).run(jobs());
        let storm_lines: Vec<String> =
            storm.results.iter().map(mm_engine::JobResult::to_json_line).collect();
        prop_assert_eq!(&storm_lines, &reference);
        prop_assert_eq!(storm.stats.quarantined, corrupted);
        prop_assert_eq!(storm.cache.corrupt, corrupted as u64);
        prop_assert_eq!(quarantined_files(&dir), corrupted);

        // The store healed itself: a fresh engine is fully warm.
        let healed = engine_with_cache(&dir).run(jobs());
        let healed_lines: Vec<String> =
            healed.results.iter().map(mm_engine::JobResult::to_json_line).collect();
        prop_assert_eq!(&healed_lines, &reference);
        prop_assert_eq!(healed.stats.quarantined, 0);
        prop_assert_eq!(healed.stats.results_from_cache, reference.len());

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Fault-point registry is process-global: armed tests take this lock
/// and disarm through [`Armed`] so a panic cannot leak an armed
/// registry into the storm proptest above.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

struct Armed<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

impl<'a> Armed<'a> {
    fn new(spec: &str) -> Self {
        let guard = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        faultpoint::arm(spec).expect("valid fault spec");
        Self { _guard: guard }
    }
}

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        faultpoint::disarm();
    }
}

#[test]
fn injected_read_faults_degrade_to_recomputation_with_identical_bytes() {
    let reference = cold_reference();
    let dir = tmp_dir("read-fault");
    // Populate the store cleanly first.
    assert_eq!(record_lines(&engine_with_cache(&dir)), reference);

    let _armed = Armed::new("seed=11,cache_read_io=1");
    let report = engine_with_cache(&dir).run(jobs());
    let lines: Vec<String> = report
        .results
        .iter()
        .map(mm_engine::JobResult::to_json_line)
        .collect();
    assert_eq!(lines, reference);
    // Every read failed, so nothing came from the cache and every
    // failed read was quarantined and counted.
    assert_eq!(report.stats.results_from_cache, 0);
    assert!(report.stats.quarantined > 0);
    assert_eq!(report.stats.quarantined, report.cache.corrupt as usize);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_writes_are_caught_on_the_next_read() {
    let reference = cold_reference();
    let dir = tmp_dir("torn-write");
    {
        // Every write is torn mid-entry, as a crash would leave it.
        let _armed = Armed::new("seed=12,cache_write_partial=1");
        assert_eq!(record_lines(&engine_with_cache(&dir)), reference);
    }
    // Healthy reader: the torn entries fail their checksum, are
    // quarantined, and the batch recomputes to identical bytes.
    let report = engine_with_cache(&dir).run(jobs());
    let lines: Vec<String> = report
        .results
        .iter()
        .map(mm_engine::JobResult::to_json_line)
        .collect();
    assert_eq!(lines, reference);
    assert!(report.stats.quarantined > 0);
    assert_eq!(report.stats.quarantined, quarantined_files(&dir));
    let _ = std::fs::remove_dir_all(&dir);
}
