//! Deterministic fault injection for chaos testing.
//!
//! A *fault point* is a named site in the serving stack where a failure
//! can be injected on demand: the cache read/write paths, the worker
//! execution path, the connection reactor. Production code asks
//! [`fire`] at each site; when the subsystem is disarmed (the default)
//! that is a single relaxed atomic load returning `false`, so the hot
//! path pays nothing measurable. Tests, the chaos bench and
//! `mmflow serve --fault-spec` arm points with a seeded spec string:
//!
//! ```text
//! seed=7,cache_read_io=0.25,worker_panic=1,stall_ms=50
//! ```
//!
//! Each point carries a firing rate in `[0, 1]`. Decisions are drawn
//! from a splitmix64 stream keyed by `(seed, point, hit-index)`, so a
//! given spec produces the same firing pattern per point across runs —
//! failures found by a chaos storm are replayable by seed.
//!
//! The registry is process-global (one serving process, one fault
//! plan). Tests that arm faults must serialize on a lock and disarm
//! when done.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Cache read returns unusable bytes (exercises quarantine + recompute).
pub const CACHE_READ_IO: &str = "cache_read_io";
/// Cache write is torn mid-entry (exercises checksum detection).
pub const CACHE_WRITE_PARTIAL: &str = "cache_write_partial";
/// The worker thread panics mid-job (exercises isolation + retry).
pub const WORKER_PANIC: &str = "worker_panic";
/// The job wedges for `stall_ms` (exercises the deadline watchdog).
pub const JOB_STALL: &str = "job_stall";
/// The connection drops mid-stream (exercises purge + client resubmit).
pub const CONN_DROP: &str = "conn_drop";

/// Every known fault point, in spec order.
pub const ALL_POINTS: [&str; 5] = [
    CACHE_READ_IO,
    CACHE_WRITE_PARTIAL,
    WORKER_PANIC,
    JOB_STALL,
    CONN_DROP,
];

/// How long [`JOB_STALL`] wedges a job when no `stall_ms` is given.
const DEFAULT_STALL_MS: u64 = 100;

/// The single global fault plan. `armed` is the only thing the hot
/// path reads; everything else is touched only while armed or when a
/// plan is (dis)armed.
struct Registry {
    armed: AtomicBool,
    seed: AtomicU64,
    stall_ms: AtomicU64,
    /// Firing rate per point, as `f64` bits (0.0 when unset).
    rates: [AtomicU64; 5],
    /// Times each point was *asked* while armed (fired or not).
    hits: [AtomicU64; 5],
    /// Times each point actually fired.
    fired: [AtomicU64; 5],
}

static REGISTRY: Registry = Registry {
    armed: AtomicBool::new(false),
    seed: AtomicU64::new(0),
    stall_ms: AtomicU64::new(DEFAULT_STALL_MS),
    rates: [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ],
    hits: [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ],
    fired: [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ],
};

fn point_index(point: &str) -> Option<usize> {
    ALL_POINTS.iter().position(|&p| p == point)
}

/// splitmix64: a full-period, well-mixed 64-bit permutation — the
/// decision stream for a point is `mix(seed ^ salt(point) ^ n)`.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn point_salt(index: usize) -> u64 {
    // Distinct odd salts decorrelate the per-point streams.
    (index as u64).wrapping_mul(0xa076_1d64_78bd_642f) | 1
}

/// Arms the registry from a spec string: comma-separated
/// `name=value` entries where `name` is a fault point (value = firing
/// rate in `[0, 1]`), `seed` (u64), or `stall_ms` (u64). A bare point
/// name means rate 1. Re-arming replaces the previous plan and resets
/// all counters.
///
/// # Errors
///
/// Returns a message naming the offending entry on unknown points or
/// unparsable values; the registry is left disarmed.
pub fn arm(spec: &str) -> Result<(), String> {
    disarm();
    let mut rates = [0.0f64; 5];
    let mut seed = 0u64;
    let mut stall_ms = DEFAULT_STALL_MS;
    for raw in spec.split(',') {
        let entry = raw.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, value) = match entry.split_once('=') {
            Some((n, v)) => (n.trim(), Some(v.trim())),
            None => (entry, None),
        };
        match name {
            "seed" => {
                let v = value.ok_or_else(|| "seed needs a value".to_string())?;
                seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed '{v}' (want u64)"))?;
            }
            "stall_ms" => {
                let v = value.ok_or_else(|| "stall_ms needs a value".to_string())?;
                stall_ms = v
                    .parse::<u64>()
                    .map_err(|_| format!("bad stall_ms '{v}' (want u64)"))?;
            }
            _ => {
                let index = point_index(name).ok_or_else(|| {
                    format!(
                        "unknown fault point '{name}' (known: {})",
                        ALL_POINTS.join(", ")
                    )
                })?;
                let rate = match value {
                    None => 1.0,
                    Some(v) => {
                        let r = v
                            .parse::<f64>()
                            .map_err(|_| format!("bad rate '{v}' for '{name}'"))?;
                        if !(0.0..=1.0).contains(&r) {
                            return Err(format!("rate {r} for '{name}' outside [0, 1]"));
                        }
                        r
                    }
                };
                rates[index] = rate;
            }
        }
    }
    REGISTRY.seed.store(seed, Ordering::Relaxed);
    REGISTRY.stall_ms.store(stall_ms, Ordering::Relaxed);
    for (i, rate) in rates.iter().enumerate() {
        REGISTRY.rates[i].store(rate.to_bits(), Ordering::Relaxed);
        REGISTRY.hits[i].store(0, Ordering::Relaxed);
        REGISTRY.fired[i].store(0, Ordering::Relaxed);
    }
    // Release-publish the plan: a `fire` that observes `armed` also
    // observes the rates/seed stored above.
    REGISTRY.armed.store(true, Ordering::Release);
    silence_injected_panics();
    Ok(())
}

/// Marker every injected panic payload carries, so the panic hook can
/// tell deliberate chaos from a real bug.
pub const INJECTED_PANIC: &str = "injected fault";

/// Installs (once per process) a panic hook that swallows the
/// message/backtrace spam of payloads carrying [`INJECTED_PANIC`] —
/// they are caught and retried by design — while delegating everything
/// else to the previous hook.
fn silence_injected_panics() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains(INJECTED_PANIC))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains(INJECTED_PANIC))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

/// Disarms every fault point. All subsequent [`fire`] calls are
/// single-load no-ops again; counters keep their final values.
pub fn disarm() {
    REGISTRY.armed.store(false, Ordering::Release);
}

/// Whether any fault plan is armed.
#[must_use]
pub fn armed() -> bool {
    REGISTRY.armed.load(Ordering::Relaxed)
}

/// Asks whether `point` fires at this site, advancing its decision
/// stream. Disarmed: one relaxed load, always `false`. Unknown point
/// names never fire (callers pass the constants above).
#[must_use]
pub fn fire(point: &str) -> bool {
    if !REGISTRY.armed.load(Ordering::Acquire) {
        return false;
    }
    let Some(index) = point_index(point) else {
        return false;
    };
    let rate = f64::from_bits(REGISTRY.rates[index].load(Ordering::Relaxed));
    if rate <= 0.0 {
        return false;
    }
    let n = REGISTRY.hits[index].fetch_add(1, Ordering::Relaxed);
    let seed = REGISTRY.seed.load(Ordering::Relaxed);
    let draw = splitmix64(seed ^ point_salt(index) ^ n);
    // Top 53 bits → uniform in [0, 1).
    let uniform = (draw >> 11) as f64 / (1u64 << 53) as f64;
    let fired = uniform < rate;
    if fired {
        REGISTRY.fired[index].fetch_add(1, Ordering::Relaxed);
    }
    fired
}

/// The stall duration [`JOB_STALL`] sites should sleep for when fired.
#[must_use]
pub fn stall_duration() -> std::time::Duration {
    std::time::Duration::from_millis(REGISTRY.stall_ms.load(Ordering::Relaxed))
}

/// Times `point` actually fired since the last [`arm`].
#[must_use]
pub fn fired_count(point: &str) -> u64 {
    point_index(point).map_or(0, |i| REGISTRY.fired[i].load(Ordering::Relaxed))
}

/// Times `point` was consulted while armed since the last [`arm`].
#[must_use]
pub fn hit_count(point: &str) -> u64 {
    point_index(point).map_or(0, |i| REGISTRY.hits[i].load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; tests that arm it serialize here.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_points_never_fire() {
        let _guard = LOCK.lock().unwrap();
        disarm();
        assert!(!armed());
        for point in ALL_POINTS {
            assert!(!fire(point));
        }
    }

    #[test]
    fn rate_one_always_fires_rate_zero_never() {
        let _guard = LOCK.lock().unwrap();
        arm("seed=1,cache_read_io=1,worker_panic=0").unwrap();
        for _ in 0..32 {
            assert!(fire(CACHE_READ_IO));
            assert!(!fire(WORKER_PANIC));
            assert!(!fire(CONN_DROP), "unlisted point stays at rate 0");
        }
        assert_eq!(fired_count(CACHE_READ_IO), 32);
        assert_eq!(hit_count(CACHE_READ_IO), 32);
        assert_eq!(fired_count(WORKER_PANIC), 0);
        disarm();
    }

    #[test]
    fn same_seed_reproduces_the_firing_pattern() {
        let _guard = LOCK.lock().unwrap();
        let pattern = |seed: u64| -> Vec<bool> {
            arm(&format!("seed={seed},job_stall=0.4")).unwrap();
            let p = (0..64).map(|_| fire(JOB_STALL)).collect();
            disarm();
            p
        };
        let a = pattern(42);
        let b = pattern(42);
        let c = pattern(43);
        assert_eq!(a, b, "same seed, same decisions");
        assert_ne!(a, c, "different seed, different decisions");
        assert!(
            a.iter().any(|&f| f) && !a.iter().all(|&f| f),
            "rate 0.4 mixes"
        );
    }

    #[test]
    fn bare_point_name_means_rate_one() {
        let _guard = LOCK.lock().unwrap();
        arm("conn_drop").unwrap();
        assert!(fire(CONN_DROP));
        disarm();
    }

    #[test]
    fn stall_ms_is_configurable() {
        let _guard = LOCK.lock().unwrap();
        arm("job_stall=1,stall_ms=7").unwrap();
        assert_eq!(stall_duration(), std::time::Duration::from_millis(7));
        disarm();
    }

    #[test]
    fn bad_specs_are_rejected_and_leave_the_registry_disarmed() {
        let _guard = LOCK.lock().unwrap();
        assert!(arm("no_such_point=1").is_err());
        assert!(arm("cache_read_io=1.5").is_err());
        assert!(arm("cache_read_io=abc").is_err());
        assert!(arm("seed=nope").is_err());
        assert!(!armed());
    }
}
