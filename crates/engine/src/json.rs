//! A minimal JSON value, parser and writer.
//!
//! The build environment is offline (no `serde`), and the engine needs
//! exactly three things from JSON: parse suite specs, parse/emit cache
//! entries, and emit deterministic JSONL result records. Objects keep
//! insertion order so emitted bytes are reproducible run-to-run — the
//! batch determinism guarantee is stated over these bytes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number. Integers up to 2^53 round-trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member of an object, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String content, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric content, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric content as `u64`, if integral and **unambiguously**
    /// representable (< 2^53 — at and beyond 2^53 the f64 parse may
    /// already have rounded a neighbouring integer onto this value, and
    /// silently returning it would be wrong).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n < 9.007_199_254_740_992e15).then_some(n as u64)
    }

    /// Numeric content as `usize`, if integral and in range.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// Boolean content, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace), deterministic for a given
    /// value.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Num(n as f64)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Num(n as f64)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Num(n)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::Arr(items.into_iter().map(Into::into).collect())
    }
}

/// Convenience builder for objects in a fixed member order.
#[derive(Debug, Default)]
pub struct ObjBuilder {
    members: Vec<(String, Value)>,
}

impl ObjBuilder {
    /// An empty object.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a member.
    #[must_use]
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.members.push((key.to_string(), value.into()));
        self
    }

    /// The finished object.
    #[must_use]
    pub fn build(self) -> Value {
        Value::Obj(self.members)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; encode as null like serde_json does.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
        write!(out, "{}", n as i64).expect("write to String");
    } else {
        // Shortest representation that round-trips (Rust's float Display).
        write!(out, "{n}").expect("write to String");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one JSON document (surrounding whitespace allowed).
///
/// # Errors
///
/// Returns a human-readable description of the first syntax error, with
/// its byte offset.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number bytes");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogate pairs are not needed by our own
                            // emitter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x80 => {
                    out.push(char::from(c));
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        let mut seen = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(format!("duplicate key '{key}'"));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let text = r#"{"name":"j0","modes":["a.blif","b.blif"],"seed":7,"quick":true,"width":null,"f":1.5,"neg":-3}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_json(), text);
        assert_eq!(v.get("name").unwrap().as_str(), Some("j0"));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("modes").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("quick").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("neg").unwrap().as_f64(), Some(-3.0));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = Value::Str("a\"b\\c\nd\te\u{1}ü€".to_string());
        let text = original.to_json();
        assert_eq!(parse(&text).unwrap(), original);
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a":1,"a":2}"#).is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("truth").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse(" {\n \"a\" : [ 1 , 2 ] ,\t\"b\" : { } }\r\n").unwrap();
        assert_eq!(v.to_json(), r#"{"a":[1,2],"b":{}}"#);
    }

    #[test]
    fn object_order_preserved() {
        let v = parse(r#"{"z":1,"a":2,"m":3}"#).unwrap();
        assert_eq!(v.to_json(), r#"{"z":1,"a":2,"m":3}"#);
    }

    #[test]
    fn builder_and_froms() {
        let v = ObjBuilder::new()
            .field("n", 3usize)
            .field("s", "x")
            .field("list", vec![1usize, 2])
            .field("flag", false)
            .build();
        assert_eq!(v.to_json(), r#"{"n":3,"s":"x","list":[1,2],"flag":false}"#);
    }

    #[test]
    fn number_edge_cases() {
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(
            parse("9007199254740992").unwrap().to_json(),
            "9007199254740992"
        );
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-0.5").unwrap().as_f64(), Some(-0.5));
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }
}
