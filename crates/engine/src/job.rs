//! The batch job model: what to run, and what came out.
//!
//! A [`Job`] is one multi-mode problem (an ordered set of mode circuits)
//! plus the flow to run on it ([`FlowKind`]) and its [`FlowOptions`].
//! Jobs come from three sources, all handled by [`load_spec`]:
//!
//! * a JSON spec file (`{"defaults": …, "jobs": [{"modes": [...]}, …]}`
//!   — each job's `"modes"` array is the mode list, any length),
//! * a directory whose subdirectories each hold one BLIF mode group,
//! * a generated suite (`suite:regexp`, `suite:fir`, `suite:mcnc`,
//!   `suite:deeplogic`, `suite:broadcast`), optionally with a mode count
//!   per problem (`suite:regexp:3`).
//!
//! A [`JobResult`] serializes to one deterministic JSON line: the record
//! is purely semantic (no timings, no cache provenance), so a cached
//! re-run emits byte-identical lines — cache transparency is part of the
//! engine's contract. Timings and cache counters live in the summary.

use crate::json::{self, ObjBuilder, Value};
use mm_bitstream::RewriteCost;
use mm_flow::stage::{StagePlan, StageTiming};
use mm_flow::{FlowOptions, MultiModeInput, PairMetrics, TunableStats, WidthChoice};
use mm_netlist::{blif, LutCircuit};
use mm_place::{CostKind, MultiPlacement, Placement};
use std::path::Path;
use std::time::Duration;

// The numeric run summaries moved into the stage module with the
// stage-graph refactor (the summarizing stages produce them); re-export
// them here so `mm_engine::{DcsSummary, MdrSummary}` stays a stable path.
pub use mm_flow::stage::{DcsSummary, MdrSummary};

/// Which flow a job runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlowKind {
    /// The paper's DCS flow with the given combined-placement cost.
    Dcs(CostKind),
    /// The MDR baseline.
    Mdr,
    /// The full experimental comparison (`run_combined_n`): MDR + both
    /// DCS variants on the same fabric, for any mode count. The name is
    /// historical (the record/cache identity stays `pair` so existing
    /// streams and caches remain byte-stable); specs may spell it
    /// `pair` or `combined`.
    Pair,
}

impl FlowKind {
    /// Short stable name, used in result records and cache keys.
    #[must_use]
    pub fn name(&self) -> String {
        match self {
            FlowKind::Dcs(CostKind::WireLength) => "dcs".to_string(),
            FlowKind::Dcs(CostKind::EdgeMatching) => "dcs-edge".to_string(),
            FlowKind::Dcs(CostKind::Hybrid { .. }) => "dcs-hybrid".to_string(),
            FlowKind::Dcs(CostKind::Timing { .. }) => "dcs-timing".to_string(),
            FlowKind::Mdr => "mdr".to_string(),
            FlowKind::Pair => "pair".to_string(),
        }
    }

    /// Cache-key fingerprint (includes hybrid weights exactly).
    #[must_use]
    pub fn fingerprint(&self) -> String {
        match self {
            FlowKind::Dcs(cost) => format!("dcs({})", cost.fingerprint()),
            FlowKind::Mdr => "mdr".to_string(),
            FlowKind::Pair => "pair".to_string(),
        }
    }

    /// Parses `dcs` / `mdr` / `pair` (alias `combined`), with `dcs` cost
    /// selectors `wl` / `edge` / `hybrid:<lambda>` / `timing:<alpha>` as
    /// in the `mmflow` CLI.
    ///
    /// # Errors
    ///
    /// Fails with a description on unknown kinds, on hybrid weights
    /// that are not finite non-negative numbers — NaN and infinities
    /// would poison cost comparisons *and* the stage-cache keys their
    /// bit patterns fingerprint into — and on timing alphas outside
    /// `0..=1` (the cost is a convex wirelength/delay blend).
    pub fn parse(kind: &str, cost: Option<&str>) -> Result<Self, String> {
        let cost_kind = match cost {
            None | Some("wl") => CostKind::WireLength,
            Some("edge") => CostKind::EdgeMatching,
            Some(other) => {
                if let Some(l) = other.strip_prefix("hybrid:") {
                    let alpha: f64 = l.parse().map_err(|_| format!("bad hybrid weight '{l}'"))?;
                    // `is_sign_negative` also rejects -0.0: it is
                    // semantically identical to 0.0 but its bit pattern
                    // would fingerprint into a different cache key.
                    if !alpha.is_finite() || alpha.is_sign_negative() {
                        return Err(format!(
                            "hybrid weight '{l}' must be a finite non-negative number"
                        ));
                    }
                    CostKind::Hybrid {
                        wl_weight: 1.0,
                        edge_weight: alpha,
                    }
                } else if let Some(a) = other.strip_prefix("timing:") {
                    let alpha: f64 = a.parse().map_err(|_| format!("bad timing alpha '{a}'"))?;
                    if !alpha.is_finite() || alpha.is_sign_negative() || alpha > 1.0 {
                        return Err(format!("timing alpha '{a}' must be in 0..=1"));
                    }
                    CostKind::Timing { alpha }
                } else {
                    return Err(format!("unknown cost '{other}'"));
                }
            }
        };
        match kind {
            "dcs" => Ok(FlowKind::Dcs(cost_kind)),
            "mdr" => Ok(FlowKind::Mdr),
            // `combined` is the N-mode-era spelling; identity (records,
            // cache keys) deliberately stays `pair` either way.
            "pair" | "combined" => Ok(FlowKind::Pair),
            other => Err(format!("unknown flow '{other}' (dcs|mdr|pair|combined)")),
        }
    }
}

/// One batch job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Human-readable id, unique within a batch.
    pub name: String,
    /// The mode circuits, in mode order.
    pub circuits: Vec<LutCircuit>,
    /// Which flow to run.
    pub flow: FlowKind,
    /// Flow options (seed, width policy, efforts).
    pub options: FlowOptions,
}

impl Job {
    /// Compiles the job to its typed stage plan: per-mode placement legs
    /// fanning into the summarizing stage for [`FlowKind::Dcs`] /
    /// [`FlowKind::Mdr`], or the three annealing legs joining in the
    /// combine stage for [`FlowKind::Pair`].
    ///
    /// # Errors
    ///
    /// Fails with [`mm_flow::FlowError::Input`] when the mode circuits
    /// do not form a valid multi-mode input (plans only exist for
    /// validated inputs).
    pub fn compile(&self) -> Result<StagePlan, mm_flow::FlowError> {
        let input = MultiModeInput::new(self.circuits.clone())?;
        Ok(match self.flow {
            FlowKind::Dcs(cost) => mm_flow::stage::dcs_plan(input, self.options, cost),
            FlowKind::Mdr => mm_flow::stage::mdr_plan(input, self.options),
            FlowKind::Pair => mm_flow::stage::combined_plan(input, self.options),
        })
    }

    /// A content-addressed scheduling fingerprint: SHA-256 over the
    /// compiled plan's root fingerprint — the same structural identity
    /// the engine's stage cache keys derive from — folded to 64 bits.
    /// The job *name* is deliberately excluded, so identical legs
    /// submitted under different names (or by different clients) hash
    /// identically and a fingerprint-sharded scheduler lands them on the
    /// same worker group, where they hit the same cache entries.
    ///
    /// Jobs whose circuits fail input validation (and therefore cannot
    /// compile to a plan) fall back to hashing the raw ingredients —
    /// flow kind, option fingerprint, canonical BLIFs — so scheduling
    /// never panics on a job that will merely error at execution.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = crate::hash::Sha256::new();
        match self.compile() {
            Ok(plan) => h.field(plan.root_fingerprint().as_bytes()),
            Err(_) => {
                h.field(self.flow.fingerprint().as_bytes());
                h.field(self.options.fingerprint().as_bytes());
                for circuit in &self.circuits {
                    h.field(blif::to_blif(circuit).as_bytes());
                }
            }
        }
        let digest = h.finish();
        u64::from_le_bytes(digest[..8].try_into().expect("SHA-256 yields 32 bytes"))
    }
}

/// What a finished job produced.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// A DCS summary.
    Dcs(DcsSummary),
    /// An MDR summary.
    Mdr(MdrSummary),
    /// The full pairwise comparison metrics.
    Pair(PairMetrics),
}

/// Cache provenance of one job (reported in the summary, not in the
/// result record).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCacheInfo {
    /// The final result came from the cache; nothing was recomputed.
    pub result_hit: bool,
    /// At least one placement stage came from the cache.
    pub placement_hit: bool,
    /// Placement stages served from the cache (a `pair` job has three
    /// annealing legs and can hit 0–3 of them; plain jobs have one).
    pub placement_hits: usize,
    /// Flow stages actually executed (0 on a full hit).
    pub stages_recomputed: usize,
}

/// A structured per-job failure: which stage failed and why.
///
/// One failing job yields exactly one `"status":"error"` record in the
/// JSONL stream (and an error frame over the serve protocol) — never a
/// process abort, and never a missing record for the other jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// The stage that failed: `input`, `place`, `route`, `verify`,
    /// `engine` (scheduling/cancellation) or `timeout` (watchdog).
    pub stage: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl JobError {
    /// An input-validation failure.
    #[must_use]
    pub fn input(message: impl Into<String>) -> Self {
        Self {
            stage: "input",
            message: message.into(),
        }
    }

    /// An engine-level failure (cancellation, lost stage, …).
    #[must_use]
    pub fn engine(message: impl Into<String>) -> Self {
        Self {
            stage: "engine",
            message: message.into(),
        }
    }

    /// A deadline overrun: the scheduler's watchdog declared the job
    /// stuck and produced this record on its behalf.
    #[must_use]
    pub fn timeout(message: impl Into<String>) -> Self {
        Self {
            stage: "timeout",
            message: message.into(),
        }
    }

    /// Maps a flow error onto the stage that raised it.
    #[must_use]
    pub fn from_flow(e: &mm_flow::FlowError) -> Self {
        let stage = match e {
            mm_flow::FlowError::Input(_) => "input",
            mm_flow::FlowError::Place(_) => "place",
            mm_flow::FlowError::Unroutable { .. } | mm_flow::FlowError::UnreachableSinks { .. } => {
                "route"
            }
            mm_flow::FlowError::Internal(_) => "verify",
        };
        Self {
            stage,
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.stage, self.message)
    }
}

impl std::error::Error for JobError {}

/// One job's result.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job's name.
    pub name: String,
    /// The flow that ran.
    pub flow: FlowKind,
    /// Outcome, or the structured failure of the stage that broke.
    pub outcome: Result<JobOutcome, JobError>,
    /// Cache provenance.
    pub cache: JobCacheInfo,
    /// Wall-clock execution time of this job (on whatever worker ran it).
    pub duration: Duration,
    /// Per-stage telemetry from the plan executor: name, wall clock and
    /// cache outcome of every stage node the run touched. Empty for jobs
    /// that failed before compiling to a plan. Never serialized into the
    /// default record — only [`JobResult::to_json_line_with_stages`]
    /// (the `--emit-stage-times` path) renders it.
    pub stages: Vec<StageTiming>,
}

impl JobResult {
    fn record(&self) -> ObjBuilder {
        let b = ObjBuilder::new()
            .field("name", self.name.as_str())
            .field("flow", self.flow.name());
        match &self.outcome {
            Ok(outcome) => b.field("status", "ok").field("metrics", outcome.to_value()),
            Err(e) => b
                .field("status", "error")
                .field("stage", e.stage)
                .field("error", e.message.as_str()),
        }
    }

    /// The deterministic JSONL record: semantic content only, no timings
    /// or cache provenance, so records are byte-identical across serial,
    /// parallel and cached executions.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        self.record().build().to_json()
    }

    /// The default record with a trailing `stages` array appended — one
    /// `{"name", "ms", "cache"}` object per executed stage node. This is
    /// the opt-in `--emit-stage-times` rendering; timings make it
    /// non-deterministic by construction, so it never feeds caches or
    /// golden comparisons.
    #[must_use]
    pub fn to_json_line_with_stages(&self) -> String {
        let stages = Value::Arr(
            self.stages
                .iter()
                .map(|s| {
                    ObjBuilder::new()
                        .field("name", s.name.as_str())
                        .field(
                            "ms",
                            usize::try_from(s.duration.as_millis()).unwrap_or(usize::MAX),
                        )
                        .field("cache", s.cache.as_str())
                        .build()
                })
                .collect(),
        );
        self.record().field("stages", stages).build().to_json()
    }
}

// ---------------------------------------------------------------- to_value

fn cost_value(c: &RewriteCost) -> Value {
    ObjBuilder::new()
        .field("lut_bits", c.lut_bits)
        .field("routing_bits", c.routing_bits)
        .build()
}

fn cost_from(v: &Value) -> Option<RewriteCost> {
    Some(RewriteCost {
        lut_bits: v.get("lut_bits")?.as_usize()?,
        routing_bits: v.get("routing_bits")?.as_usize()?,
    })
}

fn usizes_from(v: &Value) -> Option<Vec<usize>> {
    v.as_arr()?.iter().map(Value::as_usize).collect()
}

fn f64s_from(v: &Value) -> Option<Vec<f64>> {
    v.as_arr()?.iter().map(Value::as_f64).collect()
}

fn tunable_value(t: &TunableStats) -> Value {
    ObjBuilder::new()
        .field("modes", t.modes)
        .field("tunable_luts", t.tunable_luts)
        .field("io_sites", t.io_sites)
        .field("connections", t.connections)
        .field("merged_connections", t.merged_connections)
        .build()
}

fn tunable_from(v: &Value) -> Option<TunableStats> {
    Some(TunableStats {
        modes: v.get("modes")?.as_usize()?,
        tunable_luts: v.get("tunable_luts")?.as_usize()?,
        io_sites: v.get("io_sites")?.as_usize()?,
        connections: v.get("connections")?.as_usize()?,
        merged_connections: v.get("merged_connections")?.as_usize()?,
    })
}

impl JobOutcome {
    /// Serializes for result records and the cache.
    #[must_use]
    pub fn to_value(&self) -> Value {
        match self {
            JobOutcome::Dcs(s) => {
                let mut b = ObjBuilder::new()
                    .field("kind", "dcs")
                    .field("grid", s.grid)
                    .field("channel_width", s.channel_width)
                    .field("modes", s.modes)
                    .field("param_bits", s.param_bits)
                    .field("static_on_bits", s.static_on_bits)
                    .field("dcs_cost", cost_value(&s.dcs_cost))
                    .field("mdr_cost", cost_value(&s.mdr_cost))
                    .field("speedup", mm_bitstream::speedup(&s.mdr_cost, &s.dcs_cost))
                    .field("wires", s.wires.clone());
                // Emitted only for timing-cost jobs: default records must
                // stay byte-identical to pre-timing builds.
                if let Some(cp) = &s.critical_paths {
                    b = b.field("critical_paths", cp.clone());
                }
                b.field("tunable", tunable_value(&s.tunable)).build()
            }
            JobOutcome::Mdr(s) => ObjBuilder::new()
                .field("kind", "mdr")
                .field("grid", s.grid)
                .field("channel_width", s.channel_width)
                .field("modes", s.modes)
                .field("mdr_cost", cost_value(&s.mdr_cost))
                .field("avg_diff_cost", cost_value(&s.avg_diff_cost))
                .field("wires", s.wires.clone())
                .build(),
            JobOutcome::Pair(m) => ObjBuilder::new()
                .field("kind", "pair")
                .field("grid", m.grid)
                .field("width_mdr", m.width_mdr)
                .field("width_edge", m.width_edge)
                .field("width_wirelength", m.width_wirelength)
                .field("mdr", cost_value(&m.mdr))
                .field("diff", cost_value(&m.diff))
                .field("dcs_edge", cost_value(&m.dcs_edge))
                .field("dcs_wirelength", cost_value(&m.dcs_wirelength))
                .field("speedup_edge", m.speedup_edge())
                .field("speedup_wirelength", m.speedup_wirelength())
                .field("wires_mdr", m.wires_mdr)
                .field("wires_edge", m.wires_edge)
                .field("wires_wirelength", m.wires_wirelength)
                .field("tunable", tunable_value(&m.tunable_stats))
                .field("mode_luts", m.mode_luts.clone())
                .build(),
        }
    }

    /// Deserializes a cached outcome; `name` rebuilds the pair id.
    #[must_use]
    pub fn from_value(v: &Value, name: &str) -> Option<Self> {
        match v.get("kind")?.as_str()? {
            "dcs" => Some(JobOutcome::Dcs(DcsSummary {
                grid: v.get("grid")?.as_usize()?,
                channel_width: v.get("channel_width")?.as_usize()?,
                modes: v.get("modes")?.as_usize()?,
                param_bits: v.get("param_bits")?.as_usize()?,
                static_on_bits: v.get("static_on_bits")?.as_usize()?,
                dcs_cost: cost_from(v.get("dcs_cost")?)?,
                mdr_cost: cost_from(v.get("mdr_cost")?)?,
                wires: usizes_from(v.get("wires")?)?,
                critical_paths: match v.get("critical_paths") {
                    Some(cp) => Some(f64s_from(cp)?),
                    None => None,
                },
                tunable: tunable_from(v.get("tunable")?)?,
            })),
            "mdr" => Some(JobOutcome::Mdr(MdrSummary {
                grid: v.get("grid")?.as_usize()?,
                channel_width: v.get("channel_width")?.as_usize()?,
                modes: v.get("modes")?.as_usize()?,
                mdr_cost: cost_from(v.get("mdr_cost")?)?,
                avg_diff_cost: cost_from(v.get("avg_diff_cost")?)?,
                wires: usizes_from(v.get("wires")?)?,
            })),
            "pair" => Some(JobOutcome::Pair(PairMetrics {
                name: name.to_string(),
                grid: v.get("grid")?.as_usize()?,
                width_mdr: v.get("width_mdr")?.as_usize()?,
                width_edge: v.get("width_edge")?.as_usize()?,
                width_wirelength: v.get("width_wirelength")?.as_usize()?,
                mdr: cost_from(v.get("mdr")?)?,
                diff: cost_from(v.get("diff")?)?,
                dcs_edge: cost_from(v.get("dcs_edge")?)?,
                dcs_wirelength: cost_from(v.get("dcs_wirelength")?)?,
                wires_mdr: v.get("wires_mdr")?.as_f64()?,
                wires_edge: v.get("wires_edge")?.as_f64()?,
                wires_wirelength: v.get("wires_wirelength")?.as_f64()?,
                tunable_stats: tunable_from(v.get("tunable")?)?,
                mode_luts: usizes_from(v.get("mode_luts")?)?,
            })),
            _ => None,
        }
    }
}

// --------------------------------------------------- placement serialization

/// Serializes one mode's placement, aligned with the circuit's
/// `block_ids()` order.
fn placement_value(circuit: &LutCircuit, placement: &Placement) -> Value {
    Value::Arr(
        circuit
            .block_ids()
            .map(|id| {
                let site = placement.site_of(id);
                Value::Arr(vec![
                    Value::from(usize::from(site.x)),
                    Value::from(usize::from(site.y)),
                    Value::from(usize::from(site.sub)),
                ])
            })
            .collect(),
    )
}

fn placement_from(circuit: &LutCircuit, v: &Value) -> Option<Placement> {
    let sites = v.as_arr()?;
    if sites.len() != circuit.block_count() {
        return None;
    }
    let mut p = Placement::new(circuit.block_count());
    for (id, site) in circuit.block_ids().zip(sites) {
        let parts = site.as_arr()?;
        let [x, y, sub] = parts else { return None };
        p.assign(
            id,
            mm_arch_site(x.as_usize()?, y.as_usize()?, sub.as_usize()?)?,
        );
    }
    Some(p)
}

fn mm_arch_site(x: usize, y: usize, sub: usize) -> Option<mm_arch::Site> {
    Some(mm_arch::Site::new(
        u16::try_from(x).ok()?,
        u16::try_from(y).ok()?,
        u8::try_from(sub).ok()?,
    ))
}

/// Serializes the per-mode placements of a job (DCS combined placement
/// or MDR independent placements — both are one `Placement` per mode).
#[must_use]
pub fn placements_value(circuits: &[LutCircuit], modes: &[Placement]) -> Value {
    Value::Arr(
        circuits
            .iter()
            .zip(modes)
            .map(|(c, p)| placement_value(c, p))
            .collect(),
    )
}

/// Deserializes per-mode placements; `None` on any shape mismatch (the
/// caller treats that as a cache miss).
#[must_use]
pub fn placements_from(circuits: &[LutCircuit], v: &Value) -> Option<Vec<Placement>> {
    let modes = v.as_arr()?;
    if modes.len() != circuits.len() {
        return None;
    }
    circuits
        .iter()
        .zip(modes)
        .map(|(c, pv)| placement_from(c, pv))
        .collect()
}

/// Deserializes a combined placement.
#[must_use]
pub fn multi_placement_from(circuits: &[LutCircuit], v: &Value) -> Option<MultiPlacement> {
    placements_from(circuits, v).map(|modes| MultiPlacement { modes })
}

// ------------------------------------------------------------ spec loading

/// Where a batch came from, for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecSource {
    /// A JSON spec file.
    File,
    /// A directory of BLIF mode groups.
    Directory,
    /// A generated suite.
    Suite,
}

/// A parsed batch: jobs plus provenance.
#[derive(Debug)]
pub struct BatchSpec {
    /// The jobs, in declaration order.
    pub jobs: Vec<Job>,
    /// Where they came from.
    pub source: SpecSource,
}

/// Loads a batch from `spec`:
///
/// * `suite:<regexp|fir|mcnc|deeplogic|broadcast>[:<modes>]` — the
///   paper's multi-mode
///   combinations of a generated suite; the optional `:<modes>` suffix
///   selects the mode count per problem (default 2 — the paper's
///   pairings);
/// * a directory — every subdirectory holding `.blif` files becomes one
///   job (modes in filename order, any count);
/// * anything else — a JSON spec file (see the module docs; each job's
///   `"modes"` array carries the mode list, any length).
///
/// `base` supplies the flow options jobs inherit; spec files can
/// override seed/width/cost/flow per job or via `"defaults"`. `k` is
/// the LUT width used to parse directory BLIFs and to map generated
/// suites (spec files may override it with their own `"k"`).
///
/// # Errors
///
/// Fails with a description of the first malformed entry.
pub fn load_spec(spec: &str, base: &FlowOptions, k: usize) -> Result<BatchSpec, String> {
    load_spec_with_modes(spec, base, k, None)
}

/// [`load_spec`] with an external mode-count override for generated
/// suites — what `mmflow batch|submit --modes N` and the serve
/// protocol's `modes` member resolve through. An explicit
/// `suite:<name>:<modes>` suffix wins over `modes`; a `modes` override
/// on a non-suite spec is an error (files and directories already carry
/// their own mode lists).
///
/// # Errors
///
/// Fails with a description of the first malformed entry.
pub fn load_spec_with_modes(
    spec: &str,
    base: &FlowOptions,
    k: usize,
    modes: Option<usize>,
) -> Result<BatchSpec, String> {
    if let Some(suite) = spec.strip_prefix("suite:") {
        let (name, inline) = match suite.split_once(':') {
            Some((name, m)) => {
                let m: usize = m
                    .parse()
                    .map_err(|_| format!("bad suite mode count '{m}' in '{spec}'"))?;
                (name, Some(m))
            }
            None => (suite, None),
        };
        return Ok(BatchSpec {
            jobs: suite_jobs_n(name, base, k, inline.or(modes).unwrap_or(2))?,
            source: SpecSource::Suite,
        });
    }
    if modes.is_some() {
        return Err(format!(
            "a mode count applies only to generated suites (suite:<name>); \
             '{spec}' carries its own mode lists"
        ));
    }
    let path = Path::new(spec);
    if path.is_dir() {
        return Ok(BatchSpec {
            jobs: directory_jobs(path, base, k)?,
            source: SpecSource::Directory,
        });
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("{spec}: {e}"))?;
    Ok(BatchSpec {
        jobs: spec_file_jobs(&text, path, base, k)?,
        source: SpecSource::File,
    })
}

/// The paper's multi-mode pairings of one generated suite as jobs
/// (named `<a>+<b>`), mapped to `k`-LUTs, with `base` options and the
/// DCS wire-length flow.
///
/// # Errors
///
/// Fails on unknown suite names.
pub fn suite_jobs(suite: &str, base: &FlowOptions, k: usize) -> Result<Vec<Job>, String> {
    suite_jobs_n(suite, base, k, 2)
}

/// The `modes`-ary combinations of one generated suite as jobs (named
/// `<a>+<b>+…`), mapped to `k`-LUTs, with `base` options and the DCS
/// wire-length flow. `modes == 2` reproduces [`suite_jobs`] exactly.
///
/// RegExp and MCNC enumerate every ascending combination of `modes`
/// circuits out of the five; FIR interleaves the low-pass and high-pass
/// families ([`mm_gen::fir_mode_tuples`]).
///
/// # Errors
///
/// Fails on unknown suite names and on mode counts the suite cannot
/// supply.
pub fn suite_jobs_n(
    suite: &str,
    base: &FlowOptions,
    k: usize,
    modes: usize,
) -> Result<Vec<Job>, String> {
    if modes < 2 {
        return Err(format!(
            "suite '{suite}' needs at least 2 modes per problem, got {modes}"
        ));
    }
    let (circuits, tuples) = match suite {
        "regexp" => (
            mm_gen::regexp_suite(k),
            mm_gen::all_tuples(mm_gen::SUITE_SIZE, modes),
        ),
        "fir" => (mm_gen::fir_suite(k), mm_gen::fir_mode_tuples(modes)),
        "mcnc" => (
            mm_gen::mcnc_suite(k),
            mm_gen::all_tuples(mm_gen::SUITE_SIZE, modes),
        ),
        "deeplogic" => (
            mm_gen::deeplogic_suite(k),
            mm_gen::all_tuples(mm_gen::SUITE_SIZE, modes),
        ),
        "broadcast" => (
            mm_gen::broadcast_suite(k),
            mm_gen::all_tuples(mm_gen::SUITE_SIZE, modes),
        ),
        other => {
            return Err(format!(
                "unknown suite '{other}' (regexp|fir|mcnc|deeplogic|broadcast)"
            ))
        }
    };
    if tuples.is_empty() || tuples[0].len() != modes {
        return Err(format!(
            "suite '{suite}' has only {} circuits — cannot form {modes}-mode problems",
            circuits.len()
        ));
    }
    Ok(tuples
        .into_iter()
        .map(|tuple| Job {
            name: tuple
                .iter()
                .map(|&i| circuits[i].name().to_string())
                .collect::<Vec<_>>()
                .join("+"),
            circuits: tuple.iter().map(|&i| circuits[i].clone()).collect(),
            flow: FlowKind::Dcs(CostKind::WireLength),
            options: *base,
        })
        .collect())
}

fn directory_jobs(dir: &Path, base: &FlowOptions, k: usize) -> Result<Vec<Job>, String> {
    let mut groups: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.is_dir())
        .collect();
    groups.sort();
    if groups.is_empty() {
        return Err(format!(
            "{}: no subdirectories (each job is one directory of mode .blif files)",
            dir.display()
        ));
    }
    let mut jobs = Vec::new();
    for group in groups {
        let mut modes: Vec<std::path::PathBuf> = std::fs::read_dir(&group)
            .map_err(|e| format!("{}: {e}", group.display()))?
            .filter_map(Result::ok)
            .map(|entry| entry.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "blif"))
            .collect();
        modes.sort();
        if modes.is_empty() {
            continue;
        }
        let name = group
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "job".to_string());
        jobs.push(Job {
            name,
            circuits: read_modes(&modes, k)?,
            flow: FlowKind::Dcs(CostKind::WireLength),
            options: *base,
        });
    }
    if jobs.is_empty() {
        return Err(format!("{}: no BLIF mode groups found", dir.display()));
    }
    Ok(jobs)
}

fn read_modes(paths: &[std::path::PathBuf], k: usize) -> Result<Vec<LutCircuit>, String> {
    paths
        .iter()
        .map(|p| {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
            blif::from_blif(&text, k).map_err(|e| format!("{}: {e}", p.display()))
        })
        .collect()
}

fn spec_file_jobs(
    text: &str,
    path: &Path,
    base: &FlowOptions,
    default_k: usize,
) -> Result<Vec<Job>, String> {
    let doc = json::parse(text).map_err(|e| format!("{}: {e}", path.display()))?;
    let k = doc
        .get("k")
        .map(|v| v.as_usize().ok_or("\"k\" must be a non-negative integer"))
        .transpose()?
        .unwrap_or(default_k);
    let defaults = doc.get("defaults");
    let jobs_value = doc
        .get("jobs")
        .and_then(Value::as_arr)
        .ok_or("spec needs a \"jobs\" array")?;
    let spec_dir = path.parent().unwrap_or(Path::new("."));

    let mut jobs = Vec::with_capacity(jobs_value.len());
    for (index, jv) in jobs_value.iter().enumerate() {
        let job = parse_job(jv, index, defaults, spec_dir, base, k)
            .map_err(|e| format!("{} job {index}: {e}", path.display()))?;
        jobs.push(job);
    }
    if jobs.is_empty() {
        return Err(format!("{}: empty \"jobs\" array", path.display()));
    }
    Ok(jobs)
}

fn lookup<'v>(jv: &'v Value, defaults: Option<&'v Value>, key: &str) -> Option<&'v Value> {
    jv.get(key).or_else(|| defaults.and_then(|d| d.get(key)))
}

/// Seeds are 64-bit, but JSON numbers round-trip exactly only up to
/// 2^53 — larger seeds must be written as strings (decimal or `0x…`)
/// so the requested seed is never silently rounded to a neighbour.
/// Shared with the serve protocol, which carries the same seed field.
pub(crate) fn parse_seed(v: &Value) -> Result<u64, String> {
    if let Some(n) = v.as_u64() {
        return Ok(n);
    }
    if let Some(s) = v.as_str() {
        let parsed = match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        };
        return parsed.map_err(|_| format!("bad seed '{s}'"));
    }
    Err("\"seed\" must be an integer below 2^53 or a decimal/0x string".to_string())
}

fn parse_job(
    jv: &Value,
    index: usize,
    defaults: Option<&Value>,
    spec_dir: &Path,
    base: &FlowOptions,
    k: usize,
) -> Result<Job, String> {
    let modes = jv
        .get("modes")
        .and_then(Value::as_arr)
        .ok_or("needs a \"modes\" array of BLIF paths")?;
    let paths: Vec<std::path::PathBuf> = modes
        .iter()
        .map(|m| {
            m.as_str()
                .map(|s| spec_dir.join(s))
                .ok_or_else(|| "mode paths must be strings".to_string())
        })
        .collect::<Result<_, _>>()?;
    let circuits = read_modes(&paths, k)?;

    let name = jv
        .get("name")
        .and_then(Value::as_str)
        .map(ToString::to_string)
        .unwrap_or_else(|| format!("job{index}"));

    let flow_name = lookup(jv, defaults, "flow")
        .map(|v| v.as_str().ok_or("\"flow\" must be a string"))
        .transpose()?
        .unwrap_or("dcs");
    let cost = lookup(jv, defaults, "cost")
        .map(|v| v.as_str().ok_or("\"cost\" must be a string"))
        .transpose()?;
    let flow = FlowKind::parse(flow_name, cost)?;

    let mut options = *base;
    if let Some(seed) = lookup(jv, defaults, "seed") {
        options.placer.seed = parse_seed(seed)?;
    }
    if let Some(width) = lookup(jv, defaults, "width") {
        options.width = WidthChoice::Fixed(width.as_usize().ok_or("\"width\" must be an integer")?);
    }
    if let Some(effort) = lookup(jv, defaults, "effort") {
        options.placer.inner_num = effort.as_f64().ok_or("\"effort\" must be a number")?;
    }
    if let Some(iters) = lookup(jv, defaults, "max_iterations") {
        options.router.max_iterations = iters
            .as_usize()
            .ok_or("\"max_iterations\" must be an integer")?;
    }
    if let Some(max_width) = lookup(jv, defaults, "max_width") {
        options.max_width = max_width
            .as_usize()
            .ok_or("\"max_width\" must be an integer")?;
    }
    if let Some(fanout) = lookup(jv, defaults, "steiner_fanout") {
        options.router.steiner_fanout = fanout
            .as_usize()
            .ok_or("\"steiner_fanout\" must be an integer")?;
    }
    Ok(Job {
        name,
        circuits,
        flow,
        options,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_flow::stage::CacheOutcome;
    use mm_netlist::TruthTable;

    fn tiny(name: &str) -> LutCircuit {
        let mut c = LutCircuit::new(name, 4);
        let a = c.add_input("a").unwrap();
        let g = c
            .add_lut("g", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        c.add_output("y", g).unwrap();
        c
    }

    #[test]
    fn job_fingerprints_are_content_addressed() {
        let job = |name: &str, circuit: &str, flow: FlowKind| Job {
            name: name.to_string(),
            circuits: vec![tiny(circuit)],
            flow,
            options: FlowOptions::default(),
        };
        let base = job("a", "m0", FlowKind::Mdr);
        // Same content under a different name ⇒ the same shard.
        assert_eq!(
            base.fingerprint(),
            job("b", "m0", FlowKind::Mdr).fingerprint()
        );
        // Different circuits, flow kind or options ⇒ different keys.
        assert_ne!(
            base.fingerprint(),
            job("a", "m1", FlowKind::Mdr).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            job("a", "m0", FlowKind::Pair).fingerprint()
        );
        let mut tweaked = base.clone();
        tweaked.options.placer.seed ^= 1;
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn flow_kind_parsing() {
        assert_eq!(
            FlowKind::parse("dcs", None).unwrap(),
            FlowKind::Dcs(CostKind::WireLength)
        );
        assert_eq!(
            FlowKind::parse("dcs", Some("edge")).unwrap(),
            FlowKind::Dcs(CostKind::EdgeMatching)
        );
        assert!(matches!(
            FlowKind::parse("dcs", Some("hybrid:1.5")).unwrap(),
            FlowKind::Dcs(CostKind::Hybrid { .. })
        ));
        assert!(matches!(
            FlowKind::parse("dcs", Some("timing:0.5")).unwrap(),
            FlowKind::Dcs(CostKind::Timing { .. })
        ));
        assert_eq!(
            FlowKind::parse("dcs", Some("timing:0.5")).unwrap().name(),
            "dcs-timing"
        );
        assert_eq!(FlowKind::parse("mdr", None).unwrap(), FlowKind::Mdr);
        assert_eq!(FlowKind::parse("pair", None).unwrap(), FlowKind::Pair);
        assert!(FlowKind::parse("zzz", None).is_err());
        assert!(FlowKind::parse("dcs", Some("banana")).is_err());
    }

    #[test]
    fn hybrid_weights_must_be_finite_and_non_negative() {
        for bad in [
            "hybrid:NaN",
            "hybrid:nan",
            "hybrid:-1",
            "hybrid:-0.5",
            "hybrid:-0",
        ] {
            let err = FlowKind::parse("dcs", Some(bad)).unwrap_err();
            assert!(err.contains("finite non-negative"), "{bad}: {err}");
        }
        for bad in ["hybrid:inf", "hybrid:-inf", "hybrid:infinity"] {
            assert!(FlowKind::parse("dcs", Some(bad)).is_err(), "{bad}");
        }
        assert!(FlowKind::parse("dcs", Some("hybrid:")).is_err());
        assert!(FlowKind::parse("dcs", Some("hybrid:two")).is_err());
        // Zero and ordinary values stay accepted (zero degrades to pure
        // wire length but fingerprints deterministically).
        assert!(FlowKind::parse("dcs", Some("hybrid:0")).is_ok());
        assert!(FlowKind::parse("dcs", Some("hybrid:2.5")).is_ok());
    }

    #[test]
    fn timing_alpha_must_be_a_unit_interval_number() {
        for bad in [
            "timing:NaN",
            "timing:-0.1",
            "timing:-0",
            "timing:1.5",
            "timing:inf",
            "timing:",
            "timing:half",
        ] {
            assert!(FlowKind::parse("dcs", Some(bad)).is_err(), "{bad}");
        }
        assert_eq!(
            FlowKind::parse("dcs", Some("timing:0")).unwrap(),
            FlowKind::Dcs(CostKind::Timing { alpha: 0.0 })
        );
        assert_eq!(
            FlowKind::parse("dcs", Some("timing:1")).unwrap(),
            FlowKind::Dcs(CostKind::Timing { alpha: 1.0 })
        );
    }

    #[test]
    fn outcome_roundtrips_through_value() {
        let dcs = JobOutcome::Dcs(DcsSummary {
            grid: 6,
            channel_width: 12,
            modes: 2,
            param_bits: 31,
            static_on_bits: 200,
            dcs_cost: RewriteCost {
                lut_bits: 576,
                routing_bits: 31,
            },
            mdr_cost: RewriteCost {
                lut_bits: 576,
                routing_bits: 4000,
            },
            wires: vec![120, 130],
            critical_paths: None,
            tunable: TunableStats {
                modes: 2,
                tunable_luts: 22,
                io_sites: 9,
                connections: 70,
                merged_connections: 12,
            },
        });
        let back = JobOutcome::from_value(&dcs.to_value(), "x").unwrap();
        assert_eq!(back, dcs);

        // Timing jobs carry per-mode critical paths; the field must
        // round-trip (and stay absent from the serialized default above).
        assert!(!dcs.to_value().to_json().contains("critical_paths"));
        let timed = match &dcs {
            JobOutcome::Dcs(s) => JobOutcome::Dcs(DcsSummary {
                critical_paths: Some(vec![10.0, 12.5]),
                ..s.clone()
            }),
            _ => unreachable!(),
        };
        let back = JobOutcome::from_value(&timed.to_value(), "x").unwrap();
        assert_eq!(back, timed);

        let pair = JobOutcome::Pair(PairMetrics {
            name: "p".into(),
            grid: 6,
            width_mdr: 10,
            width_edge: 12,
            width_wirelength: 11,
            mdr: RewriteCost {
                lut_bits: 576,
                routing_bits: 4000,
            },
            diff: RewriteCost {
                lut_bits: 576,
                routing_bits: 900,
            },
            dcs_edge: RewriteCost {
                lut_bits: 576,
                routing_bits: 60,
            },
            dcs_wirelength: RewriteCost {
                lut_bits: 576,
                routing_bits: 40,
            },
            wires_mdr: 120.5,
            wires_edge: 150.25,
            wires_wirelength: 140.75,
            tunable_stats: TunableStats {
                modes: 2,
                tunable_luts: 22,
                io_sites: 9,
                connections: 70,
                merged_connections: 12,
            },
            mode_luts: vec![20, 22],
        });
        let back = JobOutcome::from_value(&pair.to_value(), "p").unwrap();
        match (&back, &pair) {
            (JobOutcome::Pair(a), JobOutcome::Pair(b)) => {
                assert_eq!(a.name, b.name);
                assert_eq!(a.mdr, b.mdr);
                assert_eq!(a.wires_edge, b.wires_edge);
                assert_eq!(a.tunable_stats, b.tunable_stats);
            }
            _ => panic!("wrong kind"),
        }
    }

    #[test]
    fn placements_roundtrip_and_reject_mismatch() {
        let circuits = vec![tiny("a"), tiny("b")];
        let arch = mm_arch::Architecture::new(4, 3, 4);
        let sites: Vec<mm_arch::Site> = arch.logic_sites().collect();
        let ios: Vec<mm_arch::Site> = arch.io_sites().collect();
        let mut modes = Vec::new();
        for c in &circuits {
            let mut p = Placement::new(c.block_count());
            let mut li = 0;
            let mut ii = 0;
            for id in c.block_ids() {
                if c.block(id).is_lut() {
                    p.assign(id, sites[li]);
                    li += 1;
                } else {
                    p.assign(id, ios[ii]);
                    ii += 1;
                }
            }
            modes.push(p);
        }
        let v = placements_value(&circuits, &modes);
        let back = placements_from(&circuits, &v).unwrap();
        for (c, (orig, rt)) in circuits.iter().zip(modes.iter().zip(&back)) {
            for id in c.block_ids() {
                assert_eq!(orig.site_of(id), rt.site_of(id));
            }
        }
        // A different circuit shape must be rejected, not misapplied.
        let other = vec![tiny("a")];
        assert!(placements_from(&other, &v).is_none());
        assert!(multi_placement_from(&circuits, &Value::Null).is_none());
    }

    #[test]
    fn spec_file_parses_with_defaults_and_overrides() {
        let dir = std::env::temp_dir().join(format!("mm_engine_spec_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["a", "b"] {
            std::fs::write(dir.join(format!("{name}.blif")), blif::to_blif(&tiny(name))).unwrap();
        }
        let spec_path = dir.join("suite.json");
        std::fs::write(
            &spec_path,
            r#"{
              "k": 4,
              "defaults": {"flow": "dcs", "seed": 11, "width": 8, "max_width": 24},
              "jobs": [
                {"name": "first", "modes": ["a.blif", "b.blif"]},
                {"modes": ["b.blif", "a.blif"], "flow": "mdr", "seed": 99},
                {"modes": ["a.blif"], "cost": "edge"}
              ]
            }"#,
        )
        .unwrap();
        let batch = load_spec(spec_path.to_str().unwrap(), &FlowOptions::default(), 4).unwrap();
        assert_eq!(batch.source, SpecSource::File);
        assert_eq!(batch.jobs.len(), 3);
        assert_eq!(batch.jobs[0].name, "first");
        assert_eq!(batch.jobs[0].options.placer.seed, 11);
        assert_eq!(batch.jobs[0].options.width, WidthChoice::Fixed(8));
        assert_eq!(batch.jobs[0].options.max_width, 24);
        assert_eq!(batch.jobs[1].name, "job1");
        assert_eq!(batch.jobs[1].flow, FlowKind::Mdr);
        assert_eq!(batch.jobs[1].options.placer.seed, 99);
        assert_eq!(batch.jobs[2].flow, FlowKind::Dcs(CostKind::EdgeMatching));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn directory_spec_discovers_mode_groups() {
        let dir = std::env::temp_dir().join(format!("mm_engine_dir_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for group in ["g1", "g0"] {
            std::fs::create_dir_all(dir.join(group)).unwrap();
            for name in ["m0", "m1"] {
                std::fs::write(
                    dir.join(group).join(format!("{name}.blif")),
                    blif::to_blif(&tiny(name)),
                )
                .unwrap();
            }
        }
        // A stray non-BLIF file and an empty dir are ignored.
        std::fs::write(dir.join("g0").join("notes.txt"), "x").unwrap();
        std::fs::create_dir_all(dir.join("empty")).unwrap();

        let batch = load_spec(dir.to_str().unwrap(), &FlowOptions::default(), 4).unwrap();
        assert_eq!(batch.source, SpecSource::Directory);
        let names: Vec<&str> = batch.jobs.iter().map(|j| j.name.as_str()).collect();
        assert_eq!(names, vec!["g0", "g1"], "sorted, deterministic");
        assert_eq!(batch.jobs[0].circuits.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(load_spec("suite:nope", &FlowOptions::default(), 4).is_err());
        assert!(load_spec("/nonexistent/spec.json", &FlowOptions::default(), 4).is_err());
    }

    #[test]
    fn suite_mode_counts_are_validated() {
        let base = FlowOptions::default();
        // Malformed or infeasible counts fail before any circuit is
        // generated (the checks precede suite synthesis).
        assert!(load_spec("suite:regexp:x", &base, 4).is_err());
        let err = load_spec("suite:regexp:1", &base, 4).unwrap_err();
        assert!(err.contains("at least 2 modes"), "{err}");
        assert!(load_spec_with_modes("suite:nope", &base, 4, Some(3)).is_err());
        // A mode-count override only applies to generated suites.
        let err = load_spec_with_modes("/nonexistent/spec.json", &base, 4, Some(3)).unwrap_err();
        assert!(err.contains("generated suites"), "{err}");
    }

    #[test]
    fn combined_flow_alias_parses_and_keeps_pair_identity() {
        assert_eq!(FlowKind::parse("combined", None).unwrap(), FlowKind::Pair);
        assert_eq!(FlowKind::parse("combined", None).unwrap().name(), "pair");
        assert_eq!(
            FlowKind::parse("combined", None).unwrap().fingerprint(),
            FlowKind::parse("pair", None).unwrap().fingerprint(),
            "both spellings share cache entries"
        );
    }

    #[test]
    fn seed_precision_is_protected() {
        assert_eq!(parse_seed(&Value::Num(7.0)).unwrap(), 7);
        assert_eq!(
            parse_seed(&Value::Num(9_007_199_254_740_991.0)).unwrap(),
            (1 << 53) - 1
        );
        // From 2^53 a JSON number may already be a rounded neighbour
        // (2^53 + 1 parses to exactly 2^53): reject.
        assert!(parse_seed(&Value::Num(9_007_199_254_740_992.0)).is_err());
        assert!(parse_seed(&Value::Num(1.8446744073709552e19)).is_err());
        // Full 64-bit seeds go through strings.
        assert_eq!(
            parse_seed(&Value::Str("18446744073709551615".into())).unwrap(),
            u64::MAX
        );
        assert_eq!(
            parse_seed(&Value::Str("0xdeadbeef".into())).unwrap(),
            0xdead_beef
        );
        assert!(parse_seed(&Value::Str("banana".into())).is_err());
        assert!(parse_seed(&Value::Bool(true)).is_err());
    }

    #[test]
    fn result_line_shapes() {
        let ok = JobResult {
            name: "j".into(),
            flow: FlowKind::Mdr,
            outcome: Ok(JobOutcome::Mdr(MdrSummary {
                grid: 5,
                channel_width: 8,
                modes: 2,
                mdr_cost: RewriteCost {
                    lut_bits: 400,
                    routing_bits: 3000,
                },
                avg_diff_cost: RewriteCost {
                    lut_bits: 400,
                    routing_bits: 700,
                },
                wires: vec![90, 95],
            })),
            cache: JobCacheInfo::default(),
            duration: Duration::from_millis(5),
            stages: vec![StageTiming {
                name: "place-mdr".into(),
                kind: mm_flow::stage::ArtifactKind::MdrPlacements,
                cache: CacheOutcome::Miss,
                duration: Duration::from_millis(12),
            }],
        };
        let line = ok.to_json_line();
        assert!(
            line.starts_with(r#"{"name":"j","flow":"mdr","status":"ok""#),
            "{line}"
        );
        assert!(!line.contains("duration"), "no timing in records");
        assert!(
            !line.contains("stages"),
            "stage telemetry never leaks into default records: {line}"
        );

        // The opt-in rendering is the default record plus a trailing
        // stages array.
        let with_stages = ok.to_json_line_with_stages();
        assert!(
            with_stages.starts_with(&line[..line.len() - 1]),
            "{with_stages}"
        );
        assert!(
            with_stages.ends_with(r#","stages":[{"name":"place-mdr","ms":12,"cache":"miss"}]}"#),
            "{with_stages}"
        );

        let err = JobResult {
            name: "j".into(),
            flow: FlowKind::Pair,
            outcome: Err(JobError {
                stage: "route",
                message: "boom".into(),
            }),
            cache: JobCacheInfo::default(),
            duration: Duration::ZERO,
            stages: Vec::new(),
        };
        assert_eq!(
            err.to_json_line(),
            r#"{"name":"j","flow":"pair","status":"error","stage":"route","error":"boom"}"#
        );
        assert_eq!(
            err.to_json_line_with_stages(),
            r#"{"name":"j","flow":"pair","status":"error","stage":"route","error":"boom","stages":[]}"#,
            "error records still carry an (empty) stages array when asked"
        );
    }
}
