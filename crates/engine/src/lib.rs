//! # mm-engine — parallel batch execution with stage caching
//!
//! The paper's flow solves one multi-mode problem at a time; real
//! evaluation workloads (the Fig. 5–7 sweeps, design-space exploration,
//! CI suites) run dozens to thousands of independent problems. This
//! crate turns the flow into a batch system:
//!
//! * **[`Job`]** — one multi-mode problem + flow kind + options; batches
//!   come from JSON spec files, directories of BLIF mode groups, or the
//!   generated suites ([`load_spec`]).
//! * **[`Engine`]** — fans jobs out across a work-stealing thread pool;
//!   results stream in job order and are byte-identical to a sequential
//!   run under the same seeds.
//! * **Stage cache** — a content-addressed on-disk store ([`StageCache`])
//!   keyed by SHA-256 of (mode BLIFs, architecture, options, stage), so
//!   re-runs and shared sub-stages (same mode group + placement seed)
//!   are loaded instead of recomputed. Corrupted entries degrade to
//!   recomputation, never to wrong results.
//!
//! # Example
//!
//! ```no_run
//! use mm_engine::{load_spec, Engine, EngineOptions};
//! use mm_flow::FlowOptions;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let batch = load_spec("suite:regexp", &FlowOptions::default(), 4)?;
//! let engine = Engine::new(EngineOptions {
//!     threads: 0, // one per CPU
//!     cache_dir: Some(".mmcache".into()),
//!     ..Default::default()
//! })?;
//! let report = engine.run_streamed(batch.jobs, |r| println!("{}", r.to_json_line()));
//! eprintln!("{}", report.summary_json());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod engine;
pub mod faultpoint;
pub mod hash;
mod job;
pub mod json;
pub mod protocol;
/// The work-stealing pool now lives in `mm-flow` so flows can
/// parallelize *inside* one job; re-exported here for compatibility.
pub use mm_flow::pool;

pub use cache::{CacheStats, GcSummary, StageCache};
pub use engine::{BatchReport, Engine, EngineOptions, EngineStats};
pub use job::{
    load_spec, load_spec_with_modes, multi_placement_from, placements_from, placements_value,
    suite_jobs, suite_jobs_n, BatchSpec, DcsSummary, FlowKind, Job, JobCacheInfo, JobError,
    JobOutcome, JobResult, MdrSummary, SpecSource,
};

// Everything crossing a worker-thread boundary must be Send + Sync.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Job>();
    assert_send_sync::<JobResult>();
    assert_send_sync::<Engine>();
    assert_send_sync::<StageCache>();
};
