//! The `mmflow serve` wire protocol: newline-delimited JSON frames.
//!
//! A serve session is one bidirectional byte stream (Unix or TCP
//! socket). Both directions are line-oriented JSON:
//!
//! * **client → server** — one object per line, tagged by a `"cmd"`
//!   member: [`Request::Batch`] submits a batch spec, [`Request::Ping`]
//!   probes liveness, [`Request::Shutdown`] asks the server to stop
//!   accepting and drain.
//! * **server → client** — per-job result records are streamed **raw**:
//!   exactly the bytes `mmflow batch` writes ([`crate::JobResult::to_json_line`]),
//!   which is what makes serve output byte-identical to batch output.
//!   Every other server line is a typed [`Frame`], an object carrying a
//!   `"type"` member. Result records never contain a top-level `"type"`
//!   member (their fields are `name`/`flow`/`status`/…), so the two are
//!   unambiguous; [`classify`] implements that split for clients.
//!
//! One batch exchange is:
//!
//! ```text
//! C: {"cmd":"batch","spec":"suite:fir","k":4,"seed":7}
//! S: {"type":"accepted","jobs":25}
//! S: {"name":"fir5+fir7","flow":"dcs","status":"ok","metrics":{…}}
//! S: …one raw record line per job, in job order…
//! S: {"type":"summary","summary":{"jobs":25,"ok":24,"failed":1,…}}
//! ```
//!
//! A job that fails yields a raw record with `"status":"error"` plus the
//! failing stage — the batch still completes and the summary still
//! arrives. A *request*-level failure (unparsable frame, unknown spec)
//! yields one `{"type":"error",…}` frame instead of the
//! accepted/records/summary sequence; the connection stays usable.

use crate::job::parse_seed;
use crate::json::{self, ObjBuilder, Value};
use mm_flow::{FlowOptions, WidthChoice};

/// Protocol version, carried in every `accepted` frame. Frames may grow
/// members (unknown members are ignored), but semantic breaks bump this
/// so clients can detect a server speaking a different dialect.
///
/// Version 2 added job priorities (`"priority"` on batch requests) and
/// the backpressure frames `busy` / `queued`: a server at capacity now
/// answers instead of stalling the client in the accept backlog. Still
/// within version 2 (optional members only): `busy` frames may carry
/// the observed `p95_ms` behind an SLO shed, and `error` frames for
/// malformed request lines may carry the `offset`/`line` of the
/// offender.
pub const PROTOCOL_VERSION: u64 = 2;

/// Highest admissible job priority (priorities are `0..=MAX_PRIORITY`,
/// higher runs first).
pub const MAX_PRIORITY: u8 = 9;

/// Priority of requests that do not ask for one.
pub const DEFAULT_PRIORITY: u8 = 1;

/// A batch submission: the spec reference plus the flow-option
/// overrides `mmflow batch` exposes, so a submit through the service
/// can reproduce any batch invocation byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchRequest {
    /// The batch spec, resolved server-side exactly like `mmflow batch`:
    /// a JSON spec file path, a directory of BLIF mode groups, or
    /// `suite:<regexp|fir|mcnc>[:<modes>]`.
    pub spec: String,
    /// LUT width for directory BLIFs and generated suites.
    pub k: usize,
    /// Modes per problem for generated suites (`mmflow batch --modes`);
    /// an explicit `suite:<name>:<modes>` spec suffix wins. File and
    /// directory specs carry their own mode lists and reject this.
    pub modes: Option<usize>,
    /// Run only the first N jobs.
    pub max_jobs: Option<usize>,
    /// Placer seed override.
    pub seed: Option<u64>,
    /// Fixed channel width override.
    pub width: Option<usize>,
    /// Annealing effort override (VPR `inner_num`).
    pub effort: Option<f64>,
    /// Router iteration cap override.
    pub max_iterations: Option<usize>,
    /// Width-search cap override.
    pub max_width: Option<usize>,
    /// Steiner-tree fanout threshold override
    /// (`RouterOptions::steiner_fanout`; 0 disables the decomposition).
    pub steiner_fanout: Option<usize>,
    /// Scheduling priority (`0..=MAX_PRIORITY`, higher runs first);
    /// batches compete for workers at this level before fairness ties
    /// within a level are broken per client.
    pub priority: u8,
    /// Append per-stage telemetry (`"stages":[{"name","ms","cache"}]`)
    /// to every streamed record (`mmflow batch --emit-stage-times`).
    /// Off by default — and off the wire when off — so default records
    /// stay byte-identical across protocol generations (an optional
    /// member within protocol version 2).
    pub emit_stage_times: bool,
}

impl BatchRequest {
    /// A request with default options (k = 4, no overrides).
    #[must_use]
    pub fn new(spec: impl Into<String>) -> Self {
        Self {
            spec: spec.into(),
            k: 4,
            modes: None,
            max_jobs: None,
            seed: None,
            width: None,
            effort: None,
            max_iterations: None,
            max_width: None,
            steiner_fanout: None,
            priority: DEFAULT_PRIORITY,
            emit_stage_times: false,
        }
    }

    /// The base flow options with this request's overrides applied — the
    /// same mapping `mmflow batch` performs on its command line.
    #[must_use]
    pub fn flow_options(&self, base: &FlowOptions) -> FlowOptions {
        let mut options = *base;
        if let Some(seed) = self.seed {
            options.placer.seed = seed;
        }
        if let Some(width) = self.width {
            options.width = WidthChoice::Fixed(width);
        }
        if let Some(effort) = self.effort {
            options.placer.inner_num = effort;
        }
        if let Some(iters) = self.max_iterations {
            options.router.max_iterations = iters;
        }
        if let Some(max_width) = self.max_width {
            options.max_width = max_width;
        }
        if let Some(fanout) = self.steiner_fanout {
            options.router.steiner_fanout = fanout;
        }
        options
    }
}

/// One client → server frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a batch; the server answers `accepted`, raw records and a
    /// `summary` trailer (or one `error` frame).
    Batch(BatchRequest),
    /// Liveness probe; the server answers `pong`.
    Ping,
    /// Stop accepting connections and drain in-flight batches; the
    /// server answers `shutting_down` before the listener closes.
    Shutdown,
}

impl Request {
    /// Serializes the request as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        match self {
            Request::Ping => ObjBuilder::new().field("cmd", "ping").build().to_json(),
            Request::Shutdown => ObjBuilder::new().field("cmd", "shutdown").build().to_json(),
            Request::Batch(b) => {
                let mut o = ObjBuilder::new()
                    .field("cmd", "batch")
                    .field("spec", b.spec.as_str())
                    .field("k", b.k);
                if let Some(m) = b.modes {
                    o = o.field("modes", m);
                }
                if let Some(n) = b.max_jobs {
                    o = o.field("max_jobs", n);
                }
                if let Some(seed) = b.seed {
                    // Seeds beyond 2^53 go as strings so the JSON number
                    // round-trip can never round them (cf. `parse_seed`).
                    if seed < (1 << 53) {
                        o = o.field("seed", seed as usize);
                    } else {
                        o = o.field("seed", format!("{seed}"));
                    }
                }
                if let Some(w) = b.width {
                    o = o.field("width", w);
                }
                if let Some(e) = b.effort {
                    o = o.field("effort", e);
                }
                if let Some(i) = b.max_iterations {
                    o = o.field("max_iterations", i);
                }
                if let Some(w) = b.max_width {
                    o = o.field("max_width", w);
                }
                if let Some(sf) = b.steiner_fanout {
                    o = o.field("steiner_fanout", sf);
                }
                if b.priority != DEFAULT_PRIORITY {
                    o = o.field("priority", b.priority as usize);
                }
                if b.emit_stage_times {
                    o = o.field("emit_stage_times", true);
                }
                o.build().to_json()
            }
        }
    }

    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// Fails with a description on malformed JSON, a missing/unknown
    /// `cmd`, or invalid member types — the server turns that into an
    /// `error` frame, never a dropped connection.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        let cmd = v
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or("request needs a \"cmd\" string")?;
        match cmd {
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            "batch" => {
                let spec = v
                    .get("spec")
                    .and_then(Value::as_str)
                    .ok_or("batch request needs a \"spec\" string")?
                    .to_string();
                let usize_field = |key: &str| -> Result<Option<usize>, String> {
                    v.get(key)
                        .map(|f| {
                            f.as_usize()
                                .ok_or_else(|| format!("\"{key}\" must be a non-negative integer"))
                        })
                        .transpose()
                };
                let mut request = BatchRequest::new(spec);
                request.k = usize_field("k")?.unwrap_or(4);
                request.modes = usize_field("modes")?;
                request.max_jobs = usize_field("max_jobs")?;
                request.width = usize_field("width")?;
                request.max_iterations = usize_field("max_iterations")?;
                request.max_width = usize_field("max_width")?;
                request.steiner_fanout = usize_field("steiner_fanout")?;
                request.seed = v.get("seed").map(parse_seed).transpose()?;
                request.effort = v
                    .get("effort")
                    .map(|f| f.as_f64().ok_or("\"effort\" must be a number"))
                    .transpose()?;
                if let Some(p) = usize_field("priority")? {
                    if p > MAX_PRIORITY as usize {
                        return Err(format!("\"priority\" must be 0..={MAX_PRIORITY}"));
                    }
                    request.priority = p as u8;
                }
                if let Some(emit) = v.get("emit_stage_times") {
                    request.emit_stage_times = emit
                        .as_bool()
                        .ok_or("\"emit_stage_times\" must be a boolean")?;
                }
                Ok(Request::Batch(request))
            }
            other => Err(format!("unknown cmd '{other}' (batch|ping|shutdown)")),
        }
    }
}

/// One typed server → client frame (everything that is *not* a raw
/// result record).
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// The batch parsed; this many records will follow.
    Accepted {
        /// Jobs the batch resolved to (after `max_jobs` truncation).
        jobs: usize,
    },
    /// The batch trailer: the engine summary (timings, cache counters).
    Summary {
        /// The [`crate::BatchReport::summary_value`] object.
        summary: Value,
    },
    /// A request-level failure (bad frame, unknown spec, …).
    Error {
        /// What went wrong.
        message: String,
        /// For malformed request lines: the byte offset of the start of
        /// the offending line within the connection's request stream.
        offset: Option<u64>,
        /// For malformed request lines: a truncated echo of the
        /// offending line, so clients can debug blind.
        line: Option<String>,
    },
    /// Backpressure: the request was *not* admitted because a capacity
    /// bound is exhausted. The connection (when `scope` is `"jobs"`)
    /// stays usable — retry after draining; a `"connections"` busy
    /// frame precedes the server closing the freshly accepted socket.
    Busy {
        /// Which bound rejected: `"connections"`, `"jobs"` or `"slo"`
        /// (latency-driven load shedding).
        scope: String,
        /// Current occupancy of that bound (for `"slo"`: jobs queued on
        /// the most-loaded target shard).
        queued: usize,
        /// The bound itself (for `"slo"`: the configured SLO in ms).
        capacity: usize,
        /// For `"slo"` rejections: the observed p95 job latency (ms)
        /// that triggered the shed, so clients can modulate backoff.
        p95_ms: Option<f64>,
    },
    /// The batch was admitted behind other work: this many jobs sit in
    /// the scheduler queues ahead of its first job. Purely informative —
    /// records still follow in order.
    Queued {
        /// Jobs queued ahead across the scheduler.
        ahead: usize,
    },
    /// Answer to [`Request::Ping`].
    Pong,
    /// Acknowledgement of [`Request::Shutdown`]: the server drains and
    /// exits.
    ShuttingDown,
}

impl Frame {
    /// Serializes the frame as one JSON line (no trailing newline).
    #[must_use]
    pub fn to_json_line(&self) -> String {
        match self {
            Frame::Accepted { jobs } => ObjBuilder::new()
                .field("type", "accepted")
                .field("protocol", PROTOCOL_VERSION as usize)
                .field("jobs", *jobs)
                .build()
                .to_json(),
            Frame::Summary { summary } => ObjBuilder::new()
                .field("type", "summary")
                .field("summary", summary.clone())
                .build()
                .to_json(),
            Frame::Error {
                message,
                offset,
                line,
            } => {
                let mut o = ObjBuilder::new()
                    .field("type", "error")
                    .field("error", message.as_str());
                if let Some(off) = offset {
                    o = o.field("offset", *off as usize);
                }
                if let Some(echo) = line {
                    o = o.field("line", echo.as_str());
                }
                o.build().to_json()
            }
            Frame::Busy {
                scope,
                queued,
                capacity,
                p95_ms,
            } => {
                let mut o = ObjBuilder::new()
                    .field("type", "busy")
                    .field("scope", scope.as_str())
                    .field("queued", *queued)
                    .field("capacity", *capacity);
                if let Some(p95) = p95_ms {
                    o = o.field("p95_ms", (*p95 * 100.0).round() / 100.0);
                }
                o.build().to_json()
            }
            Frame::Queued { ahead } => ObjBuilder::new()
                .field("type", "queued")
                .field("ahead", *ahead)
                .build()
                .to_json(),
            Frame::Pong => ObjBuilder::new().field("type", "pong").build().to_json(),
            Frame::ShuttingDown => ObjBuilder::new()
                .field("type", "shutting_down")
                .build()
                .to_json(),
        }
    }

    /// Parses one frame line.
    ///
    /// # Errors
    ///
    /// Fails with a description on malformed JSON or an unknown type.
    pub fn parse(line: &str) -> Result<Self, String> {
        let v = json::parse(line).map_err(|e| format!("malformed frame: {e}"))?;
        Self::from_value(&v)
    }

    fn from_value(v: &Value) -> Result<Self, String> {
        let kind = v
            .get("type")
            .and_then(Value::as_str)
            .ok_or("frame needs a \"type\" string")?;
        match kind {
            "accepted" => Ok(Frame::Accepted {
                jobs: v
                    .get("jobs")
                    .and_then(Value::as_usize)
                    .ok_or("accepted frame needs a \"jobs\" count")?,
            }),
            "summary" => Ok(Frame::Summary {
                summary: v
                    .get("summary")
                    .cloned()
                    .ok_or("summary frame needs a \"summary\" object")?,
            }),
            "error" => Ok(Frame::Error {
                message: v
                    .get("error")
                    .and_then(Value::as_str)
                    .ok_or("error frame needs an \"error\" string")?
                    .to_string(),
                offset: v.get("offset").and_then(Value::as_u64),
                line: v.get("line").and_then(Value::as_str).map(str::to_string),
            }),
            "busy" => Ok(Frame::Busy {
                scope: v
                    .get("scope")
                    .and_then(Value::as_str)
                    .ok_or("busy frame needs a \"scope\" string")?
                    .to_string(),
                queued: v
                    .get("queued")
                    .and_then(Value::as_usize)
                    .ok_or("busy frame needs a \"queued\" count")?,
                capacity: v
                    .get("capacity")
                    .and_then(Value::as_usize)
                    .ok_or("busy frame needs a \"capacity\" count")?,
                p95_ms: v.get("p95_ms").and_then(Value::as_f64),
            }),
            "queued" => Ok(Frame::Queued {
                ahead: v
                    .get("ahead")
                    .and_then(Value::as_usize)
                    .ok_or("queued frame needs an \"ahead\" count")?,
            }),
            "pong" => Ok(Frame::Pong),
            "shutting_down" => Ok(Frame::ShuttingDown),
            other => Err(format!("unknown frame type '{other}'")),
        }
    }
}

/// One server → client line, as a client sees it.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerLine<'a> {
    /// A raw per-job result record — print it verbatim to stay
    /// byte-identical with `mmflow batch`.
    Record(&'a str),
    /// A typed protocol frame.
    Frame(Frame),
}

/// Splits a server line into record vs frame: any JSON object carrying a
/// top-level `"type"` member is a frame; everything else that parses is
/// a raw record.
///
/// # Errors
///
/// Fails on lines that are not valid JSON or carry an unknown frame
/// type.
pub fn classify(line: &str) -> Result<ServerLine<'_>, String> {
    let v = json::parse(line).map_err(|e| format!("malformed server line: {e}"))?;
    if v.get("type").is_some() {
        Frame::from_value(&v).map(ServerLine::Frame)
    } else {
        Ok(ServerLine::Record(line))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let mut batch = BatchRequest::new("suite:fir");
        batch.k = 5;
        batch.modes = Some(3);
        batch.max_jobs = Some(3);
        batch.seed = Some(u64::MAX);
        batch.width = Some(12);
        batch.effort = Some(1.5);
        batch.max_iterations = Some(30);
        batch.max_width = Some(24);
        batch.steiner_fanout = Some(48);
        batch.priority = 7;
        batch.emit_stage_times = true;
        for request in [Request::Batch(batch), Request::Ping, Request::Shutdown] {
            let line = request.to_json_line();
            assert_eq!(Request::parse(&line).unwrap(), request, "{line}");
        }
    }

    #[test]
    fn batch_defaults_and_small_seed() {
        let line = r#"{"cmd":"batch","spec":"jobs/","seed":7}"#;
        let Request::Batch(b) = Request::parse(line).unwrap() else {
            panic!("not a batch");
        };
        assert_eq!(b.spec, "jobs/");
        assert_eq!(b.k, 4);
        assert_eq!(b.seed, Some(7));
        assert_eq!(b.modes, None);
        assert_eq!(b.max_jobs, None);
        assert_eq!(b.priority, DEFAULT_PRIORITY);
        // The default priority stays off the wire, so version-1 servers
        // keep accepting default-priority requests unchanged.
        assert!(!Request::Batch(BatchRequest::new("x"))
            .to_json_line()
            .contains("priority"));
        // Likewise stage-time telemetry: off by default and off the
        // wire, so old servers keep accepting default requests.
        assert!(!b.emit_stage_times);
        assert!(!Request::Batch(BatchRequest::new("x"))
            .to_json_line()
            .contains("emit_stage_times"));

        // Small seeds serialize as plain numbers.
        let line = Request::Batch(BatchRequest {
            seed: Some(7),
            ..BatchRequest::new("x")
        })
        .to_json_line();
        assert!(line.contains("\"seed\":7"), "{line}");
    }

    #[test]
    fn bad_requests_are_described() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{}").is_err());
        assert!(Request::parse(r#"{"cmd":"explode"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"batch"}"#).is_err(), "no spec");
        assert!(Request::parse(r#"{"cmd":"batch","spec":"s","k":"x"}"#).is_err());
        assert!(Request::parse(r#"{"cmd":"batch","spec":"s","seed":true}"#).is_err());
        assert!(
            Request::parse(r#"{"cmd":"batch","spec":"s","priority":10}"#).is_err(),
            "priorities are capped at MAX_PRIORITY"
        );
    }

    #[test]
    fn frames_roundtrip() {
        let frames = [
            Frame::Accepted { jobs: 9 },
            Frame::Summary {
                summary: ObjBuilder::new().field("jobs", 9usize).build(),
            },
            Frame::Error {
                message: "nope".into(),
                offset: None,
                line: None,
            },
            Frame::Error {
                message: "malformed request: expected value at byte 0".into(),
                offset: Some(4096),
                line: Some("{\"cmd\":".into()),
            },
            Frame::Busy {
                scope: "jobs".into(),
                queued: 128,
                capacity: 128,
                p95_ms: None,
            },
            Frame::Busy {
                scope: "slo".into(),
                queued: 12,
                capacity: 25,
                p95_ms: Some(38.25),
            },
            Frame::Queued { ahead: 40 },
            Frame::Pong,
            Frame::ShuttingDown,
        ];
        for frame in frames {
            let line = frame.to_json_line();
            assert_eq!(Frame::parse(&line).unwrap(), frame, "{line}");
        }
        // The accepted frame announces the protocol dialect.
        let line = Frame::Accepted { jobs: 9 }.to_json_line();
        assert!(line.contains("\"protocol\":2"), "{line}");
    }

    #[test]
    fn classification_separates_records_from_frames() {
        let record = r#"{"name":"j","flow":"mdr","status":"ok","metrics":{}}"#;
        assert_eq!(classify(record).unwrap(), ServerLine::Record(record));
        let error = r#"{"name":"j","flow":"pair","status":"error","stage":"route","error":"x"}"#;
        assert_eq!(classify(error).unwrap(), ServerLine::Record(error));
        assert_eq!(
            classify(r#"{"type":"pong"}"#).unwrap(),
            ServerLine::Frame(Frame::Pong)
        );
        assert!(classify("garbage").is_err());
        assert!(classify(r#"{"type":"martian"}"#).is_err());
    }

    #[test]
    fn request_overrides_map_onto_flow_options() {
        let mut batch = BatchRequest::new("s");
        batch.seed = Some(9);
        batch.width = Some(11);
        batch.effort = Some(2.0);
        batch.max_iterations = Some(17);
        batch.max_width = Some(33);
        batch.steiner_fanout = Some(64);
        let o = batch.flow_options(&FlowOptions::default());
        assert_eq!(o.placer.seed, 9);
        assert_eq!(o.width, WidthChoice::Fixed(11));
        assert!((o.placer.inner_num - 2.0).abs() < 1e-12);
        assert_eq!(o.router.max_iterations, 17);
        assert_eq!(o.max_width, 33);
        assert_eq!(o.router.steiner_fanout, 64);
        // No overrides ⇒ the base options pass through untouched.
        let untouched = BatchRequest::new("s").flow_options(&FlowOptions::default());
        assert_eq!(untouched, FlowOptions::default());
    }
}
