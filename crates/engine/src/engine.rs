//! The batch engine: fan-out, stage caching, streaming, summary.
//!
//! # Execution model
//!
//! [`Engine::run_streamed`] fans the jobs of a batch out across the
//! work-stealing pool ([`crate::pool`]) and emits every [`JobResult`] —
//! in job order, through a reorder buffer — as soon as it and all its
//! predecessors are done. Each job is independent and seeded, so:
//!
//! * with `threads == 1` the batch runs strictly sequentially;
//! * with any thread count the emitted result records are **byte
//!   identical** to the sequential run (verified by the integration
//!   tests — this is the engine's determinism contract).
//!
//! # Stage caching
//!
//! With a cache configured, each job consults two content-addressed
//! stages keyed by SHA-256 over the canonical BLIF of every mode, the
//! architecture fingerprint, the option fingerprints and the flow kind:
//!
//! * `result` — the finished summary. A hit skips the job entirely.
//! * `placement` — the expensive annealing stage (DCS combined placement
//!   or MDR per-mode placements). A hit skips annealing and re-runs only
//!   routing/extraction. Jobs that share a mode group, seed and placer
//!   configuration share this entry even across different router
//!   settings.
//!
//! `pair` jobs (the full experimental comparison, any mode count —
//! specs may spell the flow `combined`) are stage-granular too: their
//! three annealing legs (MDR per-mode, DCS edge-matching, DCS
//! wire-length) use **the same** placement keys as the plain `mdr`/`dcs`
//! jobs on the same mode list, so placements flow freely between
//! combined jobs and plain jobs in either direction. Failures are never
//! cached.

use crate::cache::{CacheStats, StageCache};
use crate::hash::Sha256;
use crate::job::{
    multi_placement_from, placements_from, placements_value, DcsSummary, FlowKind, Job,
    JobCacheInfo, JobError, JobOutcome, JobResult, MdrSummary,
};
use crate::json::ObjBuilder;
use mm_flow::pool;
use mm_flow::{run_combined_with_placements, CombinedPlacements, DcsFlow, MdrFlow, MultiModeInput};
use mm_netlist::blif;
use mm_place::PlacerOptions;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Stage-cache root; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// In-memory result memo capacity in entries (`0` disables it). The
    /// memo keeps the most recent `result`-stage values keyed by the
    /// same content-addressed key as the disk cache, so a long-running
    /// service re-serving identical legs skips the file read *and* the
    /// JSON text parse on every warm hit. Purely an acceleration layer:
    /// records are byte-identical with the memo on or off.
    pub result_memo: usize,
}

/// Aggregated execution counters of one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs that produced a result.
    pub ok: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs whose final result came from the cache.
    pub results_from_cache: usize,
    /// Jobs whose placement stage came from the cache.
    pub placements_from_cache: usize,
    /// Flow stages actually executed across the batch (0 on a fully warm
    /// cache — the "zero recomputation" acceptance check).
    pub stages_recomputed: usize,
    /// On-disk cache entries that failed validation during the batch and
    /// were quarantined (then transparently recomputed). Nonzero means
    /// the store was corrupted — and that the corruption never reached a
    /// record.
    pub quarantined: usize,
}

impl EngineStats {
    /// Aggregates the counters from finished results — every number in
    /// the summary is derived from the per-job [`JobCacheInfo`] records,
    /// so batch-level and per-job accounting can never disagree.
    /// (`quarantined` is store-level, not per-job: the caller fills it
    /// from the batch's [`CacheStats`] delta.)
    #[must_use]
    pub fn from_results(results: &[JobResult]) -> Self {
        let ok = results.iter().filter(|r| r.outcome.is_ok()).count();
        Self {
            jobs: results.len(),
            ok,
            failed: results.len() - ok,
            results_from_cache: results.iter().filter(|r| r.cache.result_hit).count(),
            placements_from_cache: results.iter().filter(|r| r.cache.placement_hit).count(),
            stages_recomputed: results.iter().map(|r| r.cache.stages_recomputed).sum(),
            quarantined: 0,
        }
    }
}

/// The outcome of one batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in job order.
    pub results: Vec<JobResult>,
    /// Aggregated counters.
    pub stats: EngineStats,
    /// Low-level cache counters (zeroes when caching is disabled).
    pub cache: CacheStats,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
}

impl BatchReport {
    /// Sum of per-job execution times — what a strictly serial run would
    /// have cost (directly comparable to `wall` for the parallel
    /// speed-up).
    #[must_use]
    pub fn serial_estimate(&self) -> Duration {
        self.results.iter().map(|r| r.duration).sum()
    }

    /// The aggregated summary as one JSON line (this *does* contain
    /// timings and cache counters, unlike the per-job records).
    #[must_use]
    pub fn summary_json(&self) -> String {
        self.summary_value().to_json()
    }

    /// The summary as a JSON value — what the serve protocol embeds in
    /// its trailer frame.
    #[must_use]
    pub fn summary_value(&self) -> crate::json::Value {
        let serial = self.serial_estimate();
        let speedup = if self.wall.as_secs_f64() > 0.0 {
            serial.as_secs_f64() / self.wall.as_secs_f64()
        } else {
            1.0
        };
        ObjBuilder::new()
            .field("jobs", self.stats.jobs)
            .field("ok", self.stats.ok)
            .field("failed", self.stats.failed)
            .field("threads", self.threads)
            .field("wall_ms", self.wall.as_millis() as u64)
            .field("serial_estimate_ms", serial.as_millis() as u64)
            .field("parallel_speedup", (speedup * 100.0).round() / 100.0)
            .field(
                "cache",
                ObjBuilder::new()
                    .field("results_from_cache", self.stats.results_from_cache)
                    .field("placements_from_cache", self.stats.placements_from_cache)
                    .field("stages_recomputed", self.stats.stages_recomputed)
                    .field("hits", self.cache.hits)
                    .field("misses", self.cache.misses)
                    .field("writes", self.cache.writes)
                    .field("quarantined", self.cache.corrupt)
                    .build(),
            )
            .build()
    }
}

/// The batch-execution engine.
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    cache: Option<StageCache>,
    memo: Option<std::sync::Mutex<ResultMemo>>,
}

/// The in-memory `result`-stage memo: a bounded map from content
/// key to the exact [`crate::json::Value`] the disk cache would
/// round-trip. Entries are what [`JobOutcome::to_value`] wrote, and
/// hits re-parse through [`JobOutcome::from_value`] with the *current*
/// job's name — the same semantics as a disk hit, minus I/O.
#[derive(Debug)]
struct ResultMemo {
    entries: std::collections::HashMap<String, crate::json::Value>,
    capacity: usize,
}

impl ResultMemo {
    fn get(&self, key: &str) -> Option<&crate::json::Value> {
        self.entries.get(key)
    }

    fn put(&mut self, key: &str, value: crate::json::Value) {
        // Generation eviction: a full memo is wiped wholesale. Warm
        // steady-state working sets far below the capacity never evict,
        // and the bound holds without per-entry recency bookkeeping.
        if self.entries.len() >= self.capacity && !self.entries.contains_key(key) {
            self.entries.clear();
        }
        self.entries.insert(key.to_string(), value);
    }
}

impl Engine {
    /// Creates an engine (opening the cache directory if configured).
    ///
    /// # Errors
    ///
    /// Fails if the cache root cannot be created.
    pub fn new(options: EngineOptions) -> std::io::Result<Self> {
        let threads = if options.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            options.threads
        };
        let cache = options.cache_dir.map(StageCache::open).transpose()?;
        let memo = (options.result_memo > 0).then(|| {
            std::sync::Mutex::new(ResultMemo {
                entries: std::collections::HashMap::new(),
                capacity: options.result_memo,
            })
        });
        Ok(Self {
            threads,
            cache,
            memo,
        })
    }

    /// The resolved worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The stage cache, if enabled.
    #[must_use]
    pub fn cache(&self) -> Option<&StageCache> {
        self.cache.as_ref()
    }

    /// Runs a batch, discarding the stream.
    #[must_use]
    pub fn run(&self, jobs: Vec<Job>) -> BatchReport {
        self.run_streamed(jobs, |_| {})
    }

    /// Runs a batch, invoking `sink` with every result **in job order**
    /// as soon as it (and all its predecessors) completed.
    #[must_use]
    pub fn run_streamed(&self, jobs: Vec<Job>, sink: impl FnMut(&JobResult) + Send) -> BatchReport {
        self.run_streamed_cancellable(jobs, None, sink)
    }

    /// [`Engine::run_streamed`] with a cancellation flag: once `cancel`
    /// is set (typically from the sink, e.g. on a broken output pipe),
    /// jobs that have not started yet fail fast with a "cancelled"
    /// error instead of running their flows. In-flight jobs finish.
    #[must_use]
    pub fn run_streamed_cancellable(
        &self,
        mut jobs: Vec<Job>,
        cancel: Option<&std::sync::atomic::AtomicBool>,
        mut sink: impl FnMut(&JobResult) + Send,
    ) -> BatchReport {
        let t0 = Instant::now();
        let n = jobs.len();
        // Budget intra-job parallelism instead of letting it multiply
        // with the job fan-out: jobs in "auto" mode (0) share the worker
        // count — a lone job may use every worker for its internal
        // stages, a full batch pins each job to one thread. Explicit
        // per-job settings are respected, and results are identical at
        // any setting (the flows' intra tasks are independently seeded).
        let concurrent = self.threads.min(n.max(1)).max(1);
        let intra_budget = (self.threads / concurrent).max(1);
        for job in &mut jobs {
            if job.options.intra_parallelism == 0 {
                job.options.intra_parallelism = intra_budget;
            }
        }
        let cache_before = self
            .cache
            .as_ref()
            .map(StageCache::stats)
            .unwrap_or_default();
        let results = pool::run_ordered(
            jobs,
            self.threads,
            |_, job| self.execute(&job, cancel),
            |_, result| sink(result),
        );
        let wall = t0.elapsed();

        let mut stats = EngineStats::from_results(&results);
        debug_assert_eq!(stats.jobs, n);
        // Per-batch counters: a long-lived engine runs many batches
        // against one cumulative StageCache.
        let cache = self
            .cache
            .as_ref()
            .map(|c| c.stats().since(cache_before))
            .unwrap_or_default();
        stats.quarantined = cache.corrupt as usize;
        BatchReport {
            results,
            stats,
            cache,
            wall,
            threads: self.threads,
        }
    }

    /// Runs one job outside any batch — the entry point a long-running
    /// service uses to multiplex jobs from many connections onto one
    /// shared worker pool while keeping the engine's cache semantics.
    ///
    /// A failing job returns a [`JobResult`] with a structured
    /// [`JobError`] outcome; this never panics on infeasible inputs.
    #[must_use]
    pub fn execute_job(&self, job: &Job) -> JobResult {
        self.execute(job, None)
    }

    fn execute(&self, job: &Job, cancel: Option<&std::sync::atomic::AtomicBool>) -> JobResult {
        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            return JobResult {
                name: job.name.clone(),
                flow: job.flow,
                outcome: Err(JobError::engine("cancelled before execution")),
                cache: JobCacheInfo::default(),
                duration: Duration::ZERO,
            };
        }
        let t0 = Instant::now();
        let mut info = JobCacheInfo::default();
        let outcome = self.run_flow(job, &mut info);
        JobResult {
            name: job.name.clone(),
            flow: job.flow,
            outcome,
            cache: info,
            duration: t0.elapsed(),
        }
    }

    fn run_flow(&self, job: &Job, info: &mut JobCacheInfo) -> Result<JobOutcome, JobError> {
        let input =
            MultiModeInput::new(job.circuits.clone()).map_err(|e| JobError::from_flow(&e))?;
        // Serializing the circuits and hashing keys is only worth doing
        // when there is a cache (or memo) to consult.
        let keys = (self.cache.is_some() || self.memo.is_some()).then(|| KeyContext {
            blifs: job.circuits.iter().map(blif::to_blif).collect(),
            arch_fp: job.options.base_arch(&input).fingerprint(),
        });

        let result_key = keys.as_ref().map(|k| {
            stage_key(
                "result",
                &[
                    &job.flow.fingerprint(),
                    &job.options.fingerprint(),
                    &k.arch_fp,
                ],
                &k.blifs,
            )
        });
        // Fastest first: the in-memory memo, then the disk cache (a disk
        // hit back-fills the memo).
        if let (Some(memo), Some(key)) = (&self.memo, &result_key) {
            let memo = memo.lock().expect("memo lock");
            if let Some(outcome) = memo
                .get(key)
                .and_then(|v| JobOutcome::from_value(v, &job.name))
            {
                info.result_hit = true;
                return Ok(outcome);
            }
        }
        if let (Some(cache), Some(key)) = (&self.cache, &result_key) {
            if let Some(v) = cache.get("result", key) {
                if let Some(outcome) = JobOutcome::from_value(&v, &job.name) {
                    if let Some(memo) = &self.memo {
                        memo.lock().expect("memo lock").put(key, v);
                    }
                    info.result_hit = true;
                    return Ok(outcome);
                }
            }
        }

        let outcome = match job.flow {
            FlowKind::Dcs(cost) => self.run_dcs(job, &input, cost, keys.as_ref(), info)?,
            FlowKind::Mdr => self.run_mdr(job, &input, keys.as_ref(), info)?,
            FlowKind::Pair => self.run_combined_staged(job, &input, keys.as_ref(), info)?,
        };
        if let Some(key) = &result_key {
            let value = outcome.to_value();
            if let Some(cache) = &self.cache {
                cache.put("result", key, &value);
            }
            if let Some(memo) = &self.memo {
                memo.lock().expect("memo lock").put(key, value);
            }
        }
        Ok(outcome)
    }

    fn run_dcs(
        &self,
        job: &Job,
        input: &MultiModeInput,
        cost: mm_place::CostKind,
        keys: Option<&KeyContext>,
        info: &mut JobCacheInfo,
    ) -> Result<JobOutcome, JobError> {
        let flow = DcsFlow::new(job.options).with_cost(cost);
        // The placement key deliberately excludes router options: jobs
        // differing only in routing configuration share annealing work.
        let placer = PlacerOptions {
            cost,
            ..job.options.placer
        };
        let key = keys.map(|k| k.placement_key("dcs", &placer));

        let placement = self
            .cached_placement(key.as_deref(), |v| multi_placement_from(&job.circuits, v))
            .inspect(|_p| {
                info.placement_hit = true;
                info.placement_hits += 1;
            });
        let placement = match placement {
            Some(p) => p,
            None => {
                info.stages_recomputed += 1;
                let p = flow.place(input).map_err(|e| JobError::from_flow(&e))?;
                if let (Some(cache), Some(key)) = (&self.cache, &key) {
                    cache.put("placement", key, &placements_value(&job.circuits, &p.modes));
                }
                p
            }
        };

        info.stages_recomputed += 1; // routing + extraction always run on a result miss
        let r = flow
            .run_with_placement(input, placement)
            .map_err(|e| JobError::from_flow(&e))?;
        let modes = input.mode_count();
        // Routed STA only for timing jobs: default records must stay
        // byte-identical to builds without the timing subsystem.
        let critical_paths = if matches!(cost, mm_place::CostKind::Timing { .. }) {
            Some(
                r.critical_paths(input.circuits())
                    .map_err(|e| JobError::from_flow(&e))?,
            )
        } else {
            None
        };
        Ok(JobOutcome::Dcs(DcsSummary {
            grid: r.arch.grid,
            channel_width: r.arch.channel_width,
            modes,
            param_bits: r.parameterized_routing_bits(),
            static_on_bits: r.param.static_on_bits(),
            dcs_cost: r.dcs_cost(),
            mdr_cost: r.mdr_cost(),
            wires: (0..modes).map(|m| r.wires_in_mode(m)).collect(),
            critical_paths,
            tunable: r.tunable.stats(),
        }))
    }

    fn run_mdr(
        &self,
        job: &Job,
        input: &MultiModeInput,
        keys: Option<&KeyContext>,
        info: &mut JobCacheInfo,
    ) -> Result<JobOutcome, JobError> {
        let flow = MdrFlow::new(job.options);
        // `MdrFlow::place` always anneals with the wire-length cost, so
        // normalize the cost out of the key: MDR jobs differing only in
        // an (ignored) combined-placement cost share their annealing.
        let placer = PlacerOptions {
            cost: mm_place::CostKind::WireLength,
            ..job.options.placer
        };
        let key = keys.map(|k| k.placement_key("mdr", &placer));

        let placements = self
            .cached_placement(key.as_deref(), |v| placements_from(&job.circuits, v))
            .inspect(|_p| {
                info.placement_hit = true;
                info.placement_hits += 1;
            });
        let placements = match placements {
            Some(p) => p,
            None => {
                info.stages_recomputed += 1;
                let p = flow.place(input).map_err(|e| JobError::from_flow(&e))?;
                if let (Some(cache), Some(key)) = (&self.cache, &key) {
                    cache.put("placement", key, &placements_value(&job.circuits, &p));
                }
                p
            }
        };

        info.stages_recomputed += 1;
        let r = flow
            .run_with_placements(input, placements)
            .map_err(|e| JobError::from_flow(&e))?;
        let modes = input.mode_count();
        Ok(JobOutcome::Mdr(MdrSummary {
            grid: r.arch.grid,
            channel_width: r.arch.channel_width,
            modes,
            mdr_cost: r.mdr_cost(),
            avg_diff_cost: r.average_diff_cost(),
            wires: (0..modes).map(|m| r.wires_in_mode(m)).collect(),
        }))
    }

    /// Runs a `pair`/`combined` job (any mode count) with stage-granular
    /// caching: each of the three annealing legs is looked up (and
    /// stored) under **exactly** the placement key a plain `mdr`/`dcs`
    /// job on the same mode list would use, so placements are shared
    /// between combined jobs and plain jobs in both directions. Only
    /// the missing legs are recomputed; when all three miss they anneal
    /// concurrently on the work-stealing pool (within the job's
    /// intra-parallelism budget).
    fn run_combined_staged(
        &self,
        job: &Job,
        input: &MultiModeInput,
        keys: Option<&KeyContext>,
        info: &mut JobCacheInfo,
    ) -> Result<JobOutcome, JobError> {
        let wl_placer = PlacerOptions {
            cost: mm_place::CostKind::WireLength,
            ..job.options.placer
        };
        let edge_placer = PlacerOptions {
            cost: mm_place::CostKind::EdgeMatching,
            ..job.options.placer
        };
        let mdr_key = keys.map(|k| k.placement_key("mdr", &wl_placer));
        let edge_key = keys.map(|k| k.placement_key("dcs", &edge_placer));
        let wl_key = keys.map(|k| k.placement_key("dcs", &wl_placer));

        let mdr = self.cached_placement(mdr_key.as_deref(), |v| placements_from(&job.circuits, v));
        let edge = self.cached_placement(edge_key.as_deref(), |v| {
            multi_placement_from(&job.circuits, v)
        });
        let wl = self.cached_placement(wl_key.as_deref(), |v| {
            multi_placement_from(&job.circuits, v)
        });
        let hits =
            usize::from(mdr.is_some()) + usize::from(edge.is_some()) + usize::from(wl.is_some());
        if hits > 0 {
            info.placement_hit = true;
            info.placement_hits += hits;
        }

        // Anneal whatever is missing, concurrently (within the job's
        // intra-parallelism budget) — each computed leg is stored under
        // its plain-job key. Leg flavours are disjoint, so the pooled
        // results are matched back by kind.
        enum LegKind {
            Mdr,
            Edge,
            Wl,
        }
        enum LegPlacement {
            Mdr(Vec<mm_place::Placement>),
            Edge(mm_place::MultiPlacement),
            Wl(mm_place::MultiPlacement),
        }
        let mut missing = Vec::new();
        if mdr.is_none() {
            missing.push(LegKind::Mdr);
        }
        if edge.is_none() {
            missing.push(LegKind::Edge);
        }
        if wl.is_none() {
            missing.push(LegKind::Wl);
        }
        info.stages_recomputed += missing.len();
        let threads = match job.options.intra_parallelism {
            0 => missing.len().max(1),
            t => t,
        };
        let computed = pool::run_ordered(
            missing,
            threads,
            |_, kind| -> Result<LegPlacement, JobError> {
                match kind {
                    LegKind::Mdr => MdrFlow::new(job.options)
                        .place(input)
                        .map(LegPlacement::Mdr)
                        .map_err(|e| JobError::from_flow(&e)),
                    LegKind::Edge => DcsFlow::new(job.options)
                        .with_cost(mm_place::CostKind::EdgeMatching)
                        .place(input)
                        .map(LegPlacement::Edge)
                        .map_err(|e| JobError::from_flow(&e)),
                    LegKind::Wl => DcsFlow::new(job.options)
                        .with_cost(mm_place::CostKind::WireLength)
                        .place(input)
                        .map(LegPlacement::Wl)
                        .map_err(|e| JobError::from_flow(&e)),
                }
            },
            |_, _| {},
        );
        let (mut mdr, mut edge, mut wl) = (mdr, edge, wl);
        for leg in computed {
            match leg? {
                LegPlacement::Mdr(p) => {
                    if let (Some(cache), Some(key)) = (&self.cache, &mdr_key) {
                        cache.put("placement", key, &placements_value(&job.circuits, &p));
                    }
                    mdr = Some(p);
                }
                LegPlacement::Edge(p) => {
                    if let (Some(cache), Some(key)) = (&self.cache, &edge_key) {
                        cache.put("placement", key, &placements_value(&job.circuits, &p.modes));
                    }
                    edge = Some(p);
                }
                LegPlacement::Wl(p) => {
                    if let (Some(cache), Some(key)) = (&self.cache, &wl_key) {
                        cache.put("placement", key, &placements_value(&job.circuits, &p.modes));
                    }
                    wl = Some(p);
                }
            }
        }
        // A leg that is neither cached nor computed is an engine bug —
        // but a long-running service must degrade it to one failed job,
        // never to a process abort taking every other job down with it.
        let missing_leg = |leg: &'static str| {
            JobError::engine(format!("pair {leg} leg neither cached nor computed"))
        };
        let placements = CombinedPlacements {
            mdr: mdr.ok_or_else(|| missing_leg("mdr"))?,
            edge: edge.ok_or_else(|| missing_leg("edge"))?,
            wirelength: wl.ok_or_else(|| missing_leg("wirelength"))?,
        };

        info.stages_recomputed += 1; // routing + extraction of the three legs
        let metrics =
            run_combined_with_placements(input, &job.options, job.name.clone(), &placements)
                .map_err(|e| JobError::from_flow(&e))?;
        Ok(JobOutcome::Pair(metrics))
    }

    fn cached_placement<P>(
        &self,
        key: Option<&str>,
        decode: impl FnOnce(&crate::json::Value) -> Option<P>,
    ) -> Option<P> {
        let cache = self.cache.as_ref()?;
        let v = cache.get("placement", key?)?;
        decode(&v)
    }
}

/// The per-job material every cache key is derived from; only built
/// when a cache is configured.
struct KeyContext {
    blifs: Vec<String>,
    arch_fp: String,
}

impl KeyContext {
    /// The placement-stage key of one annealing leg — shared verbatim
    /// between plain jobs and the legs of `pair` jobs.
    fn placement_key(&self, flow: &str, placer: &PlacerOptions) -> String {
        stage_key(
            "placement",
            &[flow, &placer.fingerprint(), &self.arch_fp],
            &self.blifs,
        )
    }
}

/// A content-addressed stage key: SHA-256 over the engine version, the
/// stage, every context fingerprint and every mode's canonical BLIF, all
/// length-prefixed.
fn stage_key(stage: &str, context: &[&str], blifs: &[String]) -> String {
    let mut h = Sha256::new();
    h.field(b"mm-engine-v1");
    h.field(stage.as_bytes());
    for part in context {
        h.field(part.as_bytes());
    }
    for text in blifs {
        h.field(text.as_bytes());
    }
    h.finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_keys_separate_stage_context_and_content() {
        let blifs = vec!["a".to_string(), "b".to_string()];
        let base = stage_key("result", &["x"], &blifs);
        assert_eq!(base.len(), 64);
        assert_eq!(base, stage_key("result", &["x"], &blifs));
        assert_ne!(base, stage_key("placement", &["x"], &blifs));
        assert_ne!(base, stage_key("result", &["y"], &blifs));
        assert_ne!(
            base,
            stage_key("result", &["x"], &["ab".to_string()]),
            "field framing"
        );
    }

    #[test]
    fn thread_resolution() {
        let e = Engine::new(EngineOptions {
            threads: 3,
            cache_dir: None,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(e.threads(), 3);
        let auto = Engine::new(EngineOptions::default()).unwrap();
        assert!(auto.threads() >= 1);
        assert!(auto.cache().is_none());
    }
}
