//! The batch engine: a generic stage-plan executor with fan-out,
//! caching, streaming and summary.
//!
//! # Execution model
//!
//! [`Engine::run_streamed`] fans the jobs of a batch out across the
//! work-stealing pool ([`crate::pool`]) and emits every [`JobResult`] —
//! in job order, through a reorder buffer — as soon as it and all its
//! predecessors are done. Each job is independent and seeded, so:
//!
//! * with `threads == 1` the batch runs strictly sequentially;
//! * with any thread count the emitted result records are **byte
//!   identical** to the sequential run (verified by the integration
//!   tests — this is the engine's determinism contract).
//!
//! Each job [compiles](Job::compile) to a typed
//! [`StagePlan`](mm_flow::stage::StagePlan) — per-mode annealing legs
//! fanning into a summarize/combine root — and runs through the plan
//! executor, which schedules ready nodes onto the pool (within the
//! job's intra-parallelism budget) and records per-node wall clock and
//! cache outcome. There is no per-flavor execution code here: `dcs`,
//! `mdr` and `pair`/`combined` differ only in the plan they compile to.
//!
//! # Stage caching
//!
//! With a cache configured, the engine's [`PlanHooks`] key every node by
//! SHA-256 over its structural fingerprint — stage name, stage params,
//! the canonical input BLIFs and the fingerprints of its dependencies,
//! composed recursively. Two namespaces fall out of the artifact kind:
//!
//! * `result` — summary/combine roots. A hit skips the whole plan.
//! * `placement` — the expensive annealing legs. A hit skips annealing
//!   and re-runs only routing/extraction. Placement fingerprints
//!   exclude router options, so jobs differing only in routing
//!   configuration share annealing work.
//!
//! Because the legs of a `pair` job carry **the same** fingerprints as
//! plain `mdr`/`dcs` jobs on the same mode list (labels are display
//! only), placements flow freely between combined jobs and plain jobs
//! in either direction — sharing is structural, not special-cased.
//! Failures are never cached.

use crate::cache::{CacheStats, StageCache};
use crate::hash::Sha256;
use crate::job::{
    multi_placement_from, placements_from, placements_value, Job, JobCacheInfo, JobError,
    JobOutcome, JobResult,
};
use crate::json::ObjBuilder;
use mm_flow::pool;
use mm_flow::stage::{
    Artifact, ArtifactKind, CacheOutcome, Lookup, PlanHooks, PlanNode, StageTiming,
};
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Worker threads; `0` means one per available CPU.
    pub threads: usize,
    /// Stage-cache root; `None` disables caching.
    pub cache_dir: Option<PathBuf>,
    /// In-memory result memo capacity in entries (`0` disables it). The
    /// memo keeps the most recent `result`-stage values keyed by the
    /// same content-addressed key as the disk cache, so a long-running
    /// service re-serving identical legs skips the file read *and* the
    /// JSON text parse on every warm hit. Purely an acceleration layer:
    /// records are byte-identical with the memo on or off.
    pub result_memo: usize,
}

/// Aggregated execution counters of one batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs executed.
    pub jobs: usize,
    /// Jobs that produced a result.
    pub ok: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Jobs whose final result came from the cache.
    pub results_from_cache: usize,
    /// Jobs whose placement stage came from the cache.
    pub placements_from_cache: usize,
    /// Flow stages actually executed across the batch (0 on a fully warm
    /// cache — the "zero recomputation" acceptance check).
    pub stages_recomputed: usize,
    /// Plan nodes served from the cache across the batch — placements
    /// *and* summary roots (the node-level dual of `stages_recomputed`).
    pub stages_from_cache: usize,
    /// Wall clock summed over every resolved plan node in the batch —
    /// the stage-level serial estimate (cache lookups included).
    pub stage_time: Duration,
    /// On-disk cache entries that failed validation during the batch and
    /// were quarantined (then transparently recomputed). Nonzero means
    /// the store was corrupted — and that the corruption never reached a
    /// record.
    pub quarantined: usize,
}

impl EngineStats {
    /// Aggregates the counters from finished results — every number in
    /// the summary is derived from the per-job [`JobCacheInfo`] records,
    /// so batch-level and per-job accounting can never disagree.
    /// (`quarantined` is store-level, not per-job: the caller fills it
    /// from the batch's [`CacheStats`] delta.)
    #[must_use]
    pub fn from_results(results: &[JobResult]) -> Self {
        let ok = results.iter().filter(|r| r.outcome.is_ok()).count();
        let stage_timings = results.iter().flat_map(|r| &r.stages);
        Self {
            jobs: results.len(),
            ok,
            failed: results.len() - ok,
            results_from_cache: results.iter().filter(|r| r.cache.result_hit).count(),
            placements_from_cache: results.iter().filter(|r| r.cache.placement_hit).count(),
            stages_recomputed: results.iter().map(|r| r.cache.stages_recomputed).sum(),
            stages_from_cache: stage_timings
                .clone()
                .filter(|s| s.cache == CacheOutcome::Hit)
                .count(),
            stage_time: stage_timings.map(|s| s.duration).sum(),
            quarantined: 0,
        }
    }
}

/// The outcome of one batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-job results, in job order.
    pub results: Vec<JobResult>,
    /// Aggregated counters.
    pub stats: EngineStats,
    /// Low-level cache counters (zeroes when caching is disabled).
    pub cache: CacheStats,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Worker threads used.
    pub threads: usize,
}

impl BatchReport {
    /// Sum of per-job execution times — what a strictly serial run would
    /// have cost (directly comparable to `wall` for the parallel
    /// speed-up).
    #[must_use]
    pub fn serial_estimate(&self) -> Duration {
        self.results.iter().map(|r| r.duration).sum()
    }

    /// The aggregated summary as one JSON line (this *does* contain
    /// timings and cache counters, unlike the per-job records).
    #[must_use]
    pub fn summary_json(&self) -> String {
        self.summary_value().to_json()
    }

    /// The summary as a JSON value — what the serve protocol embeds in
    /// its trailer frame.
    #[must_use]
    pub fn summary_value(&self) -> crate::json::Value {
        let serial = self.serial_estimate();
        let speedup = if self.wall.as_secs_f64() > 0.0 {
            serial.as_secs_f64() / self.wall.as_secs_f64()
        } else {
            1.0
        };
        ObjBuilder::new()
            .field("jobs", self.stats.jobs)
            .field("ok", self.stats.ok)
            .field("failed", self.stats.failed)
            .field("threads", self.threads)
            .field("wall_ms", self.wall.as_millis() as u64)
            .field("serial_estimate_ms", serial.as_millis() as u64)
            .field("stage_time_ms", self.stats.stage_time.as_millis() as u64)
            .field("parallel_speedup", (speedup * 100.0).round() / 100.0)
            .field(
                "cache",
                ObjBuilder::new()
                    .field("results_from_cache", self.stats.results_from_cache)
                    .field("placements_from_cache", self.stats.placements_from_cache)
                    .field("stages_recomputed", self.stats.stages_recomputed)
                    .field("stages_from_cache", self.stats.stages_from_cache)
                    .field("hits", self.cache.hits)
                    .field("misses", self.cache.misses)
                    .field("writes", self.cache.writes)
                    .field("quarantined", self.cache.corrupt)
                    .build(),
            )
            .build()
    }
}

/// The batch-execution engine.
#[derive(Debug)]
pub struct Engine {
    threads: usize,
    cache: Option<StageCache>,
    memo: Option<std::sync::Mutex<ResultMemo>>,
}

/// The in-memory `result`-stage memo: a bounded map from content
/// key to the exact [`crate::json::Value`] the disk cache would
/// round-trip. Entries are what [`JobOutcome::to_value`] wrote, and
/// hits re-parse through [`JobOutcome::from_value`] with the *current*
/// job's name — the same semantics as a disk hit, minus I/O.
#[derive(Debug)]
struct ResultMemo {
    entries: std::collections::HashMap<String, crate::json::Value>,
    capacity: usize,
}

impl ResultMemo {
    fn get(&self, key: &str) -> Option<&crate::json::Value> {
        self.entries.get(key)
    }

    fn put(&mut self, key: &str, value: crate::json::Value) {
        // Generation eviction: a full memo is wiped wholesale. Warm
        // steady-state working sets far below the capacity never evict,
        // and the bound holds without per-entry recency bookkeeping.
        if self.entries.len() >= self.capacity && !self.entries.contains_key(key) {
            self.entries.clear();
        }
        self.entries.insert(key.to_string(), value);
    }
}

impl Engine {
    /// Creates an engine (opening the cache directory if configured).
    ///
    /// # Errors
    ///
    /// Fails if the cache root cannot be created.
    pub fn new(options: EngineOptions) -> std::io::Result<Self> {
        let threads = if options.threads == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            options.threads
        };
        let cache = options.cache_dir.map(StageCache::open).transpose()?;
        let memo = (options.result_memo > 0).then(|| {
            std::sync::Mutex::new(ResultMemo {
                entries: std::collections::HashMap::new(),
                capacity: options.result_memo,
            })
        });
        Ok(Self {
            threads,
            cache,
            memo,
        })
    }

    /// The resolved worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The stage cache, if enabled.
    #[must_use]
    pub fn cache(&self) -> Option<&StageCache> {
        self.cache.as_ref()
    }

    /// Runs a batch, discarding the stream.
    #[must_use]
    pub fn run(&self, jobs: Vec<Job>) -> BatchReport {
        self.run_streamed(jobs, |_| {})
    }

    /// Runs a batch, invoking `sink` with every result **in job order**
    /// as soon as it (and all its predecessors) completed.
    #[must_use]
    pub fn run_streamed(&self, jobs: Vec<Job>, sink: impl FnMut(&JobResult) + Send) -> BatchReport {
        self.run_streamed_cancellable(jobs, None, sink)
    }

    /// [`Engine::run_streamed`] with a cancellation flag: once `cancel`
    /// is set (typically from the sink, e.g. on a broken output pipe),
    /// jobs that have not started yet fail fast with a "cancelled"
    /// error instead of running their flows. In-flight jobs finish.
    #[must_use]
    pub fn run_streamed_cancellable(
        &self,
        mut jobs: Vec<Job>,
        cancel: Option<&std::sync::atomic::AtomicBool>,
        mut sink: impl FnMut(&JobResult) + Send,
    ) -> BatchReport {
        let t0 = Instant::now();
        let n = jobs.len();
        // Budget intra-job parallelism instead of letting it multiply
        // with the job fan-out: jobs in "auto" mode (0) share the worker
        // count — a lone job may use every worker for its internal
        // stages, a full batch pins each job to one thread. Explicit
        // per-job settings are respected, and results are identical at
        // any setting (the flows' intra tasks are independently seeded).
        let concurrent = self.threads.min(n.max(1)).max(1);
        let intra_budget = (self.threads / concurrent).max(1);
        for job in &mut jobs {
            if job.options.intra_parallelism == 0 {
                job.options.intra_parallelism = intra_budget;
            }
        }
        let cache_before = self
            .cache
            .as_ref()
            .map(StageCache::stats)
            .unwrap_or_default();
        let results = pool::run_ordered(
            jobs,
            self.threads,
            |_, job| self.execute(&job, cancel),
            |_, result| sink(result),
        );
        let wall = t0.elapsed();

        let mut stats = EngineStats::from_results(&results);
        debug_assert_eq!(stats.jobs, n);
        // Per-batch counters: a long-lived engine runs many batches
        // against one cumulative StageCache.
        let cache = self
            .cache
            .as_ref()
            .map(|c| c.stats().since(cache_before))
            .unwrap_or_default();
        stats.quarantined = cache.corrupt as usize;
        BatchReport {
            results,
            stats,
            cache,
            wall,
            threads: self.threads,
        }
    }

    /// Runs one job outside any batch — the entry point a long-running
    /// service uses to multiplex jobs from many connections onto one
    /// shared worker pool while keeping the engine's cache semantics.
    ///
    /// A failing job returns a [`JobResult`] with a structured
    /// [`JobError`] outcome; this never panics on infeasible inputs.
    #[must_use]
    pub fn execute_job(&self, job: &Job) -> JobResult {
        self.execute(job, None)
    }

    fn execute(&self, job: &Job, cancel: Option<&std::sync::atomic::AtomicBool>) -> JobResult {
        if cancel.is_some_and(|c| c.load(Ordering::Relaxed)) {
            return JobResult {
                name: job.name.clone(),
                flow: job.flow,
                outcome: Err(JobError::engine("cancelled before execution")),
                cache: JobCacheInfo::default(),
                duration: Duration::ZERO,
                stages: Vec::new(),
            };
        }
        let t0 = Instant::now();
        let mut info = JobCacheInfo::default();
        let (outcome, stages) = self.run_flow(job, &mut info);
        JobResult {
            name: job.name.clone(),
            flow: job.flow,
            outcome,
            cache: info,
            duration: t0.elapsed(),
            stages,
        }
    }

    /// Compiles the job to its stage plan and runs it through the plan
    /// executor; every flow flavour takes this one path. The per-job
    /// cache provenance is derived from the executor's per-node
    /// telemetry, so batch counters and stage timings can never
    /// disagree.
    fn run_flow(
        &self,
        job: &Job,
        info: &mut JobCacheInfo,
    ) -> (Result<JobOutcome, JobError>, Vec<StageTiming>) {
        let plan = match job.compile() {
            Ok(plan) => plan,
            Err(e) => return (Err(JobError::from_flow(&e)), Vec::new()),
        };
        let hooks = EngineHooks {
            cache: self.cache.as_ref(),
            memo: self.memo.as_ref(),
            job,
        };
        let run = plan.execute(&hooks, job.options.intra_parallelism);
        for stage in &run.stages {
            match stage.cache {
                CacheOutcome::Hit if stage.kind.is_placement() => {
                    info.placement_hit = true;
                    info.placement_hits += 1;
                }
                // Summaries are always plan roots: a summary hit is a
                // full result hit and nothing downstream exists to run.
                CacheOutcome::Hit => info.result_hit = true,
                CacheOutcome::Miss | CacheOutcome::Uncached => info.stages_recomputed += 1,
            }
        }
        let outcome = match run.artifact {
            Ok(Artifact::Dcs(s)) => Ok(JobOutcome::Dcs(s)),
            Ok(Artifact::Mdr(s)) => Ok(JobOutcome::Mdr(s)),
            Ok(Artifact::Combined(mut m)) => {
                // Plans are nameless (names would poison fingerprint
                // sharing); the engine restores the job's name here.
                m.name = job.name.clone();
                Ok(JobOutcome::Pair(m))
            }
            Ok(other) => Err(JobError::engine(format!(
                "plan resolved to a {:?} artifact instead of a summary",
                other.kind()
            ))),
            Err(e) => Err(JobError::from_flow(&e)),
        };
        (outcome, run.stages)
    }
}

/// The engine's cache integration with the plan executor: nodes are
/// keyed by SHA-256 over their structural fingerprint, placements and
/// summaries land in separate namespaces, and summary values are
/// additionally memoized in memory (a disk hit back-fills the memo).
struct EngineHooks<'a> {
    cache: Option<&'a StageCache>,
    memo: Option<&'a std::sync::Mutex<ResultMemo>>,
    job: &'a Job,
}

impl EngineHooks<'_> {
    /// The on-disk key of one node: the structural fingerprint, hashed
    /// (fingerprints are readable but unbounded; keys must be file
    /// names).
    fn key(node: &PlanNode) -> String {
        let mut h = Sha256::new();
        h.field(b"mm-engine-v2");
        h.field(node.fingerprint().as_bytes());
        h.finish_hex()
    }

    fn namespace(kind: ArtifactKind) -> &'static str {
        if kind.is_placement() {
            "placement"
        } else {
            "result"
        }
    }

    /// Decodes a cached value into the artifact kind the node declares;
    /// `None` (shape mismatch, wrong kind) is treated as a miss by the
    /// caller.
    fn decode(&self, kind: ArtifactKind, v: &crate::json::Value) -> Option<Artifact> {
        match kind {
            ArtifactKind::MdrPlacements => {
                placements_from(&self.job.circuits, v).map(|p| Artifact::MdrPlacements(Arc::new(p)))
            }
            ArtifactKind::CombinedPlacement => multi_placement_from(&self.job.circuits, v)
                .map(|p| Artifact::CombinedPlacement(Arc::new(p))),
            summary => {
                let artifact = match JobOutcome::from_value(v, &self.job.name)? {
                    JobOutcome::Dcs(s) => Artifact::Dcs(s),
                    JobOutcome::Mdr(s) => Artifact::Mdr(s),
                    JobOutcome::Pair(m) => Artifact::Combined(m),
                };
                (artifact.kind() == summary).then_some(artifact)
            }
        }
    }

    fn encode(&self, artifact: &Artifact) -> crate::json::Value {
        match artifact {
            Artifact::MdrPlacements(p) => placements_value(&self.job.circuits, p),
            Artifact::CombinedPlacement(p) => placements_value(&self.job.circuits, &p.modes),
            Artifact::Dcs(s) => JobOutcome::Dcs(s.clone()).to_value(),
            Artifact::Mdr(s) => JobOutcome::Mdr(s.clone()).to_value(),
            Artifact::Combined(m) => JobOutcome::Pair(m.clone()).to_value(),
        }
    }
}

impl PlanHooks for EngineHooks<'_> {
    fn lookup(&self, node: &PlanNode) -> Lookup {
        let kind = node.output_kind();
        let cacheable_in_memo = !kind.is_placement() && self.memo.is_some();
        if self.cache.is_none() && !cacheable_in_memo {
            return Lookup::Uncached;
        }
        let key = Self::key(node);
        // Fastest first: the in-memory memo (summaries only), then the
        // disk cache.
        if cacheable_in_memo {
            let memo = self.memo.expect("checked").lock().expect("memo lock");
            if let Some(artifact) = memo.get(&key).and_then(|v| self.decode(kind, v)) {
                return Lookup::Hit(artifact);
            }
        }
        if let Some(cache) = self.cache {
            if let Some(v) = cache.get(Self::namespace(kind), &key) {
                if let Some(artifact) = self.decode(kind, &v) {
                    if cacheable_in_memo {
                        if let Some(memo) = self.memo {
                            memo.lock().expect("memo lock").put(&key, v);
                        }
                    }
                    return Lookup::Hit(artifact);
                }
            }
        }
        Lookup::Miss
    }

    fn store(&self, node: &PlanNode, artifact: &Artifact) {
        let kind = node.output_kind();
        if self.cache.is_none() && (kind.is_placement() || self.memo.is_none()) {
            return;
        }
        let key = Self::key(node);
        let value = self.encode(artifact);
        if let Some(cache) = self.cache {
            cache.put(Self::namespace(kind), &key, &value);
        }
        if !kind.is_placement() {
            if let Some(memo) = self.memo {
                memo.lock().expect("memo lock").put(&key, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_resolution() {
        let e = Engine::new(EngineOptions {
            threads: 3,
            cache_dir: None,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(e.threads(), 3);
        let auto = Engine::new(EngineOptions::default()).unwrap();
        assert!(auto.threads() >= 1);
        assert!(auto.cache().is_none());
    }
}
