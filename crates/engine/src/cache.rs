//! Content-addressed on-disk stage cache.
//!
//! Every cacheable flow stage is keyed by a SHA-256 of everything that
//! determines its output: the canonical BLIF of each mode circuit, the
//! architecture fingerprint, the flow-option fingerprints, the flow kind
//! and the stage name (see [`crate::Engine`]). Entries live under
//!
//! ```text
//! <root>/<stage>/<aa>/<key>.json      (aa = first two hex digits)
//! ```
//!
//! and store `{"key": …, "stage": …, "sum": …, "payload": …}` where
//! `sum` is a SHA-256 over the serialized payload. Writes go through a
//! unique temp file + atomic rename, so concurrent workers computing the
//! same entry race benignly and a crash mid-write never leaves a
//! half-entry under the final name. Reads validate shape, embedded key
//! *and* content checksum; anything unreadable, mismatched or torn
//! counts as `corrupt`, is moved into `<root>/quarantine/` for
//! post-mortem (size-accounted and evicted oldest-first by
//! [`StageCache::gc`] like any entry), and falls back to recomputation
//! — a corrupted cache can cost time, never correctness.
//!
//! The [`crate::faultpoint`] sites [`faultpoint::CACHE_READ_IO`] and
//! [`faultpoint::CACHE_WRITE_PARTIAL`] inject unreadable reads and torn
//! writes here for chaos testing.

use crate::faultpoint;
use crate::json::{self, ObjBuilder, Value};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Hit/miss/corruption counters (engine-lifetime totals).
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    corrupt: AtomicU64,
}

/// A point-in-time snapshot of the cache's lifetime counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries served from disk.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
    /// Entries that existed but failed validation (shape, embedded key,
    /// content checksum) and were quarantined.
    pub corrupt: u64,
}

impl CacheStats {
    /// The activity between an earlier snapshot and this one — what one
    /// batch contributed on a long-lived engine.
    #[must_use]
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            writes: self.writes.saturating_sub(earlier.writes),
            corrupt: self.corrupt.saturating_sub(earlier.corrupt),
        }
    }
}

/// The stage cache rooted at one directory.
#[derive(Debug)]
pub struct StageCache {
    root: PathBuf,
    counters: CacheCounters,
}

impl StageCache {
    /// Opens (and creates) a cache rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails if the root directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(Self {
            root,
            counters: CacheCounters::default(),
        })
    }

    /// The cache root.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The path of an entry (exposed for tests and tooling).
    #[must_use]
    pub fn entry_path(&self, stage: &str, key: &str) -> PathBuf {
        let prefix = key.get(..2).unwrap_or("xx");
        self.root
            .join(stage)
            .join(prefix)
            .join(format!("{key}.json"))
    }

    /// The quarantine directory: corrupted entries are moved here (not
    /// deleted) so a corruption storm leaves evidence; the next
    /// [`StageCache::gc`] sweeps it.
    #[must_use]
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// Looks up `key` in `stage`, returning the stored payload.
    ///
    /// Counts a hit, a miss, or (for undecodable/mismatched/torn
    /// entries) a corruption — corrupted entries are quarantined so the
    /// follow-up [`StageCache::put`] recreates them and garbage never
    /// propagates into a result.
    #[must_use]
    pub fn get(&self, stage: &str, key: &str) -> Option<Value> {
        let path = self.entry_path(stage, key);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(_) => {
                self.quarantine(&path);
                return None;
            }
        };
        // Injected read fault: the bytes came back unusable.
        if faultpoint::fire(faultpoint::CACHE_READ_IO) {
            self.quarantine(&path);
            return None;
        }
        match json::parse(&text) {
            Ok(entry)
                if entry.get("key").and_then(Value::as_str) == Some(key)
                    && entry.get("stage").and_then(Value::as_str) == Some(stage) =>
            {
                match entry.get("payload") {
                    Some(payload) if checksum_matches(&entry, payload) => {
                        self.counters.hits.fetch_add(1, Ordering::Relaxed);
                        touch(&path);
                        Some(payload.clone())
                    }
                    _ => {
                        self.quarantine(&path);
                        None
                    }
                }
            }
            _ => {
                self.quarantine(&path);
                None
            }
        }
    }

    /// Stores `payload` under (`stage`, `key`). Failures are swallowed —
    /// a read-only or full cache disk degrades to recomputation. The
    /// entry carries a SHA-256 of the serialized payload, verified on
    /// every read.
    pub fn put(&self, stage: &str, key: &str, payload: &Value) {
        let path = self.entry_path(stage, key);
        let Some(dir) = path.parent() else { return };
        if std::fs::create_dir_all(dir).is_err() {
            return;
        }
        let payload_json = payload.to_json();
        let entry = ObjBuilder::new()
            .field("key", key)
            .field("stage", stage)
            .field("sum", crate::hash::sha256_hex(payload_json.as_bytes()))
            .field("payload", payload.clone())
            .build();
        let mut text = entry.to_json();
        // Injected write fault: the entry is torn mid-write (as a crash
        // or full disk would) — the checksum catches it on read.
        if faultpoint::fire(faultpoint::CACHE_WRITE_PARTIAL) {
            text.truncate(text.len() / 2);
        }
        // Unique temp name per writer; rename is atomic within the dir.
        let tmp = dir.join(format!(
            ".tmp-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &path).is_ok() {
            self.counters.writes.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = std::fs::remove_file(&tmp);
        }
    }

    /// Current counter totals.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            writes: self.counters.writes.load(Ordering::Relaxed),
            corrupt: self.counters.corrupt.load(Ordering::Relaxed),
        }
    }

    /// Counts a corruption and moves the entry into the quarantine
    /// directory (falling back to removal if the move fails) — the
    /// entry's slot is free for recomputation either way, and the bad
    /// bytes survive for post-mortem until the next GC sweep.
    fn quarantine(&self, path: &Path) {
        self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
        let dir = self.quarantine_dir();
        let moved = std::fs::create_dir_all(&dir).is_ok()
            && path
                .file_name()
                .is_some_and(|name| std::fs::rename(path, dir.join(name)).is_ok());
        if !moved {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Garbage-collects the store: evicts every entry older than
    /// `max_age`, then — least recently *used* first — enough further
    /// entries to bring the store under `max_bytes`. Either limit may be
    /// `None`.
    ///
    /// [`StageCache::get`] touches entries on every hit, so modification
    /// time tracks last use and the sweep is LRU, not insertion-order.
    /// An entry whose mtime cannot be read ranks *newest* (it is kept
    /// unless the byte budget forces it out last) — treating it as
    /// epoch-old would make exactly the unreadable entries the first
    /// victims of every sweep.
    ///
    /// Eviction order is deterministic (modification time, then path);
    /// a concurrently-vanishing entry is skipped, never an error.
    ///
    /// Quarantined corpses under `<root>/quarantine/` participate like
    /// any other entry: they count toward `scanned`/`bytes_before`, obey
    /// `max_age`, and are evicted oldest-first under the byte budget —
    /// a store that is mostly corpses still converges below `max_bytes`.
    ///
    /// # Errors
    ///
    /// Fails only if the cache root cannot be read.
    pub fn gc(
        &self,
        max_bytes: Option<u64>,
        max_age: Option<std::time::Duration>,
    ) -> std::io::Result<GcSummary> {
        let scan_time = std::time::SystemTime::now();
        let mut entries: Vec<(std::time::SystemTime, PathBuf, u64)> = Vec::new();
        let mut stack = vec![self.root.clone()];
        while let Some(dir) = stack.pop() {
            let reader = match std::fs::read_dir(&dir) {
                Ok(r) => r,
                Err(e) if dir == self.root => return Err(e),
                Err(_) => continue,
            };
            for entry in reader.filter_map(Result::ok) {
                let path = entry.path();
                if path.is_dir() {
                    // `quarantine/` is scanned like any other directory:
                    // its corpses occupy the same disk budget as live
                    // entries, so they must be size-accounted and
                    // LRU-ranked (quarantining preserves mtime, so old
                    // corpses are early victims) — ignoring them let a
                    // corrupted store exceed `max_bytes` forever.
                    stack.push(path);
                } else if path.extension().is_some_and(|e| e == "json") {
                    if let Ok(meta) = entry.metadata() {
                        // Unreadable mtime ⇒ rank as "used right now":
                        // never the preferred victim, and never counted
                        // as expired by the age limit.
                        let mtime = meta.modified().unwrap_or(scan_time);
                        entries.push((mtime, path, meta.len()));
                    }
                }
            }
        }
        entries.sort();

        let mut summary = GcSummary {
            scanned: entries.len(),
            bytes_before: entries.iter().map(|(_, _, len)| len).sum(),
            evicted: 0,
            bytes_evicted: 0,
        };
        let now = std::time::SystemTime::now();
        let mut live_bytes = summary.bytes_before;
        let budget = max_bytes.unwrap_or(u64::MAX);
        for (mtime, path, len) in &entries {
            let expired = max_age.is_some_and(|age| {
                now.duration_since(*mtime)
                    .map(|elapsed| elapsed > age)
                    .unwrap_or(false)
            });
            if !expired && live_bytes <= budget {
                break; // entries are oldest-first; the rest stay
            }
            match std::fs::remove_file(path) {
                Ok(()) => {
                    summary.evicted += 1;
                    summary.bytes_evicted += len;
                    live_bytes = live_bytes.saturating_sub(*len);
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                    // Vanished concurrently: its bytes are gone from the
                    // store, but not our eviction.
                    live_bytes = live_bytes.saturating_sub(*len);
                }
                Err(_) => {
                    // Unremovable (permissions, read-only mount): its
                    // bytes still occupy the store — keep evicting
                    // younger entries until the budget really holds.
                }
            }
        }

        Ok(summary)
    }
}

/// The entry's recorded checksum matches the payload it carries. A
/// missing or non-string `sum` (a pre-checksum or hand-edited entry)
/// fails closed: unverifiable is corrupt.
fn checksum_matches(entry: &Value, payload: &Value) -> bool {
    entry.get("sum").and_then(Value::as_str)
        == Some(crate::hash::sha256_hex(payload.to_json().as_bytes()).as_str())
}

/// Best-effort LRU bookkeeping: bump an entry's mtime to "now" so GC
/// ranks it most recently used. Failures (read-only store, vanished
/// file) cost nothing but eviction precision.
fn touch(path: &Path) {
    if let Ok(file) = std::fs::File::options().write(true).open(path) {
        let _ = file.set_modified(std::time::SystemTime::now());
    }
}

/// What one [`StageCache::gc`] sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcSummary {
    /// Entries found in the store.
    pub scanned: usize,
    /// Entries evicted.
    pub evicted: usize,
    /// Store size before the sweep, bytes.
    pub bytes_before: u64,
    /// Bytes evicted.
    pub bytes_evicted: u64,
}

impl GcSummary {
    /// Store size after the sweep, bytes.
    #[must_use]
    pub fn bytes_after(&self) -> u64 {
        self.bytes_before.saturating_sub(self.bytes_evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mm_engine_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn miss_then_hit() {
        let cache = StageCache::open(tmp_root("mh")).unwrap();
        let key = "a".repeat(64);
        assert!(cache.get("placement", &key).is_none());
        let payload = Value::Str("data".into());
        cache.put("placement", &key, &payload);
        assert_eq!(cache.get("placement", &key), Some(payload));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.writes, s.corrupt), (1, 1, 1, 0));
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn stages_are_disjoint_namespaces() {
        let cache = StageCache::open(tmp_root("ns")).unwrap();
        let key = "b".repeat(64);
        cache.put("placement", &key, &Value::Num(1.0));
        assert!(cache.get("result", &key).is_none());
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn corrupted_entry_is_quarantined_and_recovered() {
        let cache = StageCache::open(tmp_root("cor")).unwrap();
        let key = "c".repeat(64);
        cache.put("result", &key, &Value::Num(42.0));

        // Truncate the entry mid-JSON.
        let path = cache.entry_path("result", &key);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();

        assert!(cache.get("result", &key).is_none(), "corrupt => miss");
        assert!(!path.exists(), "corrupt entry moved out of its slot");
        let corpse = cache.quarantine_dir().join(format!("{key}.json"));
        assert!(corpse.exists(), "corrupt entry kept for post-mortem");
        assert_eq!(cache.stats().corrupt, 1);

        // Recomputation path: put again, read back.
        cache.put("result", &key, &Value::Num(42.0));
        assert_eq!(cache.get("result", &key), Some(Value::Num(42.0)));

        // The corpse is ordinary GC state now: an unlimited sweep keeps
        // it (post-mortem evidence has no deadline of its own), a byte
        // budget evicts it oldest-first before any live entry.
        let scan = cache.gc(None, None).unwrap();
        assert_eq!(scan.scanned, 2, "corpse and live entry both scanned");
        assert_eq!(scan.evicted, 0, "no limits, no eviction");
        assert!(corpse.exists());
        let sweep = cache.gc(Some(scan.bytes_before - 1), None).unwrap();
        assert_eq!(sweep.evicted, 1, "the corpse is the oldest victim");
        assert!(!corpse.exists());
        assert_eq!(cache.get("result", &key), Some(Value::Num(42.0)));
        let _ = std::fs::remove_dir_all(cache.root());
    }

    /// Regression: `gc` used to skip `quarantine/` during the scan and
    /// instead wipe it wholesale after budgeting — so corpses were
    /// invisible to `max_bytes` accounting. They must participate in
    /// size accounting and oldest-first eviction like live entries.
    #[test]
    fn gc_accounts_for_and_evicts_quarantined_entries() {
        let cache = StageCache::open(tmp_root("gc_quar")).unwrap();
        let k0 = "0".repeat(64);
        let k1 = "f".repeat(64);
        cache.put("result", &k0, &Value::Str("x".repeat(64)));
        let path = cache.entry_path("result", &k0);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(cache.get("result", &k0).is_none(), "corrupt => quarantined");
        std::thread::sleep(std::time::Duration::from_millis(20));
        cache.put("result", &k1, &Value::Str("y".repeat(64)));

        let scan = cache.gc(None, None).unwrap();
        assert_eq!(scan.scanned, 2, "the corpse is size-accounted");
        assert_eq!(scan.evicted, 0, "corpses are no longer swept wholesale");
        let corpse = cache.quarantine_dir().join(format!("{k0}.json"));
        assert!(corpse.exists());

        let sweep = cache.gc(Some(scan.bytes_before - 1), None).unwrap();
        assert_eq!(sweep.evicted, 1, "budget eviction is oldest-first");
        assert!(!corpse.exists(), "the older corpse went before live data");
        assert_eq!(
            cache.get("result", &k1),
            Some(Value::Str("y".repeat(64))),
            "the younger live entry survives"
        );
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn bitflipped_payload_fails_the_checksum() {
        let cache = StageCache::open(tmp_root("sum")).unwrap();
        let key = "9".repeat(64);
        cache.put("result", &key, &Value::Str("payload-data".into()));

        // Flip one payload byte: the entry still parses as JSON and the
        // embedded key/stage still match — only the checksum catches it.
        let path = cache.entry_path("result", &key);
        let text = std::fs::read_to_string(&path).unwrap();
        let tampered = text.replace("payload-data", "payload-dbta");
        assert_ne!(text, tampered, "tamper site present");
        std::fs::write(&path, tampered).unwrap();

        assert!(cache.get("result", &key).is_none(), "bad sum => miss");
        assert_eq!(cache.stats().corrupt, 1);
        assert!(
            cache.quarantine_dir().join(format!("{key}.json")).exists(),
            "tampered entry quarantined"
        );
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn entry_without_checksum_is_unverifiable_hence_corrupt() {
        let cache = StageCache::open(tmp_root("nosum")).unwrap();
        let key = "8".repeat(64);
        let path = cache.entry_path("result", &key);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let entry = ObjBuilder::new()
            .field("key", key.as_str())
            .field("stage", "result")
            .field("payload", Value::Num(1.0))
            .build();
        std::fs::write(&path, entry.to_json()).unwrap();
        assert!(cache.get("result", &key).is_none(), "no sum => no trust");
        assert_eq!(cache.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn wrong_key_inside_entry_is_corruption() {
        let cache = StageCache::open(tmp_root("wk")).unwrap();
        let key1 = "d".repeat(64);
        let key2 = "e".repeat(64);
        cache.put("result", &key1, &Value::Bool(true));
        // Copy entry for key1 into key2's slot: content-address mismatch.
        let from = cache.entry_path("result", &key1);
        let to = cache.entry_path("result", &key2);
        std::fs::create_dir_all(to.parent().unwrap()).unwrap();
        std::fs::copy(&from, &to).unwrap();
        assert!(cache.get("result", &key2).is_none());
        assert_eq!(cache.stats().corrupt, 1);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn gc_respects_size_budget_oldest_first() {
        let cache = StageCache::open(tmp_root("gc_size")).unwrap();
        for i in 0..6 {
            let key = format!("{i:064}");
            cache.put("result", &key, &Value::Str("x".repeat(64)));
        }
        let all = cache.gc(None, None).unwrap();
        assert_eq!(all.scanned, 6);
        assert_eq!(all.evicted, 0, "no limits, no eviction");

        let budget = all.bytes_before / 2;
        let sweep = cache.gc(Some(budget), None).unwrap();
        assert!(sweep.evicted >= 3, "over-budget entries evicted");
        assert!(sweep.bytes_after() <= budget, "store under budget");
        let after = cache.gc(None, None).unwrap();
        assert_eq!(after.scanned, 6 - sweep.evicted);

        // Evicted entries are misses, surviving ones still hit.
        let mut hits = 0;
        for i in 0..6 {
            let key = format!("{i:064}");
            if cache.get("result", &key).is_some() {
                hits += 1;
            }
        }
        assert_eq!(hits, 6 - sweep.evicted);
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn gc_is_lru_a_just_hit_entry_survives_a_size_sweep() {
        let cache = StageCache::open(tmp_root("gc_lru")).unwrap();
        let hot = "a".repeat(64);
        let cold = "b".repeat(64);
        cache.put("result", &hot, &Value::Str("x".repeat(64)));
        cache.put("result", &cold, &Value::Str("x".repeat(64)));

        // Backdate both entries, the hot one *further into the past* —
        // under insertion-order GC it would be the first victim.
        let backdate = |key: &str, secs: u64| {
            let path = cache.entry_path("result", key);
            let file = std::fs::File::options().write(true).open(path).unwrap();
            file.set_modified(std::time::SystemTime::now() - std::time::Duration::from_secs(secs))
                .unwrap();
        };
        backdate(&hot, 7_200);
        backdate(&cold, 3_600);

        // A hit must refresh the hot entry's recency...
        assert!(cache.get("result", &hot).is_some());

        // ...so a sweep that only has room for one entry evicts the
        // colder, *older-by-last-use* entry, not the older-by-insertion
        // one.
        let all = cache.gc(None, None).unwrap();
        let sweep = cache.gc(Some(all.bytes_before / 2), None).unwrap();
        assert_eq!(sweep.evicted, 1);
        assert!(cache.get("result", &hot).is_some(), "just-hit entry kept");
        assert!(cache.get("result", &cold).is_none(), "LRU entry evicted");
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn gc_age_limit_evicts_stale_entries() {
        let cache = StageCache::open(tmp_root("gc_age")).unwrap();
        let key = "a".repeat(64);
        cache.put("placement", &key, &Value::Num(1.0));
        std::thread::sleep(std::time::Duration::from_millis(20));
        let sweep = cache
            .gc(None, Some(std::time::Duration::from_millis(1)))
            .unwrap();
        assert_eq!(sweep.evicted, 1, "stale entry evicted");
        assert_eq!(sweep.bytes_after(), 0);
        let keep = StageCache::open(cache.root()).unwrap();
        keep.put("placement", &key, &Value::Num(2.0));
        let sweep = keep
            .gc(None, Some(std::time::Duration::from_secs(3600)))
            .unwrap();
        assert_eq!(sweep.evicted, 0, "fresh entry kept");
        let _ = std::fs::remove_dir_all(cache.root());
    }

    #[test]
    fn concurrent_writers_race_benignly() {
        let cache = StageCache::open(tmp_root("cc")).unwrap();
        let key = "f".repeat(64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        cache.put("result", &key, &Value::Num(7.0));
                        let _ = cache.get("result", &key);
                    }
                });
            }
        });
        assert_eq!(cache.get("result", &key), Some(Value::Num(7.0)));
        assert_eq!(cache.stats().corrupt, 0, "no torn reads");
        let _ = std::fs::remove_dir_all(cache.root());
    }
}
