//! FPGA configuration-memory model and reconfiguration-cost metrics.
//!
//! The paper measures reconfiguration time as "the number of bits that
//! needs to be rewritten in the configuration memory" (§IV-C.1). This
//! crate models that memory and derives the three costs compared in
//! Figs. 5 and 6:
//!
//! * **MDR** — Modular Dynamic Reconfiguration rewrites the *complete*
//!   reconfigurable region: all LUT bits plus all routing bits.
//! * **Diff** — still writes all LUT bits, but counts only the routing
//!   cells whose value differs between the modes' configurations
//!   (the paper's `RegExp-Diff` bar).
//! * **DCS** — the multi-mode flow rewrites all LUT bits plus only the
//!   *parameterized* routing bits: switches whose Boolean function of the
//!   mode bits is not constant.
//!
//! A full per-mode configuration is a set of enabled switches
//! ([`Config`]); a parameterized configuration maps switches to mode-set
//! functions ([`ParamConfig`]). Both are derived from routings produced by
//! `mm-route`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mm_arch::{Architecture, RoutingGraph, SwitchId};
use mm_boolexpr::{ModeSet, ModeSpace};
use mm_route::Routing;
use std::collections::BTreeMap;
use std::fmt;

/// Bit-count summary of one reconfiguration scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteCost {
    /// LUT configuration cells rewritten.
    pub lut_bits: usize,
    /// Routing configuration cells rewritten.
    pub routing_bits: usize,
}

impl RewriteCost {
    /// Total bits rewritten.
    #[must_use]
    pub fn total(&self) -> usize {
        self.lut_bits + self.routing_bits
    }

    /// Fraction of the rewrite spent on routing cells (Fig. 6's stacking).
    #[must_use]
    pub fn routing_share(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.routing_bits as f64 / self.total() as f64
        }
    }
}

impl fmt::Display for RewriteCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bits ({} LUT + {} routing)",
            self.total(),
            self.lut_bits,
            self.routing_bits
        )
    }
}

/// The configuration memory of the reconfigurable region.
///
/// In the experiments "the reconfigurable region comprises the complete
/// FPGA", so the model is derived from the whole architecture: every
/// logic block carries `2^k + 1` cells, every programmable switch one
/// cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConfigModel {
    /// Total LUT cells of the region.
    pub lut_bits: usize,
    /// Total routing cells (programmable switches) of the region.
    pub routing_bits: usize,
}

impl ConfigModel {
    /// Builds the memory model of an architecture / RRG pair.
    #[must_use]
    pub fn new(arch: &Architecture, rrg: &RoutingGraph) -> Self {
        Self {
            lut_bits: arch.total_lut_bits(),
            routing_bits: rrg.switch_count(),
        }
    }

    /// The MDR rewrite cost: the complete region (paper: "the
    /// reconfiguration time is the time needed to write the complete
    /// reconfigurable area").
    #[must_use]
    pub fn mdr_cost(&self) -> RewriteCost {
        RewriteCost {
            lut_bits: self.lut_bits,
            routing_bits: self.routing_bits,
        }
    }

    /// The Diff rewrite cost between two full configurations: all LUT
    /// bits, plus only the routing cells that differ.
    #[must_use]
    pub fn diff_cost(&self, a: &Config, b: &Config) -> RewriteCost {
        RewriteCost {
            lut_bits: self.lut_bits,
            routing_bits: a.differing_switches(b),
        }
    }

    /// The DCS rewrite cost of a parameterized configuration: all LUT
    /// bits plus the parameterized routing bits ("we do however count only
    /// the bits in the routing that are parameterized").
    #[must_use]
    pub fn dcs_cost(&self, param: &ParamConfig) -> RewriteCost {
        RewriteCost {
            lut_bits: self.lut_bits,
            routing_bits: param.parameterized_bits(),
        }
    }
}

/// A full (per-mode) routing configuration: the set of switches that are
/// on; every other routing cell is 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    on: Vec<SwitchId>, // sorted, deduplicated
}

impl Config {
    /// Extracts the configuration from a single-mode routing.
    #[must_use]
    pub fn from_routing(routing: &Routing) -> Self {
        let mut on: Vec<SwitchId> = routing
            .nets
            .iter()
            .flat_map(|n| n.tree.iter().filter_map(|t| t.switch))
            .collect();
        on.sort_unstable();
        on.dedup();
        Self { on }
    }

    /// Builds a configuration from an explicit switch set (tests,
    /// synthetic configurations).
    #[must_use]
    pub fn from_switches(mut on: Vec<SwitchId>) -> Self {
        on.sort_unstable();
        on.dedup();
        Self { on }
    }

    /// Number of switches that are on.
    #[must_use]
    pub fn on_count(&self) -> usize {
        self.on.len()
    }

    /// Whether a switch is on.
    #[must_use]
    pub fn is_on(&self, switch: SwitchId) -> bool {
        self.on.binary_search(&switch).is_ok()
    }

    /// The switches that are on, sorted.
    #[must_use]
    pub fn switches(&self) -> &[SwitchId] {
        &self.on
    }

    /// Number of routing cells whose value differs from `other` — the
    /// cells a diff-based reconfiguration manager would rewrite.
    #[must_use]
    pub fn differing_switches(&self, other: &Config) -> usize {
        // Symmetric difference of two sorted sets.
        let (mut i, mut j, mut diff) = (0usize, 0usize, 0usize);
        while i < self.on.len() || j < other.on.len() {
            match (self.on.get(i), other.on.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    i += 1;
                    j += 1;
                }
                (Some(&a), Some(&b)) if a < b => {
                    diff += 1;
                    i += 1;
                }
                (Some(_), Some(_)) => {
                    diff += 1;
                    j += 1;
                }
                (Some(_), None) => {
                    diff += 1;
                    i += 1;
                }
                (None, Some(_)) => {
                    diff += 1;
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        diff
    }
}

/// A parameterized configuration: every used switch mapped to the Boolean
/// function of the mode bits that drives its cell.
///
/// Switches absent from the map are constant 0; a switch mapped to the
/// full mode set is constant 1; everything else is *parameterized* and
/// must be rewritten on a mode change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamConfig {
    space: ModeSpace,
    switch_fn: BTreeMap<SwitchId, ModeSet>,
}

impl ParamConfig {
    /// Extracts the parameterized configuration from a multi-mode routing:
    /// each switch's function is the OR of the activation functions of all
    /// connections routed through it.
    #[must_use]
    pub fn from_routing(routing: &Routing, space: ModeSpace) -> Self {
        let mut switch_fn: BTreeMap<SwitchId, ModeSet> = BTreeMap::new();
        for net in &routing.nets {
            for t in &net.tree {
                if let Some(s) = t.switch {
                    *switch_fn.entry(s).or_insert(ModeSet::EMPTY) |= t.activation;
                }
            }
        }
        Self { space, switch_fn }
    }

    /// The mode space of the configuration.
    #[must_use]
    pub fn space(&self) -> ModeSpace {
        self.space
    }

    /// The Boolean function of a switch (constant 0 if unused).
    #[must_use]
    pub fn function(&self, switch: SwitchId) -> ModeSet {
        self.switch_fn
            .get(&switch)
            .copied()
            .unwrap_or(ModeSet::EMPTY)
    }

    /// Number of used switches (function not constant 0).
    #[must_use]
    pub fn used_switches(&self) -> usize {
        self.switch_fn.len()
    }

    /// Number of *parameterized* routing bits: functions that are neither
    /// constant 0 nor constant 1.
    #[must_use]
    pub fn parameterized_bits(&self) -> usize {
        self.switch_fn
            .values()
            .filter(|f| f.is_parameterized(self.space))
            .count()
    }

    /// Number of static-1 routing bits (always-on switches, typically the
    /// merged tunable connections).
    #[must_use]
    pub fn static_on_bits(&self) -> usize {
        self.switch_fn
            .values()
            .filter(|f| f.is_always(self.space))
            .count()
    }

    /// The full configuration obtained by evaluating every function for
    /// `mode` — what the reconfiguration manager writes when switching.
    ///
    /// # Panics
    ///
    /// Panics if `mode` is outside the mode space.
    #[must_use]
    pub fn specialize(&self, mode: usize) -> Config {
        assert!(mode < self.space.mode_count(), "mode out of range");
        Config::from_switches(
            self.switch_fn
                .iter()
                .filter(|&(_, f)| f.contains(mode))
                .map(|(&s, _)| s)
                .collect(),
        )
    }

    /// Iterates over the parameterized bits with their minimised Boolean
    /// expressions over the mode bits — the paper's
    /// `…, m1·m0, m0, 1, 0, …` view of the configuration.
    pub fn parameterized_expressions(
        &self,
    ) -> impl Iterator<Item = (SwitchId, mm_boolexpr::Expr)> + '_ {
        self.switch_fn
            .iter()
            .filter(|&(_, f)| f.is_parameterized(self.space))
            .map(|(&s, f)| (s, f.to_expr(self.space)))
    }
}

/// Convenience: the reconfiguration speed-up of DCS over MDR, as plotted
/// in Fig. 5 (`MDR bits / DCS bits`).
#[must_use]
pub fn speedup(mdr: &RewriteCost, dcs: &RewriteCost) -> f64 {
    if dcs.total() == 0 {
        f64::INFINITY
    } else {
        mdr.total() as f64 / dcs.total() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_arch::Site;
    use mm_route::{RouteNet, RouteSink, Router, RouterOptions};

    /// SwitchId has no public constructor by design; harvest real ids from
    /// a small RRG.
    fn switches() -> Vec<SwitchId> {
        let arch = Architecture::new(4, 2, 2);
        let rrg = RoutingGraph::build(&arch);
        let mut ids: Vec<SwitchId> = Vec::new();
        for n in rrg.node_ids() {
            for e in rrg.edges(n) {
                if let Some(s) = e.switch {
                    ids.push(s);
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    #[test]
    fn config_diffing() {
        let s = switches();
        let a = Config::from_switches(vec![s[0], s[1], s[2]]);
        let b = Config::from_switches(vec![s[1], s[3]]);
        assert_eq!(a.differing_switches(&b), 3); // s0, s2, s3
        assert_eq!(a.differing_switches(&a), 0);
        assert_eq!(b.differing_switches(&a), 3);
        assert!(a.is_on(s[0]));
        assert!(!b.is_on(s[0]));
        assert_eq!(a.on_count(), 3);
    }

    #[test]
    fn config_dedups() {
        let s = switches();
        let a = Config::from_switches(vec![s[1], s[0], s[1]]);
        assert_eq!(a.on_count(), 2);
        assert_eq!(a.switches(), &[s[0], s[1]]);
    }

    #[test]
    fn rewrite_cost_arithmetic() {
        let c = RewriteCost {
            lut_bits: 100,
            routing_bits: 400,
        };
        assert_eq!(c.total(), 500);
        assert!((c.routing_share() - 0.8).abs() < 1e-12);
        assert_eq!(c.to_string(), "500 bits (100 LUT + 400 routing)");
    }

    #[test]
    fn speedup_ratio() {
        let mdr = RewriteCost {
            lut_bits: 100,
            routing_bits: 900,
        };
        let dcs = RewriteCost {
            lut_bits: 100,
            routing_bits: 100,
        };
        assert!((speedup(&mdr, &dcs) - 5.0).abs() < 1e-12);
        assert!(speedup(
            &mdr,
            &RewriteCost {
                lut_bits: 0,
                routing_bits: 0
            }
        )
        .is_infinite());
    }

    /// Routes a two-mode pair of nets and checks the parameterized
    /// configuration classification.
    #[test]
    fn param_config_from_routing() {
        let arch = Architecture::new(4, 4, 4);
        let rrg = RoutingGraph::build(&arch);
        let space = ModeSpace::new(2);
        let both = space.all();
        let m1 = ModeSet::of(&[1]);
        let nets = vec![
            // A merged connection present in both modes: static-1 bits.
            RouteNet {
                name: "shared".into(),
                source: rrg.logic_source(Site::new(1, 1, 0)),
                sinks: vec![RouteSink {
                    node: rrg.logic_sink(Site::new(2, 1, 0)),
                    activation: both,
                }],
            },
            // A mode-1-only connection: parameterized bits.
            RouteNet {
                name: "only1".into(),
                source: rrg.logic_source(Site::new(1, 3, 0)),
                sinks: vec![RouteSink {
                    node: rrg.logic_sink(Site::new(3, 3, 0)),
                    activation: m1,
                }],
            },
        ];
        let mut router = Router::new(&rrg, RouterOptions::for_modes(2));
        let routing = router.route(&nets);
        assert!(routing.success);
        let param = ParamConfig::from_routing(&routing, space);
        assert!(param.static_on_bits() > 0, "shared connection is static");
        assert!(
            param.parameterized_bits() > 0,
            "mode-1 net is parameterized"
        );
        assert_eq!(
            param.used_switches(),
            param.static_on_bits() + param.parameterized_bits(),
            "every used switch is static-1 or parameterized (none constant-0)"
        );

        // Specialisation: mode 0 turns on exactly the static bits.
        let c0 = param.specialize(0);
        assert_eq!(c0.on_count(), param.static_on_bits());
        let c1 = param.specialize(1);
        assert_eq!(c1.on_count(), param.used_switches());
        // The diff between the two specialisations is exactly the
        // parameterized bits.
        assert_eq!(c0.differing_switches(&c1), param.parameterized_bits());

        // Expressions of parameterized bits reference mode bit 0.
        for (_, expr) in param.parameterized_expressions() {
            assert_eq!(expr.to_string(), "m0");
        }
    }

    #[test]
    fn dcs_cheaper_than_mdr_on_shared_routing() {
        let arch = Architecture::new(4, 4, 4);
        let rrg = RoutingGraph::build(&arch);
        let model = ConfigModel::new(&arch, &rrg);
        let space = ModeSpace::new(2);
        let both = space.all();
        let nets = vec![RouteNet {
            name: "shared".into(),
            source: rrg.logic_source(Site::new(1, 1, 0)),
            sinks: vec![RouteSink {
                node: rrg.logic_sink(Site::new(4, 4, 0)),
                activation: both,
            }],
        }];
        let mut router = Router::new(&rrg, RouterOptions::for_modes(2));
        let routing = router.route(&nets);
        let param = ParamConfig::from_routing(&routing, space);
        let dcs = model.dcs_cost(&param);
        let mdr = model.mdr_cost();
        assert_eq!(
            dcs.routing_bits, 0,
            "fully shared routing: nothing to rewrite"
        );
        assert!(speedup(&mdr, &dcs) > 1.0);
    }

    #[test]
    fn model_counts_follow_architecture() {
        let arch = Architecture::new(4, 6, 8);
        let rrg = RoutingGraph::build(&arch);
        let model = ConfigModel::new(&arch, &rrg);
        assert_eq!(model.lut_bits, 36 * 17);
        assert_eq!(model.routing_bits, rrg.switch_count());
        let mdr = model.mdr_cost();
        assert_eq!(mdr.total(), model.lut_bits + model.routing_bits);
    }

    #[test]
    fn diff_cost_uses_lut_bits_plus_difference() {
        let arch = Architecture::new(4, 2, 2);
        let rrg = RoutingGraph::build(&arch);
        let model = ConfigModel::new(&arch, &rrg);
        let s = switches();
        let a = Config::from_switches(vec![s[0], s[1]]);
        let b = Config::from_switches(vec![s[0], s[2]]);
        let cost = model.diff_cost(&a, &b);
        assert_eq!(cost.lut_bits, model.lut_bits);
        assert_eq!(cost.routing_bits, 2);
    }
}

/// Frame-granular reconfiguration accounting — the paper's future-work
/// model (§IV-C.1): "In current FPGAs, the reconfiguration granularity is
/// a collection of bits called a frame. … By reconfiguring only these
/// frames we can further reduce reconfiguration time. … we expect the
/// speed up of routing reconfiguration time to be roughly between 4× and
/// 20×."
///
/// Switch ids are assigned tile-by-tile during RRG construction, so
/// consecutive ids are physically local — grouping consecutive ids into
/// frames approximates the column-major frame layout of real devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameModel {
    /// Routing configuration cells per frame.
    pub frame_bits: usize,
    /// Total routing cells of the region.
    pub routing_bits: usize,
}

impl FrameModel {
    /// Creates a frame model over a region's routing cells.
    ///
    /// # Panics
    ///
    /// Panics if `frame_bits` is zero.
    #[must_use]
    pub fn new(routing_bits: usize, frame_bits: usize) -> Self {
        assert!(frame_bits > 0, "frames must hold at least one bit");
        Self {
            frame_bits,
            routing_bits,
        }
    }

    /// Total routing frames of the region — what MDR rewrites.
    #[must_use]
    pub fn total_frames(&self) -> usize {
        self.routing_bits.div_ceil(self.frame_bits)
    }

    /// Frames containing at least one *parameterized* bit — what a
    /// frame-granular DCS reconfiguration manager rewrites on a mode
    /// switch.
    #[must_use]
    pub fn frames_touched(&self, param: &ParamConfig) -> usize {
        let mut frames: Vec<usize> = param
            .parameterized_expressions()
            .map(|(s, _)| s.index() / self.frame_bits)
            .collect();
        frames.sort_unstable();
        frames.dedup();
        frames.len()
    }

    /// Frames containing at least one bit that differs between two full
    /// configurations (a frame-granular diff manager).
    #[must_use]
    pub fn frames_differing(&self, a: &Config, b: &Config) -> usize {
        let mut frames: Vec<usize> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        let (sa, sb) = (a.switches(), b.switches());
        while i < sa.len() || j < sb.len() {
            let next = match (sa.get(i), sb.get(j)) {
                (Some(&x), Some(&y)) if x == y => {
                    i += 1;
                    j += 1;
                    continue;
                }
                (Some(&x), Some(&y)) if x < y => {
                    i += 1;
                    x
                }
                (Some(_), Some(&y)) => {
                    j += 1;
                    y
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => unreachable!(),
            };
            frames.push(next.index() / self.frame_bits);
        }
        frames.sort_unstable();
        frames.dedup();
        frames.len()
    }

    /// Routing-frame speed-up of frame-granular DCS over MDR — the number
    /// the paper predicts lands "roughly between 4× and 20×".
    #[must_use]
    pub fn frame_speedup(&self, param: &ParamConfig) -> f64 {
        let touched = self.frames_touched(param);
        if touched == 0 {
            f64::INFINITY
        } else {
            self.total_frames() as f64 / touched as f64
        }
    }
}

#[cfg(test)]
mod frame_tests {
    use super::*;
    use mm_arch::{Architecture, RoutingGraph, Site};
    use mm_boolexpr::{ModeSet, ModeSpace};
    use mm_route::{RouteNet, RouteSink, Router, RouterOptions};

    #[test]
    fn total_frames_rounds_up() {
        let m = FrameModel::new(100, 32);
        assert_eq!(m.total_frames(), 4);
        assert_eq!(FrameModel::new(96, 32).total_frames(), 3);
    }

    #[test]
    fn touched_frames_bound_by_param_bits() {
        let arch = Architecture::new(4, 4, 4);
        let rrg = RoutingGraph::build(&arch);
        let space = ModeSpace::new(2);
        let nets = vec![RouteNet {
            name: "m1only".into(),
            source: rrg.logic_source(Site::new(1, 1, 0)),
            sinks: vec![RouteSink {
                node: rrg.logic_sink(Site::new(3, 3, 0)),
                activation: ModeSet::of(&[1]),
            }],
        }];
        let mut router = Router::new(&rrg, RouterOptions::for_modes(2));
        let routing = router.route(&nets);
        assert!(routing.success);
        let param = ParamConfig::from_routing(&routing, space);
        let frames = FrameModel::new(rrg.switch_count(), 16);
        let touched = frames.frames_touched(&param);
        assert!(touched >= 1);
        assert!(touched <= param.parameterized_bits());
        assert!(frames.frame_speedup(&param) > 1.0);
        // Locality: parameterized bits of one connection concentrate in
        // few frames relative to the whole fabric.
        assert!(touched * 4 < frames.total_frames());
    }

    #[test]
    fn differing_frames_match_manual_count() {
        let arch = Architecture::new(4, 2, 2);
        let rrg = RoutingGraph::build(&arch);
        let mut ids: Vec<SwitchId> = Vec::new();
        for n in rrg.node_ids() {
            for e in rrg.edges(n) {
                if let Some(s) = e.switch {
                    ids.push(s);
                }
            }
        }
        ids.sort_unstable();
        ids.dedup();
        let a = Config::from_switches(vec![ids[0], ids[40]]);
        let b = Config::from_switches(vec![ids[0], ids[41]]);
        let frames = FrameModel::new(rrg.switch_count(), 8);
        // ids[40] and ids[41] differ; same or adjacent frame.
        let d = frames.frames_differing(&a, &b);
        assert!((1..=2).contains(&d), "differing frames {d}");
        assert_eq!(frames.frames_differing(&a, &a), 0);
    }
}
