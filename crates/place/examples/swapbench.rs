//! Micro-benchmark of raw `apply_swap`/`revert_last` throughput on the
//! flat vs naive cost models (run with `--release`).

use mm_arch::Architecture;
use mm_netlist::{BlockId, LutCircuit, TruthTable};
use mm_place::reference::NaiveCostModel;
use mm_place::{CostKind, CostModel, CostTracker, SiteMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = LutCircuit::new(name, 4);
    let mut drivers: Vec<BlockId> = (0..n_inputs)
        .map(|i| c.add_input(format!("i{i}")).unwrap())
        .collect();
    for j in 0..n_luts {
        let fanin = rng.gen_range(2..=4.min(drivers.len()));
        let mut ins = Vec::new();
        while ins.len() < fanin {
            let d = drivers[rng.gen_range(0..drivers.len())];
            if !ins.contains(&d) {
                ins.push(d);
            }
        }
        let tt = TruthTable::from_bits(ins.len(), rng.gen());
        let id = c
            .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.2))
            .unwrap();
        drivers.push(id);
    }
    for t in 0..3 {
        let d = drivers[drivers.len() - 1 - t];
        c.add_output(format!("o{t}"), d).unwrap();
    }
    c
}

fn init(model: &mut impl CostTracker, circuits: &[LutCircuit], sites: &SiteMap) {
    let mut rng = StdRng::seed_from_u64(1);
    for (m, c) in circuits.iter().enumerate() {
        let mut logic: Vec<u32> = sites.logic_indices().collect();
        let mut io: Vec<u32> = sites.io_indices().collect();
        for i in (1..logic.len()).rev() {
            logic.swap(i, rng.gen_range(0..=i));
        }
        for i in (1..io.len()).rev() {
            io.swap(i, rng.gen_range(0..=i));
        }
        let (mut li, mut ii) = (0usize, 0usize);
        for id in c.block_ids() {
            let site = if c.block(id).is_lut() {
                li += 1;
                logic[li - 1]
            } else {
                ii += 1;
                io[ii - 1]
            };
            model.set_location(m, id.index() as u32, site);
        }
    }
    model.recompute();
}

fn storm(model: &mut impl CostTracker, sites: usize, n: usize) -> f64 {
    let mut rng = StdRng::seed_from_u64(2);
    let mut acc = 0.0;
    let t0 = Instant::now();
    for _ in 0..n {
        let m = rng.gen_range(0..2usize);
        let a = rng.gen_range(0..sites as u32);
        let b = rng.gen_range(0..sites as u32);
        if let Some(d) = model.apply_swap(m, a, b) {
            acc += d;
            if rng.gen_bool(0.5) {
                model.revert_last();
            }
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    dt
}

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        Some("edge") => CostKind::EdgeMatching,
        Some("hybrid") => CostKind::Hybrid {
            wl_weight: 1.0,
            edge_weight: 2.0,
        },
        _ => CostKind::WireLength,
    };
    let circuits = vec![
        random_circuit("m0", 6, 110, 11),
        random_circuit("m1", 6, 114, 12),
    ];
    let arch = Architecture::new(4, 13, 8);
    let sites = SiteMap::new(&arch);
    let n = 2_000_000usize;

    let mut fast = CostModel::new(&circuits, &sites, kind);
    init(&mut fast, &circuits, &sites);
    let _ = storm(&mut fast, sites.len(), 100_000); // warm
    let tf = storm(&mut fast, sites.len(), n);

    let mut naive = NaiveCostModel::new(&circuits, &sites, kind);
    init(&mut naive, &circuits, &sites);
    let _ = storm(&mut naive, sites.len(), 100_000);
    let tn = storm(&mut naive, sites.len(), n);

    println!(
        "kind {kind:?}: flat {:.1} ns/op ({:.2}M/s), naive {:.1} ns/op ({:.2}M/s), speedup {:.2}x",
        tf * 1e9 / n as f64,
        n as f64 / tf / 1e6,
        tn * 1e9 / n as f64,
        n as f64 / tn / 1e6,
        tn / tf
    );
}
