//! Differential tests: the flat, allocation-free cost model must be
//! bit-identical to the naive hash-map formulation — same costs, same
//! deltas, and therefore byte-identical annealed placements.

use mm_arch::Architecture;
use mm_netlist::{BlockId, LutCircuit, TruthTable};
use mm_place::reference::NaiveCostModel;
use mm_place::{
    place_combined, place_combined_reference, CostKind, CostModel, CostTracker, PlacerOptions,
    SiteMap,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic random k-LUT circuit (the shape used across the
/// repo's tests and benches).
fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = LutCircuit::new(name, 4);
    let mut drivers: Vec<BlockId> = (0..n_inputs)
        .map(|i| c.add_input(format!("i{i}")).unwrap())
        .collect();
    for j in 0..n_luts {
        let fanin = rng.gen_range(2..=4.min(drivers.len()));
        let mut ins = Vec::new();
        while ins.len() < fanin {
            let d = drivers[rng.gen_range(0..drivers.len())];
            if !ins.contains(&d) {
                ins.push(d);
            }
        }
        let tt = TruthTable::from_bits(ins.len(), rng.gen());
        let id = c
            .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.2))
            .unwrap();
        drivers.push(id);
    }
    for t in 0..3.min(n_luts) {
        let d = drivers[drivers.len() - 1 - t];
        c.add_output(format!("o{t}"), d).unwrap();
    }
    c
}

/// A generated multi-mode placement problem: 1–3 modes on a fabric that
/// fits the largest mode.
fn random_problem(seed: u64) -> (Vec<LutCircuit>, Architecture) {
    let mut rng = StdRng::seed_from_u64(seed);
    let modes = rng.gen_range(1..=3usize);
    let circuits: Vec<LutCircuit> = (0..modes)
        .map(|m| {
            let luts = rng.gen_range(8..=22usize);
            random_circuit(&format!("m{m}"), 5, luts, seed ^ (m as u64) << 17)
        })
        .collect();
    let max_luts = circuits.iter().map(LutCircuit::lut_count).max().unwrap();
    let grid = ((max_luts as f64).sqrt().ceil() as usize + 1).max(4);
    (circuits, Architecture::new(4, grid, 6))
}

/// One of the four cost kinds, chosen by the case seed — Hybrid and
/// Timing included so every term is exercised under the same swaps.
fn cost_for(seed: u64) -> CostKind {
    match seed % 4 {
        0 => CostKind::WireLength,
        1 => CostKind::EdgeMatching,
        2 => CostKind::Hybrid {
            wl_weight: 1.0,
            edge_weight: 2.5,
        },
        _ => CostKind::Timing { alpha: 0.5 },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The annealer produces byte-identical placements and statistics on
    /// the flat model and on the naive reference model.
    #[test]
    fn annealed_placements_are_byte_identical(seed in 0u64..1_000_000) {
        let (circuits, arch) = random_problem(seed);
        let options = PlacerOptions {
            cost: cost_for(seed),
            inner_num: 0.5,
            seed: seed ^ 0x5eed,
            max_temperatures: 40,
        };
        let (fast, fast_stats) = place_combined(&circuits, &arch, &options).unwrap();
        let (naive, naive_stats) = place_combined_reference(&circuits, &arch, &options).unwrap();
        prop_assert_eq!(fast_stats.final_cost.to_bits(), naive_stats.final_cost.to_bits());
        prop_assert_eq!(fast_stats.wirelength.to_bits(), naive_stats.wirelength.to_bits());
        prop_assert_eq!(fast_stats.tunable_connections, naive_stats.tunable_connections);
        prop_assert_eq!(fast_stats.temperatures, naive_stats.temperatures);
        prop_assert_eq!(fast_stats.moves, naive_stats.moves);
        for (m, c) in circuits.iter().enumerate() {
            for id in c.block_ids() {
                prop_assert!(
                    fast.modes[m].site_of(id) == naive.modes[m].site_of(id),
                    "mode {} block {:?} placed differently",
                    m,
                    id
                );
            }
        }
    }

    /// Swap/revert sequences on the Hybrid cost over multi-mode problems:
    /// the flat model's incremental state matches the naive model bit for
    /// bit after every operation, and a from-scratch recompute agrees.
    #[test]
    fn hybrid_multi_mode_swaps_match_naive_and_recompute(seed in 0u64..1_000_000) {
        let (circuits, arch) = random_problem(seed.wrapping_mul(7).wrapping_add(3));
        let kind = CostKind::Hybrid { wl_weight: 1.0, edge_weight: 3.0 };
        let sites = SiteMap::new(&arch);
        let mut fast = CostModel::new(&circuits, &sites, kind);
        let mut naive = NaiveCostModel::new(&circuits, &sites, kind);

        // A legal random initial placement, mirrored into both models.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfab);
        for (m, c) in circuits.iter().enumerate() {
            let mut logic: Vec<u32> = sites.logic_indices().collect();
            let mut io: Vec<u32> = sites.io_indices().collect();
            for i in (1..logic.len()).rev() {
                logic.swap(i, rng.gen_range(0..=i));
            }
            for i in (1..io.len()).rev() {
                io.swap(i, rng.gen_range(0..=i));
            }
            let (mut li, mut ii) = (0usize, 0usize);
            for id in c.block_ids() {
                let site = if c.block(id).is_lut() {
                    li += 1;
                    logic[li - 1]
                } else {
                    ii += 1;
                    io[ii - 1]
                };
                fast.set_location(m, id.index() as u32, site);
                naive.set_location(m, id.index() as u32, site);
            }
        }
        fast.recompute();
        naive.recompute();
        prop_assert_eq!(fast.cost().to_bits(), naive.cost().to_bits());

        for _ in 0..60 {
            let m = rng.gen_range(0..circuits.len());
            let a = rng.gen_range(0..sites.len() as u32);
            let b = rng.gen_range(0..sites.len() as u32);
            let d1 = fast.apply_swap(m, a, b);
            let d2 = naive.apply_swap(m, a, b);
            prop_assert_eq!(d1.map(f64::to_bits), d2.map(f64::to_bits));
            if d1.is_some() && rng.gen_bool(0.5) {
                fast.revert_last();
                naive.revert_last();
            }
            prop_assert_eq!(fast.cost().to_bits(), naive.cost().to_bits());
            prop_assert_eq!(fast.wirelength().to_bits(), naive.wirelength().to_bits());
            prop_assert_eq!(fast.tunable_connections(), naive.tunable_connections());
            prop_assert_eq!(fast.net_count(), naive.net_count());
        }

        // The incremental state survives a drift-correcting recompute
        // in lockstep with the naive model.
        fast.recompute();
        naive.recompute();
        prop_assert_eq!(fast.cost().to_bits(), naive.cost().to_bits());

        // And a fresh model over the final placement agrees with the
        // incrementally maintained one (recompute-vs-incremental parity).
        let mut fresh = CostModel::new(&circuits, &sites, kind);
        for (m, c) in circuits.iter().enumerate() {
            for id in c.block_ids() {
                fresh.set_location(m, id.index() as u32, fast.location(m, id.index() as u32));
            }
        }
        fresh.recompute();
        prop_assert_eq!(fresh.cost().to_bits(), fast.cost().to_bits());
    }

    /// Swap/revert sequences on the Timing cost: the criticality-weighted
    /// delay term is delta-tracked bit-identically between the flat and
    /// naive models, and survives a from-scratch recompute.
    #[test]
    fn timing_swaps_match_naive_and_recompute(seed in 0u64..1_000_000) {
        let (circuits, arch) = random_problem(seed.wrapping_mul(13).wrapping_add(9));
        let kind = CostKind::Timing { alpha: 0.7 };
        let sites = SiteMap::new(&arch);
        let mut fast = CostModel::new(&circuits, &sites, kind);
        let mut naive = NaiveCostModel::new(&circuits, &sites, kind);

        let mut rng = StdRng::seed_from_u64(seed ^ 0x71417);
        for (m, c) in circuits.iter().enumerate() {
            let mut logic: Vec<u32> = sites.logic_indices().collect();
            let mut io: Vec<u32> = sites.io_indices().collect();
            for i in (1..logic.len()).rev() {
                logic.swap(i, rng.gen_range(0..=i));
            }
            for i in (1..io.len()).rev() {
                io.swap(i, rng.gen_range(0..=i));
            }
            let (mut li, mut ii) = (0usize, 0usize);
            for id in c.block_ids() {
                let site = if c.block(id).is_lut() {
                    li += 1;
                    logic[li - 1]
                } else {
                    ii += 1;
                    io[ii - 1]
                };
                fast.set_location(m, id.index() as u32, site);
                naive.set_location(m, id.index() as u32, site);
            }
        }
        fast.recompute();
        naive.recompute();
        prop_assert_eq!(fast.cost().to_bits(), naive.cost().to_bits());
        prop_assert_eq!(fast.timing_cost().to_bits(), naive.timing_cost().to_bits());

        for _ in 0..60 {
            let m = rng.gen_range(0..circuits.len());
            let a = rng.gen_range(0..sites.len() as u32);
            let b = rng.gen_range(0..sites.len() as u32);
            let d1 = fast.apply_swap(m, a, b);
            let d2 = naive.apply_swap(m, a, b);
            prop_assert_eq!(d1.map(f64::to_bits), d2.map(f64::to_bits));
            if d1.is_some() && rng.gen_bool(0.5) {
                fast.revert_last();
                naive.revert_last();
            }
            prop_assert_eq!(fast.cost().to_bits(), naive.cost().to_bits());
            prop_assert_eq!(fast.timing_cost().to_bits(), naive.timing_cost().to_bits());
            prop_assert_eq!(fast.wirelength().to_bits(), naive.wirelength().to_bits());
        }

        fast.recompute();
        naive.recompute();
        prop_assert_eq!(fast.cost().to_bits(), naive.cost().to_bits());
        prop_assert_eq!(fast.timing_cost().to_bits(), naive.timing_cost().to_bits());
    }
}

/// Steady-state annealing must not grow the flat model's swap scratch
/// (the zero-allocation contract), exercised through a real placement.
#[test]
fn swap_scratch_stays_fixed_across_a_long_swap_storm() {
    let (circuits, arch) = random_problem(0xfab);
    let kind = CostKind::Hybrid {
        wl_weight: 1.0,
        edge_weight: 2.0,
    };
    let sites = SiteMap::new(&arch);
    let mut model = CostModel::new(&circuits, &sites, kind);
    let mut rng = StdRng::seed_from_u64(7);
    for (m, c) in circuits.iter().enumerate() {
        let mut logic: Vec<u32> = sites.logic_indices().collect();
        let mut io: Vec<u32> = sites.io_indices().collect();
        for i in (1..logic.len()).rev() {
            logic.swap(i, rng.gen_range(0..=i));
        }
        for i in (1..io.len()).rev() {
            io.swap(i, rng.gen_range(0..=i));
        }
        let (mut li, mut ii) = (0usize, 0usize);
        for id in c.block_ids() {
            let site = if c.block(id).is_lut() {
                li += 1;
                logic[li - 1]
            } else {
                ii += 1;
                io[ii - 1]
            };
            model.set_location(m, id.index() as u32, site);
        }
    }
    model.recompute();

    // Deterministic warm-up: apply-and-revert every site pair in every
    // mode. This co-swaps every pair of blocks of the initial placement,
    // so each scratch buffer reaches its global high-water mark (swap
    // scratch needs depend only on the two moved blocks' adjacency).
    for m in 0..circuits.len() {
        for a in 0..sites.len() as u32 {
            for b in (a + 1)..sites.len() as u32 {
                if model.apply_swap(m, a, b).is_some() {
                    model.revert_last();
                }
            }
        }
    }
    let footprint = model.scratch_footprint();
    assert!(footprint > 0);
    // ...and the steady state never grows it again.
    for _ in 0..2000 {
        let m = rng.gen_range(0..circuits.len());
        let a = rng.gen_range(0..sites.len() as u32);
        let b = rng.gen_range(0..sites.len() as u32);
        if model.apply_swap(m, a, b).is_some() && rng.gen_bool(0.4) {
            model.revert_last();
        }
    }
    assert_eq!(
        model.scratch_footprint(),
        footprint,
        "steady-state apply_swap must not grow the scratch"
    );
}
