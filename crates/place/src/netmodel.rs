//! Incremental cost evaluation for combined placement.
//!
//! The combined placer evaluates two cost functions over a *simultaneous*
//! placement of all modes (paper §III-B):
//!
//! * **Wire length** — the novel approach: the bounding-box wire length of
//!   the *merged tunable circuit*. Every site hosting at least one driver
//!   block defines one tunable net whose terminals are the site itself
//!   plus the sites of every sink of every co-located mode driver; the
//!   cost is VPR's `q(t) · HPWL` summed over tunable nets. "The
//!   wire-length estimation used during the combined placement is the same
//!   as the one TPlace uses during the placement of the Tunable circuit
//!   after merging."
//! * **Circuit edge matching** — the prior technique (Rullmann & Merker):
//!   minimise the number of *distinct* site-level connections
//!   `(source site, sink site)`; connections of different modes that land
//!   on the same site pair merge into one tunable connection.
//!
//! # Hot-path engineering
//!
//! [`CostModel`] is the flat, allocation-free formulation that mirrors the
//! router's scratch arena (`mm-route`):
//!
//! * per-net cost, activity, bounding box and distinct-terminal count live
//!   in dense `Vec`s indexed by source site — no `HashMap<u32, f64>`;
//! * per-net terminal multiplicities are a dense `site × site` refcount
//!   matrix, so terminal dedup is one counter transition instead of the
//!   naive `terms.contains` scan;
//! * cached bounding boxes are updated incrementally on swap: an arriving
//!   terminal only *expands* the box, and a departing one triggers a full
//!   recompute of the box **only** when it sat on a box edge;
//! * a swap touches exactly the departing/arriving occupants'
//!   contributions — no whole-net re-enumeration;
//! * site-pair multiplicities for edge matching are a dense matrix plus a
//!   distinct-pair counter — no `HashMap<(u32, u32), u32>`;
//! * all per-swap bookkeeping (affected keys, snapshots, refcount and
//!   pair operations) lives in reusable scratch buffers, so steady-state
//!   [`CostTracker::apply_swap`] performs **zero heap allocations**
//!   (asserted by [`CostModel::scratch_footprint`] regression tests).
//!
//! The straightforward hash-map formulation the flat model replaced lives
//! in [`crate::reference`] as [`crate::reference::NaiveCostModel`]; seeded
//! property tests keep the two byte-identical (same costs, same deltas,
//! same placements), so every data-structure optimization is provably
//! semantics-preserving. Both are maintained incrementally under
//! single-mode swaps with exact undo, so the annealer can evaluate
//! millions of moves.

use crate::{q_factor, SiteMap};
use mm_netlist::{BlockKind, LutCircuit};

/// Which cost function drives the combined placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostKind {
    /// Bounding-box wire length of the merged tunable circuit (the paper's
    /// novel approach).
    WireLength,
    /// Number of distinct tunable connections (circuit edge matching).
    EdgeMatching,
    /// Weighted combination `wl_weight · WL + edge_weight · connections`
    /// (an ablation knob; not part of the paper).
    Hybrid {
        /// Weight of the wire-length term.
        wl_weight: f64,
        /// Weight of the connection-count term.
        edge_weight: f64,
    },
    /// Timing-driven blend `(1 - alpha) · WL + alpha · Σ crit · dist`:
    /// wire length plus a criticality-weighted Manhattan-delay term over
    /// every mode connection, with criticalities from `mm-sta`'s
    /// placement-independent unit-delay analysis.
    Timing {
        /// Weight of the delay term in `0..=1` (`0` degenerates to
        /// pure wire length).
        alpha: f64,
    },
}

impl CostKind {
    /// A stable fingerprint of the cost function (floats by bit pattern),
    /// used by the batch engine's stage cache keys.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        match self {
            CostKind::WireLength => "wl".to_string(),
            CostKind::EdgeMatching => "edge".to_string(),
            CostKind::Hybrid {
                wl_weight,
                edge_weight,
            } => format!(
                "hybrid({:016x},{:016x})",
                wl_weight.to_bits(),
                edge_weight.to_bits()
            ),
            CostKind::Timing { alpha } => format!("timing({:016x})", alpha.to_bits()),
        }
    }

    /// Whether the wire-length / pair terms are tracked for this kind.
    pub(crate) fn tracks(self) -> (bool, bool) {
        match self {
            CostKind::WireLength | CostKind::Timing { .. } => (true, false),
            CostKind::EdgeMatching => (false, true),
            CostKind::Hybrid { .. } => (true, true),
        }
    }

    /// Whether the criticality-weighted delay term is tracked.
    pub(crate) fn tracks_timing(self) -> bool {
        matches!(self, CostKind::Timing { .. })
    }
}

/// Manhattan distance between two sites as `f64` (widened before
/// summing so the `u16` coordinate differences cannot overflow).
#[inline]
pub(crate) fn manhattan(a: (u16, u16), b: (u16, u16)) -> f64 {
    f64::from(u32::from(a.0.abs_diff(b.0)) + u32::from(a.1.abs_diff(b.1)))
}

/// The incremental-cost interface the annealer drives.
///
/// Implemented by the flat [`CostModel`] and by the naive
/// [`crate::reference::NaiveCostModel`]; the two produce bit-identical
/// costs and deltas, so the annealer yields byte-identical placements with
/// either — the differential-testing contract of the placement hot path.
pub trait CostTracker {
    /// Places block `block` of `mode` on `site` (initial placement only).
    fn set_location(&mut self, mode: usize, block: u32, site: u32);
    /// The current site of a block.
    fn location(&self, mode: usize, block: u32) -> u32;
    /// Recomputes all bookkeeping from scratch (initialisation and
    /// periodic drift correction).
    fn recompute(&mut self);
    /// Applies the swap of the `mode`-occupants of the two sites and
    /// returns the cost delta, or `None` (applying nothing) when both
    /// sites are empty in that mode or equal. A returned swap can be
    /// undone with [`CostTracker::revert_last`] until the next call.
    fn apply_swap(&mut self, mode: usize, site_a: u32, site_b: u32) -> Option<f64>;
    /// Reverts the most recent applied (un-reverted) swap exactly.
    fn revert_last(&mut self);
    /// The current total cost under the configured [`CostKind`].
    fn cost(&self) -> f64;
    /// The bounding-box wire-length component (0 unless tracked).
    fn wirelength(&self) -> f64;
    /// The number of distinct tunable connections (0 unless tracked).
    fn tunable_connections(&self) -> usize;
    /// Number of tunable nets (for the annealer's exit criterion).
    fn net_count(&self) -> usize;
}

/// Empty-occupant sentinel in the dense occupancy table.
const EMPTY: u32 = u32::MAX;

/// Fabrics up to this many placeable sites use the dense `site × site`
/// matrices; [`crate::place_combined`] falls back to the naive model
/// beyond it (the matrices would cost `O(sites²)` memory).
pub const DENSE_SITE_LIMIT: usize = 2048;

/// Per-affected-net snapshot recorded by `apply_swap` for exact undo.
#[derive(Debug, Clone, Copy)]
struct NetSnapshot {
    site: u32,
    cost: f64,
    active: bool,
    distinct: u32,
    bbox: [u16; 4],
}

/// The combined-placement state: per-mode block locations plus flat
/// incremental cost bookkeeping (see the module docs for the layout).
#[derive(Debug)]
pub struct CostModel {
    kind: CostKind,
    mode_count: usize,
    site_count: usize,
    /// Flat-block-index base per mode: block `(m, b)` lives at
    /// `block_off[m] + b`; `block_off[mode_count]` is the total.
    block_off: Vec<usize>,
    /// CSR adjacency over flat blocks: distinct sinks driven by a block.
    drives_idx: Vec<u32>,
    drives_dat: Vec<u32>,
    /// CSR adjacency over flat blocks: distinct drivers of a block.
    driven_idx: Vec<u32>,
    driven_dat: Vec<u32>,
    /// Per `drives_dat` entry: the connection's unit-delay criticality
    /// (timing cost only).
    conn_crit: Vec<f64>,
    /// Per `driven_dat` entry: the global `drives_dat` index of the same
    /// connection (timing cost only) — lets the swap path find a
    /// connection's criticality from the consumer side in O(1).
    driven_pos: Vec<u32>,
    /// Whether the flat block drives a net (LUTs and input pads).
    is_driver: Vec<bool>,
    /// `[block_off[m] + b] → site index`.
    loc: Vec<u32>,
    /// `[m · site_count + s] → mode-local block` (`EMPTY` when vacant).
    occ: Vec<u32>,
    site_xy: Vec<(u16, u16)>,
    // ---- wire-length state (dense, site-indexed) ----
    net_cost: Vec<f64>,
    net_active: Vec<bool>,
    net_distinct: Vec<u32>,
    /// Cached terminal bounding box `[minx, maxx, miny, maxy]` per net.
    net_bbox: Vec<[u16; 4]>,
    /// `q_factor(t)` memoised for every possible distinct-terminal count
    /// (bit-identical to calling [`q_factor`]).
    q_table: Vec<f64>,
    /// `[net · site_count + term] → reference count` — the seen structure
    /// replacing the naive `terms.contains` scan.
    term_refs: Vec<u16>,
    wl: f64,
    active_nets: usize,
    // ---- edge-matching state ----
    /// `[src_site · site_count + dst_site] → connection multiplicity`.
    pair_counts: Vec<u32>,
    distinct_pairs: usize,
    // ---- timing state ----
    /// Running `Σ crit · manhattan` over all mode connections.
    timing_cost: f64,
    track_wl: bool,
    track_pairs: bool,
    track_timing: bool,
    // ---- reusable swap scratch (zero steady-state allocations) ----
    /// Stamped site marks deduplicating the affected-net key list.
    key_stamp: Vec<u32>,
    key_generation: u32,
    keys: Vec<u32>,
    snapshots: Vec<NetSnapshot>,
    /// Refcount operations `(net, term, ±1)` of the pending swap.
    ref_ops: Vec<(u32, u32, i8)>,
    /// Nets whose bbox needs a rescan (the last terminal on a box edge
    /// departed), deduplicated by stamp.
    dirty: Vec<u32>,
    dirty_stamp: Vec<u32>,
    dirty_generation: u32,
    /// Terminal enumeration buffer for `recompute`.
    term_buf: Vec<u32>,
    /// Mode-local connections `(driver, sink)` touched by the swap.
    conns: Vec<(u32, u32)>,
    /// Pre-move site pairs of `conns`.
    old_pairs: Vec<(u32, u32)>,
    /// Criticalities of `conns` (timing cost only).
    conn_crit_buf: Vec<f64>,
    /// Pair-count operations (flattened pair index, ±1) of the swap.
    pair_ops: Vec<(u32, i8)>,
    // ---- pending-undo state ----
    undo_valid: bool,
    undo_mode: usize,
    undo_a: u32,
    undo_b: u32,
    /// Pre-swap `timing_cost` (a scalar snapshot: subtracting the delta
    /// back out would not be bit-exact).
    undo_timing: f64,
}

impl CostModel {
    /// Whether a fabric with `sites` placeable sites fits the dense
    /// matrices (see [`DENSE_SITE_LIMIT`]).
    #[must_use]
    pub fn fits(sites: usize) -> bool {
        sites <= DENSE_SITE_LIMIT
    }

    /// Builds the model from the mode circuits; all blocks start unplaced
    /// (call [`CostTracker::set_location`] then [`CostTracker::recompute`]).
    #[must_use]
    pub fn new(circuits: &[LutCircuit], sites: &SiteMap, kind: CostKind) -> Self {
        let mode_count = circuits.len();
        let site_count = sites.len();
        let mut block_off = Vec::with_capacity(mode_count + 1);
        let mut total = 0usize;
        for c in circuits {
            block_off.push(total);
            total += c.block_count();
        }
        block_off.push(total);

        let (track_wl, track_pairs) = kind.tracks();
        let track_timing = kind.tracks_timing();
        let mut drives: Vec<Vec<u32>> = vec![Vec::new(); total];
        let mut driven: Vec<Vec<u32>> = vec![Vec::new(); total];
        let mut crit_lists: Vec<Vec<f64>> = if track_timing {
            vec![Vec::new(); total]
        } else {
            Vec::new()
        };
        let mut driven_slot: Vec<Vec<u32>> = if track_timing {
            vec![Vec::new(); total]
        } else {
            Vec::new()
        };
        let mut is_driver = Vec::with_capacity(total);
        for (m, circuit) in circuits.iter().enumerate() {
            let crits = if track_timing {
                mm_sta::unit_criticalities(circuit)
                    .expect("timing cost requires combinationally acyclic circuits")
            } else {
                Vec::new()
            };
            for (ci, (src, dst)) in circuit.connections().into_iter().enumerate() {
                let fs = block_off[m] + src.index();
                let fd = block_off[m] + dst.index();
                drives[fs].push(dst.index() as u32);
                driven[fd].push(src.index() as u32);
                if track_timing {
                    crit_lists[fs].push(crits[ci]);
                    driven_slot[fd].push(drives[fs].len() as u32 - 1);
                }
            }
            is_driver.extend(
                circuit
                    .block_ids()
                    .map(|id| !matches!(circuit.block(id).kind(), BlockKind::OutputPad { .. })),
            );
        }
        let (drives_idx, drives_dat) = to_csr(&drives);
        let (driven_idx, driven_dat) = to_csr(&driven);
        // Flattened in the same block order as `drives_dat`, so the
        // criticality of `drives_dat[i]` is `conn_crit[i]`.
        let conn_crit: Vec<f64> = crit_lists.into_iter().flatten().collect();
        let driven_slot_dat: Vec<u32> = driven_slot.into_iter().flatten().collect();
        let mut driven_pos = vec![0u32; driven_slot_dat.len()];
        if track_timing {
            for m in 0..mode_count {
                let off = block_off[m];
                for flat in off..block_off[m + 1] {
                    for i in driven_idx[flat] as usize..driven_idx[flat + 1] as usize {
                        let src_flat = off + driven_dat[i] as usize;
                        driven_pos[i] = drives_idx[src_flat] + driven_slot_dat[i];
                    }
                }
            }
        }

        let site_xy = (0..site_count as u32)
            .map(|i| {
                let s = sites.site(i);
                (s.x, s.y)
            })
            .collect();
        Self {
            kind,
            mode_count,
            site_count,
            block_off,
            drives_idx,
            drives_dat,
            driven_idx,
            driven_dat,
            conn_crit,
            driven_pos,
            is_driver,
            loc: vec![EMPTY; total],
            occ: vec![EMPTY; mode_count * site_count],
            site_xy,
            net_cost: if track_wl {
                vec![0.0; site_count]
            } else {
                Vec::new()
            },
            net_active: if track_wl {
                vec![false; site_count]
            } else {
                Vec::new()
            },
            net_distinct: if track_wl {
                vec![0; site_count]
            } else {
                Vec::new()
            },
            net_bbox: if track_wl {
                vec![[0; 4]; site_count]
            } else {
                Vec::new()
            },
            q_table: if track_wl {
                (0..=site_count).map(q_factor).collect()
            } else {
                Vec::new()
            },
            term_refs: if track_wl {
                vec![0; site_count * site_count]
            } else {
                Vec::new()
            },
            wl: 0.0,
            active_nets: 0,
            pair_counts: if track_pairs {
                vec![0; site_count * site_count]
            } else {
                Vec::new()
            },
            distinct_pairs: 0,
            timing_cost: 0.0,
            track_wl,
            track_pairs,
            track_timing,
            key_stamp: vec![0; site_count],
            key_generation: 0,
            keys: Vec::new(),
            snapshots: Vec::new(),
            ref_ops: Vec::new(),
            dirty: Vec::new(),
            dirty_stamp: vec![0; site_count],
            dirty_generation: 0,
            term_buf: Vec::new(),
            conns: Vec::new(),
            old_pairs: Vec::new(),
            conn_crit_buf: Vec::new(),
            pair_ops: Vec::new(),
            undo_valid: false,
            undo_mode: 0,
            undo_a: 0,
            undo_b: 0,
            undo_timing: 0.0,
        }
    }

    /// The criticality-weighted delay component (0 unless tracked).
    #[must_use]
    pub fn timing_cost(&self) -> f64 {
        self.timing_cost
    }

    /// Number of modes.
    #[must_use]
    pub fn mode_count(&self) -> usize {
        self.mode_count
    }

    /// Total capacity (in elements) of the reusable swap scratch buffers.
    /// Steady-state swapping must leave this unchanged — the
    /// zero-allocation regression tests assert exactly that.
    #[must_use]
    pub fn scratch_footprint(&self) -> usize {
        self.keys.capacity()
            + self.snapshots.capacity()
            + self.ref_ops.capacity()
            + self.dirty.capacity()
            + self.term_buf.capacity()
            + self.conns.capacity()
            + self.old_pairs.capacity()
            + self.conn_crit_buf.capacity()
            + self.pair_ops.capacity()
    }

    /// Enumerates the terminal references of the tunable net sourced at
    /// `site` (with multiplicity, no dedup) into `buf` — used by
    /// [`CostTracker::recompute`]; swaps never enumerate whole nets.
    fn collect_terms(&self, site: u32, buf: &mut Vec<u32>) {
        buf.clear();
        for m in 0..self.mode_count {
            let b = self.occ[m * self.site_count + site as usize];
            if b == EMPTY {
                continue;
            }
            let flat = self.block_off[m] + b as usize;
            if !self.is_driver[flat] {
                continue;
            }
            buf.push(site);
            let (lo, hi) = (
                self.drives_idx[flat] as usize,
                self.drives_idx[flat + 1] as usize,
            );
            for &snk in &self.drives_dat[lo..hi] {
                buf.push(self.loc[self.block_off[m] + snk as usize]);
            }
        }
    }

    /// Folds a freshly distinct terminal into a net's cached bounding box
    /// (an arriving terminal can only expand the box).
    #[inline]
    fn register_distinct(distinct: u32, x: u16, y: u16, bb: &mut [u16; 4]) {
        if distinct == 1 {
            *bb = [x, x, y, y];
            return;
        }
        bb[0] = bb[0].min(x);
        bb[1] = bb[1].max(x);
        bb[2] = bb[2].min(y);
        bb[3] = bb[3].max(y);
    }

    /// Adds one terminal reference to a net: distinct count, bounding box
    /// and edge supports only change on the 0 → 1 transition.
    #[inline]
    fn add_ref(&mut self, net: u32, term: u32) {
        self.ref_ops.push((net, term, 1));
        let r = &mut self.term_refs[net as usize * self.site_count + term as usize];
        *r += 1;
        if *r == 1 {
            let d = &mut self.net_distinct[net as usize];
            *d += 1;
            let (x, y) = self.site_xy[term as usize];
            Self::register_distinct(*d, x, y, &mut self.net_bbox[net as usize]);
        }
    }

    /// Removes one terminal reference; the cached box can only shrink
    /// when the last reference of a terminal sitting on a box edge
    /// disappears — the sole case queued for a bbox recompute.
    #[inline]
    fn remove_ref(&mut self, net: u32, term: u32) {
        self.ref_ops.push((net, term, -1));
        let r = &mut self.term_refs[net as usize * self.site_count + term as usize];
        debug_assert!(*r > 0, "terminal refcount underflow");
        *r -= 1;
        if *r == 0 {
            self.net_distinct[net as usize] -= 1;
            if self.net_distinct[net as usize] == 0 {
                return; // inactive; the next arrival reinitialises the box
            }
            let (x, y) = self.site_xy[term as usize];
            let bb = self.net_bbox[net as usize];
            if (x == bb[0] || x == bb[1] || y == bb[2] || y == bb[3])
                && self.dirty_stamp[net as usize] != self.dirty_generation
            {
                self.dirty_stamp[net as usize] = self.dirty_generation;
                self.dirty.push(net);
            }
        }
    }

    /// Recomputes a net's bounding box from its terminal multiset (the
    /// box of the multiset equals the box of the distinct set, so no
    /// dedup is needed) — the "full recompute" a departing edge terminal
    /// forces.
    fn rescan_bbox(&mut self, net: u32) {
        let mut buf = std::mem::take(&mut self.term_buf);
        self.collect_terms(net, &mut buf);
        let mut bb = [u16::MAX, 0u16, u16::MAX, 0u16];
        for &t in &buf {
            let (x, y) = self.site_xy[t as usize];
            bb[0] = bb[0].min(x);
            bb[1] = bb[1].max(x);
            bb[2] = bb[2].min(y);
            bb[3] = bb[3].max(y);
        }
        self.net_bbox[net as usize] = bb;
        self.term_buf = buf;
    }

    /// The cached cost of net `s` from its distinct count and bbox —
    /// bit-identical to the naive model's `compute_net_cost`.
    #[inline]
    fn cached_net_cost(&self, s: u32) -> Option<f64> {
        let distinct = self.net_distinct[s as usize];
        if distinct == 0 {
            return None;
        }
        let bb = self.net_bbox[s as usize];
        let span = f64::from(bb[1] - bb[0] + 1) + f64::from(bb[3] - bb[2] + 1);
        Some(self.q_table[distinct as usize] * span)
    }
}

/// Flattens per-node adjacency lists into CSR (offsets + data).
fn to_csr(lists: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
    let mut idx = Vec::with_capacity(lists.len() + 1);
    let mut dat = Vec::with_capacity(lists.iter().map(Vec::len).sum());
    idx.push(0u32);
    for l in lists {
        dat.extend_from_slice(l);
        idx.push(dat.len() as u32);
    }
    (idx, dat)
}

impl CostTracker for CostModel {
    fn set_location(&mut self, mode: usize, block: u32, site: u32) {
        let o = &mut self.occ[mode * self.site_count + site as usize];
        assert!(*o == EMPTY, "site already occupied in mode {mode}");
        *o = block;
        self.loc[self.block_off[mode] + block as usize] = site;
    }

    fn location(&self, mode: usize, block: u32) -> u32 {
        self.loc[self.block_off[mode] + block as usize]
    }

    fn recompute(&mut self) {
        self.undo_valid = false;
        if self.track_wl {
            self.term_refs.fill(0);
            self.net_distinct.fill(0);
            self.net_active.fill(false);
            self.wl = 0.0;
            self.active_nets = 0;
            let mut buf = std::mem::take(&mut self.term_buf);
            for s in 0..self.site_count as u32 {
                self.collect_terms(s, &mut buf);
                for &t in &buf {
                    self.add_ref(s, t);
                }
                if let Some(c) = self.cached_net_cost(s) {
                    self.net_cost[s as usize] = c;
                    self.net_active[s as usize] = true;
                    self.active_nets += 1;
                    self.wl += c;
                }
            }
            self.term_buf = buf;
            // `add_ref` logged undo operations; a recompute is never
            // reverted, so drop them.
            self.ref_ops.clear();
        }
        if self.track_pairs {
            self.pair_counts.fill(0);
            self.distinct_pairs = 0;
            for m in 0..self.mode_count {
                let off = self.block_off[m];
                for b in 0..(self.block_off[m + 1] - off) {
                    let flat = off + b;
                    let ls = self.loc[flat];
                    let (lo, hi) = (
                        self.drives_idx[flat] as usize,
                        self.drives_idx[flat + 1] as usize,
                    );
                    for &snk in &self.drives_dat[lo..hi] {
                        let ld = self.loc[off + snk as usize];
                        let c = &mut self.pair_counts[ls as usize * self.site_count + ld as usize];
                        if *c == 0 {
                            self.distinct_pairs += 1;
                        }
                        *c += 1;
                    }
                }
            }
        }
        if self.track_timing {
            // Modes ascending, blocks ascending, drive slots ascending —
            // the naive model folds in the identical order, so the sum
            // is bit-identical.
            let mut tc = 0.0;
            for m in 0..self.mode_count {
                let off = self.block_off[m];
                for b in 0..(self.block_off[m + 1] - off) {
                    let flat = off + b;
                    let ls = self.loc[flat] as usize;
                    let (lo, hi) = (
                        self.drives_idx[flat] as usize,
                        self.drives_idx[flat + 1] as usize,
                    );
                    for (slot, &snk) in self.drives_dat[lo..hi].iter().enumerate() {
                        let ld = self.loc[off + snk as usize] as usize;
                        tc += self.conn_crit[lo + slot]
                            * manhattan(self.site_xy[ls], self.site_xy[ld]);
                    }
                }
            }
            self.timing_cost = tc;
        }
    }

    fn apply_swap(&mut self, mode: usize, site_a: u32, site_b: u32) -> Option<f64> {
        if site_a == site_b {
            return None;
        }
        let off = self.block_off[mode];
        let ba = self.occ[mode * self.site_count + site_a as usize];
        let bb = self.occ[mode * self.site_count + site_b as usize];
        if ba == EMPTY && bb == EMPTY {
            return None;
        }

        // Reset the swap scratch; from here on nothing allocates in
        // steady state.
        self.keys.clear();
        self.snapshots.clear();
        self.ref_ops.clear();
        self.dirty.clear();
        self.conns.clear();
        self.old_pairs.clear();
        self.conn_crit_buf.clear();
        self.pair_ops.clear();
        self.key_generation = self.key_generation.wrapping_add(1);
        self.dirty_generation = self.dirty_generation.wrapping_add(1);

        // ---- affected tunable-net keys (pre-move, dedup-first) ----------
        if self.track_wl {
            for site in [site_a, site_b] {
                if self.key_stamp[site as usize] != self.key_generation {
                    self.key_stamp[site as usize] = self.key_generation;
                    self.keys.push(site);
                }
            }
            for &x in &[ba, bb] {
                if x == EMPTY {
                    continue;
                }
                let (lo, hi) = (
                    self.driven_idx[off + x as usize] as usize,
                    self.driven_idx[off + x as usize + 1] as usize,
                );
                for &d in &self.driven_dat[lo..hi] {
                    let key = self.loc[off + d as usize];
                    if self.key_stamp[key as usize] != self.key_generation {
                        self.key_stamp[key as usize] = self.key_generation;
                        self.keys.push(key);
                    }
                }
            }
            for &key in &self.keys {
                self.snapshots.push(NetSnapshot {
                    site: key,
                    cost: self.net_cost[key as usize],
                    active: self.net_active[key as usize],
                    distinct: self.net_distinct[key as usize],
                    bbox: self.net_bbox[key as usize],
                });
            }
            // The nets sourced at the swap sites only change in the
            // swapped mode's contribution (other modes' occupants stay
            // put): drop exactly the departing occupant's terminal
            // references — the arriving occupant's are added post-move.
            let drives_dat = std::mem::take(&mut self.drives_dat);
            for &(site, blk) in &[(site_a, ba), (site_b, bb)] {
                if blk == EMPTY {
                    continue;
                }
                let flat = off + blk as usize;
                if !self.is_driver[flat] {
                    continue;
                }
                self.remove_ref(site, site);
                let (lo, hi) = (
                    self.drives_idx[flat] as usize,
                    self.drives_idx[flat + 1] as usize,
                );
                for &snk in &drives_dat[lo..hi] {
                    let term = self.loc[off + snk as usize];
                    self.remove_ref(site, term);
                }
            }
            self.drives_dat = drives_dat;
        }

        // ---- connections touched by the swap (pre-move site pairs) ------
        if self.track_pairs || self.track_timing {
            for &x in &[ba, bb] {
                if x == EMPTY {
                    continue;
                }
                let (lo, hi) = (
                    self.drives_idx[off + x as usize] as usize,
                    self.drives_idx[off + x as usize + 1] as usize,
                );
                for (slot, &s) in self.drives_dat[lo..hi].iter().enumerate() {
                    self.conns.push((x, s));
                    if self.track_timing {
                        self.conn_crit_buf.push(self.conn_crit[lo + slot]);
                    }
                }
                let (lo, hi) = (
                    self.driven_idx[off + x as usize] as usize,
                    self.driven_idx[off + x as usize + 1] as usize,
                );
                for (j, &d) in self.driven_dat[lo..hi].iter().enumerate() {
                    // A connection between two moved blocks is already
                    // covered by the drives loop of the driving block.
                    if d != ba && d != bb {
                        self.conns.push((d, x));
                        if self.track_timing {
                            self.conn_crit_buf
                                .push(self.conn_crit[self.driven_pos[lo + j] as usize]);
                        }
                    }
                }
            }
            for &(d, s) in &self.conns {
                self.old_pairs
                    .push((self.loc[off + d as usize], self.loc[off + s as usize]));
            }
        }

        // ---- apply the move ---------------------------------------------
        self.occ[mode * self.site_count + site_a as usize] = bb;
        self.occ[mode * self.site_count + site_b as usize] = ba;
        if ba != EMPTY {
            self.loc[off + ba as usize] = site_b;
        }
        if bb != EMPTY {
            self.loc[off + bb as usize] = site_a;
        }

        let mut delta = 0.0;

        // ---- wire length ------------------------------------------------
        if self.track_wl {
            // The arriving occupants' contributions to the swap-site nets
            // (post-move locations).
            let drives_dat = std::mem::take(&mut self.drives_dat);
            for &(site, blk) in &[(site_a, bb), (site_b, ba)] {
                if blk == EMPTY {
                    continue;
                }
                let flat = off + blk as usize;
                if !self.is_driver[flat] {
                    continue;
                }
                self.add_ref(site, site);
                let (lo, hi) = (
                    self.drives_idx[flat] as usize,
                    self.drives_idx[flat + 1] as usize,
                );
                for &snk in &drives_dat[lo..hi] {
                    let term = self.loc[off + snk as usize];
                    self.add_ref(site, term);
                }
            }
            self.drives_dat = drives_dat;
            // Every other affected net only sees a moved sink terminal:
            // one refcount decrement at the old site, one increment at
            // the new one.
            let driven_dat = std::mem::take(&mut self.driven_dat);
            for &(x, old_site, new_site) in &[(ba, site_a, site_b), (bb, site_b, site_a)] {
                if x == EMPTY {
                    continue;
                }
                let (lo, hi) = (
                    self.driven_idx[off + x as usize] as usize,
                    self.driven_idx[off + x as usize + 1] as usize,
                );
                for &d in &driven_dat[lo..hi] {
                    if d == ba || d == bb {
                        continue; // its net is keyed at a swap site
                    }
                    let key = self.loc[off + d as usize];
                    self.remove_ref(key, old_site);
                    self.add_ref(key, new_site);
                }
            }
            self.driven_dat = driven_dat;
            // Rescan the bounding box of nets that lost an edge-supporting
            // terminal (rare: most departures leave the box intact).
            let dirty = std::mem::take(&mut self.dirty);
            for &net in &dirty {
                if self.net_distinct[net as usize] > 0 {
                    self.rescan_bbox(net);
                }
            }
            self.dirty = dirty;
            // Fold the per-net cost changes into wl/delta in key order —
            // the same order (and therefore the same f64 rounding) as the
            // naive model. Nets whose cached geometry is unchanged
            // contribute an exact 0.0 either way and are skipped.
            let keys = std::mem::take(&mut self.keys);
            for (&key, snap) in keys.iter().zip(&self.snapshots) {
                debug_assert_eq!(snap.site, key);
                if snap.active
                    && self.net_distinct[key as usize] == snap.distinct
                    && self.net_bbox[key as usize] == snap.bbox
                {
                    continue;
                }
                let old_v = if snap.active { snap.cost } else { 0.0 };
                let new = self.cached_net_cost(key);
                let new_v = new.unwrap_or(0.0);
                self.wl += new_v - old_v;
                let wl_delta = new_v - old_v;
                match new {
                    Some(c) => {
                        self.net_cost[key as usize] = c;
                        if !snap.active {
                            self.net_active[key as usize] = true;
                            self.active_nets += 1;
                        }
                    }
                    None => {
                        if snap.active {
                            self.net_active[key as usize] = false;
                            self.active_nets -= 1;
                        }
                    }
                }
                match self.kind {
                    CostKind::WireLength => delta += wl_delta,
                    CostKind::Hybrid { wl_weight, .. } => delta += wl_weight * wl_delta,
                    CostKind::Timing { alpha } => delta += (1.0 - alpha) * wl_delta,
                    CostKind::EdgeMatching => {}
                }
            }
            self.keys = keys;
        }

        // ---- timing -----------------------------------------------------
        if self.track_timing {
            // Each touched connection contributes the change of its
            // criticality-weighted Manhattan length; the enumeration
            // order above matches the naive model's, so the fold is
            // bit-identical.
            let mut td = 0.0;
            for (i, &(d, s)) in self.conns.iter().enumerate() {
                let (ods, oss) = self.old_pairs[i];
                let nds = self.loc[off + d as usize] as usize;
                let nss = self.loc[off + s as usize] as usize;
                td += self.conn_crit_buf[i]
                    * (manhattan(self.site_xy[nds], self.site_xy[nss])
                        - manhattan(self.site_xy[ods as usize], self.site_xy[oss as usize]));
            }
            self.undo_timing = self.timing_cost;
            self.timing_cost += td;
            if let CostKind::Timing { alpha } = self.kind {
                delta += alpha * td;
            }
        }

        // ---- edge matching ----------------------------------------------
        if self.track_pairs {
            let mut distinct_delta = 0i64;
            for &(ls, ld) in &self.old_pairs {
                let idx = ls as usize * self.site_count + ld as usize;
                let c = &mut self.pair_counts[idx];
                debug_assert!(*c > 0, "old pair present");
                *c -= 1;
                if *c == 0 {
                    self.distinct_pairs -= 1;
                    distinct_delta -= 1;
                }
                self.pair_ops.push((idx as u32, -1));
            }
            for &(d, s) in &self.conns {
                let idx = self.loc[off + d as usize] as usize * self.site_count
                    + self.loc[off + s as usize] as usize;
                let c = &mut self.pair_counts[idx];
                if *c == 0 {
                    self.distinct_pairs += 1;
                    distinct_delta += 1;
                }
                *c += 1;
                self.pair_ops.push((idx as u32, 1));
            }
            match self.kind {
                CostKind::EdgeMatching => delta += distinct_delta as f64,
                CostKind::Hybrid { edge_weight, .. } => {
                    delta += edge_weight * distinct_delta as f64;
                }
                CostKind::WireLength | CostKind::Timing { .. } => {}
            }
        }

        self.undo_valid = true;
        self.undo_mode = mode;
        self.undo_a = site_a;
        self.undo_b = site_b;
        Some(delta)
    }

    fn revert_last(&mut self) {
        assert!(self.undo_valid, "no swap to revert");
        self.undo_valid = false;
        let (mode, a, b) = (self.undo_mode, self.undo_a, self.undo_b);
        let off = self.block_off[mode];
        let ba = self.occ[mode * self.site_count + b as usize];
        let bb = self.occ[mode * self.site_count + a as usize];
        self.occ[mode * self.site_count + a as usize] = ba;
        self.occ[mode * self.site_count + b as usize] = bb;
        if ba != EMPTY {
            self.loc[off + ba as usize] = a;
        }
        if bb != EMPTY {
            self.loc[off + bb as usize] = b;
        }
        // Restore the affected nets' cached state exactly (the wl
        // arithmetic mirrors the naive model's snapshot restore).
        for &snap in &self.snapshots {
            let s = snap.site as usize;
            let current = if self.net_active[s] {
                self.net_cost[s]
            } else {
                0.0
            };
            // Branch-for-branch mirror of the naive model's restore, so
            // the running wl stays bit-identical.
            if snap.active {
                self.wl += snap.cost - current;
            } else {
                self.wl -= current;
            }
            if snap.active && !self.net_active[s] {
                self.active_nets += 1;
            } else if !snap.active && self.net_active[s] {
                self.active_nets -= 1;
            }
            self.net_cost[s] = snap.cost;
            self.net_active[s] = snap.active;
            self.net_distinct[s] = snap.distinct;
            self.net_bbox[s] = snap.bbox;
        }
        // Reverse the raw refcount operations (distinct counts and boxes
        // were already restored from the snapshots above).
        for &(net, term, op) in self.ref_ops.iter().rev() {
            let r = &mut self.term_refs[net as usize * self.site_count + term as usize];
            if op == 1 {
                *r -= 1;
            } else {
                *r += 1;
            }
        }
        // Reverse the pair operations.
        for &(idx, op) in self.pair_ops.iter().rev() {
            let c = &mut self.pair_counts[idx as usize];
            if op == 1 {
                *c -= 1;
                if *c == 0 {
                    self.distinct_pairs -= 1;
                }
            } else {
                if *c == 0 {
                    self.distinct_pairs += 1;
                }
                *c += 1;
            }
        }
        // Restore the timing component from its scalar snapshot.
        if self.track_timing {
            self.timing_cost = self.undo_timing;
        }
    }

    fn cost(&self) -> f64 {
        match self.kind {
            CostKind::WireLength => self.wl,
            CostKind::EdgeMatching => self.distinct_pairs as f64,
            CostKind::Hybrid {
                wl_weight,
                edge_weight,
            } => wl_weight * self.wl + edge_weight * self.distinct_pairs as f64,
            CostKind::Timing { alpha } => (1.0 - alpha) * self.wl + alpha * self.timing_cost,
        }
    }

    fn wirelength(&self) -> f64 {
        self.wl
    }

    fn tunable_connections(&self) -> usize {
        self.distinct_pairs
    }

    fn net_count(&self) -> usize {
        if self.track_wl {
            self.active_nets.max(1)
        } else {
            self.distinct_pairs.max(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::NaiveCostModel;
    use mm_arch::Architecture;
    use mm_netlist::TruthTable;

    /// A chain a → g1 → g2 → y.
    fn chain() -> LutCircuit {
        let mut c = LutCircuit::new("chain", 4);
        let a = c.add_input("a").unwrap();
        let g1 = c
            .add_lut("g1", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        let g2 = c
            .add_lut("g2", vec![g1], TruthTable::var(1, 0), false)
            .unwrap();
        c.add_output("y", g2).unwrap();
        c
    }

    fn setup(kind: CostKind) -> (Vec<LutCircuit>, SiteMap, CostModel) {
        let arch = Architecture::new(4, 3, 4);
        let sites = SiteMap::new(&arch);
        let circuits = vec![chain(), chain()];
        let model = CostModel::new(&circuits, &sites, kind);
        (circuits, sites, model)
    }

    fn place_initial(model: &mut impl CostTracker, sites: &SiteMap) {
        // Mode 0: a→io0, g1→logic0, g2→logic1, y→io1.
        // Mode 1: a→io2, g1→logic4, g2→logic5, y→io3.
        let io: Vec<u32> = sites.io_indices().collect();
        for (m, offsets) in [(0usize, (0usize, 0usize)), (1, (2, 4))] {
            let (io_off, logic_off) = offsets;
            model.set_location(m, 0, io[io_off]); // a
            model.set_location(m, 1, logic_off as u32); // g1
            model.set_location(m, 2, logic_off as u32 + 1); // g2
            model.set_location(m, 3, io[io_off + 1]); // y
        }
        model.recompute();
    }

    /// A fresh model with the same placement, recomputed from scratch.
    fn fresh_copy(
        circuits: &[LutCircuit],
        sites: &SiteMap,
        kind: CostKind,
        model: &CostModel,
    ) -> CostModel {
        let mut fresh = CostModel::new(circuits, sites, kind);
        for (m, c) in circuits.iter().enumerate() {
            for b in 0..c.block_count() as u32 {
                fresh.set_location(m, b, model.location(m, b));
            }
        }
        fresh.recompute();
        fresh
    }

    #[test]
    fn full_recompute_matches_incremental_wl() {
        let kind = CostKind::WireLength;
        let (circuits, sites, mut model) = setup(kind);
        place_initial(&mut model, &sites);
        let mut reference = model.wirelength();
        // Random-ish swap sequence with occasional reverts.
        let moves = [
            (0usize, 0u32, 5u32, true),
            (1, 4, 2, true),
            (0, 1, 3, false),
            (1, 5, 0, true),
            (0, 5, 7, false),
        ];
        for (m, a, b, keep) in moves {
            if let Some(delta) = model.apply_swap(m, a, b) {
                if keep {
                    reference += delta;
                } else {
                    model.revert_last();
                }
            }
            let fresh = fresh_copy(&circuits, &sites, kind, &model);
            assert!(
                (fresh.wirelength() - model.wirelength()).abs() < 1e-6,
                "incremental {} vs fresh {}",
                model.wirelength(),
                fresh.wirelength()
            );
        }
        assert!((model.wirelength() - reference).abs() < 1e-6);
    }

    #[test]
    fn full_recompute_matches_incremental_pairs() {
        let kind = CostKind::EdgeMatching;
        let (circuits, sites, mut model) = setup(kind);
        place_initial(&mut model, &sites);
        let before = model.tunable_connections();
        assert!(before > 0);
        for (m, a, b, keep) in [
            (0usize, 0u32, 4u32, true),
            (1, 5, 1, true),
            (0, 4, 5, false),
            (1, 2, 0, true),
        ] {
            if model.apply_swap(m, a, b).is_some() && !keep {
                model.revert_last();
            }
            let fresh = fresh_copy(&circuits, &sites, kind, &model);
            assert_eq!(fresh.tunable_connections(), model.tunable_connections());
        }
    }

    #[test]
    fn matches_naive_model_bit_for_bit() {
        // The differential contract in miniature: identical costs and
        // deltas against the naive hash-map model, down to the last bit.
        let kind = CostKind::Hybrid {
            wl_weight: 1.0,
            edge_weight: 3.0,
        };
        let (circuits, sites, mut model) = setup(kind);
        let mut naive = NaiveCostModel::new(&circuits, &sites, kind);
        place_initial(&mut model, &sites);
        place_initial(&mut naive, &sites);
        assert_eq!(model.cost().to_bits(), naive.cost().to_bits());
        for (m, a, b, keep) in [
            (0usize, 0u32, 5u32, true),
            (1, 4, 2, false),
            (0, 1, 3, true),
            (1, 5, 0, false),
            (0, 2, 6, true),
        ] {
            let d1 = model.apply_swap(m, a, b);
            let d2 = naive.apply_swap(m, a, b);
            assert_eq!(d1.map(f64::to_bits), d2.map(f64::to_bits));
            if d1.is_some() && !keep {
                model.revert_last();
                naive.revert_last();
            }
            assert_eq!(model.cost().to_bits(), naive.cost().to_bits());
            assert_eq!(model.wirelength().to_bits(), naive.wirelength().to_bits());
            assert_eq!(model.tunable_connections(), naive.tunable_connections());
        }
    }

    #[test]
    fn perfect_overlap_minimises_edge_cost() {
        let (_c, sites, mut model) = setup(CostKind::EdgeMatching);
        // Both modes placed identically: connections all merge.
        let io: Vec<u32> = sites.io_indices().collect();
        for m in 0..2 {
            model.set_location(m, 0, io[0]);
            model.set_location(m, 1, 0);
            model.set_location(m, 2, 1);
            model.set_location(m, 3, io[1]);
        }
        model.recompute();
        // 3 connections per mode, fully merged → 3 distinct pairs.
        assert_eq!(model.tunable_connections(), 3);
        assert_eq!(model.cost(), 3.0);

        // Moving one block of one mode away splits its two connections.
        let delta = model.apply_swap(1, 1, 5).expect("swap applies");
        assert_eq!(model.tunable_connections(), 5);
        assert_eq!(delta, 2.0);
    }

    #[test]
    fn disjoint_placements_double_edge_cost() {
        let (_c, sites, mut model) = setup(CostKind::EdgeMatching);
        place_initial(&mut model, &sites);
        // Nothing merges: 3 + 3 distinct pairs.
        assert_eq!(model.tunable_connections(), 6);
    }

    #[test]
    fn wl_counts_merged_nets_once() {
        let (_c, sites, mut model) = setup(CostKind::WireLength);
        // Identical placement: the tunable net of each site is the same as
        // a single mode's net → WL equals single-mode WL.
        let io: Vec<u32> = sites.io_indices().collect();
        for m in 0..2 {
            model.set_location(m, 0, io[0]);
            model.set_location(m, 1, 0);
            model.set_location(m, 2, 1);
            model.set_location(m, 3, io[1]);
        }
        model.recompute();
        let merged_wl = model.wirelength();

        let arch = Architecture::new(4, 3, 4);
        let sites2 = SiteMap::new(&arch);
        let single = vec![chain()];
        let mut smodel = CostModel::new(&single, &sites2, CostKind::WireLength);
        smodel.set_location(0, 0, io[0]);
        smodel.set_location(0, 1, 0);
        smodel.set_location(0, 2, 1);
        smodel.set_location(0, 3, io[1]);
        smodel.recompute();
        assert!((merged_wl - smodel.wirelength()).abs() < 1e-9);
    }

    #[test]
    fn swap_of_two_empty_sites_is_none() {
        let (_c, sites, mut model) = setup(CostKind::WireLength);
        place_initial(&mut model, &sites);
        assert!(model.apply_swap(0, 7, 8).is_none());
        assert!(model.apply_swap(0, 3, 3).is_none());
    }

    #[test]
    fn revert_restores_cost_exactly() {
        let (_c, sites, mut model) = setup(CostKind::Hybrid {
            wl_weight: 1.0,
            edge_weight: 2.0,
        });
        place_initial(&mut model, &sites);
        let cost0 = model.cost();
        let wl0 = model.wirelength();
        let pairs0 = model.tunable_connections();
        model.apply_swap(0, 0, 5).expect("applies");
        model.revert_last();
        assert!((model.cost() - cost0).abs() < 1e-9);
        assert!((model.wirelength() - wl0).abs() < 1e-9);
        assert_eq!(model.tunable_connections(), pairs0);
    }

    #[test]
    fn hybrid_cost_combines_components() {
        let (_c, sites, mut model) = setup(CostKind::Hybrid {
            wl_weight: 1.0,
            edge_weight: 10.0,
        });
        place_initial(&mut model, &sites);
        let expect = model.wirelength() + 10.0 * model.tunable_connections() as f64;
        assert!((model.cost() - expect).abs() < 1e-9);
    }

    #[test]
    fn swap_scratch_is_stable() {
        let (_c, sites, mut model) = setup(CostKind::Hybrid {
            wl_weight: 1.0,
            edge_weight: 2.0,
        });
        place_initial(&mut model, &sites);
        // Round 0 warms the scratch; every later round must leave it
        // untouched (steady-state swaps never grow it).
        let mut footprint = 0usize;
        for round in 0..5 {
            for (m, a, b) in [(0usize, 0u32, 5u32), (1, 4, 2), (0, 1, 3), (1, 5, 0)] {
                if model.apply_swap(m, a, b).is_some() && round % 2 == 0 {
                    model.revert_last();
                }
            }
            if round == 0 {
                footprint = model.scratch_footprint();
                assert!(footprint > 0, "scratch is in use");
            } else {
                assert_eq!(model.scratch_footprint(), footprint, "no scratch growth");
            }
        }
    }

    #[test]
    fn dense_limit_gate() {
        assert!(CostModel::fits(64));
        assert!(CostModel::fits(DENSE_SITE_LIMIT));
        assert!(!CostModel::fits(DENSE_SITE_LIMIT + 1));
    }
}
