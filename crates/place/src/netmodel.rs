//! Incremental cost evaluation for combined placement.
//!
//! The combined placer evaluates two cost functions over a *simultaneous*
//! placement of all modes (paper §III-B):
//!
//! * **Wire length** — the novel approach: the bounding-box wire length of
//!   the *merged tunable circuit*. Every site hosting at least one driver
//!   block defines one tunable net whose terminals are the site itself
//!   plus the sites of every sink of every co-located mode driver; the
//!   cost is VPR's `q(t) · HPWL` summed over tunable nets. "The
//!   wire-length estimation used during the combined placement is the same
//!   as the one TPlace uses during the placement of the Tunable circuit
//!   after merging."
//! * **Circuit edge matching** — the prior technique (Rullmann & Merker):
//!   minimise the number of *distinct* site-level connections
//!   `(source site, sink site)`; connections of different modes that land
//!   on the same site pair merge into one tunable connection.
//!
//! Both are maintained incrementally under single-mode swaps with exact
//! undo, so the annealer can evaluate millions of moves.

use crate::{q_factor, SiteMap};
use mm_netlist::{BlockKind, LutCircuit};
use std::collections::{HashMap, HashSet};

/// Which cost function drives the combined placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CostKind {
    /// Bounding-box wire length of the merged tunable circuit (the paper's
    /// novel approach).
    WireLength,
    /// Number of distinct tunable connections (circuit edge matching).
    EdgeMatching,
    /// Weighted combination `wl_weight · WL + edge_weight · connections`
    /// (an ablation knob; not part of the paper).
    Hybrid {
        /// Weight of the wire-length term.
        wl_weight: f64,
        /// Weight of the connection-count term.
        edge_weight: f64,
    },
}

impl CostKind {
    /// A stable fingerprint of the cost function (floats by bit pattern),
    /// used by the batch engine's stage cache keys.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        match self {
            CostKind::WireLength => "wl".to_string(),
            CostKind::EdgeMatching => "edge".to_string(),
            CostKind::Hybrid {
                wl_weight,
                edge_weight,
            } => format!(
                "hybrid({:016x},{:016x})",
                wl_weight.to_bits(),
                edge_weight.to_bits()
            ),
        }
    }
}

/// Undo record returned by [`CostModel::apply_swap`].
#[derive(Debug)]
pub struct SwapUndo {
    mode: usize,
    site_a: u32,
    site_b: u32,
    /// (net key, previous cost) — `None` means the key had no net.
    wl_snapshot: Vec<(u32, Option<f64>)>,
    /// (pair, count delta applied) to be reversed.
    pair_ops: Vec<((u32, u32), i32)>,
    /// Cost delta that was applied (to subtract back).
    delta: f64,
}

/// The combined-placement state: per-mode block locations plus incremental
/// cost bookkeeping.
#[derive(Debug)]
pub struct CostModel {
    kind: CostKind,
    mode_count: usize,
    /// `[mode][block] → distinct sink blocks` (dense block = `BlockId::index`).
    drives: Vec<Vec<Vec<u32>>>,
    /// `[mode][block] → distinct driver blocks`.
    driven_by: Vec<Vec<Vec<u32>>>,
    /// Whether the block drives a net (LUTs and input pads).
    is_driver: Vec<Vec<bool>>,
    /// `[mode][block] → site index`.
    loc: Vec<Vec<u32>>,
    /// `[mode][site] → block`.
    occ: Vec<Vec<Option<u32>>>,
    site_xy: Vec<(u16, u16)>,
    /// Tunable-net cost per source site.
    net_cost: HashMap<u32, f64>,
    wl: f64,
    /// Per-mode connection multiplicity of each site pair.
    pairs: HashMap<(u32, u32), u32>,
    track_wl: bool,
    track_pairs: bool,
}

impl CostModel {
    /// Builds the model from the mode circuits; all blocks start unplaced
    /// (call [`CostModel::set_location`] then [`CostModel::recompute`]).
    #[must_use]
    pub fn new(circuits: &[LutCircuit], sites: &SiteMap, kind: CostKind) -> Self {
        let mode_count = circuits.len();
        let mut drives = Vec::with_capacity(mode_count);
        let mut driven_by = Vec::with_capacity(mode_count);
        let mut is_driver = Vec::with_capacity(mode_count);
        for circuit in circuits {
            let n = circuit.block_count();
            let mut dr: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut db: Vec<Vec<u32>> = vec![Vec::new(); n];
            for (src, dst) in circuit.connections() {
                dr[src.index()].push(dst.index() as u32);
                db[dst.index()].push(src.index() as u32);
            }
            drives.push(dr);
            driven_by.push(db);
            is_driver.push(
                circuit
                    .block_ids()
                    .map(|id| !matches!(circuit.block(id).kind(), BlockKind::OutputPad { .. }))
                    .collect(),
            );
        }
        let site_xy = (0..sites.len() as u32)
            .map(|i| {
                let s = sites.site(i);
                (s.x, s.y)
            })
            .collect();
        let (track_wl, track_pairs) = match kind {
            CostKind::WireLength => (true, false),
            CostKind::EdgeMatching => (false, true),
            CostKind::Hybrid { .. } => (true, true),
        };
        Self {
            kind,
            mode_count,
            loc: circuits
                .iter()
                .map(|c| vec![u32::MAX; c.block_count()])
                .collect(),
            occ: (0..mode_count).map(|_| vec![None; sites.len()]).collect(),
            drives,
            driven_by,
            is_driver,
            site_xy,
            net_cost: HashMap::new(),
            wl: 0.0,
            pairs: HashMap::new(),
            track_wl,
            track_pairs,
        }
    }

    /// Number of modes.
    #[must_use]
    pub fn mode_count(&self) -> usize {
        self.mode_count
    }

    /// Places block `b` of mode `m` on `site` (initial placement only; use
    /// [`CostModel::apply_swap`] afterwards).
    ///
    /// # Panics
    ///
    /// Panics if the site is already occupied in that mode.
    pub fn set_location(&mut self, mode: usize, block: u32, site: u32) {
        assert!(
            self.occ[mode][site as usize].is_none(),
            "site already occupied in mode {mode}"
        );
        self.loc[mode][block as usize] = site;
        self.occ[mode][site as usize] = Some(block);
    }

    /// The current site of a block.
    #[must_use]
    pub fn location(&self, mode: usize, block: u32) -> u32 {
        self.loc[mode][block as usize]
    }

    /// The block occupying `site` in `mode`, if any.
    #[must_use]
    pub fn occupant(&self, mode: usize, site: u32) -> Option<u32> {
        self.occ[mode][site as usize]
    }

    /// The current total cost under the configured [`CostKind`].
    #[must_use]
    pub fn cost(&self) -> f64 {
        match self.kind {
            CostKind::WireLength => self.wl,
            CostKind::EdgeMatching => self.pairs.len() as f64,
            CostKind::Hybrid {
                wl_weight,
                edge_weight,
            } => wl_weight * self.wl + edge_weight * self.pairs.len() as f64,
        }
    }

    /// The bounding-box wire-length component (0 unless tracked).
    #[must_use]
    pub fn wirelength(&self) -> f64 {
        self.wl
    }

    /// The number of distinct tunable connections (0 unless tracked).
    #[must_use]
    pub fn tunable_connections(&self) -> usize {
        self.pairs.len()
    }

    /// Number of tunable nets (for the annealer's exit criterion).
    #[must_use]
    pub fn net_count(&self) -> usize {
        if self.track_wl {
            self.net_cost.len().max(1)
        } else {
            self.pairs.len().max(1)
        }
    }

    /// Recomputes all bookkeeping from scratch (placement initialisation
    /// and periodic drift correction).
    pub fn recompute(&mut self) {
        if self.track_wl {
            self.net_cost.clear();
            self.wl = 0.0;
            let site_count = self.site_xy.len() as u32;
            for s in 0..site_count {
                if let Some(c) = self.compute_net_cost(s) {
                    self.net_cost.insert(s, c);
                    self.wl += c;
                }
            }
        }
        if self.track_pairs {
            self.pairs.clear();
            for m in 0..self.mode_count {
                for (b, sinks) in self.drives[m].iter().enumerate() {
                    let ls = self.loc[m][b];
                    for &snk in sinks {
                        let ld = self.loc[m][snk as usize];
                        *self.pairs.entry((ls, ld)).or_insert(0) += 1;
                    }
                }
            }
        }
    }

    /// The cost of the tunable net sourced at `site`, or `None` when no
    /// driver of any mode is placed there.
    fn compute_net_cost(&self, site: u32) -> Option<f64> {
        let mut terms: Vec<u32> = Vec::with_capacity(8);
        let push = |terms: &mut Vec<u32>, s: u32| {
            if !terms.contains(&s) {
                terms.push(s);
            }
        };
        for m in 0..self.mode_count {
            if let Some(b) = self.occ[m][site as usize] {
                if self.is_driver[m][b as usize] {
                    push(&mut terms, site);
                    for &snk in &self.drives[m][b as usize] {
                        push(&mut terms, self.loc[m][snk as usize]);
                    }
                }
            }
        }
        if terms.is_empty() {
            return None;
        }
        let (mut minx, mut maxx, mut miny, mut maxy) = (u16::MAX, 0u16, u16::MAX, 0u16);
        for &t in &terms {
            let (x, y) = self.site_xy[t as usize];
            minx = minx.min(x);
            maxx = maxx.max(x);
            miny = miny.min(y);
            maxy = maxy.max(y);
        }
        let span = f64::from(maxx - minx + 1) + f64::from(maxy - miny + 1);
        Some(q_factor(terms.len()) * span)
    }

    /// Applies the swap of the `mode`-occupants of `site_a` and `site_b`
    /// and returns the cost delta together with the undo record.
    ///
    /// Returns `None` (and applies nothing) if both sites are empty in
    /// that mode or the sites are equal.
    pub fn apply_swap(&mut self, mode: usize, site_a: u32, site_b: u32) -> Option<(f64, SwapUndo)> {
        if site_a == site_b {
            return None;
        }
        let ba = self.occ[mode][site_a as usize];
        let bb = self.occ[mode][site_b as usize];
        if ba.is_none() && bb.is_none() {
            return None;
        }
        let moved: Vec<u32> = ba.iter().chain(bb.iter()).copied().collect();

        // Connections of the moved blocks (mode `mode` only), deduplicated.
        let mut conns: HashSet<(u32, u32)> = HashSet::new();
        if self.track_pairs {
            for &b in &moved {
                for &snk in &self.drives[mode][b as usize] {
                    conns.insert((b, snk));
                }
                for &d in &self.driven_by[mode][b as usize] {
                    conns.insert((d, b));
                }
            }
        }
        let old_pairs: Vec<(u32, u32)> = conns
            .iter()
            .map(|&(d, s)| (self.loc[mode][d as usize], self.loc[mode][s as usize]))
            .collect();

        // WL: affected tunable-net keys — the two sites plus the sites of
        // every driver of a moved block (identical before/after the move
        // except for drivers that are themselves moved, which are covered
        // by {a, b}).
        let mut keys: Vec<u32> = Vec::new();
        if self.track_wl {
            let push = |keys: &mut Vec<u32>, s: u32| {
                if !keys.contains(&s) {
                    keys.push(s);
                }
            };
            push(&mut keys, site_a);
            push(&mut keys, site_b);
            for &b in &moved {
                for &d in &self.driven_by[mode][b as usize] {
                    push(&mut keys, self.loc[mode][d as usize]);
                }
            }
        }

        // ---- apply the move -------------------------------------------------
        self.occ[mode][site_a as usize] = bb;
        self.occ[mode][site_b as usize] = ba;
        if let Some(b) = ba {
            self.loc[mode][b as usize] = site_b;
        }
        if let Some(b) = bb {
            self.loc[mode][b as usize] = site_a;
        }

        let mut delta = 0.0;

        // ---- wire length ----------------------------------------------------
        let mut wl_snapshot = Vec::with_capacity(keys.len());
        if self.track_wl {
            for &key in &keys {
                let old = self.net_cost.get(&key).copied();
                let new = self.compute_net_cost(key);
                wl_snapshot.push((key, old));
                let old_v = old.unwrap_or(0.0);
                let new_v = new.unwrap_or(0.0);
                self.wl += new_v - old_v;
                let wl_delta = new_v - old_v;
                match new {
                    Some(c) => {
                        self.net_cost.insert(key, c);
                    }
                    None => {
                        self.net_cost.remove(&key);
                    }
                }
                match self.kind {
                    CostKind::WireLength => delta += wl_delta,
                    CostKind::Hybrid { wl_weight, .. } => delta += wl_weight * wl_delta,
                    CostKind::EdgeMatching => {}
                }
            }
        }

        // ---- edge matching --------------------------------------------------
        let mut pair_ops: Vec<((u32, u32), i32)> = Vec::new();
        if self.track_pairs {
            let new_pairs: Vec<(u32, u32)> = conns
                .iter()
                .map(|&(d, s)| (self.loc[mode][d as usize], self.loc[mode][s as usize]))
                .collect();
            let mut distinct_delta = 0i64;
            for &p in &old_pairs {
                let c = self.pairs.get_mut(&p).expect("old pair present");
                *c -= 1;
                if *c == 0 {
                    self.pairs.remove(&p);
                    distinct_delta -= 1;
                }
                pair_ops.push((p, -1));
            }
            for &p in &new_pairs {
                let c = self.pairs.entry(p).or_insert(0);
                if *c == 0 {
                    distinct_delta += 1;
                }
                *c += 1;
                pair_ops.push((p, 1));
            }
            match self.kind {
                CostKind::EdgeMatching => delta += distinct_delta as f64,
                CostKind::Hybrid { edge_weight, .. } => {
                    delta += edge_weight * distinct_delta as f64;
                }
                CostKind::WireLength => {}
            }
        }

        Some((
            delta,
            SwapUndo {
                mode,
                site_a,
                site_b,
                wl_snapshot,
                pair_ops,
                delta,
            },
        ))
    }

    /// Reverts a swap applied by [`CostModel::apply_swap`].
    pub fn revert(&mut self, undo: SwapUndo) {
        let (mode, a, b) = (undo.mode, undo.site_a, undo.site_b);
        let ba = self.occ[mode][b as usize];
        let bb = self.occ[mode][a as usize];
        self.occ[mode][a as usize] = ba;
        self.occ[mode][b as usize] = bb;
        if let Some(blk) = ba {
            self.loc[mode][blk as usize] = a;
        }
        if let Some(blk) = bb {
            self.loc[mode][blk as usize] = b;
        }
        // Restore net costs.
        for (key, old) in undo.wl_snapshot {
            let current = self.net_cost.get(&key).copied().unwrap_or(0.0);
            match old {
                Some(c) => {
                    self.wl += c - current;
                    self.net_cost.insert(key, c);
                }
                None => {
                    self.wl -= current;
                    self.net_cost.remove(&key);
                }
            }
        }
        // Reverse pair operations.
        for (pair, op) in undo.pair_ops.into_iter().rev() {
            match op {
                1 => {
                    let c = self.pairs.get_mut(&pair).expect("pair present");
                    *c -= 1;
                    if *c == 0 {
                        self.pairs.remove(&pair);
                    }
                }
                _ => {
                    *self.pairs.entry(pair).or_insert(0) += 1;
                }
            }
        }
        let _ = undo.delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_arch::Architecture;
    use mm_netlist::TruthTable;

    /// A chain a → g1 → g2 → y.
    fn chain() -> LutCircuit {
        let mut c = LutCircuit::new("chain", 4);
        let a = c.add_input("a").unwrap();
        let g1 = c
            .add_lut("g1", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        let g2 = c
            .add_lut("g2", vec![g1], TruthTable::var(1, 0), false)
            .unwrap();
        c.add_output("y", g2).unwrap();
        c
    }

    fn setup(kind: CostKind) -> (Vec<LutCircuit>, SiteMap, CostModel) {
        let arch = Architecture::new(4, 3, 4);
        let sites = SiteMap::new(&arch);
        let circuits = vec![chain(), chain()];
        let model = CostModel::new(&circuits, &sites, kind);
        (circuits, sites, model)
    }

    fn place_initial(model: &mut CostModel, sites: &SiteMap) {
        // Mode 0: a→io0, g1→logic0, g2→logic1, y→io1.
        // Mode 1: a→io2, g1→logic4, g2→logic5, y→io3.
        let io: Vec<u32> = sites.io_indices().collect();
        for (m, offsets) in [(0usize, (0usize, 0usize)), (1, (2, 4))] {
            let (io_off, logic_off) = offsets;
            model.set_location(m, 0, io[io_off]); // a
            model.set_location(m, 1, logic_off as u32); // g1
            model.set_location(m, 2, logic_off as u32 + 1); // g2
            model.set_location(m, 3, io[io_off + 1]); // y
        }
        model.recompute();
    }

    #[test]
    fn full_recompute_matches_incremental_wl() {
        let (_c, sites, mut model) = setup(CostKind::WireLength);
        place_initial(&mut model, &sites);
        let mut reference = model.wirelength();
        // Random-ish swap sequence with occasional reverts.
        let moves = [
            (0usize, 0u32, 5u32, true),
            (1, 4, 2, true),
            (0, 1, 3, false),
            (1, 5, 0, true),
            (0, 5, 7, false),
        ];
        for (m, a, b, keep) in moves {
            if let Some((delta, undo)) = model.apply_swap(m, a, b) {
                if keep {
                    reference += delta;
                } else {
                    model.revert(undo);
                }
            }
            let mut fresh = model_snapshot(&model);
            fresh.recompute();
            assert!(
                (fresh.wirelength() - model.wirelength()).abs() < 1e-6,
                "incremental {} vs fresh {}",
                model.wirelength(),
                fresh.wirelength()
            );
        }
        assert!((model.wirelength() - reference).abs() < 1e-6);
    }

    /// Clones the model state into a fresh model for recompute comparison.
    fn model_snapshot(model: &CostModel) -> CostModel {
        CostModel {
            kind: model.kind,
            mode_count: model.mode_count,
            drives: model.drives.clone(),
            driven_by: model.driven_by.clone(),
            is_driver: model.is_driver.clone(),
            loc: model.loc.clone(),
            occ: model.occ.clone(),
            site_xy: model.site_xy.clone(),
            net_cost: HashMap::new(),
            wl: 0.0,
            pairs: HashMap::new(),
            track_wl: model.track_wl,
            track_pairs: model.track_pairs,
        }
    }

    #[test]
    fn full_recompute_matches_incremental_pairs() {
        let (_c, sites, mut model) = setup(CostKind::EdgeMatching);
        place_initial(&mut model, &sites);
        let before = model.tunable_connections();
        assert!(before > 0);
        for (m, a, b, keep) in [
            (0usize, 0u32, 4u32, true),
            (1, 5, 1, true),
            (0, 4, 5, false),
            (1, 2, 0, true),
        ] {
            if let Some((_, undo)) = model.apply_swap(m, a, b) {
                if !keep {
                    model.revert(undo);
                }
            }
            let mut fresh = model_snapshot(&model);
            fresh.recompute();
            assert_eq!(fresh.tunable_connections(), model.tunable_connections());
        }
    }

    #[test]
    fn perfect_overlap_minimises_edge_cost() {
        let (_c, sites, mut model) = setup(CostKind::EdgeMatching);
        // Both modes placed identically: connections all merge.
        let io: Vec<u32> = sites.io_indices().collect();
        for m in 0..2 {
            model.set_location(m, 0, io[0]);
            model.set_location(m, 1, 0);
            model.set_location(m, 2, 1);
            model.set_location(m, 3, io[1]);
        }
        model.recompute();
        // 3 connections per mode, fully merged → 3 distinct pairs.
        assert_eq!(model.tunable_connections(), 3);
        assert_eq!(model.cost(), 3.0);

        // Moving one block of one mode away splits its two connections.
        let (delta, _) = model.apply_swap(1, 1, 5).expect("swap applies");
        assert_eq!(model.tunable_connections(), 5);
        assert_eq!(delta, 2.0);
    }

    #[test]
    fn disjoint_placements_double_edge_cost() {
        let (_c, sites, mut model) = setup(CostKind::EdgeMatching);
        place_initial(&mut model, &sites);
        // Nothing merges: 3 + 3 distinct pairs.
        assert_eq!(model.tunable_connections(), 6);
    }

    #[test]
    fn wl_counts_merged_nets_once() {
        let (_c, sites, mut model) = setup(CostKind::WireLength);
        // Identical placement: the tunable net of each site is the same as
        // a single mode's net → WL equals single-mode WL.
        let io: Vec<u32> = sites.io_indices().collect();
        for m in 0..2 {
            model.set_location(m, 0, io[0]);
            model.set_location(m, 1, 0);
            model.set_location(m, 2, 1);
            model.set_location(m, 3, io[1]);
        }
        model.recompute();
        let merged_wl = model.wirelength();

        let arch = Architecture::new(4, 3, 4);
        let sites2 = SiteMap::new(&arch);
        let single = vec![chain()];
        let mut smodel = CostModel::new(&single, &sites2, CostKind::WireLength);
        smodel.set_location(0, 0, io[0]);
        smodel.set_location(0, 1, 0);
        smodel.set_location(0, 2, 1);
        smodel.set_location(0, 3, io[1]);
        smodel.recompute();
        assert!((merged_wl - smodel.wirelength()).abs() < 1e-9);
    }

    #[test]
    fn swap_of_two_empty_sites_is_none() {
        let (_c, sites, mut model) = setup(CostKind::WireLength);
        place_initial(&mut model, &sites);
        assert!(model.apply_swap(0, 7, 8).is_none());
        assert!(model.apply_swap(0, 3, 3).is_none());
    }

    #[test]
    fn revert_restores_cost_exactly() {
        let (_c, sites, mut model) = setup(CostKind::Hybrid {
            wl_weight: 1.0,
            edge_weight: 2.0,
        });
        place_initial(&mut model, &sites);
        let cost0 = model.cost();
        let wl0 = model.wirelength();
        let pairs0 = model.tunable_connections();
        let (_, undo) = model.apply_swap(0, 0, 5).expect("applies");
        model.revert(undo);
        assert!((model.cost() - cost0).abs() < 1e-9);
        assert!((model.wirelength() - wl0).abs() < 1e-9);
        assert_eq!(model.tunable_connections(), pairs0);
    }

    #[test]
    fn hybrid_cost_combines_components() {
        let (_c, sites, mut model) = setup(CostKind::Hybrid {
            wl_weight: 1.0,
            edge_weight: 10.0,
        });
        place_initial(&mut model, &sites);
        let expect = model.wirelength() + 10.0 * model.tunable_connections() as f64;
        assert!((model.cost() - expect).abs() < 1e-9);
    }
}
