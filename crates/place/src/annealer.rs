//! The combined simulated-annealing placer.
//!
//! This extends the conventional VPR wire-length-driven placer (adaptive
//! annealing schedule, range-limited swaps) to place several mode circuits
//! *simultaneously* (paper §III-A):
//!
//! * LUTs of **different modes may share a physical LUT** — per site there
//!   is one occupant per mode;
//! * a swap "consists of two steps: choosing two random physical blocks
//!   and selecting a mode for which the swap will be executed. Only the
//!   LUTs placed on the chosen physical LUTs belonging to the selected
//!   mode will be interchanged, the LUTs of the other modes maintain
//!   their position";
//! * the cost is either the merged-circuit wire length or the number of
//!   tunable connections (see [`CostKind`]).
//!
//! With a single mode this *is* the conventional VPR placer, which is how
//! the MDR baseline is placed.

use crate::reference::NaiveCostModel;
use crate::{
    verify_placement, CostKind, CostModel, CostTracker, MultiPlacement, Placement, SiteMap,
};
use mm_arch::Architecture;
use mm_netlist::{BlockId, LutCircuit};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;

/// Options of the (combined) annealing placer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacerOptions {
    /// Cost function of the combined placement.
    pub cost: CostKind,
    /// VPR's `inner_num`: moves per temperature = `inner_num · blocks^{4/3}`.
    /// 1.0 matches VPR's `-fast` mode, 10.0 the VPR default.
    pub inner_num: f64,
    /// RNG seed — placements are deterministic per seed.
    pub seed: u64,
    /// Safety bound on annealing temperatures.
    pub max_temperatures: usize,
}

impl Default for PlacerOptions {
    fn default() -> Self {
        Self {
            cost: CostKind::WireLength,
            inner_num: 1.0,
            seed: 0x5eed,
            max_temperatures: 400,
        }
    }
}

impl PlacerOptions {
    /// Options with a specific cost function.
    #[must_use]
    pub fn with_cost(mut self, cost: CostKind) -> Self {
        self.cost = cost;
        self
    }

    /// Options with a specific seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A stable fingerprint of every option that affects the produced
    /// placement (floats by bit pattern), used by the batch engine's
    /// stage cache keys.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "placer-v1;cost={};inner={:016x};seed={:016x};maxt={}",
            self.cost.fingerprint(),
            self.inner_num.to_bits(),
            self.seed,
            self.max_temperatures,
        )
    }
}

/// Errors of the placement stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// No mode circuits were given.
    EmptyInput,
    /// The architecture does not offer enough sites of some kind.
    InsufficientSites {
        /// "logic" or "IO".
        resource: &'static str,
        /// Sites required by the largest mode.
        needed: usize,
        /// Sites available.
        available: usize,
    },
    /// Internal invariant violation (reported rather than panicking).
    Internal(String),
}

impl fmt::Display for PlaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlaceError::EmptyInput => {
                write!(f, "at least one mode circuit is required")
            }
            PlaceError::InsufficientSites {
                resource,
                needed,
                available,
            } => write!(
                f,
                "architecture offers {available} {resource} sites but a mode needs {needed}"
            ),
            PlaceError::Internal(msg) => write!(f, "internal placement error: {msg}"),
        }
    }
}

impl Error for PlaceError {}

/// Summary of one annealing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaceStats {
    /// Final cost under the configured cost function.
    pub final_cost: f64,
    /// Final bounding-box wire length (if tracked).
    pub wirelength: f64,
    /// Final number of distinct tunable connections (if tracked).
    pub tunable_connections: usize,
    /// Temperatures executed.
    pub temperatures: usize,
    /// Total swaps attempted.
    pub moves: usize,
}

/// Places all mode circuits simultaneously on `arch` and returns the
/// per-mode placements together with run statistics.
///
/// Runs on the flat, allocation-free [`CostModel`] whenever the fabric
/// fits its dense matrices (see [`crate::DENSE_SITE_LIMIT`]), falling
/// back to the naive model on oversized fabrics — the two are
/// byte-identical, so the choice never changes the placement.
///
/// # Errors
///
/// Fails on an empty mode list or if any mode does not fit on the
/// architecture — infeasible inputs are reported, never panicked on, so
/// batch engines and services can degrade them to per-job errors.
pub fn place_combined(
    circuits: &[LutCircuit],
    arch: &Architecture,
    options: &PlacerOptions,
) -> Result<(MultiPlacement, PlaceStats), PlaceError> {
    if circuits.is_empty() {
        return Err(PlaceError::EmptyInput);
    }
    let sites = SiteMap::new(arch);
    check_capacity(circuits, &sites)?;
    check_timing_feasible(circuits, options)?;
    if CostModel::fits(sites.len()) {
        let model = CostModel::new(circuits, &sites, options.cost);
        anneal(circuits, arch, &sites, options, model)
    } else {
        let model = NaiveCostModel::new(circuits, &sites, options.cost);
        anneal(circuits, arch, &sites, options, model)
    }
}

/// [`place_combined`] on the naive hash-map cost model — the
/// differential-testing oracle and `mmflow bench` baseline. Produces
/// byte-identical placements to the optimized path (property-tested).
///
/// # Errors
///
/// Fails on an empty mode list or if any mode does not fit on the
/// architecture.
pub fn place_combined_reference(
    circuits: &[LutCircuit],
    arch: &Architecture,
    options: &PlacerOptions,
) -> Result<(MultiPlacement, PlaceStats), PlaceError> {
    if circuits.is_empty() {
        return Err(PlaceError::EmptyInput);
    }
    let sites = SiteMap::new(arch);
    check_capacity(circuits, &sites)?;
    check_timing_feasible(circuits, options)?;
    let model = NaiveCostModel::new(circuits, &sites, options.cost);
    anneal(circuits, arch, &sites, options, model)
}

/// The timing cost needs per-connection criticalities, which exist only
/// for combinationally acyclic circuits — checked up front so the cost
/// models' constructors can rely on it instead of panicking mid-build.
fn check_timing_feasible(
    circuits: &[LutCircuit],
    options: &PlacerOptions,
) -> Result<(), PlaceError> {
    if !options.cost.tracks_timing() {
        return Ok(());
    }
    for c in circuits {
        if let Err(e) = mm_sta::unit_criticalities(c) {
            return Err(PlaceError::Internal(format!(
                "timing cost on mode '{}': {e}",
                c.name()
            )));
        }
    }
    Ok(())
}

/// Per-mode capacity checks shared by the placer entry points.
fn check_capacity(circuits: &[LutCircuit], sites: &SiteMap) -> Result<(), PlaceError> {
    for c in circuits {
        let pads = c.block_count() - c.lut_count();
        if c.lut_count() > sites.logic_count() {
            return Err(PlaceError::InsufficientSites {
                resource: "logic",
                needed: c.lut_count(),
                available: sites.logic_count(),
            });
        }
        if pads > sites.len() - sites.logic_count() {
            return Err(PlaceError::InsufficientSites {
                resource: "IO",
                needed: pads,
                available: sites.len() - sites.logic_count(),
            });
        }
    }
    Ok(())
}

/// The annealing loop, generic over the incremental cost model — the
/// models are bit-compatible, so the RNG stream and every accept/reject
/// decision are identical regardless of which one runs.
fn anneal<M: CostTracker>(
    circuits: &[LutCircuit],
    arch: &Architecture,
    sites: &SiteMap,
    options: &PlacerOptions,
    mut model: M,
) -> Result<(MultiPlacement, PlaceStats), PlaceError> {
    let mut rng = StdRng::seed_from_u64(options.seed);

    // ---- random legal initial placement ---------------------------------
    for (m, c) in circuits.iter().enumerate() {
        let mut logic: Vec<u32> = sites.logic_indices().collect();
        let mut io: Vec<u32> = sites.io_indices().collect();
        logic.shuffle(&mut rng);
        io.shuffle(&mut rng);
        let (mut li, mut ii) = (0usize, 0usize);
        for id in c.block_ids() {
            if c.block(id).is_lut() {
                model.set_location(m, id.index() as u32, logic[li]);
                li += 1;
            } else {
                model.set_location(m, id.index() as u32, io[ii]);
                ii += 1;
            }
        }
    }
    model.recompute();

    // Movable blocks: (mode, dense block index, is_lut).
    let movable: Vec<(usize, u32, bool)> = circuits
        .iter()
        .enumerate()
        .flat_map(|(m, c)| {
            c.block_ids()
                .map(move |id| (m, id.index() as u32, c.block(id).is_lut()))
        })
        .collect();
    let num_blocks = movable.len();
    let grid = arch.grid as i32;
    let io_sites: Vec<u32> = sites.io_indices().collect();

    // ---- initial temperature --------------------------------------------
    // VPR: perform `num_blocks` moves accepting everything; T0 = 20·σ(ΔC).
    let mut deltas: Vec<f64> = Vec::with_capacity(num_blocks);
    for _ in 0..num_blocks {
        if let Some((m, a, b)) = pick_move(&movable, &model, sites, &io_sites, grid, grid, &mut rng)
        {
            if let Some(delta) = model.apply_swap(m, a, b) {
                deltas.push(delta);
            }
        }
    }
    model.recompute();
    let t0 = {
        let n = deltas.len().max(1) as f64;
        let mean = deltas.iter().sum::<f64>() / n;
        let var = deltas.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n;
        (20.0 * var.sqrt()).max(1e-9)
    };

    // ---- annealing loop ----------------------------------------------------
    let moves_per_temp =
        ((options.inner_num * (num_blocks as f64).powf(4.0 / 3.0)).ceil() as usize).max(16);
    let mut temperature = t0;
    let mut rlim = grid as f64;
    let mut temps = 0usize;
    let mut total_moves = 0usize;

    loop {
        let mut accepted = 0usize;
        let mut attempted = 0usize;
        for _ in 0..moves_per_temp {
            let r = rlim.round().max(1.0) as i32;
            let Some((m, a, b)) = pick_move(&movable, &model, sites, &io_sites, r, grid, &mut rng)
            else {
                continue;
            };
            let Some(delta) = model.apply_swap(m, a, b) else {
                continue;
            };
            attempted += 1;
            let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temperature).exp();
            if accept {
                accepted += 1;
            } else {
                model.revert_last();
            }
        }
        total_moves += attempted;
        temps += 1;

        let raccept = if attempted == 0 {
            0.0
        } else {
            accepted as f64 / attempted as f64
        };
        // VPR's adaptive cooling.
        let alpha = if raccept > 0.96 {
            0.5
        } else if raccept > 0.8 {
            0.9
        } else if raccept > 0.15 {
            0.95
        } else {
            0.8
        };
        temperature *= alpha;
        // VPR's range-limit update.
        rlim = (rlim * (1.0 - 0.44 + raccept)).clamp(1.0, grid as f64);
        // Periodic drift correction.
        model.recompute();

        let cost = model.cost();
        if temps >= options.max_temperatures
            || cost <= f64::EPSILON
            || temperature < 0.005 * cost / model.net_count() as f64
        {
            break;
        }
    }

    // ---- extract placements ---------------------------------------------
    let mut modes = Vec::with_capacity(circuits.len());
    for (m, c) in circuits.iter().enumerate() {
        let mut p = Placement::new(c.block_count());
        for id in c.block_ids() {
            let site_idx = model.location(m, id.index() as u32);
            p.assign(id, sites.site(site_idx));
        }
        modes.push(p);
    }
    let placement = MultiPlacement { modes };
    verify_placement(circuits, arch, &placement).map_err(PlaceError::Internal)?;

    let stats = PlaceStats {
        final_cost: model.cost(),
        wirelength: model.wirelength(),
        tunable_connections: model.tunable_connections(),
        temperatures: temps,
        moves: total_moves,
    };
    Ok((placement, stats))
}

/// Picks a random movable block and a random compatible target site within
/// the range limit. Returns (mode, from-site, to-site).
fn pick_move(
    movable: &[(usize, u32, bool)],
    model: &impl CostTracker,
    sites: &SiteMap,
    io_sites: &[u32],
    rlim: i32,
    grid: i32,
    rng: &mut StdRng,
) -> Option<(usize, u32, u32)> {
    let &(m, b, is_lut) = movable.choose(rng)?;
    let from = model.location(m, b);
    let from_site = sites.site(from);
    if is_lut {
        // Uniform target within the window [x±rlim]×[y±rlim] ∩ the array.
        let (fx, fy) = (i32::from(from_site.x), i32::from(from_site.y));
        let lo_x = (fx - rlim).max(1);
        let hi_x = (fx + rlim).min(grid);
        let lo_y = (fy - rlim).max(1);
        let hi_y = (fy + rlim).min(grid);
        let x = rng.gen_range(lo_x..=hi_x);
        let y = rng.gen_range(lo_y..=hi_y);
        let to = ((y - 1) * grid + (x - 1)) as u32;
        (to != from).then_some((m, from, to))
    } else {
        // IO pads: sample pad sites, preferring ones within the window.
        for _ in 0..8 {
            let &to = io_sites.choose(rng)?;
            if to == from {
                continue;
            }
            let ts = sites.site(to);
            let d = (i32::from(ts.x) - i32::from(from_site.x))
                .abs()
                .max((i32::from(ts.y) - i32::from(from_site.y)).abs());
            if d <= rlim.max(2) {
                return Some((m, from, to));
            }
        }
        let &to = io_sites.choose(rng)?;
        (to != from).then_some((m, from, to))
    }
}

/// Places a single circuit with the conventional wire-length-driven
/// annealer (the MDR per-mode placement).
///
/// # Errors
///
/// Fails if the circuit does not fit on the architecture.
pub fn place_single(
    circuit: &LutCircuit,
    arch: &Architecture,
    options: &PlacerOptions,
) -> Result<(Placement, PlaceStats), PlaceError> {
    let circuits = std::slice::from_ref(circuit);
    let (mut multi, stats) = place_combined(circuits, arch, options)?;
    Ok((multi.modes.remove(0), stats))
}

/// Computes the bounding-box wire length of an existing placement (for
/// reporting and tests) using the same merged-net model as the combined
/// placer.
#[must_use]
pub fn placement_wirelength(
    circuits: &[LutCircuit],
    arch: &Architecture,
    placement: &MultiPlacement,
) -> f64 {
    let sites = SiteMap::new(arch);
    // One-shot query: the naive model avoids the dense matrices.
    let mut model = NaiveCostModel::new(circuits, &sites, CostKind::WireLength);
    for (m, c) in circuits.iter().enumerate() {
        for id in c.block_ids() {
            let site = placement.modes[m].site_of(id);
            let idx = sites.index_of(site).expect("placed on a real site");
            model.set_location(m, id.index() as u32, idx);
        }
    }
    model.recompute();
    model.wirelength()
}

/// Counts the distinct tunable connections of an existing placement.
#[must_use]
pub fn placement_tunable_connections(
    circuits: &[LutCircuit],
    arch: &Architecture,
    placement: &MultiPlacement,
) -> usize {
    let sites = SiteMap::new(arch);
    // One-shot query: the naive model avoids the dense matrices.
    let mut model = NaiveCostModel::new(circuits, &sites, CostKind::EdgeMatching);
    for (m, c) in circuits.iter().enumerate() {
        for id in c.block_ids() {
            let site = placement.modes[m].site_of(id);
            let idx = sites.index_of(site).expect("placed on a real site");
            model.set_location(m, id.index() as u32, idx);
        }
    }
    model.recompute();
    model.tunable_connections()
}

/// The site a block occupies, re-exported for flows: convenience wrapper
/// asserting the block is placed.
#[must_use]
pub fn site_of(placement: &MultiPlacement, mode: usize, block: BlockId) -> mm_arch::Site {
    placement.site_of(mode, block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_netlist::TruthTable;
    use rand::Rng;

    /// A random k-LUT circuit with `n_luts` LUTs in layers.
    fn random_circuit(name: &str, n_inputs: usize, n_luts: usize, seed: u64) -> LutCircuit {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut c = LutCircuit::new(name, 4);
        let mut drivers: Vec<BlockId> = (0..n_inputs)
            .map(|i| c.add_input(format!("i{i}")).unwrap())
            .collect();
        for j in 0..n_luts {
            let fanin = rng.gen_range(2..=4.min(drivers.len()));
            let mut ins = Vec::new();
            while ins.len() < fanin {
                let d = drivers[rng.gen_range(0..drivers.len())];
                if !ins.contains(&d) {
                    ins.push(d);
                }
            }
            let tt = TruthTable::from_bits(ins.len(), rng.gen());
            let id = c
                .add_lut(format!("n{j}"), ins, tt, rng.gen_bool(0.2))
                .unwrap();
            drivers.push(id);
        }
        for t in 0..4 {
            let d = drivers[drivers.len() - 1 - t];
            c.add_output(format!("o{t}"), d).unwrap();
        }
        c
    }

    #[test]
    fn single_mode_placement_is_legal_and_improves() {
        let circuit = random_circuit("r", 6, 30, 1);
        let arch = Architecture::new(4, 8, 6);
        let options = PlacerOptions::default();
        let (placement, stats) = place_single(&circuit, &arch, &options).unwrap();
        // Legality is verified inside place_combined; re-verify here.
        verify_placement(
            std::slice::from_ref(&circuit),
            &arch,
            &MultiPlacement {
                modes: vec![placement.clone()],
            },
        )
        .unwrap();
        assert!(stats.moves > 0);
        assert!(stats.final_cost > 0.0);

        // The annealed result must beat a random placement clearly.
        let mut worst = 0.0f64;
        for seed in 0..3 {
            let mut opts = PlacerOptions::default().with_seed(seed);
            opts.max_temperatures = 1; // effectively random + a breath
            let (_p, s) = place_single(&circuit, &arch, &opts).unwrap();
            worst = worst.max(s.wirelength);
        }
        assert!(
            stats.wirelength < worst,
            "annealed {} !< near-random {}",
            stats.wirelength,
            worst
        );
    }

    #[test]
    fn combined_placement_two_modes_legal() {
        let a = random_circuit("a", 6, 25, 2);
        let b = random_circuit("b", 6, 28, 3);
        let arch = Architecture::new(4, 8, 6);
        let circuits = vec![a, b];
        let (placement, stats) =
            place_combined(&circuits, &arch, &PlacerOptions::default()).unwrap();
        verify_placement(&circuits, &arch, &placement).unwrap();
        assert_eq!(placement.mode_count(), 2);
        assert!(stats.final_cost > 0.0);
    }

    #[test]
    fn edge_matching_merges_identical_circuits() {
        // Two identical modes: edge matching should overlay them almost
        // perfectly, so tunable connections ≈ connections of one mode.
        let a = random_circuit("a", 6, 20, 7);
        let b = random_circuit("b", 6, 20, 7); // same seed → same structure
        let single_conns = a.connections().len();
        let arch = Architecture::new(4, 7, 6);
        let circuits = vec![a, b];
        let options = PlacerOptions::default()
            .with_cost(CostKind::EdgeMatching)
            .with_seed(11);
        let (placement, stats) = place_combined(&circuits, &arch, &options).unwrap();
        verify_placement(&circuits, &arch, &placement).unwrap();
        assert!(
            stats.tunable_connections <= single_conns + single_conns / 3,
            "edge matching left {} connections; single mode has {}",
            stats.tunable_connections,
            single_conns
        );
    }

    #[test]
    fn determinism_per_seed() {
        let a = random_circuit("a", 5, 15, 4);
        let arch = Architecture::new(4, 6, 6);
        let options = PlacerOptions::default().with_seed(99);
        let (p1, s1) = place_single(&a, &arch, &options).unwrap();
        let (p2, s2) = place_single(&a, &arch, &options).unwrap();
        assert_eq!(s1.final_cost, s2.final_cost);
        for id in a.block_ids() {
            assert_eq!(p1.site_of(id), p2.site_of(id));
        }
        // A different seed gives a different placement (overwhelmingly).
        let (p3, _) = place_single(&a, &arch, &options.with_seed(100)).unwrap();
        let moved = a
            .block_ids()
            .filter(|&id| p1.site_of(id) != p3.site_of(id))
            .count();
        assert!(moved > 0);
    }

    #[test]
    fn empty_input_is_an_error_not_a_panic() {
        let arch = Architecture::new(4, 3, 6);
        let err = place_combined(&[], &arch, &PlacerOptions::default()).unwrap_err();
        assert_eq!(err, PlaceError::EmptyInput);
        let err = place_combined_reference(&[], &arch, &PlacerOptions::default()).unwrap_err();
        assert_eq!(err, PlaceError::EmptyInput);
    }

    #[test]
    fn insufficient_sites_reported() {
        let a = random_circuit("a", 5, 30, 5);
        let arch = Architecture::new(4, 3, 6); // 9 logic sites < 30 LUTs
        let err = place_single(&a, &arch, &PlacerOptions::default()).unwrap_err();
        assert!(matches!(err, PlaceError::InsufficientSites { .. }), "{err}");
    }

    #[test]
    fn wirelength_helper_matches_stats() {
        let a = random_circuit("a", 5, 12, 6);
        let arch = Architecture::new(4, 5, 6);
        let circuits = vec![a];
        let (placement, stats) =
            place_combined(&circuits, &arch, &PlacerOptions::default()).unwrap();
        let wl = placement_wirelength(&circuits, &arch, &placement);
        assert!((wl - stats.wirelength).abs() < 1e-6);
    }

    #[test]
    fn wirelength_cost_beats_edge_matching_on_wirelength() {
        // The paper's headline comparison: optimizing wire length yields
        // (much) better wire length than edge matching.
        let a = random_circuit("a", 6, 24, 8);
        let b = random_circuit("b", 6, 24, 9);
        let arch = Architecture::new(4, 7, 6);
        let circuits = vec![a, b];
        let wl_run = place_combined(
            &circuits,
            &arch,
            &PlacerOptions::default().with_cost(CostKind::WireLength),
        )
        .unwrap();
        let em_run = place_combined(
            &circuits,
            &arch,
            &PlacerOptions::default().with_cost(CostKind::EdgeMatching),
        )
        .unwrap();
        let wl_of_wl = placement_wirelength(&circuits, &arch, &wl_run.0);
        let wl_of_em = placement_wirelength(&circuits, &arch, &em_run.0);
        assert!(
            wl_of_wl < wl_of_em,
            "WL-optimised {wl_of_wl} should beat edge-matched {wl_of_em}"
        );
    }
}
