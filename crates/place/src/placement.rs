//! Placement containers: compact site indexing and per-mode block
//! locations.

use mm_arch::{Architecture, Site, SiteKind};
use mm_netlist::{BlockId, LutCircuit};
use std::collections::HashMap;

/// Compact bidirectional mapping between [`Site`]s and dense indices.
///
/// Logic sites come first (`0..n²`), IO pad sites after; the annealer and
/// cost model work exclusively in dense indices.
#[derive(Debug, Clone)]
pub struct SiteMap {
    sites: Vec<Site>,
    index: HashMap<Site, u32>,
    logic_count: usize,
}

impl SiteMap {
    /// Builds the site map of an architecture.
    #[must_use]
    pub fn new(arch: &Architecture) -> Self {
        let mut sites: Vec<Site> = arch.logic_sites().collect();
        let logic_count = sites.len();
        sites.extend(arch.io_sites());
        let index = sites
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i as u32))
            .collect();
        Self {
            sites,
            index,
            logic_count,
        }
    }

    /// Total number of placeable sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the architecture has no sites (never true for valid
    /// architectures).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Number of logic sites (they occupy indices `0..logic_count`).
    #[must_use]
    pub fn logic_count(&self) -> usize {
        self.logic_count
    }

    /// The site with dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn site(&self, idx: u32) -> Site {
        self.sites[idx as usize]
    }

    /// The dense index of `site`, if it is placeable.
    #[must_use]
    pub fn index_of(&self, site: Site) -> Option<u32> {
        self.index.get(&site).copied()
    }

    /// Whether `idx` refers to a logic site.
    #[must_use]
    pub fn is_logic(&self, idx: u32) -> bool {
        (idx as usize) < self.logic_count
    }

    /// Indices of all logic sites.
    pub fn logic_indices(&self) -> impl Iterator<Item = u32> {
        0..self.logic_count as u32
    }

    /// Indices of all IO pad sites.
    pub fn io_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.logic_count as u32..self.sites.len() as u32
    }
}

/// The placement of one mode circuit: every block mapped to a site.
#[derive(Debug, Clone)]
pub struct Placement {
    /// `sites[block.index()]` is the site of that block (`None` only for
    /// blocks that do not exist in this circuit — the vector is indexed by
    /// [`BlockId::index`]).
    sites: Vec<Option<Site>>,
}

impl Placement {
    /// Creates an empty placement for a circuit with `block_count` blocks.
    #[must_use]
    pub fn new(block_count: usize) -> Self {
        Self {
            sites: vec![None; block_count],
        }
    }

    /// Sets the site of a block.
    pub fn assign(&mut self, block: BlockId, site: Site) {
        self.sites[block.index()] = Some(site);
    }

    /// The site of a block.
    ///
    /// # Panics
    ///
    /// Panics if the block is unplaced.
    #[must_use]
    pub fn site_of(&self, block: BlockId) -> Site {
        self.sites[block.index()].expect("block is placed")
    }

    /// The site of a block, if placed.
    #[must_use]
    pub fn try_site_of(&self, block: BlockId) -> Option<Site> {
        self.sites[block.index()]
    }
}

/// The simultaneous placement of all mode circuits on one reconfigurable
/// region — the output of combined placement.
#[derive(Debug, Clone)]
pub struct MultiPlacement {
    /// One [`Placement`] per mode, in mode order.
    pub modes: Vec<Placement>,
}

impl MultiPlacement {
    /// The site of `block` of mode `mode`.
    ///
    /// # Panics
    ///
    /// Panics if the block is unplaced or the mode out of range.
    #[must_use]
    pub fn site_of(&self, mode: usize, block: BlockId) -> Site {
        self.modes[mode].site_of(block)
    }

    /// Number of modes.
    #[must_use]
    pub fn mode_count(&self) -> usize {
        self.modes.len()
    }
}

/// Checks that `placement` is legal for `circuits` on `arch`:
/// every block on a compatible site, at most one block per site *per
/// mode*, and every block placed.
///
/// Returns a human-readable description of the first violation.
///
/// # Errors
///
/// Returns `Err` with a diagnostic string if the placement is illegal.
pub fn verify_placement(
    circuits: &[LutCircuit],
    arch: &Architecture,
    placement: &MultiPlacement,
) -> Result<(), String> {
    if placement.modes.len() != circuits.len() {
        return Err(format!(
            "placement has {} modes, expected {}",
            placement.modes.len(),
            circuits.len()
        ));
    }
    for (m, circuit) in circuits.iter().enumerate() {
        let mut used: HashMap<Site, BlockId> = HashMap::new();
        for id in circuit.block_ids() {
            let block = circuit.block(id);
            let Some(site) = placement.modes[m].try_site_of(id) else {
                return Err(format!("mode {m}: block '{}' unplaced", block.name()));
            };
            let kind = arch.site_kind(site);
            let want = if block.is_lut() {
                SiteKind::Logic
            } else {
                SiteKind::Io
            };
            if kind != Some(want) {
                return Err(format!(
                    "mode {m}: block '{}' placed on incompatible site {site}",
                    block.name()
                ));
            }
            if let Some(prev) = used.insert(site, id) {
                return Err(format!(
                    "mode {m}: blocks '{}' and '{}' share site {site}",
                    circuit.block(prev).name(),
                    block.name()
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mm_netlist::TruthTable;

    fn tiny_circuit() -> LutCircuit {
        let mut c = LutCircuit::new("t", 4);
        let a = c.add_input("a").unwrap();
        let g = c
            .add_lut("g", vec![a], TruthTable::var(1, 0), false)
            .unwrap();
        c.add_output("y", g).unwrap();
        c
    }

    #[test]
    fn site_map_roundtrip() {
        let arch = Architecture::new(4, 3, 4);
        let map = SiteMap::new(&arch);
        assert_eq!(map.len(), 9 + 24);
        assert_eq!(map.logic_count(), 9);
        for idx in 0..map.len() as u32 {
            let site = map.site(idx);
            assert_eq!(map.index_of(site), Some(idx));
        }
        assert_eq!(map.index_of(Site::new(0, 0, 0)), None, "corner");
        assert!(map.is_logic(0));
        assert!(!map.is_logic(9));
        assert_eq!(map.logic_indices().count(), 9);
        assert_eq!(map.io_indices().count(), 24);
    }

    #[test]
    fn verify_accepts_legal() {
        let arch = Architecture::new(4, 2, 4);
        let c = tiny_circuit();
        let mut p = Placement::new(c.block_count());
        p.assign(c.find("a").unwrap(), Site::new(0, 1, 0));
        p.assign(c.find("g").unwrap(), Site::new(1, 1, 0));
        p.assign(c.find("y").unwrap(), Site::new(0, 2, 1));
        let mp = MultiPlacement { modes: vec![p] };
        verify_placement(&[c], &arch, &mp).unwrap();
    }

    #[test]
    fn verify_rejects_overlap_within_mode() {
        let arch = Architecture::new(4, 2, 4);
        let c = tiny_circuit();
        let mut p = Placement::new(c.block_count());
        p.assign(c.find("a").unwrap(), Site::new(0, 1, 0));
        p.assign(c.find("g").unwrap(), Site::new(1, 1, 0));
        p.assign(c.find("y").unwrap(), Site::new(0, 1, 0)); // same as 'a'
        let mp = MultiPlacement { modes: vec![p] };
        let err = verify_placement(&[c], &arch, &mp).unwrap_err();
        assert!(err.contains("share site"), "{err}");
    }

    #[test]
    fn verify_allows_overlap_across_modes() {
        let arch = Architecture::new(4, 2, 4);
        let (c1, c2) = (tiny_circuit(), tiny_circuit());
        let mut p1 = Placement::new(c1.block_count());
        p1.assign(c1.find("a").unwrap(), Site::new(0, 1, 0));
        p1.assign(c1.find("g").unwrap(), Site::new(1, 1, 0));
        p1.assign(c1.find("y").unwrap(), Site::new(3, 1, 0));
        let mut p2 = Placement::new(c2.block_count());
        // Same sites in the other mode: legal — this is the whole point of
        // multi-mode sharing.
        p2.assign(c2.find("a").unwrap(), Site::new(0, 1, 0));
        p2.assign(c2.find("g").unwrap(), Site::new(1, 1, 0));
        p2.assign(c2.find("y").unwrap(), Site::new(3, 1, 0));
        let mp = MultiPlacement {
            modes: vec![p1, p2],
        };
        verify_placement(&[c1, c2], &arch, &mp).unwrap();
    }

    #[test]
    fn verify_rejects_wrong_site_kind() {
        let arch = Architecture::new(4, 2, 4);
        let c = tiny_circuit();
        let mut p = Placement::new(c.block_count());
        p.assign(c.find("a").unwrap(), Site::new(1, 1, 0)); // pad on logic
        p.assign(c.find("g").unwrap(), Site::new(2, 1, 0));
        p.assign(c.find("y").unwrap(), Site::new(0, 2, 0));
        let mp = MultiPlacement { modes: vec![p] };
        let err = verify_placement(&[c], &arch, &mp).unwrap_err();
        assert!(err.contains("incompatible"), "{err}");
    }

    #[test]
    fn verify_rejects_unplaced() {
        let arch = Architecture::new(4, 2, 4);
        let c = tiny_circuit();
        let p = Placement::new(c.block_count());
        let mp = MultiPlacement { modes: vec![p] };
        assert!(verify_placement(&[c], &arch, &mp).is_err());
    }
}
