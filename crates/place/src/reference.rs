//! Naive reference formulation of the combined-placement cost model.
//!
//! [`NaiveCostModel`] implements *exactly* the semantics of
//! [`crate::CostModel`] with the straightforward data structures the flat
//! model replaced: `HashMap<u32, f64>` net costs, a
//! `HashMap<(u32, u32), u32>` pair table, a fresh `Vec`/`HashSet` per
//! swap and the O(n²) `terms.contains` terminal dedup. It exists for two
//! reasons:
//!
//! * **differential testing** — the property tests in `tests/parity.rs`
//!   assert the flat model produces bit-identical costs and deltas (and
//!   therefore the annealer byte-identical placements), so every
//!   data-structure optimization is provably semantics-preserving;
//! * **benchmarking** — `mmflow bench` and the criterion suite measure
//!   the optimized annealer hot path against this baseline
//!   (`BENCH_place.json`).
//!
//! It is deliberately slow; never use it from a flow.

use crate::netmodel::manhattan;
use crate::{q_factor, CostKind, CostTracker, SiteMap};
use mm_netlist::{BlockKind, LutCircuit};
use std::collections::{HashMap, HashSet};

/// Undo record of the last applied swap.
#[derive(Debug)]
struct SwapUndo {
    mode: usize,
    site_a: u32,
    site_b: u32,
    /// (net key, previous cost) — `None` means the key had no net.
    wl_snapshot: Vec<(u32, Option<f64>)>,
    /// (pair, count delta applied) to be reversed.
    pair_ops: Vec<((u32, u32), i32)>,
    /// Pre-swap timing cost (scalar snapshot, like the flat model's).
    timing: f64,
}

/// The hash-map formulation of the combined-placement cost model (see the
/// module docs).
#[derive(Debug)]
pub struct NaiveCostModel {
    kind: CostKind,
    mode_count: usize,
    /// `[mode][block] → distinct sink blocks` (dense block = `BlockId::index`).
    drives: Vec<Vec<Vec<u32>>>,
    /// `[mode][block] → distinct driver blocks`.
    driven_by: Vec<Vec<Vec<u32>>>,
    /// `[mode][block][drive slot] → unit-delay criticality` (timing only).
    crit: Vec<Vec<Vec<f64>>>,
    /// Whether the block drives a net (LUTs and input pads).
    is_driver: Vec<Vec<bool>>,
    /// `[mode][block] → site index`.
    loc: Vec<Vec<u32>>,
    /// `[mode][site] → block`.
    occ: Vec<Vec<Option<u32>>>,
    site_xy: Vec<(u16, u16)>,
    /// Tunable-net cost per source site.
    net_cost: HashMap<u32, f64>,
    wl: f64,
    /// Per-mode connection multiplicity of each site pair.
    pairs: HashMap<(u32, u32), u32>,
    /// `Σ crit · manhattan` over all mode connections (timing only).
    timing_cost: f64,
    track_wl: bool,
    track_pairs: bool,
    track_timing: bool,
    undo: Option<SwapUndo>,
}

impl NaiveCostModel {
    /// Builds the model from the mode circuits; all blocks start unplaced
    /// (call [`CostTracker::set_location`] then [`CostTracker::recompute`]).
    #[must_use]
    pub fn new(circuits: &[LutCircuit], sites: &SiteMap, kind: CostKind) -> Self {
        let mode_count = circuits.len();
        let (track_wl, track_pairs) = kind.tracks();
        let track_timing = kind.tracks_timing();
        let mut drives = Vec::with_capacity(mode_count);
        let mut driven_by = Vec::with_capacity(mode_count);
        let mut crit = Vec::with_capacity(mode_count);
        let mut is_driver = Vec::with_capacity(mode_count);
        for circuit in circuits {
            let n = circuit.block_count();
            let mut dr: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut db: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut cr: Vec<Vec<f64>> = vec![Vec::new(); n];
            let crits = if track_timing {
                mm_sta::unit_criticalities(circuit)
                    .expect("timing cost requires combinationally acyclic circuits")
            } else {
                Vec::new()
            };
            for (ci, (src, dst)) in circuit.connections().into_iter().enumerate() {
                dr[src.index()].push(dst.index() as u32);
                db[dst.index()].push(src.index() as u32);
                if track_timing {
                    cr[src.index()].push(crits[ci]);
                }
            }
            drives.push(dr);
            driven_by.push(db);
            crit.push(cr);
            is_driver.push(
                circuit
                    .block_ids()
                    .map(|id| !matches!(circuit.block(id).kind(), BlockKind::OutputPad { .. }))
                    .collect(),
            );
        }
        let site_xy = (0..sites.len() as u32)
            .map(|i| {
                let s = sites.site(i);
                (s.x, s.y)
            })
            .collect();
        Self {
            kind,
            mode_count,
            loc: circuits
                .iter()
                .map(|c| vec![u32::MAX; c.block_count()])
                .collect(),
            occ: (0..mode_count).map(|_| vec![None; sites.len()]).collect(),
            drives,
            driven_by,
            crit,
            is_driver,
            site_xy,
            net_cost: HashMap::new(),
            wl: 0.0,
            pairs: HashMap::new(),
            timing_cost: 0.0,
            track_wl,
            track_pairs,
            track_timing,
            undo: None,
        }
    }

    /// Number of modes.
    #[must_use]
    pub fn mode_count(&self) -> usize {
        self.mode_count
    }

    /// The criticality-weighted delay component (0 unless tracked).
    #[must_use]
    pub fn timing_cost(&self) -> f64 {
        self.timing_cost
    }

    /// The cost of the tunable net sourced at `site`, or `None` when no
    /// driver of any mode is placed there — the naive O(n²)-dedup
    /// formulation the flat model's refcount matrix replaces.
    fn compute_net_cost(&self, site: u32) -> Option<f64> {
        let mut terms: Vec<u32> = Vec::with_capacity(8);
        let push = |terms: &mut Vec<u32>, s: u32| {
            if !terms.contains(&s) {
                terms.push(s);
            }
        };
        for m in 0..self.mode_count {
            if let Some(b) = self.occ[m][site as usize] {
                if self.is_driver[m][b as usize] {
                    push(&mut terms, site);
                    for &snk in &self.drives[m][b as usize] {
                        push(&mut terms, self.loc[m][snk as usize]);
                    }
                }
            }
        }
        if terms.is_empty() {
            return None;
        }
        let (mut minx, mut maxx, mut miny, mut maxy) = (u16::MAX, 0u16, u16::MAX, 0u16);
        for &t in &terms {
            let (x, y) = self.site_xy[t as usize];
            minx = minx.min(x);
            maxx = maxx.max(x);
            miny = miny.min(y);
            maxy = maxy.max(y);
        }
        let span = f64::from(maxx - minx + 1) + f64::from(maxy - miny + 1);
        Some(q_factor(terms.len()) * span)
    }
}

impl CostTracker for NaiveCostModel {
    fn set_location(&mut self, mode: usize, block: u32, site: u32) {
        assert!(
            self.occ[mode][site as usize].is_none(),
            "site already occupied in mode {mode}"
        );
        self.loc[mode][block as usize] = site;
        self.occ[mode][site as usize] = Some(block);
    }

    fn location(&self, mode: usize, block: u32) -> u32 {
        self.loc[mode][block as usize]
    }

    fn recompute(&mut self) {
        self.undo = None;
        if self.track_wl {
            self.net_cost.clear();
            self.wl = 0.0;
            let site_count = self.site_xy.len() as u32;
            for s in 0..site_count {
                if let Some(c) = self.compute_net_cost(s) {
                    self.net_cost.insert(s, c);
                    self.wl += c;
                }
            }
        }
        if self.track_pairs {
            self.pairs.clear();
            for m in 0..self.mode_count {
                for (b, sinks) in self.drives[m].iter().enumerate() {
                    let ls = self.loc[m][b];
                    for &snk in sinks {
                        let ld = self.loc[m][snk as usize];
                        *self.pairs.entry((ls, ld)).or_insert(0) += 1;
                    }
                }
            }
        }
        if self.track_timing {
            let mut tc = 0.0;
            for m in 0..self.mode_count {
                for (b, sinks) in self.drives[m].iter().enumerate() {
                    let ls = self.loc[m][b] as usize;
                    for (slot, &snk) in sinks.iter().enumerate() {
                        let ld = self.loc[m][snk as usize] as usize;
                        tc += self.crit[m][b][slot] * manhattan(self.site_xy[ls], self.site_xy[ld]);
                    }
                }
            }
            self.timing_cost = tc;
        }
    }

    fn apply_swap(&mut self, mode: usize, site_a: u32, site_b: u32) -> Option<f64> {
        if site_a == site_b {
            return None;
        }
        let ba = self.occ[mode][site_a as usize];
        let bb = self.occ[mode][site_b as usize];
        if ba.is_none() && bb.is_none() {
            return None;
        }
        let moved: Vec<u32> = ba.iter().chain(bb.iter()).copied().collect();

        // Connections of the moved blocks (mode `mode` only), deduplicated.
        let mut conns: HashSet<(u32, u32)> = HashSet::new();
        if self.track_pairs {
            for &b in &moved {
                for &snk in &self.drives[mode][b as usize] {
                    conns.insert((b, snk));
                }
                for &d in &self.driven_by[mode][b as usize] {
                    conns.insert((d, b));
                }
            }
        }
        let old_pairs: Vec<(u32, u32)> = conns
            .iter()
            .map(|&(d, s)| (self.loc[mode][d as usize], self.loc[mode][s as usize]))
            .collect();

        // Timing needs an *ordered* connection list (f64 folds are
        // order-sensitive): moved blocks in `[ba, bb]` order, each block's
        // drive slots ascending, then its driver entries ascending —
        // exactly the flat model's enumeration.
        let mut tconns: Vec<(u32, u32)> = Vec::new();
        let mut tcrit: Vec<f64> = Vec::new();
        if self.track_timing {
            for &b in &moved {
                for (slot, &snk) in self.drives[mode][b as usize].iter().enumerate() {
                    tconns.push((b, snk));
                    tcrit.push(self.crit[mode][b as usize][slot]);
                }
                for &d in &self.driven_by[mode][b as usize] {
                    // A connection between two moved blocks is already
                    // covered by the drives loop of the driving block.
                    if Some(d) == ba || Some(d) == bb {
                        continue;
                    }
                    let slot = self.drives[mode][d as usize]
                        .iter()
                        .position(|&s| s == b)
                        .expect("driver lists its sink");
                    tconns.push((d, b));
                    tcrit.push(self.crit[mode][d as usize][slot]);
                }
            }
        }
        let t_old: Vec<(u32, u32)> = tconns
            .iter()
            .map(|&(d, s)| (self.loc[mode][d as usize], self.loc[mode][s as usize]))
            .collect();

        // WL: affected tunable-net keys — the two sites plus the sites of
        // every driver of a moved block (identical before/after the move
        // except for drivers that are themselves moved, which are covered
        // by {a, b}).
        let mut keys: Vec<u32> = Vec::new();
        if self.track_wl {
            let push = |keys: &mut Vec<u32>, s: u32| {
                if !keys.contains(&s) {
                    keys.push(s);
                }
            };
            push(&mut keys, site_a);
            push(&mut keys, site_b);
            for &b in &moved {
                for &d in &self.driven_by[mode][b as usize] {
                    push(&mut keys, self.loc[mode][d as usize]);
                }
            }
        }

        // ---- apply the move -------------------------------------------------
        self.occ[mode][site_a as usize] = bb;
        self.occ[mode][site_b as usize] = ba;
        if let Some(b) = ba {
            self.loc[mode][b as usize] = site_b;
        }
        if let Some(b) = bb {
            self.loc[mode][b as usize] = site_a;
        }

        let mut delta = 0.0;

        // ---- wire length ----------------------------------------------------
        let mut wl_snapshot = Vec::with_capacity(keys.len());
        if self.track_wl {
            for &key in &keys {
                let old = self.net_cost.get(&key).copied();
                let new = self.compute_net_cost(key);
                wl_snapshot.push((key, old));
                let old_v = old.unwrap_or(0.0);
                let new_v = new.unwrap_or(0.0);
                self.wl += new_v - old_v;
                let wl_delta = new_v - old_v;
                match new {
                    Some(c) => {
                        self.net_cost.insert(key, c);
                    }
                    None => {
                        self.net_cost.remove(&key);
                    }
                }
                match self.kind {
                    CostKind::WireLength => delta += wl_delta,
                    CostKind::Hybrid { wl_weight, .. } => delta += wl_weight * wl_delta,
                    CostKind::Timing { alpha } => delta += (1.0 - alpha) * wl_delta,
                    CostKind::EdgeMatching => {}
                }
            }
        }

        // ---- timing ---------------------------------------------------------
        let timing_before = self.timing_cost;
        if self.track_timing {
            let mut td = 0.0;
            for (i, &(d, s)) in tconns.iter().enumerate() {
                let (ods, oss) = t_old[i];
                let nds = self.loc[mode][d as usize] as usize;
                let nss = self.loc[mode][s as usize] as usize;
                td += tcrit[i]
                    * (manhattan(self.site_xy[nds], self.site_xy[nss])
                        - manhattan(self.site_xy[ods as usize], self.site_xy[oss as usize]));
            }
            self.timing_cost += td;
            if let CostKind::Timing { alpha } = self.kind {
                delta += alpha * td;
            }
        }

        // ---- edge matching --------------------------------------------------
        let mut pair_ops: Vec<((u32, u32), i32)> = Vec::new();
        if self.track_pairs {
            let new_pairs: Vec<(u32, u32)> = conns
                .iter()
                .map(|&(d, s)| (self.loc[mode][d as usize], self.loc[mode][s as usize]))
                .collect();
            let mut distinct_delta = 0i64;
            for &p in &old_pairs {
                let c = self.pairs.get_mut(&p).expect("old pair present");
                *c -= 1;
                if *c == 0 {
                    self.pairs.remove(&p);
                    distinct_delta -= 1;
                }
                pair_ops.push((p, -1));
            }
            for &p in &new_pairs {
                let c = self.pairs.entry(p).or_insert(0);
                if *c == 0 {
                    distinct_delta += 1;
                }
                *c += 1;
                pair_ops.push((p, 1));
            }
            match self.kind {
                CostKind::EdgeMatching => delta += distinct_delta as f64,
                CostKind::Hybrid { edge_weight, .. } => {
                    delta += edge_weight * distinct_delta as f64;
                }
                CostKind::WireLength | CostKind::Timing { .. } => {}
            }
        }

        self.undo = Some(SwapUndo {
            mode,
            site_a,
            site_b,
            wl_snapshot,
            pair_ops,
            timing: timing_before,
        });
        Some(delta)
    }

    fn revert_last(&mut self) {
        let undo = self.undo.take().expect("no swap to revert");
        let (mode, a, b) = (undo.mode, undo.site_a, undo.site_b);
        if self.track_timing {
            self.timing_cost = undo.timing;
        }
        let ba = self.occ[mode][b as usize];
        let bb = self.occ[mode][a as usize];
        self.occ[mode][a as usize] = ba;
        self.occ[mode][b as usize] = bb;
        if let Some(blk) = ba {
            self.loc[mode][blk as usize] = a;
        }
        if let Some(blk) = bb {
            self.loc[mode][blk as usize] = b;
        }
        // Restore net costs.
        for (key, old) in undo.wl_snapshot {
            let current = self.net_cost.get(&key).copied().unwrap_or(0.0);
            match old {
                Some(c) => {
                    self.wl += c - current;
                    self.net_cost.insert(key, c);
                }
                None => {
                    self.wl -= current;
                    self.net_cost.remove(&key);
                }
            }
        }
        // Reverse pair operations.
        for (pair, op) in undo.pair_ops.into_iter().rev() {
            match op {
                1 => {
                    let c = self.pairs.get_mut(&pair).expect("pair present");
                    *c -= 1;
                    if *c == 0 {
                        self.pairs.remove(&pair);
                    }
                }
                _ => {
                    *self.pairs.entry(pair).or_insert(0) += 1;
                }
            }
        }
    }

    fn cost(&self) -> f64 {
        match self.kind {
            CostKind::WireLength => self.wl,
            CostKind::EdgeMatching => self.pairs.len() as f64,
            CostKind::Hybrid {
                wl_weight,
                edge_weight,
            } => wl_weight * self.wl + edge_weight * self.pairs.len() as f64,
            CostKind::Timing { alpha } => (1.0 - alpha) * self.wl + alpha * self.timing_cost,
        }
    }

    fn wirelength(&self) -> f64 {
        self.wl
    }

    fn tunable_connections(&self) -> usize {
        self.pairs.len()
    }

    fn net_count(&self) -> usize {
        if self.track_wl {
            self.net_cost.len().max(1)
        } else {
            self.pairs.len().max(1)
        }
    }
}
