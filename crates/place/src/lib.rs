//! Placement for the multi-mode tool flow.
//!
//! Contains a Rust re-implementation of the VPR wire-length-driven
//! simulated-annealing placer (the paper's baseline infrastructure, §IV-B)
//! and its extension to **combined placement** — the paper's key
//! contribution (§III-A): all mode circuits are placed simultaneously,
//! LUTs of different modes may share a physical LUT, and a swap moves the
//! occupants of one *mode* between two sites.
//!
//! Two combined-placement cost functions are provided (§III-B):
//! [`CostKind::WireLength`] (the paper's novel approach — bounding-box
//! wire length of the merged tunable circuit) and
//! [`CostKind::EdgeMatching`] (the prior technique — maximise connections
//! with identical source and sink sites).
//!
//! # Example
//!
//! ```no_run
//! use mm_arch::Architecture;
//! use mm_netlist::LutCircuit;
//! use mm_place::{place_combined, CostKind, PlacerOptions};
//!
//! # fn demo(mode_a: LutCircuit, mode_b: LutCircuit) -> Result<(), mm_place::PlaceError> {
//! let arch = Architecture::new(4, 12, 10);
//! let circuits = vec![mode_a, mode_b];
//! let options = PlacerOptions::default().with_cost(CostKind::WireLength);
//! let (placement, stats) = place_combined(&circuits, &arch, &options)?;
//! println!("tunable WL = {}", stats.wirelength);
//! # let _ = placement;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annealer;
mod netmodel;
mod placement;
mod qfactor;
pub mod reference;

pub use annealer::{
    place_combined, place_combined_reference, place_single, placement_tunable_connections,
    placement_wirelength, site_of, PlaceError, PlaceStats, PlacerOptions,
};
pub use netmodel::{CostKind, CostModel, CostTracker, DENSE_SITE_LIMIT};
pub use placement::{verify_placement, MultiPlacement, Placement, SiteMap};
pub use qfactor::q_factor;
