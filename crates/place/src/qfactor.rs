//! VPR's bounding-box correction factors.
//!
//! The half-perimeter wire length (HPWL) of a net's bounding box
//! underestimates the wiring of nets with many terminals; VPR multiplies
//! the HPWL by a compensation factor `q(t)` that grows with the terminal
//! count `t` (C. E. Cheng, "RISA: accurate and efficient placement
//! routability modeling", as adopted by VPR's `get_net_cost`).

/// Anchor values of `q` at terminal counts 1..=10, then every 5 up to 50.
const Q_SMALL: [f64; 10] = [
    1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991, 1.4493,
];
const Q_COARSE: [(usize, f64); 9] = [
    (10, 1.4493),
    (15, 1.6899),
    (20, 1.8924),
    (25, 2.0743),
    (30, 2.2334),
    (35, 2.3895),
    (40, 2.5356),
    (45, 2.6625),
    (50, 2.7933),
];

/// Per-terminal growth beyond 50 terminals.
const Q_SLOPE: f64 = 0.026_16;

/// The crossing-count compensation factor for a net with `terminals`
/// distinct terminal locations.
///
/// # Example
///
/// ```
/// use mm_place::q_factor;
/// assert_eq!(q_factor(2), 1.0);
/// assert!(q_factor(20) > q_factor(10));
/// ```
#[must_use]
pub fn q_factor(terminals: usize) -> f64 {
    match terminals {
        0..=3 => 1.0,
        t if t <= 10 => Q_SMALL[t - 1],
        t if t <= 50 => {
            // Linear interpolation between the coarse anchors.
            let hi = Q_COARSE
                .iter()
                .position(|&(n, _)| n >= t)
                .expect("t <= 50 covered");
            let (n1, q1) = Q_COARSE[hi - 1];
            let (n2, q2) = Q_COARSE[hi];
            q1 + (q2 - q1) * (t - n1) as f64 / (n2 - n1) as f64
        }
        t => 2.7933 + Q_SLOPE * (t - 50) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_match_table() {
        assert_eq!(q_factor(1), 1.0);
        assert_eq!(q_factor(3), 1.0);
        assert!((q_factor(4) - 1.0828).abs() < 1e-12);
        assert!((q_factor(10) - 1.4493).abs() < 1e-12);
    }

    #[test]
    fn anchors_exact() {
        assert!((q_factor(25) - 2.0743).abs() < 1e-12);
        assert!((q_factor(50) - 2.7933).abs() < 1e-12);
    }

    #[test]
    fn interpolation_between_anchors() {
        let q12 = q_factor(12);
        assert!(q12 > q_factor(10) && q12 < q_factor(15));
        // Midpoint-ish check: 12 is 2/5 between 10 and 15.
        let expect = 1.4493 + (1.6899 - 1.4493) * 2.0 / 5.0;
        assert!((q12 - expect).abs() < 1e-12);
    }

    #[test]
    fn monotone_nondecreasing() {
        let mut last = 0.0;
        for t in 0..200 {
            let q = q_factor(t);
            assert!(q >= last, "q({t}) = {q} < {last}");
            last = q;
        }
    }

    #[test]
    fn beyond_fifty_linear() {
        assert!((q_factor(51) - (2.7933 + Q_SLOPE)).abs() < 1e-12);
        assert!((q_factor(60) - (2.7933 + 10.0 * Q_SLOPE)).abs() < 1e-12);
    }
}
